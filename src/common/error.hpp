// Error handling primitives for libsap.
//
// All contract violations and unrecoverable runtime failures in the library
// raise sap::Error (derived from std::runtime_error) so callers can
// distinguish library failures from standard-library failures.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace sap {

/// Exception type thrown by every libsap module on contract violation or
/// unrecoverable runtime failure (singular matrix, malformed message, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raise(const std::string& message,
                        std::source_location where = std::source_location::current());
}  // namespace detail

}  // namespace sap

/// Precondition / invariant check. Active in all build types: the library is
/// a security-relevant protocol implementation, so contract checks must not
/// silently disappear in Release builds.
#define SAP_REQUIRE(cond, msg)                  \
  do {                                          \
    if (!(cond)) [[unlikely]] {                 \
      ::sap::detail::raise((msg));              \
    }                                           \
  } while (false)

/// Unconditional failure with message.
#define SAP_FAIL(msg) ::sap::detail::raise((msg))
