// Annotated locking primitives — the only mutex vocabulary in the tree.
//
// libstdc++'s std::mutex carries no capability attribute, so Clang's
// -Wthread-safety analysis cannot see through it. sap::Mutex wraps it as an
// annotated CAPABILITY type, sap::MutexLock is the one RAII guard (a
// SCOPED_CAPABILITY, relockable so condition-variable hand-off loops stay
// analyzable), and sap::CondVar pairs std::condition_variable with
// MutexLock. Everything outside src/common/ must use these three types:
// sap-lint rule R4 rejects raw std::mutex / std::condition_variable members
// elsewhere, and rejects bare .lock()/.unlock() on any declared mutex.
//
// Predicate waits are written as explicit while-loops at the call site
// (`while (!ready_) cv_.wait(lk);`) rather than lambda predicates: the
// analysis checks a lambda body as a capability-free function, so a
// predicate lambda reading SAP_GUARDED_BY state would warn even though the
// wait contract holds the lock — the loop form keeps the guarded reads in
// the scope the analysis can verify.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace sap {

class CondVar;

/// Exclusive mutex, annotated as a Clang thread-safety capability. Lock it
/// through MutexLock; the public lock()/unlock() exist for the annotation
/// vocabulary (and std::scoped_lock compatibility in generic code), not for
/// bare call sites — sap-lint R4 enforces that.
class SAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SAP_ACQUIRE() {
    // sap-lint: allow(raii-locking) -- the RAII wrapper itself is the one
    // place that touches the raw mutex; every other site goes through it.
    m_.lock();
  }
  void unlock() SAP_RELEASE() {
    // sap-lint: allow(raii-locking) -- see lock() above.
    m_.unlock();
  }
  bool try_lock() SAP_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII guard over sap::Mutex. Constructed locked; unlock()/lock() support
/// the condition-variable hand-off pattern (worker loops that release the
/// lock around the work item) under the analysis — Clang tracks the scoped
/// capability through the explicit re-acquisitions.
class SAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) SAP_ACQUIRE(m) : lk_(m.m_) {}
  ~MutexLock() SAP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release early (before the scope ends).
  void unlock() SAP_RELEASE() { lk_.unlock(); }
  /// Re-acquire after an explicit unlock().
  void lock() SAP_ACQUIRE() { lk_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable bound to MutexLock. wait()/wait_until() atomically
/// release and re-acquire the guard's mutex; from the analysis' point of
/// view the capability is held across the call, which matches the caller's
/// contract (locked on entry, locked on return).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Block until notified (or spuriously woken — callers loop on their
  /// predicate, see the header comment).
  void wait(MutexLock& lk) { cv_.wait(lk.lk_); }

  /// Deadline-bounded wait: false exactly when `deadline` passed without a
  /// notification (the caller's loop then gives up); true on wake-up —
  /// genuine or spurious — so callers re-check their predicate either way.
  bool wait_until(MutexLock& lk, std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lk.lk_, deadline) == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

/// The deadline for a wait loop bounded by `timeout_ms` from now.
[[nodiscard]] inline std::chrono::steady_clock::time_point deadline_after_ms(
    int timeout_ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
}

}  // namespace sap
