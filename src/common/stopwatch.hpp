// Monotonic stopwatch used by benches, daemons, and the protocol cost
// model. steady_clock ONLY — stats and stage timings must survive NTP
// steps (DESIGN.md §12); wall-clock time appears in this tree solely as
// run metadata (bench_util's utc_timestamp), never in a measured interval.
#pragma once

#include <chrono>
#include <cstdint>

namespace sap {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Steady-clock now in nanoseconds — the cross-thread timestamp format
/// (frame receive stamps, queue-wait measurement). Comparable only within
/// one process.
[[nodiscard]] inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace sap
