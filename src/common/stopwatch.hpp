// Wall-clock stopwatch used by benches and the protocol cost model.
#pragma once

#include <chrono>

namespace sap {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sap
