#include "common/error.hpp"

#include <sstream>

namespace sap::detail {

void raise(const std::string& message, std::source_location where) {
  std::ostringstream os;
  os << message << " [" << where.file_name() << ':' << where.line() << " in "
     << where.function_name() << ']';
  throw Error(os.str());
}

}  // namespace sap::detail
