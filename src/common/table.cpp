#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace sap {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] != '.' && s[i] != 'e' && s[i] != 'E' && s[i] != '-' && s[i] != '+' &&
               s[i] != '%') {
      return false;
    }
  }
  return digit;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SAP_REQUIRE(!header_.empty(), "Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  SAP_REQUIRE(cells.size() == header_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::str() const {
  const std::size_t ncol = header_.size();
  std::vector<std::size_t> width(ncol);
  std::vector<bool> numeric(ncol, true);
  for (std::size_t c = 0; c < ncol; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < ncol; ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!looks_numeric(row[c])) numeric[c] = false;
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool align_num) {
    for (std::size_t c = 0; c < ncol; ++c) {
      if (c) os << "  ";
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      if (align_num && numeric[c]) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit(header_, /*align_num=*/false);
  std::size_t total = (ncol - 1) * 2;
  for (std::size_t c = 0; c < ncol; ++c) total += width[c];
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, /*align_num=*/true);
  return os.str();
}

}  // namespace sap
