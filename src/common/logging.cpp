#include "common/logging.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>

#include "common/mutex.hpp"

namespace sap::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};

/// Role prefix: written once at daemon startup, read on every line. The
/// mutex keeps set_role racing write() defined; steady-state reads are one
/// uncontended lock per emitted line (logging is not a hot path).
Mutex g_role_mutex;
std::string g_role SAP_GUARDED_BY(g_role_mutex);  // NOLINT(cert-err58-cpp)

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kError: return "ERROR";
    case Level::kWarn: return "WARN ";
    case Level::kInfo: return "INFO ";
    case Level::kDebug: return "DEBUG";
    default: return "?    ";
  }
}

}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

bool parse_level(const std::string& text, Level& out) noexcept {
  if (text == "off" || text == "0") {
    out = Level::kOff;
  } else if (text == "error" || text == "1") {
    out = Level::kError;
  } else if (text == "warn" || text == "2") {
    out = Level::kWarn;
  } else if (text == "info" || text == "3") {
    out = Level::kInfo;
  } else if (text == "debug" || text == "4") {
    out = Level::kDebug;
  } else {
    return false;
  }
  return true;
}

void set_role(const std::string& role) {
  MutexLock lk(g_role_mutex);
  g_role = role;
}

void write(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) > static_cast<int>(level()) || lvl == Level::kOff) return;
  // Assemble the whole line first so it leaves in ONE write(2): concurrent
  // daemon threads may interleave whole lines, never shear within one.
  std::string line = "[sap ";
  line += tag(lvl);
  {
    MutexLock lk(g_role_mutex);
    if (!g_role.empty()) {
      line += ' ';
      line += g_role;
    }
  }
  line += "] ";
  line += message;
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(STDERR_FILENO, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // stderr gone; nothing sane left to do
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace sap::log
