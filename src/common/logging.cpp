#include "common/logging.hpp"

namespace sap::log {
namespace {
Level g_level = Level::kWarn;

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kError: return "ERROR";
    case Level::kWarn: return "WARN ";
    case Level::kInfo: return "INFO ";
    case Level::kDebug: return "DEBUG";
    default: return "?    ";
  }
}
}  // namespace

Level level() noexcept { return g_level; }
void set_level(Level lvl) noexcept { g_level = lvl; }

void write(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) > static_cast<int>(g_level) || lvl == Level::kOff) return;
  std::fprintf(stderr, "[sap %s] %s\n", tag(lvl), message.c_str());
}

}  // namespace sap::log
