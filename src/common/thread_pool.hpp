// Fixed-size worker pool executing indexed batches.
//
// The pool's one primitive is run_indexed(count, body): execute body(0) ..
// body(count-1), each exactly once, and return when all have finished. This
// shape — rather than a fire-and-forget task queue — is what the MiningEngine
// needs for deterministic batch serving: every result slot is addressed by
// its index, so the output of a batch is independent of which worker ran
// which index and in what order. Workers claim indices from a shared cursor
// under the pool mutex (no per-task allocation, no queue churn).
//
// Exception contract (mirrors Transport::run_parties): the first exception
// thrown by any body is captured and rethrown on the calling thread after
// the whole batch has drained — a throwing index never abandons in-flight
// work, so the caller can reason about the batch as all-or-error.
//
// A pool constructed with zero threads runs batches inline on the calling
// thread; callers use this as the serial reference execution that threaded
// runs must match bit for bit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sap {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 = inline serial execution (no workers).
  explicit ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::scoped_lock lk(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Execute body(0) .. body(count-1), each exactly once, across the workers
  /// (inline when the pool has none); returns after every index has
  /// completed. Rethrows the first body exception once the batch is drained.
  /// One batch runs at a time; concurrent callers are serialized.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    if (workers_.empty()) {
      std::exception_ptr error;
      for (std::size_t i = 0; i < count; ++i) {
        try {
          body(i);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
      }
      if (error) std::rethrow_exception(error);
      return;
    }
    std::scoped_lock batch_guard(batch_mutex_);
    Batch batch;
    batch.count = count;
    batch.body = &body;
    {
      std::scoped_lock lk(mutex_);
      batch_ = &batch;
    }
    work_cv_.notify_all();
    std::unique_lock lk(mutex_);
    done_cv_.wait(lk, [&] { return batch.completed == batch.count; });
    batch_ = nullptr;
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  struct Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t next = 0;       ///< next unclaimed index
    std::size_t completed = 0;  ///< indices fully executed
    std::exception_ptr error;   ///< first exception raised by any index
  };

  void worker_loop() {
    std::unique_lock lk(mutex_);
    for (;;) {
      work_cv_.wait(lk, [&] { return stop_ || (batch_ != nullptr && batch_->next < batch_->count); });
      if (stop_) return;
      Batch* batch = batch_;
      const std::size_t index = batch->next++;
      lk.unlock();
      std::exception_ptr err;
      try {
        (*batch->body)(index);
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      if (err && !batch->error) batch->error = err;
      if (++batch->completed == batch->count) done_cv_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex batch_mutex_;  ///< serializes run_indexed callers
  std::mutex mutex_;        ///< protects batch_/stop_ and Batch state
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;
  bool stop_ = false;
};

}  // namespace sap
