// Fixed-size worker pool executing indexed batches.
//
// The pool's one primitive is run_indexed(count, body): execute body(0) ..
// body(count-1), each exactly once, and return when all have finished. This
// shape — rather than a fire-and-forget task queue — is what the MiningEngine
// needs for deterministic batch serving: every result slot is addressed by
// its index, so the output of a batch is independent of which worker ran
// which index and in what order. Workers claim indices from a shared cursor
// under the pool mutex (no per-task allocation, no queue churn).
//
// Exception contract (mirrors Transport::run_parties): the first exception
// thrown by any body is captured and rethrown on the calling thread after
// the whole batch has drained — a throwing index never abandons in-flight
// work, so the caller can reason about the batch as all-or-error.
//
// A pool constructed with zero threads runs batches inline on the calling
// thread; callers use this as the serial reference execution that threaded
// runs must match bit for bit.
//
// Locking discipline is annotated for Clang's -Wthread-safety (DESIGN.md
// §9): batch_/stop_ are SAP_GUARDED_BY(mutex_); the Batch the pointer leads
// to is protected by the same mutex by convention (the analysis tracks the
// pointer, the comment tracks the pointee).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/stopwatch.hpp"

namespace sap {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 = inline serial execution (no workers).
  explicit ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lk(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Execution totals for observability (obs registries export these at
  /// snapshot time — DESIGN.md §12). Relaxed atomics: racy-exact counts,
  /// no effect on batch execution or its determinism contract.
  struct Stats {
    std::uint64_t batches = 0;   ///< run_indexed calls that executed work
    std::uint64_t tasks = 0;     ///< indices executed
    std::uint64_t busy_ns = 0;   ///< cumulative per-task execution time
    std::uint64_t peak_batch = 0;  ///< largest batch (queue depth high-water)
  };
  [[nodiscard]] Stats stats() const noexcept {
    return {batches_.load(std::memory_order_relaxed),
            tasks_.load(std::memory_order_relaxed),
            busy_ns_.load(std::memory_order_relaxed),
            peak_batch_.load(std::memory_order_relaxed)};
  }

  /// Execute body(0) .. body(count-1), each exactly once, across the workers
  /// (inline when the pool has none); returns after every index has
  /// completed. Rethrows the first body exception once the batch is drained.
  /// One batch runs at a time; concurrent callers are serialized.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& body)
      SAP_EXCLUDES(batch_mutex_, mutex_) {
    if (count == 0) return;
    note_batch(count);
    if (workers_.empty()) {
      std::exception_ptr error;
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t t0 = steady_now_ns();
        try {
          body(i);
        } catch (...) {
          if (!error) error = std::current_exception();
        }
        note_task(steady_now_ns() - t0);
      }
      if (error) std::rethrow_exception(error);
      return;
    }
    MutexLock batch_guard(batch_mutex_);
    Batch batch;
    batch.count = count;
    batch.body = &body;
    {
      MutexLock lk(mutex_);
      batch_ = &batch;
    }
    work_cv_.notify_all();
    MutexLock lk(mutex_);
    while (batch.completed != batch.count) done_cv_.wait(lk);
    batch_ = nullptr;
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  /// Batch state is written by workers and the caller under mutex_ (the
  /// batch_ pointer is the guarded hand-off; fields inherit its protection).
  struct Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t next = 0;       ///< next unclaimed index
    std::size_t completed = 0;  ///< indices fully executed
    std::exception_ptr error;   ///< first exception raised by any index
  };

  void worker_loop() SAP_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    for (;;) {
      while (!stop_ && !(batch_ != nullptr && batch_->next < batch_->count))
        work_cv_.wait(lk);
      if (stop_) return;
      Batch* batch = batch_;
      const std::size_t index = batch->next++;
      lk.unlock();
      std::exception_ptr err;
      const std::uint64_t t0 = steady_now_ns();
      try {
        (*batch->body)(index);
      } catch (...) {
        err = std::current_exception();
      }
      note_task(steady_now_ns() - t0);
      lk.lock();
      if (err && !batch->error) batch->error = err;
      if (++batch->completed == batch->count) done_cv_.notify_all();
    }
  }

  void note_batch(std::size_t count) noexcept {
    batches_.fetch_add(1, std::memory_order_relaxed);
    tasks_.fetch_add(count, std::memory_order_relaxed);
    std::uint64_t peak = peak_batch_.load(std::memory_order_relaxed);
    while (peak < count &&
           !peak_batch_.compare_exchange_weak(peak, count, std::memory_order_relaxed)) {
    }
  }
  void note_task(std::uint64_t ns) noexcept {
    busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> peak_batch_{0};
  Mutex batch_mutex_ SAP_ACQUIRED_BEFORE(mutex_);  ///< serializes run_indexed callers
  Mutex mutex_;                                    ///< protects batch_/stop_ and Batch state
  CondVar work_cv_;
  CondVar done_cv_;
  Batch* batch_ SAP_GUARDED_BY(mutex_) = nullptr;
  bool stop_ SAP_GUARDED_BY(mutex_) = false;
};

}  // namespace sap
