// Minimal leveled logger, hardened for multi-threaded daemons.
//
// The protocol simulator, benches, and daemons use this to narrate runs;
// tests set the level to kOff. No global constructor magic. Thread-safe:
// the level is one atomic, and write() assembles the whole line (prefix +
// message + newline) into one buffer emitted with a single write(2) call,
// so lines from interleaved daemon threads never shear into each other.
// Daemons install a role prefix ("miner 0/4", "router") once at startup so
// multiplexed stderr streams stay attributable.
#pragma once

#include <string>

namespace sap::log {

enum class Level { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

/// Global verbosity threshold (messages above it are discarded). Atomic:
/// readable/settable from any thread.
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Parse a level name ("off"/"error"/"warn"/"info"/"debug", or "0".."4");
/// false on anything else. The SAP_LOG_LEVEL env override in sap_cli goes
/// through this.
bool parse_level(const std::string& text, Level& out) noexcept;

/// Role prefix prepended to every subsequent line (e.g. "miner 2/4",
/// "router"); empty clears it. Set once at daemon startup, before threads
/// log concurrently.
void set_role(const std::string& role);

/// Emit one line at the given level — a single write(2) syscall, safe to
/// call from any thread concurrently.
void write(Level lvl, const std::string& message);

inline void error(const std::string& m) { write(Level::kError, m); }
inline void warn(const std::string& m) { write(Level::kWarn, m); }
inline void info(const std::string& m) { write(Level::kInfo, m); }
inline void debug(const std::string& m) { write(Level::kDebug, m); }

}  // namespace sap::log
