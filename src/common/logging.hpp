// Minimal leveled logger.
//
// The protocol simulator and benches use this to narrate runs; tests set the
// level to kOff. No global constructor magic: the sink is a plain function
// pointer defaulting to stderr.
#pragma once

#include <cstdio>
#include <string>

namespace sap::log {

enum class Level { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

/// Global verbosity threshold (messages above it are discarded).
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Emit one line at the given level. Thread-compatible: callers serialize.
void write(Level lvl, const std::string& message);

inline void error(const std::string& m) { write(Level::kError, m); }
inline void warn(const std::string& m) { write(Level::kWarn, m); }
inline void info(const std::string& m) { write(Level::kInfo, m); }
inline void debug(const std::string& m) { write(Level::kDebug, m); }

}  // namespace sap::log
