// Annotated cross-thread queues — the hand-off primitives of the reactor
// (net/reactor.hpp) and any future producer/consumer pipeline.
//
// Two shapes, both built strictly from sap::Mutex/MutexLock/CondVar so the
// Clang -Wthread-safety job verifies every access (DESIGN.md §9):
//
//   * WorkQueue<T>  — bounded, blocking MPMC queue. Producers block while
//     full (backpressure) or use try_push() to shed load; consumers block
//     while empty. close() drains: pop() keeps returning queued items and
//     only then reports exhaustion, so no accepted work is lost on
//     shutdown.
//   * DrainQueue<T> — minimally locked multi-producer inbox for a single
//     consumer that owns everything else about its thread (an event loop).
//     Producers append under the mutex in O(1); the consumer swaps the
//     whole batch out in O(1), so the critical section never scales with
//     the batch and the consumer processes items entirely lock-free.
//
// Neither queue allocates under the lock beyond vector/deque growth, and
// neither hands out references into the protected storage.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/mutex.hpp"

namespace sap {

/// Bounded blocking MPMC queue (see the header comment).
template <typename T>
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueue, blocking while the queue is full. False when closed (the item
  /// is dropped — producers treat that as shutdown).
  bool push(T item) SAP_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    while (!closed_ && items_.size() >= capacity_) room_cv_.wait(lk);
    if (closed_) return false;
    items_.push_back(std::move(item));
    item_cv_.notify_one();
    return true;
  }

  /// Nonblocking enqueue: false when full or closed. `item` is untouched on
  /// failure so the caller can shed it explicitly (overload response).
  bool try_push(T& item) SAP_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    item_cv_.notify_one();
    return true;
  }

  /// Dequeue, blocking while empty. False only when the queue is closed AND
  /// fully drained.
  bool pop(T& out) SAP_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    while (!closed_ && items_.empty()) item_cv_.wait(lk);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    room_cv_.notify_one();
    return true;
  }

  /// Close the queue: producers fail fast, consumers drain then stop.
  void close() SAP_EXCLUDES(mutex_) {
    {
      MutexLock lk(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    room_cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const SAP_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar item_cv_;
  CondVar room_cv_;
  std::deque<T> items_ SAP_GUARDED_BY(mutex_);
  bool closed_ SAP_GUARDED_BY(mutex_) = false;
};

/// Minimally locked multi-producer / single-consumer batch inbox (see the
/// header comment). The consumer is responsible for its own wake-up channel
/// (the reactor pairs each DrainQueue with an eventfd).
template <typename T>
class DrainQueue {
 public:
  DrainQueue() = default;
  DrainQueue(const DrainQueue&) = delete;
  DrainQueue& operator=(const DrainQueue&) = delete;

  /// Append one item. Returns true when the queue WAS empty — the producer
  /// then signals the consumer once per batch instead of once per item.
  bool push(T item) SAP_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    const bool was_empty = items_.empty();
    items_.push_back(std::move(item));
    return was_empty;
  }

  /// Take the whole pending batch in O(1) (vector swap under the lock).
  [[nodiscard]] std::vector<T> drain() SAP_EXCLUDES(mutex_) {
    std::vector<T> out;
    MutexLock lk(mutex_);
    out.swap(items_);
    return out;
  }

 private:
  mutable Mutex mutex_;
  std::vector<T> items_ SAP_GUARDED_BY(mutex_);
};

}  // namespace sap
