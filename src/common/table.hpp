// Aligned text-table printer.
//
// Every figure-reproduction bench prints its series through this so the
// output is uniform and diffable (EXPERIMENTS.md quotes these tables).
#pragma once

#include <string>
#include <vector>

namespace sap {

/// Accumulates rows of cells and renders them with per-column alignment.
///
/// Usage:
///   Table t({"dataset", "k", "rate"});
///   t.add_row({"Diabetes", "5", "0.947"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with two-space gutters, header underline, right-aligned numerics.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Raw cells, for machine-readable re-emission (see bench_util's JSON).
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data() const noexcept {
    return rows_;
  }

  /// Format a double with fixed precision (helper for cells).
  static std::string num(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sap
