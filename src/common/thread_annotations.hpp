// Clang thread-safety-analysis attribute macros (DESIGN.md §9).
//
// These expand to Clang's `-Wthread-safety` capability attributes when the
// translation unit is compiled with Clang, and to nothing everywhere else —
// GCC builds see plain C++, the Clang CI job sees the full static analysis.
// The vocabulary follows the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); sap::Mutex /
// sap::MutexLock / sap::CondVar in common/mutex.hpp are the annotated
// primitives every mutex-bearing class in the tree is written against.
//
// Usage conventions in this codebase:
//   * data members protected by a mutex carry SAP_GUARDED_BY(that_mutex_);
//   * private helpers that assume a lock is already held carry
//     SAP_REQUIRES(that_mutex_) and end in `_locked` by naming convention;
//   * functions that must NOT be called with a lock held (they acquire it
//     themselves, or they block) carry SAP_EXCLUDES(that_mutex_);
//   * RAII guards are the only way locks are taken — sap-lint rule R4
//     rejects bare .lock()/.unlock() on any declared mutex.
#pragma once

#if defined(__clang__)
#define SAP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SAP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lockable) type, e.g. a mutex.
#define SAP_CAPABILITY(x) SAP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define SAP_SCOPED_CAPABILITY SAP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SAP_GUARDED_BY(x) SAP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define SAP_PT_GUARDED_BY(x) SAP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares lock-ordering edges (checked by -Wthread-safety-beta).
#define SAP_ACQUIRED_BEFORE(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define SAP_ACQUIRED_AFTER(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Caller must already hold the capability (exclusively / shared).
#define SAP_REQUIRES(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define SAP_REQUIRES_SHARED(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define SAP_ACQUIRE(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SAP_ACQUIRE_SHARED(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define SAP_RELEASE(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define SAP_RELEASE_SHARED(...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns `b`.
#define SAP_TRY_ACQUIRE(b, ...) \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it, or blocks
/// in a way that would deadlock under it).
#define SAP_EXCLUDES(...) SAP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SAP_RETURN_CAPABILITY(x) SAP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: body is intentionally outside the analysis. Every use must
/// carry a comment explaining why the analysis cannot express the pattern.
#define SAP_NO_THREAD_SAFETY_ANALYSIS \
  SAP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
