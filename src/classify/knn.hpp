// k-nearest-neighbor classifier (majority vote, Euclidean metric).
//
// Two interchangeable backends with identical results (exact search, same
// (distance, index) tie-break): brute force, and a kd-tree for larger
// training sets. kAuto picks the tree once the training set is big enough
// for the build cost to pay off.
#pragma once

#include <memory>

#include "classify/classifier.hpp"
#include "classify/kdtree.hpp"

namespace sap::ml {

enum class KnnBackend {
  kAuto,        ///< kd-tree when training size >= 256, else brute force
  kBruteForce,
  kKdTree,
};

class Knn final : public Classifier {
 public:
  /// k must be >= 1; ties are broken toward the closer neighbor set.
  explicit Knn(std::size_t k = 5, KnnBackend backend = KnnBackend::kAuto);

  void fit(const data::Dataset& train) override;
  [[nodiscard]] int predict(std::span<const double> record) const override;
  [[nodiscard]] bool trained() const override { return train_.size() > 0; }

  [[nodiscard]] bool supports_partial_fit() const override { return true; }
  /// Incremental extension: appends `batch` to the training set, reusing the
  /// existing kd-tree via bulk insert instead of a full rebuild (the tree's
  /// exact-search guarantee makes the result prediction-identical to a full
  /// refit on the concatenated data).
  [[nodiscard]] std::unique_ptr<Classifier> partial_fit(
      const data::Dataset& batch) const override;

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] bool using_kdtree() const noexcept { return tree_ != nullptr; }

 private:
  std::size_t k_;
  KnnBackend backend_;
  data::Dataset train_;
  std::unique_ptr<KdTree> tree_;
};

}  // namespace sap::ml
