#include "classify/perceptron.hpp"

#include <limits>

#include "common/error.hpp"

namespace sap::ml {

Perceptron::Perceptron(PerceptronOptions opts) : opts_(opts) {
  SAP_REQUIRE(opts_.epochs >= 1, "Perceptron: epochs must be >= 1");
  SAP_REQUIRE(opts_.learning_rate > 0.0, "Perceptron: learning rate must be positive");
}

void Perceptron::fit(const data::Dataset& train) {
  SAP_REQUIRE(train.size() >= 2, "Perceptron::fit: need at least two records");
  classes_ = train.classes();
  SAP_REQUIRE(classes_.size() >= 2, "Perceptron::fit: need at least two classes");
  const std::size_t d = train.dims();
  const std::size_t n = train.size();

  // One-vs-rest averaged perceptron per class.
  linalg::Matrix w(classes_.size(), d + 1, 0.0);
  linalg::Matrix w_sum(classes_.size(), d + 1, 0.0);
  rng::Engine eng(opts_.seed);

  for (std::size_t c = 0; c < classes_.size(); ++c) {
    auto wc = w.row(c);
    for (std::size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
      const auto order = eng.permutation(n);
      for (std::size_t t : order) {
        auto rec = train.record(t);
        double score = wc[d];
        for (std::size_t f = 0; f < d; ++f) score += wc[f] * rec[f];
        const double target = (train.label(t) == classes_[c]) ? 1.0 : -1.0;
        if (target * score <= 0.0) {
          for (std::size_t f = 0; f < d; ++f)
            wc[f] += opts_.learning_rate * target * rec[f];
          wc[d] += opts_.learning_rate * target;
        }
      }
      auto ws = w_sum.row(c);
      for (std::size_t f = 0; f <= d; ++f) ws[f] += wc[f];
    }
  }
  weights_ = std::move(w_sum);  // averaged weights: more stable decisions
}

int Perceptron::predict(std::span<const double> record) const {
  SAP_REQUIRE(trained(), "Perceptron::predict before fit");
  SAP_REQUIRE(record.size() + 1 == weights_.cols(), "Perceptron::predict: dimension mismatch");
  const std::size_t d = record.size();
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    auto wc = weights_.row(c);
    double score = wc[d];
    for (std::size_t f = 0; f < d; ++f) score += wc[f] * record[f];
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return classes_[best];
}

}  // namespace sap::ml
