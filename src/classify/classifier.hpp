// Classifier interface + evaluation helpers.
//
// The paper's utility experiments (Figures 5/6) train classifiers on data
// perturbed by the unified SAP space and compare accuracy against training
// on the original data. KNN and SVM(RBF) are the paper's two representative
// models; both depend on the data only through pairwise distances, which
// rotation + translation preserve exactly and noise perturbs mildly — that
// is the geometric-invariance property the whole approach rests on.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace sap::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on a labeled dataset (N x d rows = records).
  virtual void fit(const data::Dataset& train) = 0;

  /// Predict the label of one record (must match training dimensionality).
  [[nodiscard]] virtual int predict(std::span<const double> record) const = 0;

  [[nodiscard]] virtual bool trained() const = 0;
};

/// Fraction of test records classified correctly, in [0, 1].
double accuracy(const Classifier& model, const data::Dataset& test);

/// Confusion counts: entry (i, j) = records of classes()[i] predicted as
/// classes()[j], with the class list returned alongside.
struct Confusion {
  std::vector<int> classes;
  linalg::Matrix counts;
};
Confusion confusion_matrix(const Classifier& model, const data::Dataset& test);

}  // namespace sap::ml
