// Classifier interface + evaluation helpers.
//
// The paper's utility experiments (Figures 5/6) train classifiers on data
// perturbed by the unified SAP space and compare accuracy against training
// on the original data. KNN and SVM(RBF) are the paper's two representative
// models; both depend on the data only through pairwise distances, which
// rotation + translation preserve exactly and noise perturbs mildly — that
// is the geometric-invariance property the whole approach rests on.
//
// Interface contract: train once, serve concurrently. The interface is split
// into a mutating training path and a const serving path:
//
//   * fit() is the only mutating operation. It must not run concurrently
//     with anything else on the same instance.
//   * predict() is const and must be safe to call from any number of
//     threads at once on a fitted model, with no external synchronization.
//     Implementations therefore keep NO mutable or static scratch state in
//     the serving path (query-local buffers only) — this is what lets the
//     MiningEngine share one immutable fitted model across its whole
//     worker pool.
//   * fit() must also be deterministic: same training data + options ⇒ a
//     model whose predictions are bit-identical (any training randomness is
//     seeded through the classifier's options, never global state).
//   * partial_fit() is the streaming extension point: it is const (the
//     fitted model stays shared and immutable) and returns a NEW classifier
//     equivalent to refitting on (everything this model saw) ⧺ batch.
//     Implementations that opt in (supports_partial_fit() == true) must meet
//     the incremental-refit contract of DESIGN.md §6: Knn's result is
//     prediction-exact versus a full refit; GaussianNaiveBayes accumulates
//     sufficient statistics in record order, so its incremental model is
//     bit-identical to a full refit on the concatenation. Models that cannot
//     extend (SVM, perceptron) keep the default 'unsupported' and the
//     MiningEngine falls back to a full refit.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace sap::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on a labeled dataset (N x d rows = records). Mutating: must not
  /// overlap with any other call on this instance.
  virtual void fit(const data::Dataset& train) = 0;

  /// Predict the label of one record (must match training dimensionality).
  /// Const and thread-safe on a fitted model (see the interface contract).
  [[nodiscard]] virtual int predict(std::span<const double> record) const = 0;

  [[nodiscard]] virtual bool trained() const = 0;

  /// True when partial_fit() is implemented (see the interface contract).
  [[nodiscard]] virtual bool supports_partial_fit() const { return false; }

  /// Extend a fitted model with `batch`: returns a new classifier equivalent
  /// to refitting on the concatenation of all previously-fitted records
  /// followed by `batch`. Const and safe to call concurrently with predict()
  /// on this instance. The base implementation throws sap::Error; only
  /// classifiers reporting supports_partial_fit() override it.
  [[nodiscard]] virtual std::unique_ptr<Classifier> partial_fit(
      const data::Dataset& batch) const;
};

/// Fraction of test records classified correctly, in [0, 1]. With
/// `max_records` > 0 only the first min(max_records, N) records are scored —
/// a deterministic prefix, so the result is a pure function of (model, test,
/// max_records); the MiningEngine's bounded serving path relies on that.
double accuracy(const Classifier& model, const data::Dataset& test,
                std::size_t max_records = 0);

/// Confusion counts: entry (i, j) = records of classes()[i] predicted as
/// classes()[j], with the class list returned alongside.
struct Confusion {
  std::vector<int> classes;
  linalg::Matrix counts;
};
Confusion confusion_matrix(const Classifier& model, const data::Dataset& test);

}  // namespace sap::ml
