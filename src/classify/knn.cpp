#include "classify/knn.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace sap::ml {
namespace {

constexpr std::size_t kAutoTreeThreshold = 256;

}  // namespace

Knn::Knn(std::size_t k, KnnBackend backend) : k_(k), backend_(backend) {
  SAP_REQUIRE(k >= 1, "Knn: k must be >= 1");
}

void Knn::fit(const data::Dataset& train) {
  SAP_REQUIRE(train.size() >= 1, "Knn::fit: empty training set");
  train_ = train;
  const bool want_tree =
      backend_ == KnnBackend::kKdTree ||
      (backend_ == KnnBackend::kAuto && train.size() >= kAutoTreeThreshold);
  tree_ = want_tree ? std::make_unique<KdTree>(train_.features()) : nullptr;
}

std::unique_ptr<Classifier> Knn::partial_fit(const data::Dataset& batch) const {
  SAP_REQUIRE(trained(), "Knn::partial_fit before fit");
  SAP_REQUIRE(batch.size() >= 1, "Knn::partial_fit: empty batch");
  SAP_REQUIRE(batch.dims() == train_.dims(), "Knn::partial_fit: dimension mismatch");
  auto extended = std::make_unique<Knn>(k_, backend_);
  extended->train_ = data::Dataset::concat(train_, batch);
  const bool want_tree =
      backend_ == KnnBackend::kKdTree ||
      (backend_ == KnnBackend::kAuto && extended->train_.size() >= kAutoTreeThreshold);
  if (want_tree) {
    if (tree_) {
      // Reuse the existing structure via the extension copy: one point
      // matrix copy, batch joins the brute tail (queries stay exact; see
      // kdtree.hpp).
      extended->tree_ = std::make_unique<KdTree>(*tree_, batch.features());
    } else {
      // The append crossed the auto threshold: first (and only) full build.
      extended->tree_ = std::make_unique<KdTree>(extended->train_.features());
    }
  }
  return extended;
}

int Knn::predict(std::span<const double> record) const {
  SAP_REQUIRE(trained(), "Knn::predict before fit");
  SAP_REQUIRE(record.size() == train_.dims(), "Knn::predict: dimension mismatch");

  const std::size_t n = train_.size();
  const std::size_t k = std::min(k_, n);

  // Collect the k nearest as (distance_sq, index), ascending with the
  // (distance, index) tie-break — identical for both backends.
  std::vector<KdTree::Neighbor> nearest;
  if (tree_) {
    nearest = tree_->nearest(record, k);
  } else {
    std::vector<std::pair<double, std::size_t>> dist(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto row = train_.record(i);
      double acc = 0.0;
      for (std::size_t c = 0; c < record.size(); ++c) {
        const double diff = row[c] - record[c];
        acc += diff * diff;
      }
      dist[i] = {acc, i};
    }
    std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dist.end());
    dist.resize(k);
    std::sort(dist.begin(), dist.end());
    nearest.reserve(k);
    for (const auto& [d, i] : dist) nearest.push_back({i, d});
  }

  // Majority vote over the k nearest; break ties by summed proximity
  // (smaller total distance wins).
  std::map<int, std::pair<std::size_t, double>> votes;  // label -> (count, dist sum)
  for (const auto& nb : nearest) {
    auto& [count, dsum] = votes[train_.label(nb.index)];
    ++count;
    dsum += nb.distance_sq;
  }
  int best_label = votes.begin()->first;
  std::pair<std::size_t, double> best{0, 0.0};
  for (const auto& [label, tally] : votes) {
    const bool wins = tally.first > best.first ||
                      (tally.first == best.first && tally.second < best.second);
    if (wins) {
      best = tally;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace sap::ml
