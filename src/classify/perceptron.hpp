// Averaged linear perceptron (one-vs-rest for multiclass).
//
// The paper's §1 lists linear classifiers among the rotation-invariant
// model families; this implementation backs the invariance ablations.
#pragma once

#include "classify/classifier.hpp"
#include "rng/rng.hpp"

namespace sap::ml {

struct PerceptronOptions {
  std::size_t epochs = 30;
  double learning_rate = 0.5;
  std::uint64_t seed = 0xacce1;  ///< epoch shuffling
};

class Perceptron final : public Classifier {
 public:
  explicit Perceptron(PerceptronOptions opts = {});

  void fit(const data::Dataset& train) override;
  [[nodiscard]] int predict(std::span<const double> record) const override;
  [[nodiscard]] bool trained() const override { return !weights_.empty(); }

 private:
  PerceptronOptions opts_;
  std::vector<int> classes_;
  linalg::Matrix weights_;  // classes x (d + 1), last column = bias
};

}  // namespace sap::ml
