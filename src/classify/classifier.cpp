#include "classify/classifier.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sap::ml {

std::unique_ptr<Classifier> Classifier::partial_fit(const data::Dataset&) const {
  SAP_FAIL("Classifier::partial_fit: this model does not support incremental refit");
}

double accuracy(const Classifier& model, const data::Dataset& test,
                std::size_t max_records) {
  SAP_REQUIRE(test.size() > 0, "accuracy: empty test set");
  const std::size_t n =
      max_records == 0 ? test.size() : std::min(max_records, test.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i)
    hits += (model.predict(test.record(i)) == test.label(i));
  return static_cast<double>(hits) / static_cast<double>(n);
}

Confusion confusion_matrix(const Classifier& model, const data::Dataset& test) {
  SAP_REQUIRE(test.size() > 0, "confusion_matrix: empty test set");
  Confusion out;
  out.classes = test.classes();
  out.counts = linalg::Matrix(out.classes.size(), out.classes.size(), 0.0);

  auto index_of = [&](int label) -> std::size_t {
    const auto it = std::find(out.classes.begin(), out.classes.end(), label);
    SAP_REQUIRE(it != out.classes.end(), "confusion_matrix: prediction outside test classes");
    return static_cast<std::size_t>(it - out.classes.begin());
  };
  for (std::size_t i = 0; i < test.size(); ++i) {
    const int pred = model.predict(test.record(i));
    // Predictions of classes absent from the test set land in the nearest
    // bucket only if present; otherwise count as a miss against the truth row.
    const auto truth = index_of(test.label(i));
    const auto it = std::find(out.classes.begin(), out.classes.end(), pred);
    if (it == out.classes.end()) continue;  // miss, not representable in the matrix
    out.counts(truth, static_cast<std::size_t>(it - out.classes.begin())) += 1.0;
  }
  return out;
}

}  // namespace sap::ml
