#include "classify/kdtree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sap::ml {
namespace {

/// Heap ordering: the WORST (largest distance, then largest index) neighbor
/// sits at the front so it can be evicted. Matches the brute-force
/// (distance, index) ascending tie-break exactly.
bool neighbor_less(const KdTree::Neighbor& a, const KdTree::Neighbor& b) {
  if (a.distance_sq != b.distance_sq) return a.distance_sq < b.distance_sq;
  return a.index < b.index;
}

}  // namespace

KdTree::KdTree(linalg::Matrix points) : points_(std::move(points)) {
  SAP_REQUIRE(points_.rows() > 0 && points_.cols() > 0, "KdTree: empty point set");
  rebuild();
}

KdTree::KdTree(const KdTree& base, const linalg::Matrix& more)
    : order_(base.order_), nodes_(base.nodes_), root_(base.root_), tail_(base.tail_) {
  SAP_REQUIRE(more.rows() == 0 || more.cols() == base.dims(),
              "KdTree: dimension mismatch");
  points_ = linalg::Matrix::vcat(base.points_, more);
  for (std::size_t i = 0; i < more.rows(); ++i) tail_.push_back(base.points_.rows() + i);
  maybe_rebuild();
}

void KdTree::rebuild() {
  order_.resize(points_.rows());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  nodes_.clear();
  nodes_.reserve(2 * points_.rows() / kLeafSize + 4);
  root_ = build(0, points_.rows(), 0);
  tail_.clear();
}

void KdTree::insert(const linalg::Matrix& more) {
  if (more.rows() == 0) return;
  SAP_REQUIRE(more.cols() == dims(), "KdTree::insert: dimension mismatch");
  const std::size_t first_new = points_.rows();
  points_ = linalg::Matrix::vcat(points_, more);
  for (std::size_t i = 0; i < more.rows(); ++i) tail_.push_back(first_new + i);
  maybe_rebuild();
}

void KdTree::maybe_rebuild() {
  // Amortization: once the brute tail outgrows half the indexed prefix, pay
  // one full rebuild and return queries to pure branch-and-bound.
  const std::size_t indexed = points_.rows() - tail_.size();
  if (tail_.size() * 2 > indexed) rebuild();
}

int KdTree::build(std::size_t begin, std::size_t end, std::size_t depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  const std::size_t count = end - begin;
  if (count <= kLeafSize) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  // Split on the dimension with the largest spread in this range (more
  // robust than cycling dimensions on skewed data).
  std::size_t best_dim = depth % points_.cols();
  double best_spread = -1.0;
  for (std::size_t dim = 0; dim < points_.cols(); ++dim) {
    double lo = points_(order_[begin], dim);
    double hi = lo;
    for (std::size_t i = begin + 1; i < end; ++i) {
      const double v = points_(order_[i], dim);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = dim;
    }
  }
  if (best_spread <= 0.0) {  // all points identical in range: make a leaf
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  }

  const std::size_t mid = begin + count / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     return points_(a, best_dim) < points_(b, best_dim);
                   });
  node.split_dim = best_dim;
  node.split_value = points_(order_[mid], best_dim);

  const int self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);  // placeholder; children filled below
  const int left = build(begin, mid, depth + 1);
  const int right = build(mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

void KdTree::consider(std::size_t row, std::span<const double> query, std::size_t k,
                      std::vector<Neighbor>& heap) const {
  auto point = points_.row(row);
  double dist_sq = 0.0;
  for (std::size_t f = 0; f < point.size(); ++f) {
    const double diff = point[f] - query[f];
    dist_sq += diff * diff;
  }
  const Neighbor candidate{row, dist_sq};
  if (heap.size() < k) {
    heap.push_back(candidate);
    std::push_heap(heap.begin(), heap.end(), neighbor_less);
  } else if (neighbor_less(candidate, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), neighbor_less);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), neighbor_less);
  }
}

void KdTree::search(int node_index, std::span<const double> query, std::size_t k,
                    std::vector<Neighbor>& heap) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];

  if (node.left < 0) {  // leaf
    for (std::size_t i = node.begin; i < node.end; ++i) consider(order_[i], query, k, heap);
    return;
  }

  const double delta = query[node.split_dim] - node.split_value;
  const int near = (delta < 0.0) ? node.left : node.right;
  const int far = (delta < 0.0) ? node.right : node.left;
  search(near, query, k, heap);
  // Prune the far side only when the splitting plane is provably farther
  // than the current worst neighbor (or the heap is not yet full).
  if (heap.size() < k || delta * delta <= heap.front().distance_sq) {
    search(far, query, k, heap);
  }
}

std::vector<KdTree::Neighbor> KdTree::nearest(std::span<const double> query,
                                              std::size_t k) const {
  SAP_REQUIRE(query.size() == dims(), "KdTree::nearest: dimension mismatch");
  SAP_REQUIRE(k >= 1, "KdTree::nearest: k must be >= 1");
  k = std::min(k, size());
  std::vector<Neighbor> heap;
  heap.reserve(k);
  search(root_, query, k, heap);
  for (const std::size_t row : tail_) consider(row, query, k, heap);
  std::sort_heap(heap.begin(), heap.end(), neighbor_less);
  return heap;
}

}  // namespace sap::ml
