// Support Vector Machine with RBF kernel, trained by SMO
// (simplified Platt sequential minimal optimization), with a
// one-vs-one wrapper for multiclass problems.
#pragma once

#include "classify/classifier.hpp"
#include "rng/rng.hpp"

namespace sap::ml {

struct SvmOptions {
  double c = 4.0;            ///< soft-margin penalty
  /// RBF width; <= 0 selects the "scale" heuristic 1 / (d * mean col var).
  double gamma = 0.0;
  double tolerance = 1e-3;   ///< KKT violation tolerance
  std::size_t max_passes = 8;    ///< consecutive violation-free sweeps to stop
  std::size_t max_iterations = 4000;  ///< hard cap on full sweeps
  std::uint64_t seed = 0x5eed;   ///< SMO partner-selection randomness
};

/// Binary soft-margin SVM; labels are the two distinct values seen in fit().
class BinarySvm {
 public:
  explicit BinarySvm(SvmOptions opts = {});

  /// Train on records x (N x d) with labels in {-1, +1}.
  void fit(const linalg::Matrix& x, const std::vector<int>& y);

  /// Decision value f(record); classify by sign.
  [[nodiscard]] double decision(std::span<const double> record) const;

  [[nodiscard]] bool trained() const noexcept { return !alpha_y_.empty(); }
  [[nodiscard]] std::size_t support_vector_count() const noexcept { return sv_.rows(); }
  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  SvmOptions opts_;
  double gamma_ = 0.0;
  double bias_ = 0.0;
  linalg::Matrix sv_;            // support vectors (rows)
  std::vector<double> alpha_y_;  // alpha_i * y_i per support vector
};

/// One-vs-one multiclass SVM implementing the Classifier interface.
class Svm final : public Classifier {
 public:
  explicit Svm(SvmOptions opts = {});

  void fit(const data::Dataset& train) override;
  [[nodiscard]] int predict(std::span<const double> record) const override;
  [[nodiscard]] bool trained() const override { return !machines_.empty(); }

 private:
  SvmOptions opts_;
  std::vector<int> classes_;
  struct Pair {
    int positive;
    int negative;
    BinarySvm machine;
  };
  std::vector<Pair> machines_;
};

}  // namespace sap::ml
