#include "classify/svm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/stats.hpp"

namespace sap::ml {
namespace {

double rbf(std::span<const double> a, std::span<const double> b, double gamma) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::exp(-gamma * acc);
}

}  // namespace

BinarySvm::BinarySvm(SvmOptions opts) : opts_(opts) {
  SAP_REQUIRE(opts_.c > 0.0, "BinarySvm: C must be positive");
  SAP_REQUIRE(opts_.tolerance > 0.0, "BinarySvm: tolerance must be positive");
}

void BinarySvm::fit(const linalg::Matrix& x, const std::vector<int>& y) {
  const std::size_t n = x.rows();
  SAP_REQUIRE(n >= 2, "BinarySvm::fit: need at least two records");
  SAP_REQUIRE(y.size() == n, "BinarySvm::fit: label count mismatch");
  for (int label : y)
    SAP_REQUIRE(label == 1 || label == -1, "BinarySvm::fit: labels must be -1/+1");

  // gamma heuristic: 1 / (d * mean feature variance) — scale-free default.
  gamma_ = opts_.gamma;
  if (gamma_ <= 0.0) {
    const linalg::Vector sd = linalg::col_stddev(x);
    double var = 0.0;
    for (double s : sd) var += s * s;
    var /= static_cast<double>(sd.size());
    gamma_ = 1.0 / (static_cast<double>(x.cols()) * std::max(var, 1e-9));
  }

  // Cached Gram matrix: all pairwise kernels (n is bounded by the dataset
  // sizes in this library; 2k records -> 32 MB, acceptable).
  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rbf(x.row(i), x.row(j), gamma_);
      k(i, j) = v;
      k(j, i) = v;
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  rng::Engine eng(opts_.seed);

  auto f = [&](std::size_t i) {
    double acc = b;
    const auto krow = k.row(i);
    for (std::size_t t = 0; t < n; ++t)
      if (alpha[t] != 0.0) acc += alpha[t] * y[t] * krow[t];
    return acc;
  };

  const double c = opts_.c;
  const double tol = opts_.tolerance;
  std::size_t passes = 0;
  std::size_t iter = 0;
  while (passes < opts_.max_passes && iter < opts_.max_iterations) {
    ++iter;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = f(i) - y[i];
      const bool violates = (y[i] * ei < -tol && alpha[i] < c) ||
                            (y[i] * ei > tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = eng.uniform_index(n - 1);
      if (j >= i) ++j;
      const double ej = f(j) - y[j];

      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
      if (eta >= 0.0) continue;

      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-6) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - ei - y[i] * (ai - ai_old) * k(i, i) -
                        y[j] * (aj - aj_old) * k(i, j);
      const double b2 = b - ej - y[i] * (ai - ai_old) * k(i, j) -
                        y[j] * (aj - aj_old) * k(j, j);
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }

  // Retain support vectors only.
  std::vector<std::size_t> sv_idx;
  for (std::size_t i = 0; i < n; ++i)
    if (alpha[i] > 1e-8) sv_idx.push_back(i);
  // Degenerate but legal outcome (perfectly separated by bias alone):
  // keep one record so decision() stays defined.
  if (sv_idx.empty()) sv_idx.push_back(0);

  sv_ = linalg::Matrix(sv_idx.size(), x.cols());
  alpha_y_.resize(sv_idx.size());
  for (std::size_t t = 0; t < sv_idx.size(); ++t) {
    sv_.set_row(t, x.row(sv_idx[t]));
    alpha_y_[t] = alpha[sv_idx[t]] * y[sv_idx[t]];
  }
  bias_ = b;
}

double BinarySvm::decision(std::span<const double> record) const {
  SAP_REQUIRE(trained(), "BinarySvm::decision before fit");
  SAP_REQUIRE(record.size() == sv_.cols(), "BinarySvm::decision: dimension mismatch");
  double acc = bias_;
  for (std::size_t t = 0; t < sv_.rows(); ++t)
    acc += alpha_y_[t] * rbf(sv_.row(t), record, gamma_);
  return acc;
}

Svm::Svm(SvmOptions opts) : opts_(opts) {}

void Svm::fit(const data::Dataset& train) {
  SAP_REQUIRE(train.size() >= 2, "Svm::fit: need at least two records");
  classes_ = train.classes();
  SAP_REQUIRE(classes_.size() >= 2, "Svm::fit: need at least two classes");
  machines_.clear();

  // One binary machine per unordered class pair (one-vs-one).
  for (std::size_t a = 0; a < classes_.size(); ++a) {
    for (std::size_t b2 = a + 1; b2 < classes_.size(); ++b2) {
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i < train.size(); ++i)
        if (train.label(i) == classes_[a] || train.label(i) == classes_[b2])
          idx.push_back(i);
      linalg::Matrix x(idx.size(), train.dims());
      std::vector<int> y(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) {
        x.set_row(i, train.record(idx[i]));
        y[i] = (train.label(idx[i]) == classes_[a]) ? 1 : -1;
      }
      Pair pair{classes_[a], classes_[b2], BinarySvm(opts_)};
      pair.machine.fit(x, y);
      machines_.push_back(std::move(pair));
    }
  }
}

int Svm::predict(std::span<const double> record) const {
  SAP_REQUIRE(trained(), "Svm::predict before fit");
  // Vote across pairwise machines; break ties by total decision magnitude.
  std::vector<std::size_t> votes(classes_.size(), 0);
  std::vector<double> strength(classes_.size(), 0.0);
  for (const auto& pair : machines_) {
    const double dec = pair.machine.decision(record);
    const int winner = dec >= 0.0 ? pair.positive : pair.negative;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      if (classes_[c] == winner) {
        ++votes[c];
        strength[c] += std::abs(dec);
        break;
      }
    }
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < classes_.size(); ++c) {
    if (votes[c] > votes[best] ||
        (votes[c] == votes[best] && strength[c] > strength[best]))
      best = c;
  }
  return classes_[best];
}

}  // namespace sap::ml
