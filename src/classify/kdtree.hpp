// kd-tree for exact k-nearest-neighbor queries.
//
// Median-split build (O(N log N)), branch-and-bound search with a bounded
// max-heap. Results are EXACTLY the brute-force neighbor set, including the
// deterministic (distance, index) tie-break — the property tests in
// classify_test assert bit-for-bit agreement, which is what lets Knn switch
// between backends freely.
//
// Streaming ingest: insert() appends points without a full rebuild. New
// points live in a brute-scanned *tail* that every query merges with the
// tree search through the same bounded heap (exactness is preserved: the
// tail scan uses the identical (distance, index) tie-break). When the tail
// outgrows half the indexed prefix the whole structure is rebuilt once —
// amortized O(log N) structure cost per inserted point, and queries never
// degrade past 1.5x the point count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace sap::ml {

class KdTree {
 public:
  /// Build over an N x d point matrix (rows = points; copied in).
  explicit KdTree(linalg::Matrix points);

  /// Extension copy: `base`'s structure over (base points ⧺ more) with
  /// `more` joining the brute tail — one point-matrix copy instead of
  /// copy-then-insert. Equivalent to copying base and calling insert(more).
  KdTree(const KdTree& base, const linalg::Matrix& more);

  [[nodiscard]] std::size_t size() const noexcept { return points_.rows(); }
  [[nodiscard]] std::size_t dims() const noexcept { return points_.cols(); }

  struct Neighbor {
    std::size_t index;     ///< row in the original matrix
    double distance_sq;    ///< squared Euclidean distance
  };

  /// The k nearest points to `query`, sorted ascending by
  /// (distance_sq, index). k is clamped to size().
  [[nodiscard]] std::vector<Neighbor> nearest(std::span<const double> query,
                                              std::size_t k) const;

  /// Append `more` (rows = points, dims must match) to the point set. The
  /// new rows receive indices size()..size()+more.rows()-1 and join the
  /// brute-scanned tail; the tree is rebuilt over everything once the tail
  /// exceeds half the indexed prefix. Query results after insert() are
  /// exactly those of a tree freshly built over the concatenated points.
  void insert(const linalg::Matrix& more);

  /// Points currently answered by the brute-scanned tail (observability for
  /// tests and the rebuild heuristic).
  [[nodiscard]] std::size_t tail_size() const noexcept { return tail_.size(); }

 private:
  struct Node {
    std::size_t begin = 0;   ///< range into order_
    std::size_t end = 0;
    std::size_t split_dim = 0;
    double split_value = 0.0;
    int left = -1;   ///< child node indices; -1 = leaf
    int right = -1;
  };

  int build(std::size_t begin, std::size_t end, std::size_t depth);
  void rebuild();
  void maybe_rebuild();
  void consider(std::size_t row, std::span<const double> query, std::size_t k,
                std::vector<Neighbor>& heap) const;
  void search(int node, std::span<const double> query, std::size_t k,
              std::vector<Neighbor>& heap) const;

  static constexpr std::size_t kLeafSize = 16;

  linalg::Matrix points_;
  std::vector<std::size_t> order_;  ///< permutation of the indexed row prefix
  std::vector<Node> nodes_;
  int root_ = -1;
  std::vector<std::size_t> tail_;   ///< rows appended since the last (re)build
};

}  // namespace sap::ml
