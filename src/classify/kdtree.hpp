// kd-tree for exact k-nearest-neighbor queries.
//
// Median-split build (O(N log N)), branch-and-bound search with a bounded
// max-heap. Results are EXACTLY the brute-force neighbor set, including the
// deterministic (distance, index) tie-break — the property tests in
// classify_test assert bit-for-bit agreement, which is what lets Knn switch
// between backends freely.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace sap::ml {

class KdTree {
 public:
  /// Build over an N x d point matrix (rows = points; copied in).
  explicit KdTree(linalg::Matrix points);

  [[nodiscard]] std::size_t size() const noexcept { return points_.rows(); }
  [[nodiscard]] std::size_t dims() const noexcept { return points_.cols(); }

  struct Neighbor {
    std::size_t index;     ///< row in the original matrix
    double distance_sq;    ///< squared Euclidean distance
  };

  /// The k nearest points to `query`, sorted ascending by
  /// (distance_sq, index). k is clamped to size().
  [[nodiscard]] std::vector<Neighbor> nearest(std::span<const double> query,
                                              std::size_t k) const;

 private:
  struct Node {
    std::size_t begin = 0;   ///< range into order_
    std::size_t end = 0;
    std::size_t split_dim = 0;
    double split_value = 0.0;
    int left = -1;   ///< child node indices; -1 = leaf
    int right = -1;
  };

  int build(std::size_t begin, std::size_t end, std::size_t depth);
  void search(int node, std::span<const double> query, std::size_t k,
              std::vector<Neighbor>& heap) const;

  static constexpr std::size_t kLeafSize = 16;

  linalg::Matrix points_;
  std::vector<std::size_t> order_;  ///< permutation of row indices
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace sap::ml
