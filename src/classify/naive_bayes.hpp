// Gaussian Naive Bayes — a deliberately rotation-SENSITIVE classifier.
//
// The paper's framework only claims model-accuracy preservation for
// classifiers invariant to distance-preserving transforms (KNN, kernel SVMs,
// linear models). Naive Bayes assumes axis-aligned conditional independence,
// which an arbitrary rotation destroys; this class exists to demonstrate and
// test that boundary (see ablation_classifier_invariance).
#pragma once

#include "classify/classifier.hpp"

namespace sap::ml {

class GaussianNaiveBayes final : public Classifier {
 public:
  /// var_smoothing: fraction of the largest feature variance added to every
  /// per-class variance for numeric stability (sklearn-style).
  explicit GaussianNaiveBayes(double var_smoothing = 1e-9);

  void fit(const data::Dataset& train) override;
  [[nodiscard]] int predict(std::span<const double> record) const override;
  [[nodiscard]] bool trained() const override { return !classes_.empty(); }

 private:
  double var_smoothing_;
  std::vector<int> classes_;
  std::vector<double> log_priors_;
  linalg::Matrix means_;      // classes x d
  linalg::Matrix variances_;  // classes x d
};

}  // namespace sap::ml
