// Gaussian Naive Bayes — a deliberately rotation-SENSITIVE classifier.
//
// The paper's framework only claims model-accuracy preservation for
// classifiers invariant to distance-preserving transforms (KNN, kernel SVMs,
// linear models). Naive Bayes assumes axis-aligned conditional independence,
// which an arbitrary rotation destroys; this class exists to demonstrate and
// test that boundary (see ablation_classifier_invariance).
//
// The model is fitted from per-class sufficient statistics (count, sum,
// sum-of-squares per feature) accumulated in record order, which makes it
// incrementally extensible: partial_fit() continues the accumulation over a
// new batch and re-derives the model, producing a classifier BIT-IDENTICAL
// to a full refit on the concatenated data (the accumulation performs the
// exact same sequence of floating-point additions per class either way).
#pragma once

#include <map>

#include "classify/classifier.hpp"

namespace sap::ml {

/// Per-class sufficient statistics of one pool segment, exported so a
/// sharded deployment can merge NB partials exactly (jobs.hpp
/// merge_partials; DESIGN.md §11). The fields mirror ClassStats below:
/// `sum`/`sumsq` are chains of (x - shift) accumulated in record order.
struct NbClassStats {
  int label = 0;
  std::size_t count = 0;
  std::vector<double> shift;
  std::vector<double> sum;
  std::vector<double> sumsq;
};

class GaussianNaiveBayes final : public Classifier {
 public:
  /// var_smoothing: fraction of the largest feature variance added to every
  /// per-class variance for numeric stability (sklearn-style).
  explicit GaussianNaiveBayes(double var_smoothing = 1e-9);

  void fit(const data::Dataset& train) override;
  [[nodiscard]] int predict(std::span<const double> record) const override;
  [[nodiscard]] bool trained() const override { return !classes_.empty(); }

  [[nodiscard]] bool supports_partial_fit() const override { return true; }
  /// Incremental extension: equivalent — bit for bit — to fitting a fresh
  /// model on (previously fitted records) ⧺ batch. New class labels in the
  /// batch are admitted.
  [[nodiscard]] std::unique_ptr<Classifier> partial_fit(
      const data::Dataset& batch) const override;

  // ---- sufficient-statistics merge (sharded serving) ---------------------

  /// Accumulate the per-class chains over `records` exactly as fit() would
  /// (same floating-point operation sequence per class), WITHOUT fit()'s
  /// trainability requirements — a pool segment may hold a single class or
  /// a single record. Classes come back in ascending label order.
  [[nodiscard]] static std::vector<NbClassStats> collect_stats(
      const data::Dataset& records);

  /// Build a fitted model by folding per-segment statistics in the GIVEN
  /// order (callers pass canonical nonce order). The first segment holding
  /// a class adopts its chain verbatim; each later segment is rebased onto
  /// the adopted shift (Σ(x−s1) = Σ(x−s2) + n·(s2−s1), and the matching
  /// second-moment identity) and added with one deterministic fold step.
  /// A single segment therefore reproduces fit() on the same records BIT
  /// FOR BIT, and any multi-segment fold is a pure function of the segment
  /// sequence — independent of which shard computed which segment. Throws
  /// sap::Error unless the fold covers >= 2 records in >= 2 classes.
  [[nodiscard]] static GaussianNaiveBayes merge_stats(
      const std::vector<std::vector<NbClassStats>>& segments, std::size_t dims,
      double var_smoothing);

 private:
  /// Per-class running sufficient statistics, accumulated in record order.
  /// Sums are taken of (x - shift) with shift fixed at the class's first
  /// record, so the E[x²]−E[x]² variance derivation never cancels
  /// catastrophically on large-mean/low-spread features (the shifted values
  /// live at spread scale).
  struct ClassStats {
    std::size_t count = 0;
    std::vector<double> shift;  // per feature: first record seen
    std::vector<double> sum;    // per feature: sum of (x - shift)
    std::vector<double> sumsq;  // per feature: sum of (x - shift)^2
  };

  void accumulate(const data::Dataset& records);
  /// Derive classes_/log_priors_/means_/variances_ from stats_.
  void finalize();

  double var_smoothing_;
  std::size_t dims_ = 0;
  std::size_t total_ = 0;
  std::map<int, ClassStats> stats_;  // keyed by label: classes_ stays sorted

  std::vector<int> classes_;
  std::vector<double> log_priors_;
  linalg::Matrix means_;      // classes x d
  linalg::Matrix variances_;  // classes x d
};

}  // namespace sap::ml
