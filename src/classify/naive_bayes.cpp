#include "classify/naive_bayes.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"

namespace sap::ml {

GaussianNaiveBayes::GaussianNaiveBayes(double var_smoothing)
    : var_smoothing_(var_smoothing) {
  SAP_REQUIRE(var_smoothing >= 0.0, "GaussianNaiveBayes: smoothing must be non-negative");
}

void GaussianNaiveBayes::accumulate(const data::Dataset& records) {
  for (std::size_t r = 0; r < records.size(); ++r) {
    auto& stats = stats_[records.label(r)];
    auto rec = records.record(r);
    if (stats.sum.empty()) {
      stats.shift.assign(rec.begin(), rec.end());
      stats.sum.assign(dims_, 0.0);
      stats.sumsq.assign(dims_, 0.0);
    }
    ++stats.count;
    for (std::size_t f = 0; f < dims_; ++f) {
      const double centered = rec[f] - stats.shift[f];
      stats.sum[f] += centered;
      stats.sumsq[f] += centered * centered;
    }
  }
  total_ += records.size();
}

void GaussianNaiveBayes::finalize() {
  const std::size_t c = stats_.size();
  classes_.clear();
  classes_.reserve(c);
  log_priors_.assign(c, 0.0);
  means_ = linalg::Matrix(c, dims_, 0.0);
  variances_ = linalg::Matrix(c, dims_, 0.0);

  double max_var = 0.0;
  std::size_t ci = 0;
  for (const auto& [label, stats] : stats_) {  // std::map: ascending labels
    SAP_REQUIRE(stats.count > 0, "GaussianNaiveBayes: empty class");
    classes_.push_back(label);
    log_priors_[ci] =
        std::log(static_cast<double>(stats.count) / static_cast<double>(total_));
    const auto n = static_cast<double>(stats.count);
    auto mrow = means_.row(ci);
    auto vrow = variances_.row(ci);
    for (std::size_t f = 0; f < dims_; ++f) {
      // Shifted moments (see ClassStats): variance is shift-invariant and
      // the centered values are spread-scale, so the clamp only absorbs
      // roundoff on truly (near-)constant features — the smoothing term
      // below restores a usable variance there.
      const double centered_mean = stats.sum[f] / n;
      mrow[f] = stats.shift[f] + centered_mean;
      vrow[f] = std::max(stats.sumsq[f] / n - centered_mean * centered_mean, 0.0);
      max_var = std::max(max_var, vrow[f]);
    }
    ++ci;
  }
  const double eps = std::max(var_smoothing_ * max_var, 1e-12);
  for (auto& v : variances_.data()) v += eps;
}

void GaussianNaiveBayes::fit(const data::Dataset& train) {
  SAP_REQUIRE(train.size() >= 2, "GaussianNaiveBayes::fit: need at least two records");
  dims_ = train.dims();
  total_ = 0;
  stats_.clear();
  accumulate(train);
  SAP_REQUIRE(stats_.size() >= 2, "GaussianNaiveBayes::fit: need at least two classes");
  finalize();
}

std::unique_ptr<Classifier> GaussianNaiveBayes::partial_fit(
    const data::Dataset& batch) const {
  SAP_REQUIRE(trained(), "GaussianNaiveBayes::partial_fit before fit");
  SAP_REQUIRE(batch.size() >= 1, "GaussianNaiveBayes::partial_fit: empty batch");
  SAP_REQUIRE(batch.dims() == dims_,
              "GaussianNaiveBayes::partial_fit: dimension mismatch");
  auto extended = std::make_unique<GaussianNaiveBayes>(*this);
  extended->accumulate(batch);
  extended->finalize();
  return extended;
}

std::vector<NbClassStats> GaussianNaiveBayes::collect_stats(const data::Dataset& records) {
  SAP_REQUIRE(records.size() >= 1, "GaussianNaiveBayes::collect_stats: empty segment");
  // Reuse the exact accumulate() loop so the chains are the same FP op
  // sequence fit() performs — the merge's bit-identity rests on this.
  GaussianNaiveBayes acc;
  acc.dims_ = records.dims();
  acc.accumulate(records);
  std::vector<NbClassStats> out;
  out.reserve(acc.stats_.size());
  for (const auto& [label, stats] : acc.stats_)  // std::map: ascending labels
    out.push_back({label, stats.count, stats.shift, stats.sum, stats.sumsq});
  return out;
}

GaussianNaiveBayes GaussianNaiveBayes::merge_stats(
    const std::vector<std::vector<NbClassStats>>& segments, std::size_t dims,
    double var_smoothing) {
  GaussianNaiveBayes merged(var_smoothing);
  merged.dims_ = dims;
  for (const auto& segment : segments) {
    for (const auto& cls : segment) {
      SAP_REQUIRE(cls.count > 0 && cls.shift.size() == dims && cls.sum.size() == dims &&
                      cls.sumsq.size() == dims,
                  "GaussianNaiveBayes::merge_stats: malformed segment statistics");
      auto& base = merged.stats_[cls.label];
      if (base.sum.empty()) {
        // First segment holding this class: adopt the chain verbatim.
        base.count = cls.count;
        base.shift = cls.shift;
        base.sum = cls.sum;
        base.sumsq = cls.sumsq;
      } else {
        // Rebase the segment's shifted moments onto the adopted shift, then
        // fold with one addition per feature — deterministic in the segment
        // order the caller fixed.
        base.count += cls.count;
        const auto n = static_cast<double>(cls.count);
        for (std::size_t f = 0; f < dims; ++f) {
          const double delta = cls.shift[f] - base.shift[f];
          base.sum[f] += cls.sum[f] + n * delta;
          base.sumsq[f] += cls.sumsq[f] + 2.0 * delta * cls.sum[f] + n * delta * delta;
        }
      }
      merged.total_ += cls.count;
    }
  }
  SAP_REQUIRE(merged.total_ >= 2, "GaussianNaiveBayes::merge_stats: need at least two records");
  SAP_REQUIRE(merged.stats_.size() >= 2,
              "GaussianNaiveBayes::merge_stats: need at least two classes");
  merged.finalize();
  return merged;
}

int GaussianNaiveBayes::predict(std::span<const double> record) const {
  SAP_REQUIRE(trained(), "GaussianNaiveBayes::predict before fit");
  SAP_REQUIRE(record.size() == means_.cols(), "GaussianNaiveBayes::predict: dimension mismatch");

  double best_log_posterior = -std::numeric_limits<double>::infinity();
  int best_label = classes_.front();
  for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
    double lp = log_priors_[ci];
    auto mrow = means_.row(ci);
    auto vrow = variances_.row(ci);
    for (std::size_t f = 0; f < record.size(); ++f) {
      const double diff = record[f] - mrow[f];
      lp += -0.5 * (std::log(2.0 * std::numbers::pi * vrow[f]) + diff * diff / vrow[f]);
    }
    if (lp > best_log_posterior) {
      best_log_posterior = lp;
      best_label = classes_[ci];
    }
  }
  return best_label;
}

}  // namespace sap::ml
