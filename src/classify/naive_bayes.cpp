#include "classify/naive_bayes.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"

namespace sap::ml {

GaussianNaiveBayes::GaussianNaiveBayes(double var_smoothing)
    : var_smoothing_(var_smoothing) {
  SAP_REQUIRE(var_smoothing >= 0.0, "GaussianNaiveBayes: smoothing must be non-negative");
}

void GaussianNaiveBayes::fit(const data::Dataset& train) {
  SAP_REQUIRE(train.size() >= 2, "GaussianNaiveBayes::fit: need at least two records");
  classes_ = train.classes();
  SAP_REQUIRE(classes_.size() >= 2, "GaussianNaiveBayes::fit: need at least two classes");
  const std::size_t d = train.dims();
  const std::size_t c = classes_.size();

  means_ = linalg::Matrix(c, d, 0.0);
  variances_ = linalg::Matrix(c, d, 0.0);
  log_priors_.assign(c, 0.0);
  std::vector<std::size_t> counts(c, 0);

  auto class_index = [&](int label) {
    for (std::size_t i = 0; i < c; ++i)
      if (classes_[i] == label) return i;
    SAP_FAIL("GaussianNaiveBayes: label vanished between classes() and fit");
  };

  for (std::size_t r = 0; r < train.size(); ++r) {
    const std::size_t ci = class_index(train.label(r));
    ++counts[ci];
    auto rec = train.record(r);
    auto mrow = means_.row(ci);
    for (std::size_t f = 0; f < d; ++f) mrow[f] += rec[f];
  }
  for (std::size_t ci = 0; ci < c; ++ci) {
    SAP_REQUIRE(counts[ci] > 0, "GaussianNaiveBayes: empty class");
    auto mrow = means_.row(ci);
    for (auto& v : mrow) v /= static_cast<double>(counts[ci]);
    log_priors_[ci] = std::log(static_cast<double>(counts[ci]) /
                               static_cast<double>(train.size()));
  }
  for (std::size_t r = 0; r < train.size(); ++r) {
    const std::size_t ci = class_index(train.label(r));
    auto rec = train.record(r);
    auto mrow = means_.row(ci);
    auto vrow = variances_.row(ci);
    for (std::size_t f = 0; f < d; ++f) {
      const double diff = rec[f] - mrow[f];
      vrow[f] += diff * diff;
    }
  }
  // Global smoothing term: keeps degenerate (constant) features usable.
  double max_var = 0.0;
  for (std::size_t ci = 0; ci < c; ++ci) {
    auto vrow = variances_.row(ci);
    for (std::size_t f = 0; f < d; ++f) {
      vrow[f] /= static_cast<double>(counts[ci]);
      max_var = std::max(max_var, vrow[f]);
    }
  }
  const double eps = std::max(var_smoothing_ * max_var, 1e-12);
  for (auto& v : variances_.data()) v += eps;
}

int GaussianNaiveBayes::predict(std::span<const double> record) const {
  SAP_REQUIRE(trained(), "GaussianNaiveBayes::predict before fit");
  SAP_REQUIRE(record.size() == means_.cols(), "GaussianNaiveBayes::predict: dimension mismatch");

  double best_log_posterior = -std::numeric_limits<double>::infinity();
  int best_label = classes_.front();
  for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
    double lp = log_priors_[ci];
    auto mrow = means_.row(ci);
    auto vrow = variances_.row(ci);
    for (std::size_t f = 0; f < record.size(); ++f) {
      const double diff = record[f] - mrow[f];
      lp += -0.5 * (std::log(2.0 * std::numbers::pi * vrow[f]) + diff * diff / vrow[f]);
    }
    if (lp > best_log_posterior) {
      best_log_posterior = lp;
      best_label = classes_[ci];
    }
  }
  return best_label;
}

}  // namespace sap::ml
