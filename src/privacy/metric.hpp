// Multi-column privacy metric (papers [1, 2], used by PODC'07 §2).
//
// For an original d x N dataset X and an adversary's reconstruction X_hat,
// the privacy of dimension j is the normalized deviation of the estimate:
//
//   p_j = std(X_j - X_hat_j) / std(X_j)
//
// i.e. how many "column standard deviations" the attacker's guess is off by
// (0 = exact disclosure, sqrt(2) ~ uninformed guessing with matched moments,
// larger = actively misleading). The *minimum privacy guarantee* over the
// dataset is rho = min_j p_j: privacy is only as strong as the most exposed
// column. This is the quantity the perturbation optimizer maximizes and the
// protocol's risk formulas consume.
#pragma once

#include "linalg/matrix.hpp"

namespace sap::privacy {

/// Per-column privacy p_j of a reconstruction (inputs are d x N, column =
/// record, row = dimension). Constant original rows yield +inf privacy
/// unless exactly reconstructed (then 0).
linalg::Vector column_privacy(const linalg::Matrix& original,
                              const linalg::Matrix& reconstruction);

/// Same, with std(X_j) precomputed by the caller (must equal
/// row_stddev(original)). The attack-suite evaluator scores hundreds of
/// reconstructions of one fixed original per optimizer run; hoisting the
/// original's row stats out of the loop is the point of this overload.
linalg::Vector column_privacy(const linalg::Matrix& original,
                              const linalg::Matrix& reconstruction,
                              const linalg::Vector& sd_orig);

/// rho = min_j p_j.
double min_privacy_guarantee(const linalg::Matrix& original,
                             const linalg::Matrix& reconstruction);

}  // namespace sap::privacy
