#include "privacy/attacks.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/decompose.hpp"
#include "linalg/orthogonal.hpp"
#include "linalg/stats.hpp"

namespace sap::privacy {

Reconstruction NaiveEstimationAttack::reconstruct(const AttackContext& ctx,
                                                  rng::Engine& /*eng*/) const {
  SAP_REQUIRE(ctx.perturbed != nullptr, "naive attack: missing perturbed data");
  // The candidate pool is simply the perturbed dimensions themselves; the
  // evaluator performs the attacker-favorable per-column alignment and
  // moment rescaling. Viewed, not copied — this runs once per optimizer
  // candidate evaluation.
  Reconstruction rec;
  rec.kind = Reconstruction::Kind::kCandidatePool;
  rec.view = ctx.perturbed;
  return rec;
}

Reconstruction IcaReconstructionAttack::reconstruct(const AttackContext& ctx,
                                                    rng::Engine& eng) const {
  SAP_REQUIRE(ctx.perturbed != nullptr, "ica attack: missing perturbed data");
  FastIcaResult ica = fast_ica(*ctx.perturbed, opts_, eng);
  return {Reconstruction::Kind::kCandidatePool, std::move(ica.sources)};
}

Reconstruction KnownInputAttack::reconstruct(const AttackContext& ctx,
                                             rng::Engine& /*eng*/) const {
  SAP_REQUIRE(ctx.perturbed != nullptr, "known-input attack: missing perturbed data");
  const linalg::Matrix& y = *ctx.perturbed;
  const std::size_t d = y.rows();
  const std::size_t m = ctx.known_indices.size();
  SAP_REQUIRE(m >= 2, "known-input attack: need at least two known records");
  SAP_REQUIRE(ctx.known_originals.rows() == d && ctx.known_originals.cols() == m,
              "known-input attack: known_originals must be d x m");

  // Gather the perturbed images of the known records (strided row pass, no
  // per-column temporaries; gather_cols bounds-checks the indices).
  const linalg::Matrix y_known = linalg::gather_cols(y, ctx.known_indices);

  // Center both point sets; Procrustes gives the orthogonal part, the
  // centroid difference gives the translation.
  const linalg::Vector cx = linalg::row_means(ctx.known_originals);
  const linalg::Vector cy = linalg::row_means(y_known);
  linalg::Matrix x0 = ctx.known_originals;
  linalg::Matrix y0 = y_known;
  for (std::size_t i = 0; i < d; ++i) {
    auto xr = x0.row(i);
    for (auto& v : xr) v -= cx[i];
    auto yr = y0.row(i);
    for (auto& v : yr) v -= cy[i];
  }
  const linalg::Matrix r_hat = linalg::procrustes_rotation(x0, y0);

  // x_hat = R^T (y - t_hat), with t_hat = cy - R cx.
  const linalg::Vector r_cx = r_hat.matvec(cx);
  linalg::Vector t_hat(d);
  for (std::size_t i = 0; i < d; ++i) t_hat[i] = cy[i] - r_cx[i];

  linalg::Matrix shifted = y;
  for (std::size_t i = 0; i < d; ++i) {
    auto row = shifted.row(i);
    for (auto& v : row) v -= t_hat[i];
  }
  return {Reconstruction::Kind::kAligned, r_hat.transpose() * shifted};
}

Reconstruction SpectralAttack::reconstruct(const AttackContext& ctx,
                                           rng::Engine& /*eng*/) const {
  SAP_REQUIRE(ctx.perturbed != nullptr, "spectral attack: missing perturbed data");
  const linalg::Matrix& y = *ctx.perturbed;
  SAP_REQUIRE(y.cols() >= 4, "spectral attack: need at least four records");
  const std::size_t d = y.rows();

  // Center Y and project onto the eigenvectors of its covariance. Since
  // cov(Y) = R cov(X) R^T, these projections coincide (up to sign and the
  // ordering by eigenvalue) with the principal-component projections of X;
  // the candidate-pool evaluator grants the attacker the alignment.
  linalg::Matrix centered = y;
  const linalg::Vector mean = linalg::row_means(centered);
  for (std::size_t i = 0; i < d; ++i) {
    auto row = centered.row(i);
    for (auto& v : row) v -= mean[i];
  }
  const linalg::Matrix cov = linalg::covariance_cols(centered);
  const auto eig = linalg::sym_eigen(cov);
  return {Reconstruction::Kind::kCandidatePool, eig.vectors.transpose() * centered};
}

}  // namespace sap::privacy
