// FastICA (Hyvärinen's fixed-point algorithm, symmetric orthogonalization,
// tanh nonlinearity) — the engine of the ICA reconstruction attack.
//
// Rotation perturbation preserves the mixing structure of the data: if the
// original columns are (nearly) independent non-Gaussian sources, Y = R X is
// exactly the ICA mixing model and an adversary can recover X up to
// permutation/sign/scale. The attack-resilience of a perturbation is
// precisely how badly ICA fails on it, which the privacy metric measures.
#pragma once

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace sap::privacy {

struct FastIcaOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-6;    ///< convergence on max |1 - |<w_new, w_old>||
  std::size_t components = 0; ///< 0 → as many as input dimensions
};

struct FastIcaResult {
  /// components x N recovered source matrix (unit variance rows,
  /// permutation/sign ambiguous — as inherent to ICA).
  linalg::Matrix sources;
  /// components x d unmixing matrix W with sources = W * (X - mean).
  linalg::Matrix unmixing;
  bool converged = false;
  std::size_t iterations = 0;
};

/// Run FastICA on a d x N matrix (columns = observations).
/// Throws sap::Error when the input has fewer than 8 observations or the
/// covariance is too degenerate to whiten.
FastIcaResult fast_ica(const linalg::Matrix& observations, const FastIcaOptions& opts,
                       rng::Engine& eng);

}  // namespace sap::privacy
