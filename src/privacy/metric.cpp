#include "privacy/metric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "linalg/stats.hpp"

namespace sap::privacy {

linalg::Vector column_privacy(const linalg::Matrix& original,
                              const linalg::Matrix& reconstruction) {
  return column_privacy(original, reconstruction, linalg::row_stddev(original));
}

linalg::Vector column_privacy(const linalg::Matrix& original,
                              const linalg::Matrix& reconstruction,
                              const linalg::Vector& sd_orig) {
  SAP_REQUIRE(original.rows() == reconstruction.rows() &&
                  original.cols() == reconstruction.cols(),
              "column_privacy: shape mismatch");
  SAP_REQUIRE(original.cols() >= 2, "column_privacy: need at least two records");
  SAP_REQUIRE(sd_orig.size() == original.rows(),
              "column_privacy: sd_orig must have one entry per dimension");

  linalg::Matrix diff = original;
  diff -= reconstruction;
  const linalg::Vector sd_diff = linalg::row_stddev(diff);

  linalg::Vector p(original.rows());
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (sd_orig[j] > 0.0) {
      p[j] = sd_diff[j] / sd_orig[j];
    } else {
      // Constant dimension: its single value is already fixed by the public
      // normalization bounds, so there is no *distributional* information to
      // protect — excluded from the minimum guarantee (+inf). This also
      // keeps small-party evaluations (where a rare binary feature is
      // locally constant) from degenerating to rho = 0.
      p[j] = std::numeric_limits<double>::infinity();
    }
  }
  return p;
}

double min_privacy_guarantee(const linalg::Matrix& original,
                             const linalg::Matrix& reconstruction) {
  const linalg::Vector p = column_privacy(original, reconstruction);
  const double rho = *std::min_element(p.begin(), p.end());
  SAP_REQUIRE(std::isfinite(rho),
              "min_privacy_guarantee: every column is constant (nothing to evaluate)");
  return rho;
}

}  // namespace sap::privacy
