#include "privacy/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "linalg/stats.hpp"
#include "privacy/metric.hpp"

namespace sap::privacy {

linalg::Vector candidate_pool_privacy(const linalg::Matrix& original,
                                      const linalg::Matrix& candidates) {
  SAP_REQUIRE(original.cols() == candidates.cols(),
              "candidate_pool_privacy: record count mismatch");
  SAP_REQUIRE(original.cols() >= 2, "candidate_pool_privacy: need at least two records");

  const linalg::Vector sd_orig = linalg::row_stddev(original);
  linalg::Vector privacy(original.rows());
  for (std::size_t j = 0; j < original.rows(); ++j) {
    // Constant dimensions are excluded from the guarantee (see
    // privacy/metric.cpp for the rationale).
    if (sd_orig[j] <= 0.0) {
      privacy[j] = std::numeric_limits<double>::infinity();
      continue;
    }
    double best_abs_corr = 0.0;
    for (std::size_t c = 0; c < candidates.rows(); ++c) {
      const double r = std::abs(linalg::pearson(original.row(j), candidates.row(c)));
      best_abs_corr = std::max(best_abs_corr, r);
    }
    privacy[j] = std::sqrt(std::max(0.0, 2.0 * (1.0 - best_abs_corr)));
  }
  return privacy;
}

AttackSuite::AttackSuite(AttackSuiteOptions opts) : opts_(opts) {
  if (opts_.naive) attacks_.push_back(std::make_unique<NaiveEstimationAttack>());
  if (opts_.ica) attacks_.push_back(std::make_unique<IcaReconstructionAttack>(opts_.ica_options));
  if (opts_.spectral) attacks_.push_back(std::make_unique<SpectralAttack>());
  if (opts_.known_inputs > 0) attacks_.push_back(std::make_unique<KnownInputAttack>());
  SAP_REQUIRE(!attacks_.empty(), "AttackSuite: no attacks enabled");
}

PrivacyReport AttackSuite::evaluate(const linalg::Matrix& original,
                                    const linalg::Matrix& perturbed,
                                    rng::Engine& eng) const {
  SAP_REQUIRE(original.rows() == perturbed.rows() && original.cols() == perturbed.cols(),
              "AttackSuite::evaluate: shape mismatch");

  AttackContext ctx;
  ctx.perturbed = &perturbed;
  ctx.original_means = linalg::row_means(original);
  ctx.original_stddevs = linalg::row_stddev(original);
  if (opts_.known_inputs > 0) {
    const std::size_t m = std::min<std::size_t>(opts_.known_inputs, original.cols());
    ctx.known_indices = eng.sample_without_replacement(original.cols(), m);
    ctx.known_originals = linalg::Matrix(original.rows(), m);
    for (std::size_t j = 0; j < m; ++j) {
      const linalg::Vector col = original.col(ctx.known_indices[j]);
      ctx.known_originals.set_col(j, col);
    }
  }

  PrivacyReport report;
  report.rho = std::numeric_limits<double>::infinity();
  for (const auto& attack : attacks_) {
    AttackOutcome outcome;
    outcome.attack = attack->name();
    try {
      const Reconstruction rec = attack->reconstruct(ctx, eng);
      outcome.per_column = (rec.kind == Reconstruction::Kind::kAligned)
                               ? column_privacy(original, rec.estimate)
                               : candidate_pool_privacy(original, rec.estimate);
      outcome.rho = *std::min_element(outcome.per_column.begin(), outcome.per_column.end());
      report.rho = std::min(report.rho, outcome.rho);
    } catch (const Error& e) {
      outcome.failed = true;
      log::debug(std::string("attack '") + outcome.attack + "' failed: " + e.what());
    }
    report.attacks.push_back(std::move(outcome));
  }
  SAP_REQUIRE(std::isfinite(report.rho),
              "AttackSuite::evaluate: every enabled attack failed");
  return report;
}

}  // namespace sap::privacy
