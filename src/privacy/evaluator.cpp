#include "privacy/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "linalg/stats.hpp"
#include "privacy/metric.hpp"

namespace sap::privacy {

linalg::Vector candidate_pool_privacy(const linalg::Matrix& original,
                                      const linalg::Matrix& candidates) {
  SAP_REQUIRE(original.cols() == candidates.cols(),
              "candidate_pool_privacy: record count mismatch");
  SAP_REQUIRE(original.cols() >= 2, "candidate_pool_privacy: need at least two records");

  // Reference implementation (d*k independent pearson() calls). The
  // evaluator's hot loop runs the scratch-based path below, which factors
  // the per-pair correlation into one centered cross-product GEMM; tests
  // assert the two are bit-identical.
  const linalg::Vector sd_orig = linalg::row_stddev(original);
  linalg::Vector privacy(original.rows());
  for (std::size_t j = 0; j < original.rows(); ++j) {
    // Constant dimensions are excluded from the guarantee (see
    // privacy/metric.cpp for the rationale).
    if (sd_orig[j] <= 0.0) {
      privacy[j] = std::numeric_limits<double>::infinity();
      continue;
    }
    double best_abs_corr = 0.0;
    for (std::size_t c = 0; c < candidates.rows(); ++c) {
      const double r = std::abs(linalg::pearson(original.row(j), candidates.row(c)));
      best_abs_corr = std::max(best_abs_corr, r);
    }
    privacy[j] = std::sqrt(std::max(0.0, 2.0 * (1.0 - best_abs_corr)));
  }
  return privacy;
}

namespace {

/// Scratch-based candidate-pool privacy: pearson(orig_j, cand_c) factored as
/// sxy / sqrt(sxx * syy) with sxy from one cross-product GEMM over the
/// centered matrices and sxx/syy hoisted per row. Every accumulation chain
/// (row means, centered deviations, the per-pair ascending dot product)
/// reproduces pearson()'s exactly, so the result is bit-identical to the
/// reference loop above — ~6x faster through ILP and the d-fold reuse of
/// the original's stats.
linalg::Vector candidate_pool_privacy_fast(AttackSuite::Scratch& s,
                                           const linalg::Matrix& candidates) {
  const std::size_t d = s.centered.rows();
  const std::size_t n = s.centered.cols();
  const std::size_t k = candidates.rows();
  SAP_REQUIRE(candidates.cols() == n, "candidate_pool_privacy: record count mismatch");
  SAP_REQUIRE(n >= 2, "candidate_pool_privacy: need at least two records");

  if (s.cand_centered.rows() != k || s.cand_centered.cols() != n)
    s.cand_centered = linalg::Matrix(k, n);
  if (s.corr.rows() != d || s.corr.cols() != k) s.corr = linalg::Matrix(d, k);
  s.cand_sumsq.assign(k, 0.0);

  const auto nd = static_cast<double>(n);
  for (std::size_t c = 0; c < k; ++c) {
    const auto src = candidates.row(c);
    auto dst = s.cand_centered.row(c);
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += src[i];
    mean /= nd;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dy = src[i] - mean;
      dst[i] = dy;
      syy += dy * dy;
    }
    s.cand_sumsq[c] = syy;
  }
  linalg::matmul_abt_into(s.centered, s.cand_centered, s.corr);

  linalg::Vector privacy(d);
  for (std::size_t j = 0; j < d; ++j) {
    if (s.stddevs[j] <= 0.0) {
      privacy[j] = std::numeric_limits<double>::infinity();
      continue;
    }
    const auto corr_row = s.corr.row(j);
    double best_abs_corr = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      const double r = (s.sumsq[j] <= 0.0 || s.cand_sumsq[c] <= 0.0)
                           ? 0.0
                           : corr_row[c] / std::sqrt(s.sumsq[j] * s.cand_sumsq[c]);
      best_abs_corr = std::max(best_abs_corr, std::abs(r));
    }
    privacy[j] = std::sqrt(std::max(0.0, 2.0 * (1.0 - best_abs_corr)));
  }
  return privacy;
}

}  // namespace

AttackSuite::AttackSuite(AttackSuiteOptions opts) : opts_(opts) {
  if (opts_.naive) attacks_.push_back(std::make_unique<NaiveEstimationAttack>());
  if (opts_.ica) attacks_.push_back(std::make_unique<IcaReconstructionAttack>(opts_.ica_options));
  if (opts_.spectral) attacks_.push_back(std::make_unique<SpectralAttack>());
  if (opts_.known_inputs > 0) attacks_.push_back(std::make_unique<KnownInputAttack>());
  SAP_REQUIRE(!attacks_.empty(), "AttackSuite: no attacks enabled");
}

AttackSuite::Scratch AttackSuite::make_scratch(const linalg::Matrix& original) const {
  SAP_REQUIRE(!original.empty(), "AttackSuite::make_scratch: empty original");
  Scratch s;
  s.means = linalg::row_means(original);
  s.stddevs = linalg::row_stddev(original);
  s.centered = linalg::Matrix(original.rows(), original.cols());
  s.sumsq.assign(original.rows(), 0.0);
  for (std::size_t r = 0; r < original.rows(); ++r) {
    const auto src = original.row(r);
    auto dst = s.centered.row(r);
    double acc = 0.0;
    for (std::size_t i = 0; i < src.size(); ++i) {
      const double dx = src[i] - s.means[r];
      dst[i] = dx;
      acc += dx * dx;
    }
    s.sumsq[r] = acc;
  }
  return s;
}

PrivacyReport AttackSuite::evaluate(const linalg::Matrix& original,
                                    const linalg::Matrix& perturbed,
                                    rng::Engine& eng) const {
  Scratch scratch = make_scratch(original);
  return evaluate(original, perturbed, eng, scratch);
}

PrivacyReport AttackSuite::evaluate(const linalg::Matrix& original,
                                    const linalg::Matrix& perturbed, rng::Engine& eng,
                                    Scratch& scratch) const {
  SAP_REQUIRE(original.rows() == perturbed.rows() && original.cols() == perturbed.cols(),
              "AttackSuite::evaluate: shape mismatch");
  SAP_REQUIRE(scratch.centered.rows() == original.rows() &&
                  scratch.centered.cols() == original.cols(),
              "AttackSuite::evaluate: scratch does not match the original matrix");

  AttackContext ctx;
  ctx.perturbed = &perturbed;
  ctx.original_means = scratch.means;
  ctx.original_stddevs = scratch.stddevs;
  if (opts_.known_inputs > 0) {
    const std::size_t m = std::min<std::size_t>(opts_.known_inputs, original.cols());
    ctx.known_indices = eng.sample_without_replacement(original.cols(), m);
    ctx.known_originals = linalg::gather_cols(original, ctx.known_indices);
  }

  PrivacyReport report;
  report.rho = std::numeric_limits<double>::infinity();
  for (const auto& attack : attacks_) {
    AttackOutcome outcome;
    outcome.attack = attack->name();
    try {
      const Reconstruction rec = attack->reconstruct(ctx, eng);
      outcome.per_column = (rec.kind == Reconstruction::Kind::kAligned)
                               ? column_privacy(original, rec.get(), scratch.stddevs)
                               : candidate_pool_privacy_fast(scratch, rec.get());
      outcome.rho = *std::min_element(outcome.per_column.begin(), outcome.per_column.end());
      report.rho = std::min(report.rho, outcome.rho);
    } catch (const Error& e) {
      outcome.failed = true;
      log::debug(std::string("attack '") + outcome.attack + "' failed: " + e.what());
    }
    report.attacks.push_back(std::move(outcome));
  }
  SAP_REQUIRE(std::isfinite(report.rho),
              "AttackSuite::evaluate: every enabled attack failed");
  return report;
}

}  // namespace sap::privacy
