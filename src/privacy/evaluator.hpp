// Attack-suite privacy evaluator.
//
// Computes the paper's minimum privacy guarantee rho for a (original,
// perturbed) dataset pair: rho = min over enabled attacks of
// min over columns of the per-column privacy p_j.
//
// For candidate-pool attacks the per-column privacy has the closed form
//   p_j = sqrt(2 * (1 - |r_j|)),
// where r_j is the best Pearson correlation between original dimension j and
// any candidate component — the attacker rescales the best-matching
// component to the public column moments, and std((X_j - est)/std_j)
// collapses to that expression. This grants the adversary perfect alignment
// knowledge, making the reported guarantee conservative.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "privacy/attacks.hpp"

namespace sap::privacy {

/// Outcome of one attack within a suite evaluation.
struct AttackOutcome {
  std::string attack;
  linalg::Vector per_column;  ///< p_j for every original dimension
  double rho = 0.0;           ///< min_j p_j under this attack
  bool failed = false;        ///< attack threw (e.g. ICA on degenerate data)
};

/// Full evaluation result.
struct PrivacyReport {
  std::vector<AttackOutcome> attacks;
  /// Minimum privacy guarantee over all successful attacks (the paper's rho).
  double rho = 0.0;
};

/// Which adversaries to include in the evaluation.
struct AttackSuiteOptions {
  bool naive = true;
  bool ica = true;
  /// PCA-based spectral attack (second-order only; defeats bare rotations
  /// on anisotropic data without needing non-Gaussian structure).
  bool spectral = false;
  /// Number of known (original, perturbed) record pairs handed to the
  /// known-input attack; 0 disables it.
  std::size_t known_inputs = 0;
  FastIcaOptions ica_options{.max_iterations = 100, .tolerance = 1e-5};
};

class AttackSuite {
 public:
  explicit AttackSuite(AttackSuiteOptions opts = {});

  /// Reusable evaluation state for one fixed `original` matrix. The
  /// optimizer scores every candidate against the same evaluation
  /// subsample, so the original's row stats, its centered copy and the
  /// correlation buffers are computed/allocated once per run instead of
  /// once per score() call. Copyable: parallel candidate slots each hold
  /// their own copy (evaluate() mutates only the buffer members).
  struct Scratch {
    // Fixed per-original precomputation (read-only during evaluate).
    linalg::Vector means;     ///< row_means(original)
    linalg::Vector stddevs;   ///< row_stddev(original)
    linalg::Matrix centered;  ///< original minus row means
    linalg::Vector sumsq;     ///< per-row sum of squared deviations
    // Buffers overwritten by each evaluate() call.
    linalg::Matrix cand_centered;
    linalg::Matrix corr;
    linalg::Vector cand_sumsq;
  };
  [[nodiscard]] Scratch make_scratch(const linalg::Matrix& original) const;

  /// Evaluate rho for the pair (original, perturbed), both d x N.
  /// Known-input pairs are drawn uniformly from the records with `eng`.
  /// ICA failures are recorded (failed=true) and excluded from rho; if every
  /// attack fails, throws sap::Error.
  [[nodiscard]] PrivacyReport evaluate(const linalg::Matrix& original,
                                       const linalg::Matrix& perturbed,
                                       rng::Engine& eng) const;

  /// Hot-loop variant: `scratch` must come from make_scratch(original).
  /// Bit-identical to the scratch-free overload (the hoisted quantities are
  /// the same values the per-call path computes).
  [[nodiscard]] PrivacyReport evaluate(const linalg::Matrix& original,
                                       const linalg::Matrix& perturbed,
                                       rng::Engine& eng, Scratch& scratch) const;

  [[nodiscard]] const AttackSuiteOptions& options() const noexcept { return opts_; }

 private:
  AttackSuiteOptions opts_;
  std::vector<std::unique_ptr<Attack>> attacks_;
};

/// Per-column privacy of a candidate pool against the original data:
/// p_j = sqrt(2 (1 - |best correlation|)). Exposed for tests and ablations.
linalg::Vector candidate_pool_privacy(const linalg::Matrix& original,
                                      const linalg::Matrix& candidates);

}  // namespace sap::privacy
