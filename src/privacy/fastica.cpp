#include "privacy/fastica.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/decompose.hpp"
#include "linalg/stats.hpp"

namespace sap::privacy {
namespace {

/// Symmetric decorrelation: W <- (W W^T)^{-1/2} W.
linalg::Matrix symmetric_decorrelate(const linalg::Matrix& w) {
  const linalg::Matrix gram = w * w.transpose();
  const auto eig = linalg::sym_eigen(gram);
  linalg::Matrix d_inv_sqrt(gram.rows(), gram.rows());
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    SAP_REQUIRE(eig.values[i] > 1e-12, "fast_ica: degenerate decorrelation");
    d_inv_sqrt(i, i) = 1.0 / std::sqrt(eig.values[i]);
  }
  return eig.vectors * d_inv_sqrt * eig.vectors.transpose() * w;
}

}  // namespace

FastIcaResult fast_ica(const linalg::Matrix& observations, const FastIcaOptions& opts,
                       rng::Engine& eng) {
  const std::size_t d = observations.rows();
  const std::size_t n = observations.cols();
  SAP_REQUIRE(d >= 2, "fast_ica: need at least two dimensions");
  SAP_REQUIRE(n >= 8, "fast_ica: need at least eight observations");
  const std::size_t k = (opts.components == 0) ? d : std::min(opts.components, d);

  // ---- center
  linalg::Matrix x = observations;
  const linalg::Vector mean = linalg::row_means(x);
  for (std::size_t i = 0; i < d; ++i) {
    auto row = x.row(i);
    for (auto& v : row) v -= mean[i];
  }

  // ---- whiten: Z = D^{-1/2} V^T X with cov = V D V^T
  const linalg::Matrix cov = linalg::covariance_cols(x);
  const auto eig = linalg::sym_eigen(cov);
  SAP_REQUIRE(eig.values[k - 1] > 1e-12, "fast_ica: covariance too degenerate to whiten");
  linalg::Matrix whitener(k, d);
  for (std::size_t i = 0; i < k; ++i) {
    const double scale = 1.0 / std::sqrt(eig.values[i]);
    for (std::size_t j = 0; j < d; ++j) whitener(i, j) = scale * eig.vectors(j, i);
  }
  const linalg::Matrix z = whitener * x;  // k x N, identity covariance

  // ---- symmetric fixed-point iteration with g = tanh
  linalg::Matrix w = linalg::Matrix::generate(k, k, [&] { return eng.normal(); });
  w = symmetric_decorrelate(w);

  FastIcaResult result;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    const linalg::Matrix proj = w * z;  // k x N

    // E[g(w^T z) z^T] and E[g'(w^T z)]
    linalg::Matrix gz(k, k);
    linalg::Vector gprime(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      auto prow = proj.row(i);
      for (std::size_t t = 0; t < n; ++t) {
        const double g = std::tanh(prow[t]);
        gprime[i] += 1.0 - g * g;
        for (std::size_t j = 0; j < k; ++j) gz(i, j) += g * z(j, t);
      }
    }
    linalg::Matrix w_new(k, k);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < k; ++j)
        w_new(i, j) = gz(i, j) * inv_n - gprime[i] * inv_n * w(i, j);
    w_new = symmetric_decorrelate(w_new);

    // Convergence: rows should align with previous rows up to sign.
    double delta = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double align = std::abs(linalg::dot(w_new.row(i), w.row(i)));
      delta = std::max(delta, std::abs(1.0 - align));
    }
    w = std::move(w_new);
    result.iterations = iter + 1;
    if (delta < opts.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.sources = w * z;           // k x N
  result.unmixing = w * whitener;   // k x d acting on centered data
  return result;
}

}  // namespace sap::privacy
