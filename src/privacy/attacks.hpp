// Attack models against geometric perturbation (from companion paper [2],
// used by PODC'07 §2 to define the privacy guarantee rho).
//
// The privacy guarantee of a perturbation is its resilience against the
// strongest known adversary, so the evaluator is deliberately
// attacker-favorable: candidate-based attacks (naive, ICA) are scored with
// the best possible per-column alignment (max |correlation| between each
// original dimension and any candidate component), which upper-bounds what a
// real adversary — who must guess the alignment — could achieve.
//
//   * NaiveEstimationAttack  — the adversary reads the perturbed dimensions
//     directly, rescaling each to the public per-column moments. Defeated by
//     rotation mixing, but weakly-mixed rotations leak (this is what the
//     optimizer fixes).
//   * IcaReconstructionAttack — FastICA unmixing of Y; effective whenever
//     the original columns are non-Gaussian and independent.
//   * KnownInputAttack — the adversary knows m original records and their
//     perturbed images, estimates (R, t) by orthogonal Procrustes, and
//     inverts the map. Noise (Delta) is the only defense against it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "privacy/fastica.hpp"
#include "rng/rng.hpp"

namespace sap::privacy {

/// What the adversary observes and publicly knows.
struct AttackContext {
  /// Perturbed dataset Y (d x N, column = record).
  const linalg::Matrix* perturbed = nullptr;
  /// Public per-dimension moments of the original data (the paper operates
  /// on normalized datasets, so these are assumed known).
  linalg::Vector original_means;
  linalg::Vector original_stddevs;
  /// Known-input side information: record indices and their original values
  /// (d x m, aligned with known_indices). Empty for attacks that do not use it.
  std::vector<std::size_t> known_indices;
  linalg::Matrix known_originals;
};

/// Result of one attack: either a fully aligned d x N estimate of X, or a
/// pool of candidate components (k x N) that the evaluator aligns
/// attacker-favorably. An attack whose estimate IS an input matrix (the
/// naive attack reads the perturbed data directly) returns a non-owning
/// `view` instead of copying d x N doubles per evaluation; the view must
/// outlive the Reconstruction (it points into the AttackContext).
struct Reconstruction {
  enum class Kind { kAligned, kCandidatePool };
  Kind kind = Kind::kCandidatePool;
  linalg::Matrix estimate;                   ///< owned storage (empty when viewed)
  const linalg::Matrix* view = nullptr;      ///< non-owning alternative
  [[nodiscard]] const linalg::Matrix& get() const noexcept {
    return view != nullptr ? *view : estimate;
  }
};

/// Interface for adversarial reconstruction procedures.
class Attack {
 public:
  virtual ~Attack() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// May throw sap::Error when the context lacks required side information.
  [[nodiscard]] virtual Reconstruction reconstruct(const AttackContext& ctx,
                                                   rng::Engine& eng) const = 0;
};

/// Direct read-off of the perturbed dimensions.
class NaiveEstimationAttack final : public Attack {
 public:
  [[nodiscard]] std::string name() const override { return "naive"; }
  [[nodiscard]] Reconstruction reconstruct(const AttackContext& ctx,
                                           rng::Engine& eng) const override;
};

/// FastICA unmixing attack.
class IcaReconstructionAttack final : public Attack {
 public:
  explicit IcaReconstructionAttack(FastIcaOptions opts = {}) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "ica"; }
  [[nodiscard]] Reconstruction reconstruct(const AttackContext& ctx,
                                           rng::Engine& eng) const override;

 private:
  FastIcaOptions opts_;
};

/// Procrustes inversion from m known (original, perturbed) record pairs.
class KnownInputAttack final : public Attack {
 public:
  [[nodiscard]] std::string name() const override { return "known-input"; }
  [[nodiscard]] Reconstruction reconstruct(const AttackContext& ctx,
                                           rng::Engine& eng) const override;
};

/// PCA (spectral) attack: rotation is equivariant on covariance —
/// cov(Y) = R cov(X) R^T — so the principal-component projections of Y equal
/// those of X up to sign/permutation whenever the eigenvalues are distinct.
/// Unlike ICA this needs no non-Gaussian structure, only anisotropy; it is
/// the cheapest attack that defeats a bare rotation on correlated data.
class SpectralAttack final : public Attack {
 public:
  [[nodiscard]] std::string name() const override { return "spectral"; }
  [[nodiscard]] Reconstruction reconstruct(const AttackContext& ctx,
                                           rng::Engine& eng) const override;
};

}  // namespace sap::privacy
