// sap::net wire format — length-prefixed, versioned, checksummed frames.
//
// A frame is the byte-level unit every sap::net connection exchanges:
//
//   offset  size  field
//   0       4     magic 0x53415046 ("SAPF", little-endian on the wire)
//   4       1     version (kFrameVersion; anything else is rejected)
//   5       1     frame type (FrameType)
//   6       1     payload kind (proto::PayloadKind for kData, 0 otherwise)
//   7       1     reserved, must be 0
//   8       4     from party id
//   12      4     to party id
//   16      8     trace id (0 = untraced; minted at the serving door and
//                 echoed on responses / propagated router -> shard, §12)
//   24      4     body length in bytes (bounded by the reader's max)
//   28      4     CRC-32 over header bytes [0, 28) + the body
//   32      ...   body
//
// kData bodies carry an EncryptedEnvelope byte-exactly: the 8-byte
// integrity word followed by the ciphertext words (little-endian u64s) —
// the relay/hub routes ciphertext it cannot open, exactly like the
// in-process transports' metadata trace. Control frames (Hello/Welcome/
// Error/Bye) use small fixed bodies described at their helpers.
//
// Decoding treats every byte as adversarial: bad magic, unknown version or
// type, oversized length, truncated body, or a checksum mismatch all raise
// sap::Error without reading out of bounds (fuzzed in tests/fuzz_test.cpp
// under ASan/UBSan).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "protocol/message.hpp"

namespace sap::net {

constexpr std::uint32_t kFrameMagic = 0x53415046u;  // "SAPF"
constexpr std::uint8_t kFrameVersion = 2;  ///< v2 added the 8-byte trace id field
constexpr std::size_t kFrameHeaderBytes = 32;
/// Default body cap (64 MiB) — large enough for any realistic shard, small
/// enough that a hostile length prefix cannot balloon memory.
constexpr std::size_t kDefaultMaxBody = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,    ///< client -> hub: claim a party id (body: u32 desired id)
  kWelcome = 2,  ///< hub -> client: id granted (body: u32 granted id)
  kData = 3,     ///< routed protocol message (body: envelope bytes)
  kError = 4,    ///< hub -> client: refusal (body: ASCII message)
  kBye = 5,      ///< polite shutdown (empty body)
};

/// Hello body value asking the hub to assign the next free id.
constexpr std::uint32_t kClaimAnyParty = 0xFFFFFFFFu;

struct Frame {
  std::uint8_t version = kFrameVersion;
  FrameType type = FrameType::kData;
  std::uint8_t payload_kind = 0;  ///< proto::PayloadKind for kData
  proto::PartyId from = 0;
  proto::PartyId to = 0;
  /// Request-trace id (obs/trace.hpp): 0 = untraced. A serving door mints
  /// one for incoming zeros, echoes it on responses, and the router
  /// forwards it on the scatter frames so every hop logs the same id.
  std::uint64_t trace = 0;
  std::vector<std::uint8_t> body;
  /// LOCAL metadata, never serialized: steady-clock nanoseconds at which
  /// the receiving door finished parsing this frame (0 = unknown). The
  /// handler reads it to measure queue wait without a second wire field.
  std::uint64_t recv_steady_ns = 0;
};

/// Zero-copy decode result: `body` points into the reader's buffer and is
/// valid only until the next feed()/reset() call. Hot paths (the reactor's
/// read loop, the bench driver) parse with this and copy only the frames
/// they must hand to another thread.
struct FrameView {
  std::uint8_t version = kFrameVersion;
  FrameType type = FrameType::kData;
  std::uint8_t payload_kind = 0;
  proto::PartyId from = 0;
  proto::PartyId to = 0;
  std::uint64_t trace = 0;
  std::span<const std::uint8_t> body;
};

/// CRC-32 (IEEE 802.3, reflected) — the frame checksum.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0);

/// Serialize `frame` onto the end of `out`.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Incremental frame decoder over a byte stream. feed() buffers; next()
/// yields complete frames in order and throws sap::Error the moment the
/// stream is provably malformed (the connection must then be dropped — a
/// framing error is not recoverable mid-stream).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_body = kDefaultMaxBody) : max_body_(max_body) {}

  void feed(const std::uint8_t* data, std::size_t len);

  /// Decode the next complete frame into `out`; false when more bytes are
  /// needed. Throws sap::Error on malformed input.
  bool next(Frame& out);

  /// Zero-copy variant: `out.body` aliases the internal buffer and stays
  /// valid only until the next feed()/reset(). Same validation and
  /// exception contract as next().
  bool next_view(FrameView& out);

  /// Drop all buffered bytes and release their memory (a hub clearing out
  /// a dead connection's half-received frame).
  void reset();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

  /// Bytes of internal buffer currently reserved. Long-lived connections
  /// must see this stabilize (the lazy compaction in feed() reuses the
  /// allocation instead of growing it per frame) — asserted over 10k
  /// sequential frames in socket_test.
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.capacity(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t max_body_;
};

// ---- body codecs ---------------------------------------------------------

/// Envelope -> kData body bytes (integrity word + ciphertext words, LE).
[[nodiscard]] std::vector<std::uint8_t> envelope_body(const proto::EncryptedEnvelope& env);

/// kData body bytes -> envelope; throws sap::Error unless the size is a
/// positive multiple of 8 covering the integrity word. Accepts spans so a
/// FrameView body decodes without an intermediate copy.
[[nodiscard]] proto::EncryptedEnvelope body_envelope(std::span<const std::uint8_t> body);

/// u32 control bodies (Hello desired id / Welcome granted id).
[[nodiscard]] std::vector<std::uint8_t> u32_body(std::uint32_t value);
[[nodiscard]] std::uint32_t body_u32(std::span<const std::uint8_t> body);

/// kError bodies (printable ASCII, truncated to 256 bytes).
[[nodiscard]] std::vector<std::uint8_t> text_body(const std::string& text);
[[nodiscard]] std::string body_text(std::span<const std::uint8_t> body);

}  // namespace sap::net
