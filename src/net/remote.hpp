// Cross-process deployment of the Space Adaptation Protocol: one miner
// daemon (hub) + k party client processes.
//
// This is the first topology where the paper's parties are genuinely
// distributed: each provider process holds only its own shard, the miner
// process never sees anything but link-encrypted frames, adaptors, and
// perturbed data — and the pooled result is bit-identical to the same
// logical session run in-process, because both sides execute the shared
// sap::proto::logic functions with engines derived from the same master
// seed (protocol/party_logic.hpp).
//
// Wiring convention (both sides must agree, normally via identical CLI
// arguments): party ids are providers 0..k-1 (k-1 doubles as the
// coordinator) and the miner claims id k on the hub. All parties derive the
// session secret from the shared seed, standing in for the out-of-band key
// exchange the paper assumes — see DESIGN.md §7 for the threat model of
// this choice over real sockets.
//
// After the exchange the daemon keeps serving:
//   * kContribution  -> adapted + appended to the live pool, answered with
//                       a kContributionAck receipt;
//   * kMiningRequest -> served by the MiningEngine (cached/incremental
//                       exactly like in-process), answered with
//                       kMiningResponse (empty values = request refused).
// The daemon exits when every party connection has closed.
//
// Serving traffic has two front doors sharing ONE dispatch path
// (serve_payload), so their responses are bit-identical by construction:
//   * the hub itself (the k exchange connections double as serving links —
//     unchanged legacy behavior), and
//   * an optional epoll reactor (net/reactor.hpp, reactor_loops > 0) for
//     the open client population beyond the k parties — tens of thousands
//     of concurrent contribution/mining connections. The reactor endpoint
//     is a second listen address (reactor_addr()) speaking the same wire
//     protocol; it refuses traffic until the exchange installed the pool,
//     and it never participates in the exchange itself (DESIGN.md §10).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "net/reactor.hpp"
#include "net/tcp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/party_logic.hpp"

namespace sap::net {

/// Raised client-side when a daemon answers kServeError. Carries the typed
/// code so callers (the shard router above all) can tell a definitive
/// refusal (kBadRequest — retrying a replica cannot help) from a routing or
/// availability problem (kNotOwner / kUnavailable — fail over).
class ServeError : public Error {
 public:
  ServeError(proto::ServeErrorCode code, const std::string& message)
      : Error("serve-error(" + proto::to_string(code) + "): " + message), code_(code) {}
  [[nodiscard]] proto::ServeErrorCode code() const noexcept { return code_; }

 private:
  proto::ServeErrorCode code_;
};

/// Order-sensitive FNV-1a digest of a dataset (feature bit patterns +
/// labels) — how two processes compare pools without shipping them.
[[nodiscard]] std::uint64_t dataset_digest(const data::Dataset& ds);

/// Order-INsensitive digest: per-record FNV-1a hashes combined
/// commutatively. Equal multisets of records => equal digests, whatever the
/// append order — the comparison for concurrently contributed pools.
[[nodiscard]] std::uint64_t dataset_multiset_digest(const data::Dataset& ds);

/// The SapOptions preset sap_cli's serving subcommands (`serve`,
/// `contribute`, `party`) and their tests share. Every process of one
/// logical cross-process session must run identical options — keeping the
/// one copy here is part of the bit-identity guarantee between the
/// daemon/party topology and its in-process reference. `optimize_threads`
/// is the one exception: LocalOptimize results are thread-count-invariant
/// (optimizer.hpp), so each process may pick its own worker count.
[[nodiscard]] proto::SapOptions serving_session_options(double noise_sigma,
                                                        std::uint64_t seed,
                                                        std::size_t optimize_threads = 0);

// ---- miner daemon --------------------------------------------------------

struct MinerDaemonOptions {
  SocketAddr listen{"127.0.0.1", 0};
  std::size_t parties = 0;    ///< k (>= 3); must match the party processes
  std::uint64_t seed = 0x5A9; ///< must match the party processes' seed
  std::size_t mining_threads = 0;
  bool cache_models = true;
  TcpOptions tcp{};
  /// Optional progress sink (the CLI prints these lines).
  std::function<void(const std::string&)> log;
  /// Reactor front door: 0 disables it (hub-only legacy serving); N > 0
  /// binds reactor_listen with N sharded event loops (see reactor_addr()).
  std::size_t reactor_loops = 0;
  std::size_t reactor_compute_threads = 2;
  SocketAddr reactor_listen{"127.0.0.1", 0};
  int reactor_idle_timeout_ms = 60'000;
  /// Cluster membership (PR 8): the pool's total shard count and the global
  /// shard ids THIS miner owns (empty = own all — the classic single-miner
  /// daemon). A contribution whose nonce routes to an unowned shard is
  /// answered with kServeError{kNotOwner} so the router retries the owner.
  std::size_t shards = 1;
  std::vector<std::size_t> owned_shards;
  proto::ShardLayout shard_layout = proto::ShardLayout::kHashMod;
  /// Self-healing rejoin (PR 10): serving doors of live replica peers. When
  /// non-empty, run() resyncs every owned shard right after the exchange
  /// install and BEFORE serving starts: each peer is asked through the
  /// kShardSnapshotRequest door for the shard's ARRIVAL-order rows, and a
  /// snapshot whose epoch is ahead of the local line is installed with the
  /// donor's epoch adopted (install_shard) — so a restarted miner re-enters
  /// rotation with state the router's epoch floors accept. Peers that are
  /// down, don't own the shard, or are behind are skipped; with no usable
  /// peer the miner keeps its exchange-derived state (cold start).
  std::vector<SocketAddr> resync_peers;
  /// Deadline per resync peer probe (connect + snapshot fetch).
  int resync_timeout_ms = 5'000;
};

class MinerDaemon {
 public:
  /// Binds the listen address and claims the miner id; run() does the rest.
  explicit MinerDaemon(MinerDaemonOptions opts);

  /// The bound address (ephemeral ports resolved) — print this so parties
  /// know where to connect.
  [[nodiscard]] SocketAddr local_addr() const { return hub_->local_addr(); }

  /// The reactor front door address (only with reactor_loops > 0).
  [[nodiscard]] SocketAddr reactor_addr() const;

  /// The live reactor (nullptr when reactor_loops == 0) — stats for the
  /// CLI summary and the connection-scaling bench.
  [[nodiscard]] const Reactor* reactor() const noexcept { return reactor_.get(); }

  /// True once run() has installed the pool and both front doors answer
  /// serving traffic. Before this, front-door requests are refused with a
  /// kError frame ("not serving yet") — a TRANSIENT refusal by the DESIGN.md
  /// §13 taxonomy, so retrying clients absorb it like any transport fault.
  /// Callers without a retry budget (tests, probes) poll here instead.
  [[nodiscard]] bool serving() const noexcept {
    return serving_.load(std::memory_order_acquire);
  }

  struct Summary {
    std::size_t pool_records = 0;
    std::uint64_t pool_epoch = 0;
    std::uint64_t pool_digest = 0;
    std::size_t contributions = 0;     ///< both front doors combined
    std::size_t requests_served = 0;   ///< both front doors combined
  };

  /// Serve one full session: collect the exchange, install the pool, serve
  /// contributions + mining requests, return when every party disconnected.
  /// Throws sap::Error if the exchange cannot complete (missing party,
  /// malformed shard, deadline). The reactor (if any) serves concurrently
  /// from pool installation until return.
  Summary run();

  /// The serving engine (valid pool only after run() installed it).
  [[nodiscard]] proto::MiningEngine& engine() noexcept { return engine_; }

  /// Live metrics registry — both front doors record into it; the reactor
  /// shares it via ReactorOptions::metrics (DESIGN.md §12).
  [[nodiscard]] obs::Registry& metrics() noexcept { return obs_; }

  /// Recent request traces (bounded ring; ids ride the frame header).
  [[nodiscard]] const obs::TraceRing& traces() const noexcept { return traces_; }

  /// Everything a kStatsRequest is answered with: the registry snapshot
  /// plus collect-time injections (engine cache stats + pool epoch/records
  /// + snapshot refcounts, reactor and compute-pool totals, the daemon's
  /// serving counters) — normalized, ready to merge at a router. Pure
  /// measurement: collecting takes only read views.
  [[nodiscard]] obs::Snapshot stats_snapshot();

 private:
  void note(const std::string& line) const;

  /// The ONE serving dispatch both front doors call — the reason hub-served
  /// and reactor-served responses are bit-identical. Returns false for
  /// non-serving kinds (late exchange traffic, reports). Contribution
  /// failures answer inside (negative receipt); a malformed mining request
  /// throws for the caller's per-message containment. Thread-safe: the
  /// engine locks internally, adaptors_/dims_ are frozen before serving_.
  bool serve_payload(proto::PayloadKind kind, std::span<const double> payload,
                     proto::PayloadKind& out_kind, std::vector<double>& out_wire);

  /// Fill (out_kind, out_wire) with a typed kServeError refusal + log it.
  void serve_error(proto::ServeErrorCode code, const std::string& message,
                   proto::PayloadKind& out_kind, std::vector<double>& out_wire) const;

  /// Rejoin resync (DESIGN.md §13): pull every owned shard's snapshot from
  /// the first live peer in opts_.resync_peers that owns it and is ahead of
  /// the local epoch line; install with the donor epoch adopted. Best
  /// effort per shard — runs after the exchange install, before serving_.
  void resync_owned_shards();

  /// Reactor handler: decrypt, dispatch through serve_payload, encrypt the
  /// response. Runs on reactor compute lanes.
  std::vector<Frame> serve_frame(const Frame& frame);

  MinerDaemonOptions opts_;
  std::unique_ptr<TcpTransport> hub_;
  proto::PartyId miner_id_ = 0;
  std::uint64_t secret_ = 0;
  std::size_t dims_ = 0;
  std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> adaptors_;
  proto::MiningEngine engine_;
  std::atomic<bool> serving_{false};  ///< pool installed; reactor may serve
  std::atomic<std::size_t> contributions_{0};
  std::atomic<std::size_t> requests_served_{0};
  mutable Mutex log_mutex_;  ///< note() is called from compute lanes too
  // ---- observability (PR 9): pure measurement, no computation feedback --
  obs::Registry obs_;
  obs::TraceRing traces_;
  obs::TraceMinter minter_;
  /// Hot-path metric slots, registered once in the constructor (lookups
  /// allocate; the record path on these pointers is lock-free).
  obs::Histogram* hist_serve_ms_ = nullptr;      ///< engine.serve_ms
  obs::Histogram* hist_fit_ms_ = nullptr;        ///< engine.fit_ms
  obs::Counter* ctr_ingest_records_ = nullptr;   ///< ingest.records
  obs::Counter* ctr_ingest_rejected_ = nullptr;  ///< ingest.rejected
  obs::Counter* ctr_refused_bad_ = nullptr;      ///< serve.refused.bad_request
  obs::Counter* ctr_refused_owner_ = nullptr;    ///< serve.refused.not_owner
  obs::Counter* ctr_refused_unavail_ = nullptr;  ///< serve.refused.unavailable
  obs::Gauge* g_ingest_epoch_ = nullptr;         ///< ingest.epoch (last receipt)
  /// Last member: destroyed (and its threads joined) before anything the
  /// serve_frame handler touches.
  std::unique_ptr<Reactor> reactor_;
};

// ---- serving client ------------------------------------------------------

/// Minimal synchronous client for the SERVING traffic only (contributions +
/// mining requests) — no exchange duties, no io thread, one socket and an
/// incremental FrameReader. Works identically against both front doors
/// (legacy hub or reactor) because they speak the same wire protocol; the
/// bench drives both with it and compares served values bit-for-bit.
class ServeClient {
 public:
  struct Options {
    int timeout_ms = 10'000;  ///< connect/handshake/response deadline
    std::size_t max_frame_body = kDefaultMaxBody;
    /// Transport-level retry budget for IDEMPOTENT requests (mine_named,
    /// mine_partial, pool_slice, stats, shard_snapshot): up to this many
    /// reconnect-and-resend attempts after the first try. 0 (default)
    /// preserves the classic fail-fast behavior. Contributions are NEVER
    /// retried here — a lost ack leaves the append outcome unknown, and a
    /// blind resend could double-append silently (the router's replica
    /// logic owns that decision, net/cluster.cpp).
    int retry_attempts = 0;
    /// Backoff base: attempt n sleeps retry_backoff_ms << n, capped at
    /// retry_backoff_cap_ms, plus deterministic jitter in [0, base) drawn
    /// from a sap::rng::Engine seeded by retry_seed — same seed, same
    /// request sequence => same backoff schedule (sap rng discipline).
    int retry_backoff_ms = 10;
    int retry_backoff_cap_ms = 500;
    /// Total wall-clock budget across all attempts of one request; once
    /// exceeded no further attempt starts (deadline-scoped retries).
    int retry_deadline_ms = 20'000;
    std::uint64_t retry_seed = 0x5AFE;
  };

  /// Connect to a serving endpoint and claim an auto-assigned id. `seed`
  /// and `parties` must match the daemon (they derive the session secret
  /// and the miner id, standing in for out-of-band keys like every other
  /// client in this tree).
  ServeClient(const SocketAddr& addr, std::uint64_t seed, std::size_t parties,
              Options opts);
  ServeClient(const SocketAddr& addr, std::uint64_t seed, std::size_t parties)
      : ServeClient(addr, seed, parties, Options{}) {}

  [[nodiscard]] proto::PartyId id() const noexcept { return id_; }

  /// Serve a named job on the miner's pool. A daemon-side refusal raises
  /// ServeError (typed: bad request vs not-owner vs unavailable).
  proto::WireMiningResponse mine_named(const std::string& job,
                                       const proto::JobParams& params = {});

  /// Ship a pre-encoded kContribution payload (encode_contribution wire —
  /// the caller owns perturbing into its negotiated space). Throws on a
  /// negative receipt (epoch 0) or a typed refusal (ServeError — a
  /// kNotOwner code means "retry the owning miner", see net/cluster.hpp).
  proto::DecodedReceipt contribute_wire(const std::vector<double>& wire);

  /// One shard's exact-merge partial for a named job (cluster scatter
  /// phase). `queries` is the canonical eval prefix the merge will score.
  proto::DecodedPartialResponse mine_partial(std::size_t shard, const std::string& job,
                                             const proto::JobParams& params,
                                             const data::Dataset& queries);

  /// One shard's rows in canonical (nonce, seq) order (cluster gather
  /// phase); max_records 0 = all.
  proto::DecodedPoolSlice pool_slice(std::size_t shard, std::size_t max_records);

  /// One shard's ARRIVAL-order rows + keys at the donor's current epoch
  /// (the kShardSnapshotRequest resync door) — what a rejoining miner
  /// installs verbatim via MiningEngine::install_shard.
  proto::DecodedPoolSlice shard_snapshot(std::size_t shard);

  /// The daemon's live metrics snapshot + recent traces (one
  /// kStatsRequest/kStatsResponse round trip — the stats door).
  proto::DecodedStats stats();

  /// Transport-level retries performed so far (attempts beyond the first).
  [[nodiscard]] std::size_t retries() const noexcept { return retries_; }

  /// Sticky trace id stamped on every subsequent request frame (0 = let
  /// the serving door mint one). Routers use this to propagate the door's
  /// id through shard fan-outs.
  void set_trace(std::uint64_t id) noexcept { trace_ = id; }
  /// The trace id the last kData response carried (the door echoes the
  /// request's id, minting when the request rode untraced).
  [[nodiscard]] std::uint64_t last_trace() const noexcept { return last_trace_; }

  /// Polite goodbye; safe to call repeatedly.
  void bye();

 private:
  /// Send `payload` as `kind`, await a kData reply of `expect_kind`
  /// (kError frames raise sap::Error with the daemon's message).
  std::vector<double> transact(proto::PayloadKind kind, std::span<const double> payload,
                               proto::PayloadKind expect_kind);
  /// transact() with the Options retry budget applied — idempotent request
  /// kinds only. Transport failures reconnect + resend with exponential
  /// backoff and deterministic jitter until the attempt budget or the
  /// retry deadline runs out; ServeError (a typed daemon answer) is never
  /// retried here — the daemon processed the request.
  std::vector<double> transact_idempotent(proto::PayloadKind kind,
                                          std::span<const double> payload,
                                          proto::PayloadKind expect_kind);
  /// Fresh socket + handshake to the remembered endpoint.
  void reconnect();
  /// kHello/kWelcome claim over the current socket.
  void handshake();
  Frame read_frame();

  TcpSocket sock_;
  FrameReader reader_;
  Options opts_;
  SocketAddr addr_;         ///< remembered for reconnect-on-retry
  std::size_t parties_ = 0;
  std::uint64_t secret_ = 0;
  proto::PartyId id_ = 0;
  proto::PartyId miner_ = 0;
  std::uint64_t trace_ = 0;       ///< stamped on request frames (0 = unset)
  std::uint64_t last_trace_ = 0;  ///< echoed by the last kData response
  rng::Engine retry_eng_{0};      ///< deterministic backoff jitter stream
  std::size_t retries_ = 0;
  bool said_bye_ = false;
};

// ---- party client --------------------------------------------------------

struct PartyClientOptions {
  SocketAddr connect;
  std::size_t index = 0;    ///< provider index; parties-1 = the coordinator
  std::size_t parties = 0;  ///< k (>= 3)
  /// Protocol options; seed/noise/optimizer settings must match every other
  /// party for the run to be the same logical session.
  proto::SapOptions sap{};
  TcpOptions tcp{};
};

class PartyClient {
 public:
  /// Connects and claims the party id; `shard` is this provider's private
  /// data (N x d rows, pre-normalized like every Dataset in the protocol).
  PartyClient(data::Dataset shard, PartyClientOptions opts);

  /// Execute this party's side of the exchange (LocalOptimize through
  /// AdaptorAlignment, plus the coordinator duties when index == k-1).
  /// Returns this party's accounting report.
  proto::PartyReport run_exchange();

  /// Post-exchange streaming: perturb `batch` (records in this party's
  /// original space) with the negotiated G_i and ship it to the miner.
  /// Blocks for the receipt; throws sap::Error when the miner rejects or
  /// the deadline expires.
  proto::SapSession::ContributionReceipt contribute(const data::Dataset& batch);

  /// Serve a named job remotely on the miner's pool. A daemon-side refusal
  /// (unknown job / bad params / unavailable shard) raises ServeError with
  /// the typed code.
  proto::WireMiningResponse mine_named(const std::string& job,
                                       const proto::JobParams& params = {});

  /// Polite goodbye (the daemon exits once every party said it). Safe to
  /// call multiple times; the destructor also sends it.
  void finish();

  /// This party's protocol nonce (valid after run_exchange()).
  [[nodiscard]] std::uint64_t nonce() const noexcept { return local_.nonce; }

 private:
  /// Next delivery of one of `kinds`, stashing out-of-phase messages (a
  /// fast peer's data can arrive before the coordinator's setup lines —
  /// there are no global phase barriers across processes).
  proto::Transport::Delivery expect(std::initializer_list<proto::PayloadKind> kinds);

  PartyClientOptions opts_;
  data::Dataset shard_;
  linalg::Matrix x_;  // d x N
  std::size_t dims_ = 0;
  std::size_t k_ = 0;
  proto::PartyId id_ = 0;
  proto::PartyId coordinator_ = 0;
  proto::PartyId miner_ = 0;
  std::unique_ptr<TcpTransport> transport_;
  rng::Engine eng_{0};
  rng::Engine coord_eng_{0};
  proto::logic::LocalPerturbation local_;
  perturb::GeometricPerturbation target_;
  perturb::SpaceAdaptor adaptor_;
  std::deque<proto::Transport::Delivery> stash_;
  bool exchange_done_ = false;
};

}  // namespace sap::net
