// Cross-process deployment of the Space Adaptation Protocol: one miner
// daemon (hub) + k party client processes.
//
// This is the first topology where the paper's parties are genuinely
// distributed: each provider process holds only its own shard, the miner
// process never sees anything but link-encrypted frames, adaptors, and
// perturbed data — and the pooled result is bit-identical to the same
// logical session run in-process, because both sides execute the shared
// sap::proto::logic functions with engines derived from the same master
// seed (protocol/party_logic.hpp).
//
// Wiring convention (both sides must agree, normally via identical CLI
// arguments): party ids are providers 0..k-1 (k-1 doubles as the
// coordinator) and the miner claims id k on the hub. All parties derive the
// session secret from the shared seed, standing in for the out-of-band key
// exchange the paper assumes — see DESIGN.md §7 for the threat model of
// this choice over real sockets.
//
// After the exchange the daemon keeps serving:
//   * kContribution  -> adapted + appended to the live pool, answered with
//                       a kContributionAck receipt;
//   * kMiningRequest -> served by the MiningEngine (cached/incremental
//                       exactly like in-process), answered with
//                       kMiningResponse (empty values = request refused).
// The daemon exits when every party connection has closed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/tcp_transport.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/party_logic.hpp"

namespace sap::net {

/// Order-sensitive FNV-1a digest of a dataset (feature bit patterns +
/// labels) — how two processes compare pools without shipping them.
[[nodiscard]] std::uint64_t dataset_digest(const data::Dataset& ds);

/// Order-INsensitive digest: per-record FNV-1a hashes combined
/// commutatively. Equal multisets of records => equal digests, whatever the
/// append order — the comparison for concurrently contributed pools.
[[nodiscard]] std::uint64_t dataset_multiset_digest(const data::Dataset& ds);

/// The SapOptions preset sap_cli's serving subcommands (`serve`,
/// `contribute`, `party`) and their tests share. Every process of one
/// logical cross-process session must run identical options — keeping the
/// one copy here is part of the bit-identity guarantee between the
/// daemon/party topology and its in-process reference. `optimize_threads`
/// is the one exception: LocalOptimize results are thread-count-invariant
/// (optimizer.hpp), so each process may pick its own worker count.
[[nodiscard]] proto::SapOptions serving_session_options(double noise_sigma,
                                                        std::uint64_t seed,
                                                        std::size_t optimize_threads = 0);

// ---- miner daemon --------------------------------------------------------

struct MinerDaemonOptions {
  SocketAddr listen{"127.0.0.1", 0};
  std::size_t parties = 0;    ///< k (>= 3); must match the party processes
  std::uint64_t seed = 0x5A9; ///< must match the party processes' seed
  std::size_t mining_threads = 0;
  bool cache_models = true;
  TcpOptions tcp{};
  /// Optional progress sink (the CLI prints these lines).
  std::function<void(const std::string&)> log;
};

class MinerDaemon {
 public:
  /// Binds the listen address and claims the miner id; run() does the rest.
  explicit MinerDaemon(MinerDaemonOptions opts);

  /// The bound address (ephemeral ports resolved) — print this so parties
  /// know where to connect.
  [[nodiscard]] SocketAddr local_addr() const { return hub_->local_addr(); }

  struct Summary {
    std::size_t pool_records = 0;
    std::uint64_t pool_epoch = 0;
    std::uint64_t pool_digest = 0;
    std::size_t contributions = 0;
    std::size_t requests_served = 0;
  };

  /// Serve one full session: collect the exchange, install the pool, serve
  /// contributions + mining requests, return when every party disconnected.
  /// Throws sap::Error if the exchange cannot complete (missing party,
  /// malformed shard, deadline).
  Summary run();

  /// The serving engine (valid pool only after run() installed it).
  [[nodiscard]] proto::MiningEngine& engine() noexcept { return engine_; }

 private:
  void note(const std::string& line) const;

  MinerDaemonOptions opts_;
  std::unique_ptr<TcpTransport> hub_;
  proto::PartyId miner_id_ = 0;
  std::size_t dims_ = 0;
  std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> adaptors_;
  proto::MiningEngine engine_;
};

// ---- party client --------------------------------------------------------

struct PartyClientOptions {
  SocketAddr connect;
  std::size_t index = 0;    ///< provider index; parties-1 = the coordinator
  std::size_t parties = 0;  ///< k (>= 3)
  /// Protocol options; seed/noise/optimizer settings must match every other
  /// party for the run to be the same logical session.
  proto::SapOptions sap{};
  TcpOptions tcp{};
};

class PartyClient {
 public:
  /// Connects and claims the party id; `shard` is this provider's private
  /// data (N x d rows, pre-normalized like every Dataset in the protocol).
  PartyClient(data::Dataset shard, PartyClientOptions opts);

  /// Execute this party's side of the exchange (LocalOptimize through
  /// AdaptorAlignment, plus the coordinator duties when index == k-1).
  /// Returns this party's accounting report.
  proto::PartyReport run_exchange();

  /// Post-exchange streaming: perturb `batch` (records in this party's
  /// original space) with the negotiated G_i and ship it to the miner.
  /// Blocks for the receipt; throws sap::Error when the miner rejects or
  /// the deadline expires.
  proto::SapSession::ContributionReceipt contribute(const data::Dataset& batch);

  /// Serve a named job remotely on the miner's pool. Empty response values
  /// mean the daemon refused the request (unknown job / bad params).
  proto::WireMiningResponse mine_named(const std::string& job,
                                       const proto::JobParams& params = {});

  /// Polite goodbye (the daemon exits once every party said it). Safe to
  /// call multiple times; the destructor also sends it.
  void finish();

  /// This party's protocol nonce (valid after run_exchange()).
  [[nodiscard]] std::uint64_t nonce() const noexcept { return local_.nonce; }

 private:
  /// Next delivery of one of `kinds`, stashing out-of-phase messages (a
  /// fast peer's data can arrive before the coordinator's setup lines —
  /// there are no global phase barriers across processes).
  proto::Transport::Delivery expect(std::initializer_list<proto::PayloadKind> kinds);

  PartyClientOptions opts_;
  data::Dataset shard_;
  linalg::Matrix x_;  // d x N
  std::size_t dims_ = 0;
  std::size_t k_ = 0;
  proto::PartyId id_ = 0;
  proto::PartyId coordinator_ = 0;
  proto::PartyId miner_ = 0;
  std::unique_ptr<TcpTransport> transport_;
  rng::Engine eng_{0};
  rng::Engine coord_eng_{0};
  proto::logic::LocalPerturbation local_;
  perturb::GeometricPerturbation target_;
  perturb::SpaceAdaptor adaptor_;
  std::deque<proto::Transport::Delivery> stash_;
  bool exchange_done_ = false;
};

}  // namespace sap::net
