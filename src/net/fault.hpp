// sap::net::fault — seeded, deterministic fault injection at the socket
// boundary (DESIGN.md §13).
//
// The chaos discipline mirrors the repo's bit-identity discipline: a fault
// run must be *reproducible*, so every injected fault comes from a pure
// decision stream. Decision #n is SplitMix64(seed, n) — a pure function of
// the installed plan's seed — and each socket-level decision point consumes
// exactly one index. Which operation consumes index n depends on thread
// interleaving, but the decision *stream* (and therefore the distribution
// and parameters of every fault) is identical for identical seeds, and a
// single-threaded client replaying the same request sequence sees the exact
// same fault schedule (tests/fault_test.cpp pins this; bench/chaos_soak.cpp
// enforces it by exit code).
//
// Zero-overhead when disabled, mirroring obs::set_enabled: every hook in
// socket.cpp is gated on one relaxed atomic load, and the library never
// installs a plan on its own — only SAP_FAULT / --fault / tests do.
//
// Fault kinds (all at the socket boundary, so every layer above — framing
// CRC, envelope decrypt, deadlines, retries, breakers — is exercised as
// deployed, not via mocks):
//
//   drop      write swallowed entirely (peer's read deadline fires)
//   delay     operation delayed by a bounded deterministic amount
//   partial   write split: prefix sent now, remainder sent after a pause
//   truncate  write prefix sent, remainder silently discarded
//   corrupt   one byte flipped in flight (frame CRC catches it)
//   reset     connection torn down mid-operation / connect refused
//   accept    accepted connection dropped before handshake
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sap::net::fault {

enum class Kind : int {
  kNone = 0,
  kDrop = 1,
  kDelay = 2,
  kPartialWrite = 3,
  kTruncate = 4,
  kCorrupt = 5,
  kReset = 6,
  kRefuseAccept = 7,
};
inline constexpr int kKindCount = 8;

/// Stable lowercase name for a kind ("drop", "delay", ... / "none").
[[nodiscard]] const char* kind_name(Kind kind) noexcept;

/// Per-kind injection probabilities plus the seed that makes the schedule
/// deterministic. Parsed from `SAP_FAULT` / `--fault` specs of the form
/// "seed=7,drop=0.05,corrupt=0.02,delay=0.1,delay_ms=8".
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop = 0.0;           ///< write swallowed
  double delay = 0.0;          ///< read/write delayed
  double partial = 0.0;        ///< write split with a pause
  double truncate = 0.0;       ///< write prefix only, rest discarded
  double corrupt = 0.0;        ///< one byte flipped (read or write side)
  double reset = 0.0;          ///< connection reset / connect refused
  double refuse_accept = 0.0;  ///< accepted connection dropped
  int delay_ms = 5;            ///< max injected delay per kDelay/kPartialWrite

  /// Parse a comma-separated spec; keys are the field names above plus
  /// "rate=<p>" as shorthand for drop=corrupt=reset=p/3. Unknown keys,
  /// malformed numbers, or probabilities outside [0,1] throw sap::Error.
  static FaultPlan parse(const std::string& spec);

  /// Canonical round-trippable spec string (only non-zero fields).
  [[nodiscard]] std::string to_string() const;
};

/// Global fault switch: one relaxed load, false unless a plan is installed.
[[nodiscard]] bool enabled() noexcept;

/// Install a plan and enable injection. Resets the decision counter, the
/// per-kind stats, and the trace, so schedules are comparable across runs.
void install(const FaultPlan& plan);

/// Disable injection (hooks return to the one-load no-op path).
void uninstall() noexcept;

/// Install from the SAP_FAULT environment variable if set and non-empty;
/// returns whether a plan was installed. Malformed specs throw.
bool install_from_env();

/// Copy of the active plan (meaningful only while enabled()).
[[nodiscard]] FaultPlan plan();

/// Decision #index for `seed`: a pure SplitMix64-style mix. The entire
/// fault schedule derives from this stream — exposed so tests and
/// bench/chaos_soak.cpp can assert seed-purity without a socket in sight.
[[nodiscard]] std::uint64_t decision_word(std::uint64_t seed, std::uint64_t index) noexcept;

/// One write-site decision. kNone means "no fault, proceed normally".
struct WriteFault {
  Kind kind = Kind::kNone;
  int delay_ms = 0;              ///< kDelay / kPartialWrite pause
  std::size_t keep = 0;          ///< kPartialWrite / kTruncate prefix length
  std::size_t corrupt_at = 0;    ///< kCorrupt byte offset
  std::uint8_t corrupt_mask = 1; ///< kCorrupt XOR mask (never 0)
};

/// One read-site decision (kDelay, kCorrupt, or kReset-as-spurious-close).
struct ReadFault {
  Kind kind = Kind::kNone;
  int delay_ms = 0;
  std::size_t corrupt_at = 0;
  std::uint8_t corrupt_mask = 1;
};

/// Draw the next decision for a write of `len` bytes. Consumes one index.
[[nodiscard]] WriteFault next_write_fault(std::size_t len);
/// Draw the next decision for a read that returned `len` bytes.
[[nodiscard]] ReadFault next_read_fault(std::size_t len);
/// Draw the next connect decision; true = refuse the connection attempt.
[[nodiscard]] bool next_connect_fault();
/// Draw the next accept decision; true = drop the accepted connection.
[[nodiscard]] bool next_accept_fault();

/// Injection accounting since the last install().
struct Stats {
  std::uint64_t decisions = 0;  ///< decision indices consumed
  std::array<std::uint64_t, kKindCount> injected{};  ///< by Kind, [kNone] unused
  [[nodiscard]] std::uint64_t total_injected() const noexcept;
};
[[nodiscard]] Stats stats();

/// Bounded trace of injected faults as (decision index, kind), oldest
/// first, capacity-limited; single-threaded runs replaying the same ops
/// against the same seed get byte-identical traces.
[[nodiscard]] std::vector<std::pair<std::uint64_t, Kind>> trace();

}  // namespace sap::net::fault
