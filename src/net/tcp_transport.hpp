// TcpTransport — the proto::Transport backend over real sockets.
//
// Topology: hub-and-spoke. One process runs a *hub* (TcpTransport::listen),
// every other process runs a *client* (TcpTransport::connect). A party id
// is hosted by exactly one transport; clients claim ids from the hub via a
// Hello/Welcome handshake, and every protocol message travels as a kData
// frame (net/frame.hpp) carrying the link-encrypted envelope. The hub
// routes frames between connections by destination id — it can open only
// envelopes addressed to parties it hosts itself, so a relay observes
// exactly what the in-process transports' metadata trace records:
// ciphertext + (from, to, kind).
//
// Two deployment shapes fall out of one implementation:
//
//   * relay mode — a single client hosts every party (SapSession with
//     TransportKind::kTcp): the session runs unmodified, every message
//     makes a genuine round trip through the hub process over TCP, and the
//     results stay bit-identical to the in-process backends;
//   * distributed mode — each process hosts its own party subset (the
//     net::MinerDaemon hosts the miner on the hub, each net::PartyClient
//     hosts one provider) and only ciphertext crosses machine boundaries.
//
// Liveness: sockets have no starvation analysis, so every wait is
// deadline-bound (TcpOptions): connect, the claim handshake, receive(), and
// stalled writes all fail with sap::Error when their deadline expires.
//
// has_mail()/send ordering: when the destination party is hosted by the
// *sending* transport (relay mode), send() blocks until the frame has
// completed its hub round trip into the local inbox. That keeps the
// Transport contract — has_mail() is meaningful between run_parties()
// batches — without the protocol layer knowing frames ever left the
// process. Sends to remote parties return once the frame is written; TCP
// ordering keeps per-link FIFO delivery.
//
// Threading: one background I/O thread per transport (the hub's runs
// accept+route, a client's demultiplexes its socket into per-party
// inboxes). send()/receive()/has_mail() are safe from any thread;
// trace() follows the base-class contract (call only while no batch runs).
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "protocol/session.hpp"
#include "protocol/transport.hpp"

namespace sap::net {

struct TcpOptions {
  int connect_timeout_ms = 5000;  ///< TCP connect + claim handshake deadline
  int receive_timeout_ms = 30000; ///< receive() / relay round-trip deadline
  int write_timeout_ms = 5000;    ///< per-stall deadline for socket writes
  std::size_t max_frame_body = kDefaultMaxBody;
};

class TcpTransport final : public proto::Transport {
 public:
  /// Hub role: bind `addr` (port 0 = ephemeral; see local_addr()) and start
  /// routing. `session_secret` seeds per-link key derivation exactly like
  /// the in-process backends.
  static std::unique_ptr<TcpTransport> listen(const SocketAddr& addr,
                                              std::uint64_t session_secret,
                                              TcpOptions opts = {});

  /// Client role: connect to a hub.
  static std::unique_ptr<TcpTransport> connect(const SocketAddr& addr,
                                               std::uint64_t session_secret,
                                               TcpOptions opts = {});

  ~TcpTransport() override;

  // ---- proto::Transport ------------------------------------------------

  /// Claim the next free party id from the hub (blocking handshake on a
  /// client). Dense ids under a fresh hub with one client — which is the
  /// relay deployment SapSession uses.
  proto::PartyId add_party() override;

  /// Parties hosted by THIS transport (not the cluster-wide count).
  [[nodiscard]] std::size_t party_count() const override;

  void send(proto::PartyId from, proto::PartyId to, proto::PayloadKind kind,
            std::span<const double> payload) override;

  /// Meaningful between batches for locally-addressed traffic (see the
  /// send-ordering note above); remote senders' frames are only visible
  /// once delivered.
  [[nodiscard]] bool has_mail(proto::PartyId party) const override;

  /// Blocks until mail arrives for `party` or the receive deadline expires
  /// (sap::Error). Throws immediately when the connection is gone.
  Delivery receive(proto::PartyId party) override;

  void set_drop_filter(DropFilter filter) override;
  [[nodiscard]] std::size_t dropped_count() const override;
  [[nodiscard]] const std::vector<proto::Message>& trace() const override;
  [[nodiscard]] std::size_t total_bytes() const override;

  // run_parties(): base sequential policy — the send-ordering guarantee
  // above makes every SapSession batch structure safe without workers.

  // ---- net-specific surface --------------------------------------------

  /// Claim a specific party id (distributed role drivers; kClaimAnyParty =
  /// auto-assign). Throws sap::Error if the id is already claimed.
  proto::PartyId claim_party(std::uint32_t desired);

  /// Non-throwing receive with an explicit deadline; false on timeout.
  bool try_receive(proto::PartyId party, Delivery& out, int timeout_ms);

  /// Hub: the bound address (ephemeral port resolved). Client: the hub
  /// address it connected to.
  [[nodiscard]] SocketAddr local_addr() const;

  /// Hub: currently open client connections.
  [[nodiscard]] std::size_t live_connections() const;

  /// Hub: client connections ever accepted.
  [[nodiscard]] std::size_t total_connections() const;

  /// Client: polite shutdown — sends kBye and stops accepting new mail.
  void send_bye();

  [[nodiscard]] bool is_hub() const noexcept { return role_ == Role::kHub; }

 private:
  enum class Role : std::uint8_t { kHub, kClient };
  struct Conn;

  TcpTransport(Role role, std::uint64_t session_secret, TcpOptions opts);

  [[nodiscard]] std::uint64_t link_key(proto::PartyId from, proto::PartyId to) const noexcept;

  // Record the send in the trace; returns false when the drop filter ate it.
  bool record_send(proto::PartyId from, proto::PartyId to, proto::PayloadKind kind,
                   proto::EncryptedEnvelope envelope);

  /// The one copy of claim semantics shared by local (claim_party) and
  /// remote (kHello) claims: id resolution, conflict check, route
  /// registration, parked-frame extraction. conn_mutex_ held.
  struct ClaimOutcome {
    std::uint32_t id = 0;
    bool conflict = false;
    std::vector<Frame> parked;
  };
  ClaimOutcome register_claim_locked(std::uint32_t desired, std::size_t owner)
      SAP_REQUIRES(conn_mutex_);

  // Hub internals. Lock order (outermost first): a Conn's write_mutex →
  // conn_mutex_ → mutex_. The hub NEVER blocks on a peer's socket: frames
  // ENQUEUE onto the destination's bounded outbound queue (write_mutex)
  // and the io loop drains it as POLLOUT allows — a slow client can delay
  // only frames addressed to it, and one that stops draining is
  // disconnected once its queue makes no progress for write_timeout_ms.
  // A dead conn's fd is closed only by the io thread (or the destructor)
  // under that conn's write_mutex, so no thread ever writes a recycled
  // descriptor.
  void io_loop_hub();
  void io_loop_client();
  // no locks held on entry:
  void hub_handle_frame(std::size_t conn_index, Frame frame)
      SAP_EXCLUDES(conn_mutex_, mutex_);
  void hub_dispatch(Frame frame) SAP_EXCLUDES(conn_mutex_, mutex_);
  void hub_write(std::size_t conn_index, const Frame& frame)
      SAP_EXCLUDES(conn_mutex_, mutex_);
  // caller holds conn.write_mutex:
  bool enqueue_frame_locked(Conn& conn, const Frame& frame)
      SAP_REQUIRES(conn.write_mutex);
  bool flush_outq_locked(Conn& conn) SAP_REQUIRES(conn.write_mutex);
  void mark_conn_closed(Conn* conn) SAP_EXCLUDES(conn_mutex_, mutex_);
  void client_handle_frame(Frame frame) SAP_EXCLUDES(mutex_);
  void deliver_local(const Frame& frame) SAP_EXCLUDES(mutex_);
  void deliver_locked(const Frame& frame) SAP_REQUIRES(mutex_);
  void fail_all(const std::string& why) SAP_EXCLUDES(mutex_);

  const Role role_;
  const std::uint64_t session_secret_;
  const TcpOptions opts_;

  // ---- shared mailbox state (mutex_/cv_) -------------------------------
  mutable Mutex mutex_;
  mutable CondVar cv_;
  std::vector<proto::PartyId> local_ids_ SAP_GUARDED_BY(mutex_);
  std::map<proto::PartyId, std::deque<proto::Message>> inbox_ SAP_GUARDED_BY(mutex_);
  std::vector<proto::Message> trace_ SAP_GUARDED_BY(mutex_);
  std::size_t total_bytes_ SAP_GUARDED_BY(mutex_) = 0;
  DropFilter drop_filter_ SAP_GUARDED_BY(mutex_);
  std::size_t dropped_ SAP_GUARDED_BY(mutex_) = 0;
  /// Relay round-trip accounting: frames sent/delivered per directed link
  /// whose destination is locally hosted.
  std::map<std::pair<proto::PartyId, proto::PartyId>, std::size_t> link_sent_
      SAP_GUARDED_BY(mutex_);
  std::map<std::pair<proto::PartyId, proto::PartyId>, std::size_t> link_delivered_
      SAP_GUARDED_BY(mutex_);
  /// Granted id of the pending claim.
  std::optional<std::uint32_t> welcome_ SAP_GUARDED_BY(mutex_);
  /// Sticky failure (kError / EOF).
  std::string error_ SAP_GUARDED_BY(mutex_);
  bool closed_ SAP_GUARDED_BY(mutex_) = false;
  bool bye_sent_ SAP_GUARDED_BY(mutex_) = false;

  // ---- hub connection state --------------------------------------------
  // conn_mutex_ guards conns_ membership, route_, pending_ and the
  // counters; each Conn's write_mutex serializes writes and fd close;
  // `open` is atomic so writers can bail without conn_mutex_. Entries are
  // never erased, so Conn pointers stay stable for the transport lifetime.
  // Lock order (outermost first, annotated via SAP_ACQUIRED_BEFORE below):
  // a Conn's write_mutex → conn_mutex_ → mutex_.
  struct Conn {
    TcpSocket sock;          ///< reads: io thread; writes/close: write_mutex
    FrameReader reader;      ///< io thread only
    Mutex write_mutex;       ///< serializes socket writes and the fd close
    std::atomic<bool> open{true};
    std::vector<proto::PartyId> parties;  ///< conn_mutex_ (hub bookkeeping)
    /// Outbound queue: encoded frames waiting for POLLOUT; bounded —
    /// overflow marks the conn dead instead of growing.
    std::deque<std::vector<std::uint8_t>> outq SAP_GUARDED_BY(write_mutex);
    /// Bytes of outq.front() already written.
    std::size_t outq_head SAP_GUARDED_BY(write_mutex) = 0;
    std::atomic<std::size_t> outq_bytes{0};       ///< lock-free pending peek
    std::atomic<std::uint64_t> flushed_total{0};  ///< drain-progress detector
    // Stall accounting, io thread only:
    std::uint64_t io_prev_flushed = 0;
    std::chrono::steady_clock::time_point io_stall_start{};
    bool io_stalled = false;
    Conn(TcpSocket s, std::size_t max_body) : sock(std::move(s)), reader(max_body) {}
  };
  mutable Mutex conn_mutex_ SAP_ACQUIRED_BEFORE(mutex_);
  TcpListener listener_;
  std::vector<std::unique_ptr<Conn>> conns_ SAP_GUARDED_BY(conn_mutex_);
  /// party id -> conn index, or kLocalHost for parties hosted here.
  static constexpr std::size_t kLocalHost = static_cast<std::size_t>(-1);
  std::map<proto::PartyId, std::size_t> route_ SAP_GUARDED_BY(conn_mutex_);
  /// Frames for unclaimed ids.
  std::map<proto::PartyId, std::vector<Frame>> pending_ SAP_GUARDED_BY(conn_mutex_);
  /// Body bytes across all of pending_.
  std::size_t pending_bytes_ SAP_GUARDED_BY(conn_mutex_) = 0;
  std::uint32_t next_auto_id_ SAP_GUARDED_BY(conn_mutex_) = 0;
  std::size_t live_conns_ SAP_GUARDED_BY(conn_mutex_) = 0;
  std::size_t total_conns_ SAP_GUARDED_BY(conn_mutex_) = 0;

  // ---- client connection state -----------------------------------------
  TcpSocket socket_;
  Mutex write_mutex_ SAP_ACQUIRED_BEFORE(mutex_);
  SocketAddr peer_addr_;

  std::thread io_thread_;
  std::atomic<bool> stop_{false};
};

/// SapSession transport factory for TransportKind::kTcp: every session
/// message relays through the hub at `addr` over real TCP while the session
/// itself runs unmodified (results bit-identical to the in-process
/// backends).
[[nodiscard]] proto::SapSession::TransportFactory tcp_transport_factory(
    const SocketAddr& addr, TcpOptions opts = {});

}  // namespace sap::net
