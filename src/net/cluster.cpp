#include "net/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "protocol/mining_engine.hpp"

namespace sap::net {

// ---- ShardRouter ---------------------------------------------------------

ShardRouter::ShardRouter(ShardRouterOptions opts)
    : opts_(std::move(opts)), registry_(proto::JobRegistry::builtins()) {
  SAP_REQUIRE(!opts_.miners.empty(), "ShardRouter: need at least one miner");
  SAP_REQUIRE(opts_.parties >= 3, "ShardRouter: need at least 3 parties");
  if (opts_.shards == 0) opts_.shards = opts_.miners.size();
  SAP_REQUIRE(opts_.replicas >= 1 && opts_.replicas <= opts_.miners.size(),
              "ShardRouter: replicas must be in [1, miner count]");
  clients_.resize(opts_.miners.size());
  floors_.assign(opts_.shards, 0);
}

std::vector<std::size_t> ShardRouter::owners(std::size_t shard) const {
  SAP_REQUIRE(shard < opts_.shards, "ShardRouter: shard id out of range");
  const std::size_t m = opts_.miners.size();
  std::vector<std::size_t> out;
  out.reserve(opts_.replicas);
  for (std::size_t j = 0; j < opts_.replicas; ++j) out.push_back((shard + j) % m);
  return out;
}

ServeClient& ShardRouter::client_for(std::size_t miner) {
  if (!clients_[miner])
    clients_[miner] = std::make_unique<ServeClient>(opts_.miners[miner], opts_.seed,
                                                    opts_.parties, opts_.client);
  return *clients_[miner];
}

proto::DecodedReceipt ShardRouter::contribute_wire(const std::vector<double>& wire) {
  // The nonce is word 0 of every kContribution payload — validate like the
  // daemon's exchange loop does (wire payloads are adversarial input).
  SAP_REQUIRE(!wire.empty(), "ShardRouter: empty contribution payload");
  SAP_REQUIRE(std::isfinite(wire[0]) && wire[0] >= 0.0 &&
                  wire[0] < 9007199254740992.0 && wire[0] == std::floor(wire[0]),
              "ShardRouter: malformed contribution nonce");
  const auto nonce = static_cast<std::uint64_t>(wire[0]);
  const auto shard = proto::shard_of_nonce(nonce, opts_.shards, opts_.layout);

  // Every owner ingests the batch (that is what makes a replica a valid
  // read target after the primary dies); the first live owner's receipt is
  // the client's, and the floor rises to the HIGHEST acked epoch so a
  // stale replica can never serve a pre-append view later.
  bool have_receipt = false;
  proto::DecodedReceipt receipt;
  std::uint64_t top = floors_[shard];
  std::string last_error = "no owner attempted";
  for (const auto m : owners(shard)) {
    try {
      const auto ack = client_for(m).contribute_wire(wire);
      top = std::max(top, ack.pool_epoch);
      if (!have_receipt) {
        receipt = ack;
        have_receipt = true;
      }
    } catch (const ServeError& e) {
      if (e.code() == proto::ServeErrorCode::kBadRequest) throw;  // definitive
      ++failovers_;
      last_error = e.what();
    } catch (const Error& e) {
      // Negative receipts are definitive (the batch itself is bad — every
      // owner would reject it identically); transport failures are not.
      if (std::string(e.what()).find("rejected this contribution") != std::string::npos)
        throw;
      clients_[m].reset();  // dead connection — reconnect on next use
      ++failovers_;
      last_error = e.what();
    }
  }
  if (!have_receipt)
    throw ServeError(proto::ServeErrorCode::kUnavailable,
                     "no live owner for shard " + std::to_string(shard) + ": " +
                         last_error);
  floors_[shard] = top;
  return receipt;
}

proto::DecodedPartialResponse ShardRouter::scatter_partial(
    std::size_t shard, const std::string& job, const proto::JobParams& params,
    const data::Dataset& queries) {
  std::string last_error = "no owner attempted";
  for (const auto m : owners(shard)) {
    try {
      auto resp = client_for(m).mine_partial(shard, job, params, queries);
      if (resp.shard_epoch < floors_[shard]) {
        // Stale replica: it missed an append another owner acked.
        ++failovers_;
        last_error = "stale shard epoch " + std::to_string(resp.shard_epoch) +
                     " < floor " + std::to_string(floors_[shard]);
        continue;
      }
      floors_[shard] = std::max(floors_[shard], resp.shard_epoch);
      return resp;
    } catch (const ServeError& e) {
      if (e.code() == proto::ServeErrorCode::kBadRequest) throw;
      ++failovers_;
      last_error = e.what();
    } catch (const Error& e) {
      clients_[m].reset();
      ++failovers_;
      last_error = e.what();
    }
  }
  throw ServeError(proto::ServeErrorCode::kUnavailable,
                   "no live owner for shard " + std::to_string(shard) + ": " +
                       last_error);
}

proto::DecodedPoolSlice ShardRouter::scatter_slice(std::size_t shard,
                                                   std::size_t max_records) {
  std::string last_error = "no owner attempted";
  for (const auto m : owners(shard)) {
    try {
      auto resp = client_for(m).pool_slice(shard, max_records);
      if (resp.shard_epoch < floors_[shard]) {
        ++failovers_;
        last_error = "stale shard epoch " + std::to_string(resp.shard_epoch) +
                     " < floor " + std::to_string(floors_[shard]);
        continue;
      }
      floors_[shard] = std::max(floors_[shard], resp.shard_epoch);
      return resp;
    } catch (const ServeError& e) {
      if (e.code() == proto::ServeErrorCode::kBadRequest) throw;
      ++failovers_;
      last_error = e.what();
    } catch (const Error& e) {
      clients_[m].reset();
      ++failovers_;
      last_error = e.what();
    }
  }
  throw ServeError(proto::ServeErrorCode::kUnavailable,
                   "no live owner for shard " + std::to_string(shard) + ": " +
                       last_error);
}

ShardRouter::Gathered ShardRouter::gather(std::size_t limit) {
  struct Row {
    proto::PoolKey key;
    std::size_t slice_idx;
    std::size_t row_idx;
  };
  std::vector<proto::DecodedPoolSlice> slices;
  slices.reserve(opts_.shards);
  Gathered out;
  out.watermark = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t g = 0; g < opts_.shards; ++g) {
    slices.push_back(scatter_slice(g, limit));
    out.watermark = std::min(out.watermark, slices.back().shard_epoch);
  }
  if (out.watermark == std::numeric_limits<std::uint64_t>::max()) out.watermark = 0;

  std::vector<Row> rows;
  std::size_t dims = 0;
  for (std::size_t s = 0; s < slices.size(); ++s) {
    const auto& slice = slices[s];
    if (slice.rows.size() == 0) continue;
    if (dims == 0) dims = slice.rows.dims();
    SAP_REQUIRE(slice.rows.dims() == dims,
                "ShardRouter: shard dimensionality mismatch in gather");
    for (std::size_t i = 0; i < slice.rows.size(); ++i)
      rows.push_back({slice.keys[i], s, i});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  const std::size_t n = limit == 0 ? rows.size() : std::min(limit, rows.size());
  linalg::Matrix features(n, dims, 0.0);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto rec = slices[rows[i].slice_idx].rows.record(rows[i].row_idx);
    auto dst = features.row(i);
    std::copy(rec.begin(), rec.end(), dst.begin());
    labels[i] = slices[rows[i].slice_idx].rows.label(rows[i].row_idx);
  }
  out.pool = data::Dataset("gathered", std::move(features), std::move(labels));
  return out;
}

proto::WireMiningResponse ShardRouter::mine_named(const std::string& job,
                                                  const proto::JobParams& params) {
  if (!registry_.contains(job))
    throw ServeError(proto::ServeErrorCode::kBadRequest, "unknown job: " + job);
  const auto& spec = registry_.find(job);
  proto::JobParams resolved;
  try {
    resolved = spec.resolve_params(params);
  } catch (const Error& e) {
    throw ServeError(proto::ServeErrorCode::kBadRequest, e.what());
  }

  proto::WireMiningResponse response;
  if (spec.mergeable()) {
    // Exact merge: identical to MiningEngine::run_sharded, with the shard
    // views replaced by live miners — queries are the canonical eval
    // prefix, partials one blob per shard, the merge router-side.
    data::Dataset queries;
    if (spec.trainable()) {
      std::size_t limit = 0;
      const auto it = resolved.find("eval-records");
      if (it != resolved.end()) limit = static_cast<std::size_t>(it->second);
      auto gathered = gather(limit);
      SAP_REQUIRE(gathered.pool.size() > 0, "ShardRouter: empty pool across shards");
      queries = std::move(gathered.pool);
    }
    std::vector<std::vector<double>> partials;
    partials.reserve(opts_.shards);
    std::uint64_t watermark = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t g = 0; g < opts_.shards; ++g) {
      auto partial = scatter_partial(g, job, params, queries);
      watermark = std::min(watermark, partial.shard_epoch);
      partials.push_back(std::move(partial.blob));
    }
    response.pool_epoch =
        watermark == std::numeric_limits<std::uint64_t>::max() ? 0 : watermark;
    response.values = spec.merge_partials(partials, queries, resolved);
    return response;
  }

  if (spec.merge_fallback == proto::MergeFallback::kRoute) {
    // Route the whole request to shard 0's owners — exact only when that
    // miner owns every shard (its engine serves over its owned set).
    std::string last_error = "no owner attempted";
    for (const auto m : owners(0)) {
      try {
        return client_for(m).mine_named(job, params);
      } catch (const ServeError& e) {
        if (e.code() == proto::ServeErrorCode::kBadRequest) throw;
        ++failovers_;
        last_error = e.what();
      } catch (const Error& e) {
        clients_[m].reset();
        ++failovers_;
        last_error = e.what();
      }
    }
    throw ServeError(proto::ServeErrorCode::kUnavailable,
                     "no live owner for routed job: " + last_error);
  }

  // MergeFallback::kGather — reassemble the canonical pool and execute flat
  // (a fresh single-shard engine run; no caching — the rows just crossed
  // the wire and the next request may see a different epoch).
  auto gathered = gather(0);
  SAP_REQUIRE(gathered.pool.size() > 0, "ShardRouter: empty pool across shards");
  proto::MiningEngine local({.threads = 0,
                             .cache_models = false,
                             .shards = 1,
                             .layout = proto::ShardLayout::kHashMod,
                             .owned = {}});
  local.set_pool(std::move(gathered.pool));
  const auto served = local.run({job, params});
  response.pool_epoch = gathered.watermark;
  response.values = served.values;
  return response;
}

// ---- RouterDaemon --------------------------------------------------------

RouterDaemon::RouterDaemon(RouterDaemonOptions opts)
    : opts_(std::move(opts)), router_(opts_.router) {
  const auto seeds =
      proto::logic::derive_session_seeds(opts_.router.seed, opts_.router.parties);
  secret_ = seeds.session_secret;
  my_id_ = static_cast<proto::PartyId>(opts_.router.parties);
  reactor_ = std::make_unique<Reactor>(
      opts_.reactor, [this](const Frame& frame) { return handle(frame); });
}

std::vector<Frame> RouterDaemon::handle(const Frame& frame) {
  std::vector<Frame> out;
  proto::PayloadKind out_kind{};
  std::vector<double> out_wire;
  try {
    const auto payload =
        body_envelope(frame.body)
            .open(proto::detail::derive_link_key(secret_, frame.from, my_id_));
    const auto kind = static_cast<proto::PayloadKind>(frame.payload_kind);
    served_.fetch_add(1, std::memory_order_relaxed);
    try {
      switch (kind) {
        case proto::PayloadKind::kContribution: {
          MutexLock lk(mutex_);
          const auto receipt = router_.contribute_wire(payload);
          out_kind = proto::PayloadKind::kContributionAck;
          out_wire = proto::encode_receipt(receipt.pool_epoch, receipt.pool_records);
          break;
        }
        case proto::PayloadKind::kMiningRequest: {
          const auto request = proto::decode_mining_request(std::span(payload));
          MutexLock lk(mutex_);
          const auto response = router_.mine_named(request.job, request.params);
          out_kind = proto::PayloadKind::kMiningResponse;
          out_wire = proto::encode_mining_response(response);
          break;
        }
        default:
          SAP_FAIL("RouterDaemon: the router serves only contributions and "
                   "mining requests");
      }
    } catch (const ServeError& e) {
      // Forward the typed code verbatim — the client's failover logic (if
      // it has one above the router) must see what the cluster saw.
      out_kind = proto::PayloadKind::kServeError;
      out_wire = proto::encode_serve_error(e.code(), e.what());
    }
    Frame resp;
    resp.type = FrameType::kData;
    resp.payload_kind = static_cast<std::uint8_t>(out_kind);
    resp.from = my_id_;
    resp.to = frame.from;
    resp.body = envelope_body(proto::EncryptedEnvelope(
        out_wire, proto::detail::derive_link_key(secret_, my_id_, frame.from)));
    out.push_back(std::move(resp));
  } catch (const Error& e) {
    Frame err;
    err.type = FrameType::kError;
    err.from = my_id_;
    err.to = frame.from;
    err.body = text_body(e.what());
    out.push_back(std::move(err));
  }
  return out;
}

}  // namespace sap::net
