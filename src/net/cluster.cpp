#include "net/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "net/fault.hpp"
#include "protocol/mining_engine.hpp"

namespace sap::net {

// ---- ShardRouter ---------------------------------------------------------

ShardRouter::ShardRouter(ShardRouterOptions opts)
    : opts_(std::move(opts)), registry_(proto::JobRegistry::builtins()) {
  SAP_REQUIRE(!opts_.miners.empty(), "ShardRouter: need at least one miner");
  SAP_REQUIRE(opts_.parties >= 3, "ShardRouter: need at least 3 parties");
  if (opts_.shards == 0) opts_.shards = opts_.miners.size();
  SAP_REQUIRE(opts_.replicas >= 1 && opts_.replicas <= opts_.miners.size(),
              "ShardRouter: replicas must be in [1, miner count]");
  clients_.resize(opts_.miners.size());
  health_.resize(opts_.miners.size());
  floors_.assign(opts_.shards, 0);
  hist_fanout_ = &obs_.histogram("router.fanout_ms");
  ctr_contributions_ = &obs_.counter("router.contributions");
  ctr_mine_ = &obs_.counter("router.mine_requests");
  ctr_breaker_opens_ = &obs_.counter("router.breaker_opens");
  breaker_gauges_.reserve(opts_.miners.size());
  for (std::size_t m = 0; m < opts_.miners.size(); ++m)
    breaker_gauges_.push_back(
        &obs_.gauge("router.m" + std::to_string(m) + ".breaker"));
  shard_requests_.reserve(opts_.shards);
  for (std::size_t g = 0; g < opts_.shards; ++g)
    shard_requests_.push_back(
        &obs_.counter("router.shard" + std::to_string(g) + ".requests"));
}

void ShardRouter::set_trace(std::uint64_t id) {
  trace_ = id;
  for (auto& client : clients_)
    if (client) client->set_trace(id);
}

std::vector<std::size_t> ShardRouter::owners(std::size_t shard) const {
  SAP_REQUIRE(shard < opts_.shards, "ShardRouter: shard id out of range");
  const std::size_t m = opts_.miners.size();
  std::vector<std::size_t> out;
  out.reserve(opts_.replicas);
  for (std::size_t j = 0; j < opts_.replicas; ++j) out.push_back((shard + j) % m);
  return out;
}

ServeClient& ShardRouter::client_for(std::size_t miner) {
  if (!clients_[miner]) {
    auto& h = health_[miner];
    if (std::chrono::steady_clock::now() < h.dead_until)
      SAP_FAIL("miner " + std::to_string(miner) +
               " skipped by negative-connect cache: " + h.last_connect_error);
    try {
      clients_[miner] = std::make_unique<ServeClient>(
          opts_.miners[miner], opts_.seed, opts_.parties, opts_.client);
    } catch (const Error& e) {
      // Remember the failure so every later owner loop inside the window
      // skips this miner instantly instead of paying the connect deadline
      // again — the dead-primary scatter no longer serializes timeouts.
      h.dead_until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(opts_.negative_cache_ms);
      h.last_connect_error = e.what();
      throw;
    }
    h.dead_until = {};
    clients_[miner]->set_trace(trace_);  // lazy connect mid-request keeps the id
  }
  return *clients_[miner];
}

void ShardRouter::drop_client(std::size_t miner) {
  if (clients_[miner]) {
    retries_accum_ += clients_[miner]->retries();
    clients_[miner].reset();
  }
}

std::size_t ShardRouter::client_retries() const {
  std::size_t total = retries_accum_;
  for (const auto& client : clients_)
    if (client) total += client->retries();
  return total;
}

void ShardRouter::record_success(std::size_t miner) {
  auto& h = health_[miner];
  h.failures = 0;
  if (h.state != BreakerState::kClosed) {
    h.state = BreakerState::kClosed;
    breaker_gauges_[miner]->set(static_cast<double>(BreakerState::kClosed));
  }
}

void ShardRouter::record_failure(std::size_t miner) {
  drop_client(miner);  // dead connection — reconnect on next use
  auto& h = health_[miner];
  ++h.failures;
  if (opts_.breaker_threshold > 0 && h.state == BreakerState::kClosed &&
      h.failures >= opts_.breaker_threshold) {
    h.state = BreakerState::kOpen;
    h.open_until = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(opts_.breaker_cooldown_ms);
    ctr_breaker_opens_->increment();
    breaker_gauges_[miner]->set(static_cast<double>(BreakerState::kOpen));
  }
}

bool ShardRouter::admit(std::size_t miner, std::string& why) {
  auto& h = health_[miner];
  if (h.state == BreakerState::kClosed) return true;
  if (h.state == BreakerState::kOpen) {
    if (std::chrono::steady_clock::now() < h.open_until) {
      why = "breaker open for miner " + std::to_string(miner);
      return false;
    }
    h.state = BreakerState::kHalfOpen;
    breaker_gauges_[miner]->set(static_cast<double>(BreakerState::kHalfOpen));
  }
  // Half-open: one probe through the stats door decides. Success closes
  // the breaker and admits the real request; failure restarts the cooldown.
  try {
    (void)client_for(miner).stats();
    record_success(miner);
    return true;
  } catch (const Error& e) {
    drop_client(miner);
    h.failures = 0;  // the next half-open probe decides alone
    h.state = BreakerState::kOpen;
    h.open_until = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(opts_.breaker_cooldown_ms);
    breaker_gauges_[miner]->set(static_cast<double>(BreakerState::kOpen));
    why = "breaker probe failed for miner " + std::to_string(miner) + ": " +
          e.what();
    return false;
  }
}

proto::DecodedReceipt ShardRouter::contribute_wire(const std::vector<double>& wire) {
  // The nonce is word 0 of every kContribution payload — validate like the
  // daemon's exchange loop does (wire payloads are adversarial input).
  SAP_REQUIRE(!wire.empty(), "ShardRouter: empty contribution payload");
  SAP_REQUIRE(std::isfinite(wire[0]) && wire[0] >= 0.0 &&
                  wire[0] < 9007199254740992.0 && wire[0] == std::floor(wire[0]),
              "ShardRouter: malformed contribution nonce");
  const auto nonce = static_cast<std::uint64_t>(wire[0]);
  const auto shard = proto::shard_of_nonce(nonce, opts_.shards, opts_.layout);
  ctr_contributions_->increment();
  shard_requests_[shard]->increment();

  // Every owner ingests the batch (that is what makes a replica a valid
  // read target after the primary dies); the first live owner's receipt is
  // the client's, and the floor rises to the HIGHEST acked epoch so a
  // stale replica can never serve a pre-append view later.
  bool have_receipt = false;
  proto::DecodedReceipt receipt;
  std::uint64_t top = floors_[shard];
  std::string last_error = "no owner attempted";
  for (const auto m : owners(shard)) {
    std::string why;
    if (!admit(m, why)) {
      ++failovers_;
      last_error = std::move(why);
      continue;
    }
    try {
      Stopwatch leg;
      const auto ack = client_for(m).contribute_wire(wire);
      hist_fanout_->record(leg.millis());
      record_success(m);
      top = std::max(top, ack.pool_epoch);
      if (!have_receipt) {
        receipt = ack;
        have_receipt = true;
      }
    } catch (const ServeError& e) {
      if (e.code() == proto::ServeErrorCode::kBadRequest) throw;  // definitive
      record_success(m);  // a typed refusal means the miner is alive
      ++failovers_;
      last_error = e.what();
    } catch (const Error& e) {
      // Negative receipts are definitive (the batch itself is bad — every
      // owner would reject it identically); transport failures are not.
      if (std::string(e.what()).find("rejected this contribution") != std::string::npos)
        throw;
      record_failure(m);
      ++failovers_;
      last_error = e.what();
    }
  }
  if (!have_receipt)
    throw ServeError(proto::ServeErrorCode::kUnavailable,
                     "no live owner for shard " + std::to_string(shard) + ": " +
                         last_error);
  floors_[shard] = top;
  return receipt;
}

proto::DecodedPartialResponse ShardRouter::scatter_partial(
    std::size_t shard, const std::string& job, const proto::JobParams& params,
    const data::Dataset& queries) {
  shard_requests_[shard]->increment();
  std::string last_error = "no owner attempted";
  for (const auto m : owners(shard)) {
    std::string why;
    if (!admit(m, why)) {
      ++failovers_;
      last_error = std::move(why);
      continue;
    }
    try {
      Stopwatch leg;
      auto resp = client_for(m).mine_partial(shard, job, params, queries);
      hist_fanout_->record(leg.millis());
      record_success(m);
      if (resp.shard_epoch < floors_[shard]) {
        // Stale replica: it missed an append another owner acked.
        ++failovers_;
        last_error = "stale shard epoch " + std::to_string(resp.shard_epoch) +
                     " < floor " + std::to_string(floors_[shard]);
        continue;
      }
      floors_[shard] = std::max(floors_[shard], resp.shard_epoch);
      return resp;
    } catch (const ServeError& e) {
      if (e.code() == proto::ServeErrorCode::kBadRequest) throw;
      record_success(m);
      ++failovers_;
      last_error = e.what();
    } catch (const Error& e) {
      record_failure(m);
      ++failovers_;
      last_error = e.what();
    }
  }
  throw ServeError(proto::ServeErrorCode::kUnavailable,
                   "no live owner for shard " + std::to_string(shard) + ": " +
                       last_error);
}

proto::DecodedPoolSlice ShardRouter::scatter_slice(std::size_t shard,
                                                   std::size_t max_records) {
  shard_requests_[shard]->increment();
  std::string last_error = "no owner attempted";
  for (const auto m : owners(shard)) {
    std::string why;
    if (!admit(m, why)) {
      ++failovers_;
      last_error = std::move(why);
      continue;
    }
    try {
      Stopwatch leg;
      auto resp = client_for(m).pool_slice(shard, max_records);
      hist_fanout_->record(leg.millis());
      record_success(m);
      if (resp.shard_epoch < floors_[shard]) {
        ++failovers_;
        last_error = "stale shard epoch " + std::to_string(resp.shard_epoch) +
                     " < floor " + std::to_string(floors_[shard]);
        continue;
      }
      floors_[shard] = std::max(floors_[shard], resp.shard_epoch);
      return resp;
    } catch (const ServeError& e) {
      if (e.code() == proto::ServeErrorCode::kBadRequest) throw;
      record_success(m);
      ++failovers_;
      last_error = e.what();
    } catch (const Error& e) {
      record_failure(m);
      ++failovers_;
      last_error = e.what();
    }
  }
  throw ServeError(proto::ServeErrorCode::kUnavailable,
                   "no live owner for shard " + std::to_string(shard) + ": " +
                       last_error);
}

ShardRouter::Gathered ShardRouter::gather(std::size_t limit) {
  struct Row {
    proto::PoolKey key;
    std::size_t slice_idx;
    std::size_t row_idx;
  };
  std::vector<proto::DecodedPoolSlice> slices;
  slices.reserve(opts_.shards);
  Gathered out;
  out.watermark = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t g = 0; g < opts_.shards; ++g) {
    slices.push_back(scatter_slice(g, limit));
    out.watermark = std::min(out.watermark, slices.back().shard_epoch);
  }
  if (out.watermark == std::numeric_limits<std::uint64_t>::max()) out.watermark = 0;

  std::vector<Row> rows;
  std::size_t dims = 0;
  for (std::size_t s = 0; s < slices.size(); ++s) {
    const auto& slice = slices[s];
    if (slice.rows.size() == 0) continue;
    if (dims == 0) dims = slice.rows.dims();
    SAP_REQUIRE(slice.rows.dims() == dims,
                "ShardRouter: shard dimensionality mismatch in gather");
    for (std::size_t i = 0; i < slice.rows.size(); ++i)
      rows.push_back({slice.keys[i], s, i});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  const std::size_t n = limit == 0 ? rows.size() : std::min(limit, rows.size());
  linalg::Matrix features(n, dims, 0.0);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto rec = slices[rows[i].slice_idx].rows.record(rows[i].row_idx);
    auto dst = features.row(i);
    std::copy(rec.begin(), rec.end(), dst.begin());
    labels[i] = slices[rows[i].slice_idx].rows.label(rows[i].row_idx);
  }
  out.pool = data::Dataset("gathered", std::move(features), std::move(labels));
  return out;
}

proto::WireMiningResponse ShardRouter::mine_named(const std::string& job,
                                                  const proto::JobParams& params) {
  ctr_mine_->increment();
  last_merge_ms_ = 0.0;
  if (!registry_.contains(job))
    throw ServeError(proto::ServeErrorCode::kBadRequest, "unknown job: " + job);
  const auto& spec = registry_.find(job);
  proto::JobParams resolved;
  try {
    resolved = spec.resolve_params(params);
  } catch (const Error& e) {
    throw ServeError(proto::ServeErrorCode::kBadRequest, e.what());
  }

  proto::WireMiningResponse response;
  if (spec.mergeable()) {
    // Exact merge: identical to MiningEngine::run_sharded, with the shard
    // views replaced by live miners — queries are the canonical eval
    // prefix, partials one blob per shard, the merge router-side.
    data::Dataset queries;
    if (spec.trainable()) {
      std::size_t limit = 0;
      const auto it = resolved.find("eval-records");
      if (it != resolved.end()) limit = static_cast<std::size_t>(it->second);
      auto gathered = gather(limit);
      SAP_REQUIRE(gathered.pool.size() > 0, "ShardRouter: empty pool across shards");
      queries = std::move(gathered.pool);
    }
    std::vector<std::vector<double>> partials;
    partials.reserve(opts_.shards);
    std::uint64_t watermark = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t g = 0; g < opts_.shards; ++g) {
      auto partial = scatter_partial(g, job, params, queries);
      watermark = std::min(watermark, partial.shard_epoch);
      partials.push_back(std::move(partial.blob));
    }
    response.pool_epoch =
        watermark == std::numeric_limits<std::uint64_t>::max() ? 0 : watermark;
    {
      Stopwatch merge_sw;  // the kMerge trace stage: router-side reassembly
      response.values = spec.merge_partials(partials, queries, resolved);
      last_merge_ms_ = merge_sw.millis();
    }
    return response;
  }

  if (spec.merge_fallback == proto::MergeFallback::kRoute) {
    // Route the whole request to shard 0's owners — exact only when that
    // miner owns every shard (its engine serves over its owned set).
    std::string last_error = "no owner attempted";
    for (const auto m : owners(0)) {
      std::string why;
      if (!admit(m, why)) {
        ++failovers_;
        last_error = std::move(why);
        continue;
      }
      try {
        auto resp = client_for(m).mine_named(job, params);
        record_success(m);
        return resp;
      } catch (const ServeError& e) {
        if (e.code() == proto::ServeErrorCode::kBadRequest) throw;
        record_success(m);
        ++failovers_;
        last_error = e.what();
      } catch (const Error& e) {
        record_failure(m);
        ++failovers_;
        last_error = e.what();
      }
    }
    throw ServeError(proto::ServeErrorCode::kUnavailable,
                     "no live owner for routed job: " + last_error);
  }

  // MergeFallback::kGather — reassemble the canonical pool and execute flat
  // (a fresh single-shard engine run; no caching — the rows just crossed
  // the wire and the next request may see a different epoch).
  auto gathered = gather(0);
  SAP_REQUIRE(gathered.pool.size() > 0, "ShardRouter: empty pool across shards");
  Stopwatch merge_sw;  // kMerge: reassembled-pool execution, router-side
  proto::MiningEngine local({.threads = 0,
                             .cache_models = false,
                             .shards = 1,
                             .layout = proto::ShardLayout::kHashMod,
                             .owned = {}});
  local.set_pool(std::move(gathered.pool));
  const auto served = local.run({job, params});
  last_merge_ms_ = merge_sw.millis();
  response.pool_epoch = gathered.watermark;
  response.values = served.values;
  return response;
}

obs::Snapshot ShardRouter::cluster_stats() {
  obs::Snapshot total = obs_.snapshot();
  total.set_counter("router.failovers", failovers_);
  total.set_counter("router.retries", client_retries());
  // This process's own fault injection (--fault / SAP_FAULT), same export
  // as MinerDaemon::stats_snapshot — counters merge by addition, so the
  // aggregate reads as cluster-wide injections.
  if (fault::enabled()) {
    const auto fs = fault::stats();
    total.set_counter("fault.decisions", fs.decisions);
    total.set_counter("fault.injected", fs.total_injected());
    for (int k = 1; k < fault::kKindCount; ++k)
      total.set_counter(std::string("fault.injected.") +
                            fault::kind_name(static_cast<fault::Kind>(k)),
                        fs.injected[static_cast<std::size_t>(k)]);
  }
  // Per-shard skew: hottest shard's request count over the mean (1.0 =
  // perfectly even). Derived at snapshot time from the per-shard counters.
  std::uint64_t peak = 0;
  std::uint64_t sum = 0;
  for (const auto* ctr : shard_requests_) {
    const auto v = ctr->value();
    peak = std::max(peak, v);
    sum += v;
  }
  if (sum > 0)
    total.set_gauge("router.shard_skew",
                    static_cast<double>(peak) * static_cast<double>(opts_.shards) /
                        static_cast<double>(sum));
  std::size_t unreachable = 0;
  for (std::size_t m = 0; m < opts_.miners.size(); ++m) {
    try {
      auto decoded = client_for(m).stats();
      // An operator stats poll doubles as the half-open probe: a miner
      // that answers its stats door has its breaker closed again.
      record_success(m);
      std::string prefix = "m";
      prefix += std::to_string(m);
      prefix += '.';
      for (auto& g : decoded.snapshot.gauges) g.first = prefix + g.first;
      decoded.snapshot.normalize();
      total.merge(decoded.snapshot);
    } catch (const Error&) {
      record_failure(m);
      ++unreachable;
    }
  }
  total.set_gauge("router.stats_unreachable", static_cast<double>(unreachable));
  total.normalize();
  return total;
}

// ---- RouterDaemon --------------------------------------------------------

RouterDaemon::RouterDaemon(RouterDaemonOptions opts)
    : opts_(std::move(opts)),
      router_(opts_.router),
      // A different door salt than the miners' (they salt with the raw
      // seed), so router-minted and miner-minted ids stay distinguishable.
      minter_(opts_.router.seed ^ 0xD00Dull) {
  const auto seeds =
      proto::logic::derive_session_seeds(opts_.router.seed, opts_.router.parties);
  secret_ = seeds.session_secret;
  my_id_ = static_cast<proto::PartyId>(opts_.router.parties);
  {
    MutexLock lk(mutex_);
    ctr_refused_ = &router_.metrics().counter("router.refused");
    opts_.reactor.metrics = &router_.metrics();
  }
  reactor_ = std::make_unique<Reactor>(
      opts_.reactor, [this](const Frame& frame) { return handle(frame); });
}

std::vector<Frame> RouterDaemon::handle(const Frame& frame) {
  std::vector<Frame> out;
  proto::PayloadKind out_kind{};
  std::vector<double> out_wire;
  // This door mints when the request rode untraced; the id propagates to
  // every fanned-to miner (ShardRouter::set_trace) and echoes back to the
  // client, so one id names the whole scatter-gather.
  const std::uint64_t trace_id = frame.trace != 0 ? frame.trace : minter_.mint();
  obs::TraceRecord rec;
  rec.id = trace_id;
  rec.op = proto::to_string(static_cast<proto::PayloadKind>(frame.payload_kind));
  bool traced = obs::enabled();
  const std::uint64_t t_entry = steady_now_ns();
  if (frame.recv_steady_ns != 0 && t_entry > frame.recv_steady_ns)
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kQueue)] =
        static_cast<double>(t_entry - frame.recv_steady_ns) / 1e6;
  try {
    const auto payload =
        body_envelope(frame.body)
            .open(proto::detail::derive_link_key(secret_, frame.from, my_id_));
    const auto kind = static_cast<proto::PayloadKind>(frame.payload_kind);
    const std::uint64_t t_decoded = steady_now_ns();
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kDecode)] =
        static_cast<double>(t_decoded - t_entry) / 1e6;
    if (kind != proto::PayloadKind::kStatsRequest)
      served_.fetch_add(1, std::memory_order_relaxed);
    double merge_ms = 0.0;
    try {
      switch (kind) {
        case proto::PayloadKind::kContribution: {
          MutexLock lk(mutex_);
          router_.set_trace(trace_id);
          const auto receipt = router_.contribute_wire(payload);
          out_kind = proto::PayloadKind::kContributionAck;
          out_wire = proto::encode_receipt(receipt.pool_epoch, receipt.pool_records);
          break;
        }
        case proto::PayloadKind::kMiningRequest: {
          const auto request = proto::decode_mining_request(std::span(payload));
          MutexLock lk(mutex_);
          router_.set_trace(trace_id);
          const auto response = router_.mine_named(request.job, request.params);
          merge_ms = router_.last_merge_ms();
          out_kind = proto::PayloadKind::kMiningResponse;
          out_wire = proto::encode_mining_response(response);
          break;
        }
        case proto::PayloadKind::kStatsRequest: {
          // The cluster aggregate: router metrics + every miner's snapshot
          // (exact counter/histogram merge), with THIS hop's traces. Does
          // not count toward requests_served_ and records no trace of its
          // own — measurement must not move what it measures.
          proto::decode_stats_request(std::span<const double>(payload));
          traced = false;
          MutexLock lk(mutex_);
          router_.set_trace(0);  // the stats fan-out itself rides untraced
          const auto snap = router_.cluster_stats();
          out_kind = proto::PayloadKind::kStatsResponse;
          out_wire = proto::encode_stats_response(snap, traces_.recent(32));
          break;
        }
        default:
          SAP_FAIL("RouterDaemon: the router serves only contributions, "
                   "mining requests, and stats");
      }
    } catch (const ServeError& e) {
      // Forward the typed code verbatim — the client's failover logic (if
      // it has one above the router) must see what the cluster saw.
      ctr_refused_->increment();
      out_kind = proto::PayloadKind::kServeError;
      out_wire = proto::encode_serve_error(e.code(), e.what());
    }
    const std::uint64_t t_served = steady_now_ns();
    // The router's "serve" is the downstream fan-out; the router-side
    // reassembly reports separately as kMerge.
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kMerge)] = merge_ms;
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kServe)] =
        std::max(0.0, static_cast<double>(t_served - t_decoded) / 1e6 - merge_ms);
    Frame resp;
    resp.type = FrameType::kData;
    resp.payload_kind = static_cast<std::uint8_t>(out_kind);
    resp.from = my_id_;
    resp.to = frame.from;
    resp.trace = trace_id;
    resp.body = envelope_body(proto::EncryptedEnvelope(
        out_wire, proto::detail::derive_link_key(secret_, my_id_, frame.from)));
    out.push_back(std::move(resp));
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kWrite)] =
        static_cast<double>(steady_now_ns() - t_served) / 1e6;
    if (traced) traces_.push(std::move(rec));
  } catch (const Error& e) {
    Frame err;
    err.type = FrameType::kError;
    err.from = my_id_;
    err.to = frame.from;
    err.trace = trace_id;
    err.body = text_body(e.what());
    out.push_back(std::move(err));
    if (traced) traces_.push(std::move(rec));
  }
  return out;
}

}  // namespace sap::net
