// Sharded multi-miner cluster: the scatter-gather coordinator (DESIGN.md
// §11).
//
// A cluster is M miner daemons, each running the SAME logical exchange with
// the k parties (same seed => bit-identical unified segments) but installing
// only the shards it OWNS (MinerDaemonOptions::owned_shards). The
// ShardRouter sits in front of them and presents the single-miner serving
// surface:
//
//   * kContribution  -> hash-routed by shard_of_nonce() to every owner of
//     the nonce's shard (primary + replicas), so replicas stay current and
//     can serve reads when the primary dies;
//   * kMiningRequest -> for jobs with an exact-merge contract
//     (JobSpec::partial / merge_partials): scatter one kPartialRequest per
//     shard across live owners, merge router-side — the merged report is
//     bit-identical to a single miner holding the whole pool, whatever the
//     shard count or layout. Jobs without a contract fall back per their
//     JobSpec: kGather reassembles the canonical pool from kPoolSliceRequest
//     slices and executes locally; kRoute forwards the whole request to one
//     miner.
//
// Consistency: the router tracks a per-shard EPOCH FLOOR — the highest
// shard epoch any owner acknowledged (contribution receipts and served
// partials both advance it). A replica answering below the floor is stale
// (it missed an append the primary acked) and is skipped, so failover never
// serves a report the client could distinguish from the primary's. The
// cluster-wide watermark of a merged response is the minimum shard epoch
// that contributed — the same quantity MiningEngine::pool_epoch() reports
// for an in-process ShardSet.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/reactor.hpp"
#include "net/remote.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/jobs.hpp"
#include "protocol/message.hpp"

namespace sap::net {

struct ShardRouterOptions {
  /// Serving endpoints (miner reactor doors or hubs), one per miner.
  std::vector<SocketAddr> miners;
  /// Total shards in the nonce-hash space; 0 = one per miner.
  std::size_t shards = 0;
  /// Owners per shard: primary + (replicas - 1) read/write replicas.
  /// Owner j of shard g is miners[(g + j) % M]. Must be <= miner count.
  std::size_t replicas = 1;
  proto::ShardLayout layout = proto::ShardLayout::kHashMod;
  std::uint64_t seed = 0x5A9;   ///< must match the miners' session seed
  std::size_t parties = 0;      ///< k (>= 3); must match the miners
  ServeClient::Options client{};
  /// Consecutive transport failures on one miner before its circuit
  /// breaker opens and the shard serves from replicas only (DESIGN.md
  /// §13). Typed refusals (the daemon answered) never count. 0 disables
  /// the breaker.
  std::size_t breaker_threshold = 3;
  /// How long an open breaker cools down before admitting one half-open
  /// probe through the stats door.
  int breaker_cooldown_ms = 250;
  /// After a failed connect, how long client_for() refuses to re-dial the
  /// same miner. Failovers inside the window skip the dead owner
  /// instantly instead of paying the full connect deadline per request.
  int negative_cache_ms = 100;
};

/// Scatter-gather coordinator over a set of sharded miner daemons. NOT
/// internally synchronized — callers (RouterDaemon, the bench driver)
/// serialize access. Connections are lazy and re-established after a
/// transport failure, which is what lets a killed-and-gone miner be routed
/// around instead of poisoning the router.
class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions opts);

  [[nodiscard]] std::size_t shards() const noexcept { return opts_.shards; }
  [[nodiscard]] std::size_t miners() const noexcept { return opts_.miners.size(); }

  /// Owner miner indices for a shard, primary first.
  [[nodiscard]] std::vector<std::size_t> owners(std::size_t shard) const;

  /// Route a pre-encoded kContribution payload to every owner of its
  /// nonce's shard. Returns the first live owner's receipt and raises the
  /// shard's epoch floor to the highest acked epoch. Throws ServeError
  /// {kUnavailable} when no owner is reachable; a definitive rejection
  /// (negative receipt, kBadRequest) rethrows immediately.
  proto::DecodedReceipt contribute_wire(const std::vector<double>& wire);

  /// Serve a named job across the cluster (see the file comment for the
  /// exact-merge / gather / route split). Throws ServeError{kBadRequest}
  /// for unknown jobs or bad params, ServeError{kUnavailable} when a shard
  /// has no live owner at or above its epoch floor.
  proto::WireMiningResponse mine_named(const std::string& job,
                                       const proto::JobParams& params = {});

  /// Per-shard epoch floors (index = global shard id).
  [[nodiscard]] const std::vector<std::uint64_t>& epoch_floors() const noexcept {
    return floors_;
  }
  /// Times a request was retried on another owner (dead/stale/unowned).
  [[nodiscard]] std::size_t failovers() const noexcept { return failovers_; }

  /// Per-miner circuit breaker (DESIGN.md §13): kClosed serves normally;
  /// kOpen skips the miner while its cooldown runs (replica-only serving);
  /// a cooled-down breaker goes kHalfOpen and one stats-door probe decides
  /// whether it closes or re-opens.
  enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
  [[nodiscard]] BreakerState breaker(std::size_t miner) const {
    return health_[miner].state;
  }
  /// Transport-level retries spent by this router's ServeClients (lifetime
  /// sum — survives the connection resets a failover performs).
  [[nodiscard]] std::size_t client_retries() const;

  /// The router's own metrics (router.shard<g>.requests counters, the
  /// router.fanout_ms leg-latency histogram — DESIGN.md §12).
  [[nodiscard]] obs::Registry& metrics() noexcept { return obs_; }

  /// Cluster-wide aggregate: this router's own snapshot merged with every
  /// reachable miner's stats-door snapshot. Counters and histograms merge
  /// EXACTLY (addition / bucket-wise — the aggregate histogram equals one
  /// daemon recording the union of the samples); gauges are point-in-time
  /// per-miner readings and are namespaced "m<i>." instead of pretending
  /// to merge. Unreachable miners are skipped and counted in the
  /// router.stats_unreachable gauge. Same serialization contract as every
  /// other router call.
  [[nodiscard]] obs::Snapshot cluster_stats();

  /// Trace id stamped on every downstream request frame until changed
  /// (0 = untraced). The RouterDaemon sets the door's id here so miners
  /// record the SAME id — the cross-hop propagation sap_cli stats shows.
  void set_trace(std::uint64_t id);

  /// Router-side merge time (merge_partials or gather-reassembly) of the
  /// last mine_named call — the kMerge trace stage (0 when the last
  /// request routed whole).
  [[nodiscard]] double last_merge_ms() const noexcept { return last_merge_ms_; }

 private:
  struct MinerHealth {
    BreakerState state = BreakerState::kClosed;
    std::size_t failures = 0;  ///< consecutive transport failures
    std::chrono::steady_clock::time_point open_until{};  ///< cooldown end
    std::chrono::steady_clock::time_point dead_until{};  ///< negative-cache expiry
    std::string last_connect_error;  ///< replayed while the cache holds
  };

  /// The lazily-connected client for miner m (connects on first use;
  /// failure paths call record_failure, which drops the slot). Throws
  /// without dialling while the miner's negative-connect cache holds.
  ServeClient& client_for(std::size_t miner);

  /// Breaker gate for one owner attempt: false (with `why`) while the
  /// breaker is open and cooling down. A cooled-down breaker admits one
  /// half-open probe through the stats door inline and closes (true) or
  /// re-opens (false) on the probe's outcome.
  bool admit(std::size_t miner, std::string& why);
  /// The miner answered (data or typed refusal): clear the failure streak
  /// and close its breaker.
  void record_success(std::size_t miner);
  /// Transport failure: drop the connection, bump the streak, trip the
  /// breaker at the threshold.
  void record_failure(std::size_t miner);
  /// Reset clients_[miner], folding its retry count into the lifetime sum.
  void drop_client(std::size_t miner);

  /// One shard's partial, trying owners in order (stale-epoch and dead
  /// owners skipped).
  proto::DecodedPartialResponse scatter_partial(std::size_t shard,
                                                const std::string& job,
                                                const proto::JobParams& params,
                                                const data::Dataset& queries);

  /// One shard's canonical slice, trying owners in order.
  proto::DecodedPoolSlice scatter_slice(std::size_t shard, std::size_t max_records);

  struct Gathered {
    data::Dataset pool;            ///< canonical (nonce, seq) order
    std::uint64_t watermark = 0;   ///< min shard epoch that contributed
  };
  /// Canonical pool across all shards, truncated to `limit` rows (0 = all).
  /// A shard contributes at most `limit` rows to any global limit-prefix,
  /// so per-shard truncation loses nothing.
  Gathered gather(std::size_t limit);

  ShardRouterOptions opts_;
  proto::JobRegistry registry_;   ///< merge contracts, router-side
  std::vector<std::unique_ptr<ServeClient>> clients_;  ///< parallel to miners
  std::vector<MinerHealth> health_;                    ///< parallel to miners
  std::vector<std::uint64_t> floors_;                  ///< per-shard epoch floor
  std::size_t failovers_ = 0;
  std::size_t retries_accum_ = 0;  ///< retries of since-dropped clients
  obs::Registry obs_;
  obs::Histogram* hist_fanout_ = nullptr;      ///< router.fanout_ms (per leg)
  obs::Counter* ctr_contributions_ = nullptr;  ///< router.contributions
  obs::Counter* ctr_mine_ = nullptr;           ///< router.mine_requests
  obs::Counter* ctr_breaker_opens_ = nullptr;  ///< router.breaker_opens
  std::vector<obs::Gauge*> breaker_gauges_;    ///< router.m<i>.breaker
  std::vector<obs::Counter*> shard_requests_;  ///< router.shard<g>.requests
  std::uint64_t trace_ = 0;                    ///< stamped on downstream frames
  double last_merge_ms_ = 0.0;
};

// ---- router daemon -------------------------------------------------------

struct RouterDaemonOptions {
  ShardRouterOptions router;
  ReactorOptions reactor;  ///< the router's own front door
};

/// The ShardRouter behind a reactor front door, speaking the miner wire
/// protocol — a ServeClient cannot tell a RouterDaemon from a MinerDaemon
/// (it claims the same logical miner id and answers the same payload
/// kinds). Requests are mutex-serialized onto the router.
class RouterDaemon {
 public:
  explicit RouterDaemon(RouterDaemonOptions opts);

  [[nodiscard]] SocketAddr local_addr() const { return reactor_->local_addr(); }
  void stop() { reactor_->stop(); }

  /// The wrapped router (stats; callers must not race serving traffic —
  /// which is why this read is intentionally outside the lock analysis:
  /// it is only valid after stop()).
  [[nodiscard]] const ShardRouter& router() const noexcept
      SAP_NO_THREAD_SAFETY_ANALYSIS {
    return router_;
  }
  [[nodiscard]] std::size_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Recent request traces recorded at THIS hop (each fanned-to miner holds
  /// its own records under the same id).
  [[nodiscard]] const obs::TraceRing& traces() const noexcept { return traces_; }

 private:
  std::vector<Frame> handle(const Frame& frame);

  RouterDaemonOptions opts_;
  std::uint64_t secret_ = 0;
  proto::PartyId my_id_ = 0;
  Mutex mutex_;
  ShardRouter router_ SAP_GUARDED_BY(mutex_);
  std::atomic<std::size_t> served_{0};
  obs::TraceRing traces_;
  obs::TraceMinter minter_;
  obs::Counter* ctr_refused_ = nullptr;  ///< router.refused (kServeError answers)
  /// Last member: joined before the handler's targets go away.
  std::unique_ptr<Reactor> reactor_;
};

}  // namespace sap::net
