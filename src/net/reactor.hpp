// C10k serving front door — an edge-triggered epoll reactor for sap::net.
//
// The hub transport (tcp_transport.hpp) is built for the exchange: k party
// connections, blocking-echo relay semantics, one poll() pass over every fd
// per tick. That shape is exactly wrong for the serving phase, where the
// miner is a request/response server for an open-ended client population
// ("millions of users", ROADMAP): poll() scans all C connections to find
// the few ready ones, every frame crosses two thread hand-offs, and every
// response is its own write() syscall. The reactor replaces that path:
//
//   * ONE acceptor thread drains accept() until EAGAIN and deals fds
//     round-robin to N sharded event loops.
//   * Each loop owns its connections exclusively — sockets, frame readers,
//     outbound queues and the timer wheel are touched only by the loop
//     thread, so the hot path takes no locks at all. Cross-thread traffic
//     (fresh fds from the acceptor, completions from compute) arrives
//     through DrainQueue inboxes (common/queue.hpp) + an eventfd wake.
//   * Sockets are registered edge-triggered (EPOLLIN|EPOLLOUT|EPOLLET);
//     reads drain until EAGAIN into the connection's incremental
//     FrameReader, so epoll_wait returns only genuinely-ready fds and the
//     cost per pass is O(ready), not O(connections).
//   * Decoded kData frames are handed to the compute side — a
//     sap::ThreadPool whose lanes drain a bounded WorkQueue — and the
//     handler's response frames come back pre-encoded through the owning
//     loop's completion inbox. A {slot, generation} ticket makes stale
//     completions for evicted/reused slots drop harmlessly.
//   * Responses queue per connection and flush with writev (many frames
//     per syscall); EPOLLOUT edges resume a flush the kernel buffer cut
//     short.
//   * A per-loop hashed timer wheel evicts idle and slow-loris
//     connections: any connection that neither completes a frame nor
//     accepts response bytes for idle_timeout_ms is closed (connections
//     with requests still in compute are spared).
//
// The reactor speaks the same wire protocol as the hub (Hello/Welcome
// claim, enveloped kData, kBye) so one client implementation works against
// both endpoints; client ids are auto-assigned from a high base so they
// can never collide with hub-side party ids. The k-party exchange stays on
// the hub — see DESIGN.md §10 for why.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "common/thread_pool.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace sap::net {

struct ReactorOptions {
  SocketAddr listen{"127.0.0.1", 0};
  std::size_t loops = 2;            ///< sharded event loops (>= 1)
  std::size_t compute_threads = 2;  ///< handler lanes (0 = one inline lane)
  /// Evict a connection that makes no progress (no completed inbound frame,
  /// no accepted outbound byte) for this long while nothing is in compute.
  int idle_timeout_ms = 60'000;
  std::size_t max_frame_body = kDefaultMaxBody;
  std::size_t max_connections = 16'000;  ///< accept cap (refused above)
  std::size_t max_outq_bytes = 64u << 20;  ///< per-connection outbound cap
  std::size_t compute_queue_cap = 4096;  ///< pending requests before shedding
  /// First auto-assigned client id. High base so reactor clients can never
  /// collide with hub party ids (providers 0..k-1, miner k, hub serving
  /// clients k+1...).
  std::uint32_t first_client_id = 1u << 20;
  /// Optional metrics sink (non-owning; must outlive the reactor). When
  /// set, the reactor records latency histograms on its hot path:
  /// reactor.queue_wait_ms (frame parsed -> compute pickup),
  /// reactor.handler_ms (serving dispatch), reactor.writev_batch (frames
  /// per flush syscall). Scalar stats stay in stats() either way.
  obs::Registry* metrics = nullptr;
};

class Reactor {
 public:
  /// The serving logic: one inbound kData frame -> zero or more response
  /// frames (already addressed; the reactor encodes and flushes them).
  /// Runs on compute lanes, concurrently with itself — it must be
  /// thread-safe and must not throw (exceptions are contained and the
  /// request produces no response).
  using Handler = std::function<std::vector<Frame>(const Frame&)>;

  /// Binds the listen address and starts acceptor, loops, and compute
  /// lanes; serving begins immediately.
  Reactor(ReactorOptions opts, Handler handler);

  /// stop() + join everything.
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// The bound address (ephemeral port resolved).
  [[nodiscard]] SocketAddr local_addr() const { return listener_addr_; }

  /// Shut down: stop accepting, drain compute, close every connection,
  /// join all threads. Idempotent; the first caller does the joining.
  void stop();

  struct Stats {
    std::size_t accepted = 0;      ///< connections accepted (incl. refused)
    std::size_t refused = 0;       ///< dropped at the max_connections cap
    std::size_t live = 0;          ///< currently-open connections
    std::size_t evicted_idle = 0;  ///< timer-wheel evictions (slow loris)
    std::size_t requests = 0;      ///< kData frames handed to compute
    std::size_t responses = 0;     ///< response frames flushed toward peers
    std::size_t shed = 0;          ///< requests refused: compute queue full
    std::size_t queue_depth = 0;   ///< requests waiting for a compute lane, now
    std::vector<std::size_t> loop_conns;  ///< connections dealt per loop
  };
  [[nodiscard]] Stats stats() const;

  /// Compute-pool execution totals (task latency / batch counters for the
  /// stats door; the pool runs one long-lived lane batch, so `busy_ns` is
  /// lane lifetime, not per-request latency — that lives in
  /// reactor.handler_ms).
  [[nodiscard]] ThreadPool::Stats compute_stats() const {
    return compute_pool_ ? compute_pool_->stats() : ThreadPool::Stats{};
  }

 private:
  struct Conn;
  struct Loop;
  struct Completion;

  /// One decoded request in flight to compute. {loop, slot, gen} is the
  /// ticket back to the owning connection; a mismatch on return means the
  /// connection died meanwhile and the completion is dropped.
  struct Work {
    std::uint32_t loop = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
    Frame frame;
  };

  void acceptor_main();
  void loop_main(std::size_t loop_index);
  void compute_main();
  void wake(Loop& loop);

  void adopt_fresh(Loop& loop);
  void apply_completions(Loop& loop);
  void handle_readable(Loop& loop, std::uint32_t slot, std::vector<std::uint8_t>& rbuf);
  void on_frame(Loop& loop, std::uint32_t slot, Frame&& frame);
  void enqueue_bytes(Loop& loop, std::uint32_t slot, std::vector<std::uint8_t> bytes);
  void flush_conn(Loop& loop, std::uint32_t slot);
  void evict(Loop& loop, std::uint32_t slot, bool idle);
  void process_tick(Loop& loop);
  Conn* conn_at(Loop& loop, std::uint32_t slot, std::uint32_t gen);

  ReactorOptions opts_;
  Handler handler_;
  TcpListener listener_;
  SocketAddr listener_addr_;

  /// Cached hot-path histogram slots (null when opts_.metrics is null) —
  /// registration happens once in the constructor, never on the data path.
  obs::Histogram* hist_queue_wait_ = nullptr;
  obs::Histogram* hist_handler_ = nullptr;
  obs::Histogram* hist_writev_batch_ = nullptr;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint32_t> next_client_id_;
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> refused_{0};
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> evicted_idle_{0};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> responses_{0};
  std::atomic<std::size_t> shed_{0};

  std::vector<std::unique_ptr<Loop>> loops_;
  WorkQueue<Work> work_q_;
  std::unique_ptr<ThreadPool> compute_pool_;
  std::thread compute_launcher_;
  std::thread acceptor_;
};

}  // namespace sap::net
