// Thin POSIX TCP plumbing for sap::net — nonblocking sockets with explicit
// deadlines.
//
// Everything here is deliberately low-level and deadline-driven: the
// in-process transports detect liveness failures by starvation analysis
// (all workers blocked => mail can never arrive), which does not translate
// to sockets — a peer process can simply be gone. Every blocking operation
// in this layer (connect, accept, read, write) therefore takes an explicit
// timeout in milliseconds and fails with sap::Error when it expires, so a
// hung peer turns into a clean protocol error instead of a wedged process.
//
// All sockets are nonblocking + TCP_NODELAY; helpers poll() for readiness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

struct iovec;  // <sys/uio.h>; forward-declared so this header stays light

namespace sap::net {

/// "HOST:PORT" endpoint. Host is an IPv4 dotted quad or "localhost"; port 0
/// asks the kernel for an ephemeral port (listeners only — see
/// TcpListener::local_addr for the resolved value).
struct SocketAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Parse "HOST:PORT"; throws sap::Error on malformed input.
  static SocketAddr parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;
};

/// Poll one fd for `events` (POLLIN/POLLOUT); true when ready, false on
/// timeout. Throws sap::Error on poll failure or error/hangup conditions
/// when waiting for writability.
bool poll_fd(int fd, short events, int timeout_ms);

/// Move-only connected TCP socket (owner of the fd).
class TcpSocket {
 public:
  TcpSocket() = default;
  /// Adopt a connected fd; switches it to nonblocking + TCP_NODELAY.
  explicit TcpSocket(int fd);
  ~TcpSocket();
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connect with a deadline; throws sap::Error on refusal or timeout.
  static TcpSocket connect(const SocketAddr& addr, int timeout_ms);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Write the whole buffer; polls for writability whenever the kernel
  /// buffer is full, allowing at most `timeout_ms` per stall. Throws
  /// sap::Error on timeout or a closed/reset connection.
  void write_all(const void* data, std::size_t len, int timeout_ms);

  /// Read up to `len` bytes once the fd is readable (waiting at most
  /// `timeout_ms`). Returns the byte count (0 on timeout); sets `closed`
  /// when the peer has shut down the connection.
  std::size_t read_some(void* data, std::size_t len, int timeout_ms, bool& closed);

  /// Nonblocking write attempt: returns bytes written (possibly 0 when the
  /// kernel buffer is full). Throws sap::Error on a closed/reset
  /// connection. Never waits — the hub's io loop drains queues with this.
  std::size_t write_some(const void* data, std::size_t len);

  /// Nonblocking gathered write: one syscall over `iovcnt` buffers (many
  /// queued frames per syscall — the reactor's batched flush). Returns
  /// bytes written (0 when the kernel buffer is full); throws sap::Error on
  /// a closed/reset connection. Never waits.
  std::size_t writev_some(const struct iovec* iov, int iovcnt);

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Move-only listening socket.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen (SO_REUSEADDR). `backlog <= 0` means SOMAXCONN — a
  /// connection storm queues in the kernel instead of getting RSTs while
  /// the acceptor drains. Throws sap::Error on failure.
  static TcpListener listen(const SocketAddr& addr, int backlog = 0);

  /// The bound address with port 0 resolved to the kernel-assigned port.
  [[nodiscard]] SocketAddr local_addr() const;

  /// Accept one connection, waiting at most `timeout_ms`; the returned
  /// socket is invalid (valid() == false) on timeout. `timeout_ms == 0`
  /// never polls: one nonblocking accept() syscall, invalid when the
  /// kernel queue is empty — acceptor loops drain with this until EAGAIN.
  TcpSocket accept(int timeout_ms);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  void close() noexcept;

 private:
  int fd_ = -1;
};

}  // namespace sap::net
