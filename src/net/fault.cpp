#include "net/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/mutex.hpp"

namespace sap::net::fault {
namespace {

// Decisions, stats, and the trace live behind one mutex: fault mode is a
// test/chaos facility, never a hot path — when disabled the only cost
// anywhere is the relaxed enabled() load, and when enabled a short critical
// section per socket operation keeps every structure TSAN-clean without
// ordering subtleties.
struct State {
  Mutex mutex;
  FaultPlan plan SAP_GUARDED_BY(mutex);
  std::uint64_t next_index SAP_GUARDED_BY(mutex) = 0;
  std::array<std::uint64_t, kKindCount> injected SAP_GUARDED_BY(mutex){};
  std::vector<std::pair<std::uint64_t, Kind>> ring SAP_GUARDED_BY(mutex);
};

constexpr std::size_t kTraceCapacity = 4096;

std::atomic<bool> g_enabled{false};

State& state() {
  static State s;
  return s;
}

// SplitMix64 finalizer (Steele/Lea/Flood) — the same mixer sap::rng uses
// for seeding, reimplemented here so the fault schedule is a self-contained
// pure function of (seed, index).
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double unit_interval(std::uint64_t word) noexcept {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

// Draw the decision word for the next index and record what got injected.
// `record` runs under the state mutex with the plan, the fresh word, and a
// derived parameter word; it returns the Kind injected (kNone = no fault).
template <typename Fn>
Kind draw(Fn&& record) {
  State& s = state();
  MutexLock lk(s.mutex);
  const std::uint64_t index = s.next_index++;
  const std::uint64_t word = decision_word(s.plan.seed, index);
  const Kind kind = record(s.plan, unit_interval(word), mix64(word));
  if (kind != Kind::kNone) {
    ++s.injected[static_cast<int>(kind)];
    if (s.ring.size() < kTraceCapacity) s.ring.emplace_back(index, kind);
  }
  return kind;
}

int bounded_delay(const FaultPlan& plan, std::uint64_t param) noexcept {
  const int cap = plan.delay_ms > 0 ? plan.delay_ms : 1;
  return 1 + static_cast<int>(param % static_cast<std::uint64_t>(cap));
}

double parse_probability(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  SAP_REQUIRE(end != nullptr && *end == '\0' && p >= 0.0 && p <= 1.0,
              "FaultPlan: bad probability for '" + key + "': '" + value + "'");
  return p;
}

std::uint64_t parse_u64_field(const std::string& key, const std::string& value) {
  SAP_REQUIRE(!value.empty(), "FaultPlan: empty value for '" + key + "'");
  std::uint64_t out = 0;
  for (const char c : value) {
    SAP_REQUIRE(c >= '0' && c <= '9',
                "FaultPlan: bad integer for '" + key + "': '" + value + "'");
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

void append_field(std::string& out, const char* key, double p) {
  if (p <= 0.0) return;
  if (!out.empty()) out += ',';
  out += key;
  out += '=';
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", p);
  out += buf;
}

}  // namespace

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kDrop: return "drop";
    case Kind::kDelay: return "delay";
    case Kind::kPartialWrite: return "partial";
    case Kind::kTruncate: return "truncate";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kReset: return "reset";
    case Kind::kRefuseAccept: return "accept";
  }
  return "none";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(start, comma - start);
    start = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    SAP_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < field.size(),
                "FaultPlan: expected key=value, got '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64_field(key, value);
    } else if (key == "delay_ms") {
      const std::uint64_t ms = parse_u64_field(key, value);
      SAP_REQUIRE(ms >= 1 && ms <= 60'000, "FaultPlan: delay_ms out of range");
      plan.delay_ms = static_cast<int>(ms);
    } else if (key == "drop") {
      plan.drop = parse_probability(key, value);
    } else if (key == "delay") {
      plan.delay = parse_probability(key, value);
    } else if (key == "partial") {
      plan.partial = parse_probability(key, value);
    } else if (key == "truncate") {
      plan.truncate = parse_probability(key, value);
    } else if (key == "corrupt") {
      plan.corrupt = parse_probability(key, value);
    } else if (key == "reset") {
      plan.reset = parse_probability(key, value);
    } else if (key == "accept") {
      plan.refuse_accept = parse_probability(key, value);
    } else if (key == "rate") {
      const double p = parse_probability(key, value) / 3.0;
      plan.drop = plan.corrupt = plan.reset = p;
    } else {
      SAP_FAIL("FaultPlan: unknown key '" + key + "' (expected seed, drop, delay, "
               "partial, truncate, corrupt, reset, accept, rate, delay_ms)");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out = "seed=" + std::to_string(seed);
  append_field(out, "drop", drop);
  append_field(out, "delay", delay);
  append_field(out, "partial", partial);
  append_field(out, "truncate", truncate);
  append_field(out, "corrupt", corrupt);
  append_field(out, "reset", reset);
  append_field(out, "accept", refuse_accept);
  if (delay_ms != FaultPlan{}.delay_ms) out += ",delay_ms=" + std::to_string(delay_ms);
  return out;
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void install(const FaultPlan& plan) {
  State& s = state();
  {
    MutexLock lk(s.mutex);
    s.plan = plan;
    s.next_index = 0;
    s.injected.fill(0);
    s.ring.clear();
  }
  g_enabled.store(true, std::memory_order_release);
}

void uninstall() noexcept {
  g_enabled.store(false, std::memory_order_release);
}

bool install_from_env() {
  const char* spec = std::getenv("SAP_FAULT");
  if (spec == nullptr || spec[0] == '\0') return false;
  install(FaultPlan::parse(spec));
  return true;
}

FaultPlan plan() {
  State& s = state();
  MutexLock lk(s.mutex);
  return s.plan;
}

std::uint64_t decision_word(std::uint64_t seed, std::uint64_t index) noexcept {
  // Golden-ratio index stride before the finalizer: adjacent indices land
  // far apart in the mix input, so short schedules have no visible lattice.
  return mix64(seed ^ (index * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

WriteFault next_write_fault(std::size_t len) {
  WriteFault out;
  draw([&](const FaultPlan& p, double u, std::uint64_t param) {
    // Cumulative thresholds over the write-applicable kinds; one uniform
    // draw selects at most one fault per operation.
    double edge = p.drop;
    if (u < edge) {
      out.kind = Kind::kDrop;
      return out.kind;
    }
    edge += p.delay;
    if (u < edge) {
      out.kind = Kind::kDelay;
      out.delay_ms = bounded_delay(p, param);
      return out.kind;
    }
    edge += p.partial;
    if (u < edge && len >= 2) {
      out.kind = Kind::kPartialWrite;
      out.keep = 1 + static_cast<std::size_t>(param % (len - 1));
      out.delay_ms = bounded_delay(p, mix64(param));
      return out.kind;
    }
    edge += p.truncate;
    if (u < edge && len >= 1) {
      out.kind = Kind::kTruncate;
      out.keep = static_cast<std::size_t>(param % len);
      return out.kind;
    }
    edge += p.corrupt;
    if (u < edge && len >= 1) {
      out.kind = Kind::kCorrupt;
      out.corrupt_at = static_cast<std::size_t>(param % len);
      out.corrupt_mask = static_cast<std::uint8_t>(1u << (mix64(param) % 8));
      return out.kind;
    }
    edge += p.reset;
    if (u < edge) {
      out.kind = Kind::kReset;
      return out.kind;
    }
    return Kind::kNone;
  });
  return out;
}

ReadFault next_read_fault(std::size_t len) {
  ReadFault out;
  draw([&](const FaultPlan& p, double u, std::uint64_t param) {
    double edge = p.delay;
    if (u < edge) {
      out.kind = Kind::kDelay;
      out.delay_ms = bounded_delay(p, param);
      return out.kind;
    }
    edge += p.corrupt;
    if (u < edge && len >= 1) {
      out.kind = Kind::kCorrupt;
      out.corrupt_at = static_cast<std::size_t>(param % len);
      out.corrupt_mask = static_cast<std::uint8_t>(1u << (mix64(param) % 8));
      return out.kind;
    }
    edge += p.reset;
    if (u < edge) {
      out.kind = Kind::kReset;  // surfaces as a spurious peer close
      return out.kind;
    }
    return Kind::kNone;
  });
  return out;
}

bool next_connect_fault() {
  bool refuse = false;
  draw([&](const FaultPlan& p, double u, std::uint64_t /*param*/) {
    if (u < p.reset) {
      refuse = true;
      return Kind::kReset;
    }
    return Kind::kNone;
  });
  return refuse;
}

bool next_accept_fault() {
  bool refuse = false;
  draw([&](const FaultPlan& p, double u, std::uint64_t /*param*/) {
    if (u < p.refuse_accept) {
      refuse = true;
      return Kind::kRefuseAccept;
    }
    return Kind::kNone;
  });
  return refuse;
}

std::uint64_t Stats::total_injected() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected) total += n;
  return total;
}

Stats stats() {
  State& s = state();
  MutexLock lk(s.mutex);
  Stats out;
  out.decisions = s.next_index;
  out.injected = s.injected;
  return out;
}

std::vector<std::pair<std::uint64_t, Kind>> trace() {
  State& s = state();
  MutexLock lk(s.mutex);
  return s.ring;
}

}  // namespace sap::net::fault
