#include "net/frame.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"

namespace sap::net {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kBye);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  SAP_REQUIRE(known_type(static_cast<std::uint8_t>(frame.type)),
              "encode_frame: unknown frame type");
  // The length prefix is 32-bit: reject instead of silently truncating into
  // a frame the peer would drop as a checksum mismatch.
  SAP_REQUIRE(frame.body.size() <= 0xFFFFFFFFu, "encode_frame: body exceeds u32 length");
  const std::size_t start = out.size();
  out.reserve(start + kFrameHeaderBytes + frame.body.size());
  put_u32(out, kFrameMagic);
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.push_back(frame.payload_kind);
  out.push_back(0);  // reserved
  put_u32(out, frame.from);
  put_u32(out, frame.to);
  put_u64(out, frame.trace);
  put_u32(out, static_cast<std::uint32_t>(frame.body.size()));
  // CRC over the header-so-far + body; the crc field itself is excluded.
  std::uint32_t crc = crc32(out.data() + start, 28);
  crc = crc32(frame.body.data(), frame.body.size(), crc);
  put_u32(out, crc);
  out.insert(out.end(), frame.body.begin(), frame.body.end());
}

void FrameReader::reset() {
  buf_.clear();
  buf_.shrink_to_fit();
  pos_ = 0;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t len) {
  // Compact lazily so long streams do not grow the buffer unboundedly.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10) && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameReader::next_view(FrameView& out) {
  if (buffered() < kFrameHeaderBytes) return false;
  const std::uint8_t* h = buf_.data() + pos_;
  SAP_REQUIRE(get_u32(h) == kFrameMagic, "FrameReader: bad magic (not a SAP frame)");
  SAP_REQUIRE(h[4] == kFrameVersion,
              "FrameReader: unsupported frame version " + std::to_string(h[4]));
  SAP_REQUIRE(known_type(h[5]), "FrameReader: unknown frame type");
  SAP_REQUIRE(h[7] == 0, "FrameReader: nonzero reserved byte");
  const std::size_t body_len = get_u32(h + 24);
  SAP_REQUIRE(body_len <= max_body_, "FrameReader: frame body exceeds the size cap");
  if (buffered() < kFrameHeaderBytes + body_len) return false;
  const std::uint8_t* body = h + kFrameHeaderBytes;
  std::uint32_t crc = crc32(h, 28);
  crc = crc32(body, body_len, crc);
  SAP_REQUIRE(crc == get_u32(h + 28), "FrameReader: frame checksum mismatch");

  out.version = h[4];
  out.type = static_cast<FrameType>(h[5]);
  out.payload_kind = h[6];
  out.from = get_u32(h + 8);
  out.to = get_u32(h + 12);
  out.trace = get_u64(h + 16);
  out.body = {body, body_len};
  pos_ += kFrameHeaderBytes + body_len;
  return true;
}

bool FrameReader::next(Frame& out) {
  FrameView view;
  if (!next_view(view)) return false;
  out.version = view.version;
  out.type = view.type;
  out.payload_kind = view.payload_kind;
  out.from = view.from;
  out.to = view.to;
  out.trace = view.trace;
  out.body.assign(view.body.begin(), view.body.end());
  return true;
}

std::vector<std::uint8_t> envelope_body(const proto::EncryptedEnvelope& env) {
  std::vector<std::uint8_t> body;
  body.reserve(8 + env.ciphertext().size() * 8);
  put_u64(body, env.checksum());
  for (const std::uint64_t word : env.ciphertext()) put_u64(body, word);
  return body;
}

proto::EncryptedEnvelope body_envelope(std::span<const std::uint8_t> body) {
  SAP_REQUIRE(body.size() >= 8 && body.size() % 8 == 0,
              "body_envelope: malformed envelope body");
  const std::uint64_t checksum = get_u64(body.data());
  std::vector<std::uint64_t> cipher(body.size() / 8 - 1);
  for (std::size_t i = 0; i < cipher.size(); ++i)
    cipher[i] = get_u64(body.data() + 8 + 8 * i);
  return proto::EncryptedEnvelope::from_raw(std::move(cipher), checksum);
}

std::vector<std::uint8_t> u32_body(std::uint32_t value) {
  std::vector<std::uint8_t> body;
  put_u32(body, value);
  return body;
}

std::uint32_t body_u32(std::span<const std::uint8_t> body) {
  SAP_REQUIRE(body.size() == 4, "body_u32: malformed control body");
  return get_u32(body.data());
}

std::vector<std::uint8_t> text_body(const std::string& text) {
  std::vector<std::uint8_t> body;
  for (std::size_t i = 0; i < text.size() && i < 256; ++i) {
    const char c = text[i];
    body.push_back((c >= 32 && c <= 126) ? static_cast<std::uint8_t>(c) : '?');
  }
  return body;
}

std::string body_text(std::span<const std::uint8_t> body) {
  std::string text;
  for (std::size_t i = 0; i < body.size() && i < 256; ++i) {
    const char c = static_cast<char>(body[i]);
    text.push_back((c >= 32 && c <= 126) ? c : '?');
  }
  return text;
}

}  // namespace sap::net
