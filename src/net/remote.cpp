#include "net/remote.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "net/fault.hpp"

namespace sap::net {

std::uint64_t dataset_digest(const data::Dataset& ds) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t word) {
    h ^= word;
    h *= 0x100000001B3ULL;
  };
  mix(ds.size());
  mix(ds.dims());
  for (const double v : ds.features().data()) mix(std::bit_cast<std::uint64_t>(v));
  for (const int label : ds.labels()) mix(static_cast<std::uint64_t>(label));
  return h;
}

std::uint64_t dataset_multiset_digest(const data::Dataset& ds) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const double v : ds.record(i)) {
      h ^= std::bit_cast<std::uint64_t>(v);
      h *= 0x100000001B3ULL;
    }
    h ^= static_cast<std::uint64_t>(ds.label(i));
    h *= 0x100000001B3ULL;
    acc += h;  // commutative combine
  }
  return acc;
}

proto::SapOptions serving_session_options(double noise_sigma, std::uint64_t seed,
                                          std::size_t optimize_threads) {
  proto::SapOptions opts;
  opts.noise_sigma = noise_sigma;
  opts.seed = seed;
  opts.compute_satisfaction = false;
  opts.optimizer.candidates = 6;
  opts.optimizer.refine_steps = 3;
  opts.optimizer.threads = optimize_threads;
  opts.optimizer.attacks = {.naive = true, .known_inputs = 4};
  return opts;
}

// ---- MinerDaemon ---------------------------------------------------------

MinerDaemon::MinerDaemon(MinerDaemonOptions opts)
    : opts_(std::move(opts)),
      engine_({.threads = opts_.mining_threads,
               .cache_models = opts_.cache_models,
               .shards = opts_.shards,
               .layout = opts_.shard_layout,
               .owned = opts_.owned_shards}),
      minter_(opts_.seed) {
  SAP_REQUIRE(opts_.parties >= 3, "MinerDaemon: need at least 3 parties");
  const auto seeds = proto::logic::derive_session_seeds(opts_.seed, opts_.parties);
  secret_ = seeds.session_secret;
  hub_ = TcpTransport::listen(opts_.listen, secret_, opts_.tcp);
  miner_id_ = hub_->claim_party(static_cast<std::uint32_t>(opts_.parties));
  // Register the hot-path metric slots once — serving threads only touch
  // the lock-free record path through these pointers (DESIGN.md §12).
  hist_serve_ms_ = &obs_.histogram("engine.serve_ms");
  hist_fit_ms_ = &obs_.histogram("engine.fit_ms");
  ctr_ingest_records_ = &obs_.counter("ingest.records");
  ctr_ingest_rejected_ = &obs_.counter("ingest.rejected");
  ctr_refused_bad_ = &obs_.counter("serve.refused.bad_request");
  ctr_refused_owner_ = &obs_.counter("serve.refused.not_owner");
  ctr_refused_unavail_ = &obs_.counter("serve.refused.unavailable");
  g_ingest_epoch_ = &obs_.gauge("ingest.epoch");
  if (opts_.reactor_loops > 0) {
    ReactorOptions ropts;
    ropts.listen = opts_.reactor_listen;
    ropts.loops = opts_.reactor_loops;
    ropts.compute_threads = opts_.reactor_compute_threads;
    ropts.idle_timeout_ms = opts_.reactor_idle_timeout_ms;
    ropts.max_frame_body = opts_.tcp.max_frame_body;
    ropts.metrics = &obs_;  // reactor.queue_wait_ms / handler_ms / writev_batch
    // The front door binds (and accepts) immediately so its address can be
    // advertised next to the hub's; serve_frame refuses every request until
    // the exchange installs the pool (serving_ flips in run()).
    reactor_ = std::make_unique<Reactor>(
        ropts, [this](const Frame& frame) { return serve_frame(frame); });
  }
}

SocketAddr MinerDaemon::reactor_addr() const {
  SAP_REQUIRE(reactor_ != nullptr, "MinerDaemon: reactor front door is disabled");
  return reactor_->local_addr();
}

void MinerDaemon::note(const std::string& line) const {
  if (!opts_.log) return;
  MutexLock lk(log_mutex_);
  opts_.log(line);
}

void MinerDaemon::serve_error(proto::ServeErrorCode code, const std::string& message,
                              proto::PayloadKind& out_kind,
                              std::vector<double>& out_wire) const {
  switch (code) {
    case proto::ServeErrorCode::kBadRequest: ctr_refused_bad_->increment(); break;
    case proto::ServeErrorCode::kNotOwner: ctr_refused_owner_->increment(); break;
    case proto::ServeErrorCode::kUnavailable: ctr_refused_unavail_->increment(); break;
  }
  note("refused (" + proto::to_string(code) + "): " + message);
  out_kind = proto::PayloadKind::kServeError;
  out_wire = proto::encode_serve_error(code, message);
}

bool MinerDaemon::serve_payload(proto::PayloadKind kind, std::span<const double> payload,
                                proto::PayloadKind& out_kind,
                                std::vector<double>& out_wire) {
  switch (kind) {
    case proto::PayloadKind::kContribution: {
      out_kind = proto::PayloadKind::kContributionAck;
      try {
        const auto contribution = proto::decode_contribution(payload);
        // Cluster routing check FIRST: an unowned nonce is a typed refusal
        // (the router must retry the owner), never a negative receipt (which
        // means "this batch is bad" — definitively).
        const auto global = proto::shard_of_nonce(contribution.nonce,
                                                  engine_.total_shards(),
                                                  engine_.layout());
        if (!engine_.owns(global)) {
          serve_error(proto::ServeErrorCode::kNotOwner,
                      "shard " + std::to_string(global) + " is not owned here",
                      out_kind, out_wire);
          return true;
        }
        const auto it =
            std::find_if(adaptors_.begin(), adaptors_.end(), [&](const auto& a) {
              return a.first == contribution.nonce;
            });
        SAP_REQUIRE(it != adaptors_.end(),
                    "MinerDaemon: contribution from unknown party (no adaptor for "
                    "nonce)");
        const auto batch = proto::logic::adapt_contribution(contribution, it->second, dims_);
        const auto epoch = engine_.append_records(contribution.nonce, batch);
        // The receipt's record count is the OWNING shard's size — for the
        // classic single-shard daemon that is the whole pool, bit-identical
        // to the pre-cluster receipts.
        const auto records = engine_.shard_view(global).snap->rows.size();
        out_wire = proto::encode_receipt(epoch, records);
        contributions_.fetch_add(1, std::memory_order_relaxed);
        ctr_ingest_records_->add(batch.size());
        g_ingest_epoch_->set(static_cast<double>(epoch));
        note("contribution accepted: shard " + std::to_string(global) + " at " +
             std::to_string(records) + " records, epoch " + std::to_string(epoch));
      } catch (const Error& e) {
        // Negative receipt (epoch 0): the contributor learns of the
        // rejection immediately instead of stalling out its deadline.
        note(std::string("rejected contribution: ") + e.what());
        ctr_ingest_rejected_->increment();
        out_wire = proto::encode_receipt(/*pool_epoch=*/0, /*pool_records=*/0);
      }
      return true;
    }
    case proto::PayloadKind::kMiningRequest: {
      // Refusals count as served requests (they were dispatched and
      // answered) — the pre-cluster contract, now with typed errors.
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      const auto request = proto::decode_mining_request(payload);
      // A request naming an absent job (or malformed params) is DEFINITIVE:
      // kServeError{kBadRequest}, so a router never wastes a failover on it.
      // The pre-cluster daemon answered an empty kMiningResponse here, which
      // a client could not tell from a jobless report.
      if (!request.job.empty() && !engine_.registry().contains(request.job)) {
        serve_error(proto::ServeErrorCode::kBadRequest, "unknown job: " + request.job,
                    out_kind, out_wire);
        return true;
      }
      if (!request.job.empty()) {
        try {
          (void)engine_.registry().find(request.job).resolve_params(request.params);
        } catch (const Error& e) {
          serve_error(proto::ServeErrorCode::kBadRequest, e.what(), out_kind, out_wire);
          return true;
        }
      }
      try {
        const auto response = engine_.run({request.job, request.params});
        hist_serve_ms_->record(response.millis);
        hist_fit_ms_->record(response.fit_millis);
        proto::WireMiningResponse wire;
        wire.pool_epoch = response.pool_epoch;
        wire.model_cached = response.model_cached;
        wire.model_incremental = response.model_incremental;
        wire.values = response.values;
        out_kind = proto::PayloadKind::kMiningResponse;
        out_wire = proto::encode_mining_response(wire);
      } catch (const Error& e) {
        // Job and params validated above — what remains is engine state
        // (pool not installed yet, shard mid-install): transient.
        serve_error(proto::ServeErrorCode::kUnavailable, e.what(), out_kind, out_wire);
      }
      return true;
    }
    case proto::PayloadKind::kPartialRequest: {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      const auto request = proto::decode_partial_request(payload);
      if (request.shard >= engine_.total_shards() || !engine_.owns(request.shard)) {
        serve_error(proto::ServeErrorCode::kNotOwner,
                    "shard " + std::to_string(request.shard) + " is not owned here",
                    out_kind, out_wire);
        return true;
      }
      if (!engine_.registry().contains(request.job) ||
          !engine_.registry().find(request.job).mergeable()) {
        serve_error(proto::ServeErrorCode::kBadRequest,
                    "no exact-merge contract for job: " + request.job, out_kind,
                    out_wire);
        return true;
      }
      try {
        const auto partial = engine_.run_partial(
            request.shard, {request.job, request.params}, request.queries);
        out_kind = proto::PayloadKind::kPartialResponse;
        out_wire = proto::encode_partial_response(partial.pool_epoch, partial.values);
      } catch (const Error& e) {
        serve_error(proto::ServeErrorCode::kUnavailable, e.what(), out_kind, out_wire);
      }
      return true;
    }
    case proto::PayloadKind::kPoolSliceRequest: {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      const auto request = proto::decode_pool_slice_request(payload);
      if (request.shard >= engine_.total_shards() || !engine_.owns(request.shard)) {
        serve_error(proto::ServeErrorCode::kNotOwner,
                    "shard " + std::to_string(request.shard) + " is not owned here",
                    out_kind, out_wire);
        return true;
      }
      try {
        const auto slice = engine_.shard_slice(request.shard, request.max_records);
        out_kind = proto::PayloadKind::kPoolSliceResponse;
        out_wire = proto::encode_pool_slice(slice.epoch, slice.rows, slice.keys);
      } catch (const Error& e) {
        serve_error(proto::ServeErrorCode::kUnavailable, e.what(), out_kind, out_wire);
      }
      return true;
    }
    case proto::PayloadKind::kShardSnapshotRequest: {
      // The resync door (DESIGN.md §13): one owned shard's ARRIVAL-order
      // rows + keys at the shard's CURRENT epoch. Arrival order — not the
      // canonical order shard_slice serves — because the rejoiner installs
      // this verbatim and arrival order is what incremental partial_fit
      // lineage (and therefore bit-identical serving) derives from.
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      const auto shard = proto::decode_shard_snapshot_request(payload);
      if (shard >= engine_.total_shards() || !engine_.owns(shard)) {
        serve_error(proto::ServeErrorCode::kNotOwner,
                    "shard " + std::to_string(shard) + " is not owned here",
                    out_kind, out_wire);
        return true;
      }
      try {
        const auto view = engine_.shard_view(shard);
        SAP_REQUIRE(view.snap != nullptr, "shard not installed yet");
        out_kind = proto::PayloadKind::kShardSnapshotResponse;
        out_wire = proto::encode_pool_slice(view.epoch, view.snap->rows, view.snap->keys);
      } catch (const Error& e) {
        serve_error(proto::ServeErrorCode::kUnavailable, e.what(), out_kind, out_wire);
      }
      return true;
    }
    case proto::PayloadKind::kStatsRequest: {
      // The stats door rides the SAME dispatch as serving traffic, so hub-
      // and reactor-fetched snapshots are assembled identically. It does
      // not count toward requests_served_ (pure measurement must not move
      // the serving counters it reports).
      proto::decode_stats_request(payload);
      out_kind = proto::PayloadKind::kStatsResponse;
      out_wire = proto::encode_stats_response(stats_snapshot(), traces_.recent(32));
      return true;
    }
    default:
      return false;  // late exchange traffic / reports: nothing to serve
  }
}

obs::Snapshot MinerDaemon::stats_snapshot() {
  obs::Snapshot snap = obs_.snapshot();
  snap.set_counter("serve.requests", requests_served_.load(std::memory_order_relaxed));
  snap.set_counter("ingest.batches", contributions_.load(std::memory_order_relaxed));
  snap.set_counter("trace.records", traces_.total());
  const auto cache = engine_.cache_stats();
  snap.set_counter("engine.cache.fits", cache.fits);
  snap.set_counter("engine.cache.incremental", cache.incremental);
  snap.set_counter("engine.cache.hits", cache.hits);
  snap.set_gauge("engine.cache.entries", static_cast<double>(cache.entries));
  const auto pool = engine_.pool_stats();
  snap.set_counter("engine.pool.batches", pool.batches);
  snap.set_counter("engine.pool.tasks", pool.tasks);
  snap.set_counter("engine.pool.busy_ns", pool.busy_ns);
  snap.set_gauge("engine.pool.peak_batch", static_cast<double>(pool.peak_batch));
  if (serving_.load(std::memory_order_acquire)) {
    // Pool shape: records + live snapshot refcounts over owned shards, the
    // epoch watermark, and how far the hottest shard runs ahead of it.
    std::size_t records = 0;
    long refs = 0;
    std::uint64_t max_epoch = 0;
    if (engine_.total_shards() == 1) {
      const auto view = engine_.pool_view();
      if (view.data) {
        records = view.data->size();
        refs = view.data.use_count();
        max_epoch = view.epoch;
      }
    } else {
      for (const auto g : engine_.owned_shards()) {
        const auto view = engine_.shard_view(g);
        records += view.snap->rows.size();
        refs += view.snap.use_count();
        max_epoch = std::max(max_epoch, view.epoch);
      }
    }
    const std::uint64_t watermark = engine_.pool_epoch();
    snap.set_gauge("pool.records", static_cast<double>(records));
    snap.set_gauge("pool.epoch", static_cast<double>(watermark));
    snap.set_gauge("pool.snapshot_refs", static_cast<double>(refs));
    snap.set_gauge("ingest.watermark_lag", static_cast<double>(max_epoch - watermark));
  }
  if (reactor_) {
    const auto rs = reactor_->stats();
    snap.set_counter("reactor.accepted", rs.accepted);
    snap.set_counter("reactor.refused", rs.refused);
    snap.set_counter("reactor.evicted_idle", rs.evicted_idle);
    snap.set_counter("reactor.requests", rs.requests);
    snap.set_counter("reactor.responses", rs.responses);
    snap.set_counter("reactor.shed", rs.shed);
    snap.set_gauge("reactor.live", static_cast<double>(rs.live));
    snap.set_gauge("reactor.queue_depth", static_cast<double>(rs.queue_depth));
    for (std::size_t i = 0; i < rs.loop_conns.size(); ++i)
      snap.set_gauge("reactor.loop" + std::to_string(i) + ".conns",
                     static_cast<double>(rs.loop_conns[i]));
    snap.set_counter("reactor.compute.tasks", reactor_->compute_stats().tasks);
  }
  if (fault::enabled()) {
    // Chaos visibility: when this process injects socket faults, the stats
    // door says so — an operator reading surprising retry counters can tell
    // deliberate chaos from a genuinely sick network.
    const auto fs = fault::stats();
    snap.set_counter("fault.decisions", fs.decisions);
    snap.set_counter("fault.injected", fs.total_injected());
    for (int k = 1; k < fault::kKindCount; ++k)
      snap.set_counter(std::string("fault.injected.") +
                           fault::kind_name(static_cast<fault::Kind>(k)),
                       fs.injected[static_cast<std::size_t>(k)]);
  }
  snap.normalize();
  return snap;
}

std::vector<Frame> MinerDaemon::serve_frame(const Frame& frame) {
  std::vector<Frame> out;
  // Trace bookkeeping is pure measurement: adopt the id the frame rode in
  // with (a router minted it at ITS door) or mint one here; every response
  // echoes it. Stage clocks are stamped at boundaries only (rule R6).
  const auto kind = static_cast<proto::PayloadKind>(frame.payload_kind);
  const std::uint64_t trace_id = frame.trace != 0 ? frame.trace : minter_.mint();
  const bool traced =
      obs::enabled() && kind != proto::PayloadKind::kStatsRequest;  // no self-noise
  obs::TraceRecord rec;
  rec.id = trace_id;
  rec.op = proto::to_string(kind);
  const std::uint64_t t_entry = steady_now_ns();
  if (frame.recv_steady_ns != 0 && t_entry > frame.recv_steady_ns)
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kQueue)] =
        static_cast<double>(t_entry - frame.recv_steady_ns) / 1e6;
  try {
    SAP_REQUIRE(serving_.load(std::memory_order_acquire),
                "MinerDaemon: not serving yet (exchange in progress)");
    const auto payload =
        body_envelope(frame.body)
            .open(proto::detail::derive_link_key(secret_, frame.from, miner_id_));
    const std::uint64_t t_decoded = steady_now_ns();
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kDecode)] =
        static_cast<double>(t_decoded - t_entry) / 1e6;
    proto::PayloadKind out_kind{};
    std::vector<double> out_wire;
    SAP_REQUIRE(serve_payload(kind, payload, out_kind, out_wire),
                "MinerDaemon: the front door serves only contributions, mining "
                "requests, partials, pool slices, and stats");
    const std::uint64_t t_served = steady_now_ns();
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kServe)] =
        static_cast<double>(t_served - t_decoded) / 1e6;
    Frame resp;
    resp.type = FrameType::kData;
    resp.payload_kind = static_cast<std::uint8_t>(out_kind);
    resp.from = miner_id_;
    resp.to = frame.from;
    resp.trace = trace_id;
    resp.body = envelope_body(proto::EncryptedEnvelope(
        out_wire, proto::detail::derive_link_key(secret_, miner_id_, frame.from)));
    out.push_back(std::move(resp));
    rec.stage_ms[static_cast<std::size_t>(obs::Stage::kWrite)] =
        static_cast<double>(steady_now_ns() - t_served) / 1e6;
    if (traced) traces_.push(std::move(rec));
  } catch (const Error& e) {
    // Per-request containment, same policy as the hub loop — answer kError
    // so the client fails fast instead of timing out.
    note(std::string("reactor rejected request: ") + e.what());
    Frame err;
    err.type = FrameType::kError;
    err.from = miner_id_;
    err.to = frame.from;
    err.trace = trace_id;
    err.body = text_body(e.what());
    out.push_back(std::move(err));
    if (traced) traces_.push(std::move(rec));
  }
  return out;
}

MinerDaemon::Summary MinerDaemon::run() {
  const std::size_t k = opts_.parties;
  Summary summary;

  // ---- exchange: collect k forwarded shards + k aligned adaptors --------
  // There are no global phase barriers across processes: a fast party's
  // contribution or mining request can arrive while slower shards are still
  // in flight, so serving traffic is parked and replayed after the pool is
  // installed.
  // Shards and adaptors are keyed by nonce, and the exchange completes
  // when k nonces have BOTH — a duplicate or an unmatched surplus entry
  // (a re-sent shard, a confused or hostile client) is rejected or simply
  // never pairs up, instead of corrupting the completion count.
  std::map<std::uint64_t, proto::logic::MinerShard> shards;
  std::map<std::uint64_t, perturb::SpaceAdaptor> adaptors;
  std::vector<proto::Transport::Delivery> parked;
  const auto matched = [&] {
    std::size_t n = 0;
    for (const auto& [nonce, shard] : shards) n += adaptors.count(nonce);
    return n;
  };
  // ONE absolute deadline for the whole exchange phase: junk traffic must
  // not keep resetting the window, or a missing party would never surface
  // while any other client is chatty.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.tcp.receive_timeout_ms);
  while (matched() < k) {
    // Per-message containment even here: a hostile or corrupt message
    // (wrong link key, malformed nonce, unexpected kind) is logged and
    // skipped — only the phase deadline aborts the exchange, so one bad
    // client cannot take the daemon down for the k honest parties.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    SAP_REQUIRE(remaining.count() > 0,
                "MinerDaemon: exchange timed out waiting for shards/adaptors "
                "(missing party?)");
    proto::Transport::Delivery msg;
    bool got = false;
    try {
      got = hub_->try_receive(miner_id_, msg, static_cast<int>(remaining.count()));
    } catch (const Error& e) {
      note(std::string("rejected message during the exchange: ") + e.what());
      continue;
    }
    if (!got) continue;  // loop re-checks the deadline
    if (msg.kind == proto::PayloadKind::kContribution ||
        msg.kind == proto::PayloadKind::kMiningRequest) {
      parked.push_back(std::move(msg));  // a fast party got ahead — serve later
      continue;
    }
    try {
      const std::span<const double> payload(msg.payload);
      SAP_REQUIRE(!payload.empty(), "empty payload during the exchange");
      // Wire payloads are adversarial input: the cast below is UB for
      // non-finite, negative, or >= 2^64 values (the daemon is the new
      // cross-process trust boundary — validate like decode_contribution).
      SAP_REQUIRE(std::isfinite(payload[0]) && payload[0] >= 0.0 &&
                      payload[0] < 9007199254740992.0 &&
                      payload[0] == std::floor(payload[0]),
                  "malformed nonce during the exchange");
      const auto nonce = static_cast<std::uint64_t>(payload[0]);
      if (msg.kind == proto::PayloadKind::kForwardedData) {
        SAP_REQUIRE(
            shards
                .emplace(nonce, proto::logic::MinerShard{
                                    nonce, msg.from, proto::decode_dataset(payload.subspan(1))})
                .second,
            "duplicate shard for a nonce");
      } else if (msg.kind == proto::PayloadKind::kAdaptorSequence) {
        SAP_REQUIRE(
            adaptors.emplace(nonce, perturb::SpaceAdaptor::deserialize(payload.subspan(1)))
                .second,
            "duplicate adaptor for a nonce");
      } else {
        SAP_FAIL("unexpected " + to_string(msg.kind) + " during the exchange");
      }
    } catch (const Error& e) {
      note(std::string("rejected message during the exchange: ") + e.what());
    }
  }
  // Unify exactly the k matched pairs; unmatched surplus (noise that never
  // paired up) is discarded with a note.
  std::vector<proto::logic::MinerShard> matched_shards;
  std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> matched_adaptors;
  // (nonce, record count) per matched shard, ascending nonce — how the
  // unified pool (concatenated in that same canonical order) is sliced back
  // into per-nonce segments for the sharded install below.
  std::vector<std::pair<std::uint64_t, std::size_t>> segment_sizes;
  for (auto& [nonce, shard] : shards) {
    const auto it = adaptors.find(nonce);
    if (it == adaptors.end()) continue;
    segment_sizes.emplace_back(nonce, shard.data.labels.size());
    matched_shards.push_back(std::move(shard));
    matched_adaptors.emplace_back(nonce, std::move(it->second));
  }
  if (matched_shards.size() < shards.size() || matched_adaptors.size() < adaptors.size())
    note("discarded " + std::to_string(shards.size() - matched_shards.size()) +
         " unmatched shard(s) and " +
         std::to_string(adaptors.size() - matched_adaptors.size()) +
         " unmatched adaptor(s)");
  auto unified =
      proto::logic::unify_pool(std::move(matched_shards), std::move(matched_adaptors), k);
  adaptors_ = std::move(unified.adaptors);
  dims_ = unified.pool.dims();
  summary.pool_records = unified.pool.size();
  // Install per-nonce segments, not the flat pool: the (nonce, seq) keys are
  // what make contributions route to stable shards and exact merges order
  // canonically. unify_pool concatenates in ascending-nonce order, so the
  // cumulative slices below are exactly the per-party segments. For a
  // single-shard daemon the segments land on shard 0 in the same order —
  // the installed rows are bit-identical to the pre-cluster set_pool path.
  {
    std::vector<proto::PoolSegment> segments;
    segments.reserve(segment_sizes.size());
    std::size_t at = 0;
    for (const auto& [nonce, count] : segment_sizes) {
      segments.push_back({nonce, unified.pool.slice(at, at + count)});
      at += count;
    }
    SAP_REQUIRE(at == unified.pool.size(),
                "MinerDaemon: segment sizes do not cover the unified pool");
    engine_.set_pool_segments(std::move(segments));
  }
  if (engine_.total_shards() == 1) {
    note("pool installed: " + std::to_string(summary.pool_records) + " records, digest " +
         std::to_string(dataset_digest(*engine_.pool_view().data)));
  } else {
    std::string line = "pool installed: ";
    line += std::to_string(summary.pool_records);
    line += " records across owned shards{";
    for (const auto g : engine_.owned_shards()) {
      line += " ";
      line += std::to_string(g);
      line += ":";
      line += std::to_string(engine_.shard_view(g).snap->rows.size());
    }
    line += " }";
    note(line);
  }
  // Rejoin resync: a restarted miner's exchange re-derives the adaptors and
  // the INITIAL pool deterministically, but contributions streamed while it
  // was dead live only on surviving replicas — pull them before serving so
  // the router's epoch floors accept this miner again.
  if (!opts_.resync_peers.empty()) resync_owned_shards();
  // adaptors_/dims_/engine_ pool are frozen now — the reactor compute lanes
  // may start dispatching the moment this store is visible.
  serving_.store(true, std::memory_order_release);

  // ---- serve until every party has said goodbye -------------------------
  std::size_t parked_pos = 0;
  while (parked_pos < parked.size() || hub_->live_connections() > 0 ||
         hub_->has_mail(miner_id_)) {
    proto::Transport::Delivery msg;
    if (parked_pos < parked.size()) {
      msg = std::move(parked[parked_pos++]);
    } else {
      // try_receive decrypts — a corrupt envelope (wrong link key, flipped
      // ciphertext) throws HERE and must be contained per-message too.
      try {
        if (!hub_->try_receive(miner_id_, msg, /*timeout_ms=*/50)) continue;
      } catch (const Error& e) {
        note(std::string("rejected message: ") + e.what());
        continue;
      }
    }
    try {
      proto::PayloadKind out_kind{};
      std::vector<double> out_wire;
      // The hub transport decrypts inside try_receive, so the hub door
      // sees only decoded payloads: its traces carry serve + write stages
      // and always mint (Delivery has no frame-level trace field).
      const std::uint64_t t0 = steady_now_ns();
      if (serve_payload(msg.kind, msg.payload, out_kind, out_wire)) {
        const std::uint64_t t1 = steady_now_ns();
        hub_->send(miner_id_, msg.from, out_kind, out_wire);
        if (obs::enabled() && msg.kind != proto::PayloadKind::kStatsRequest) {
          obs::TraceRecord rec;
          rec.id = minter_.mint();
          rec.op = proto::to_string(msg.kind);
          rec.stage_ms[static_cast<std::size_t>(obs::Stage::kServe)] =
              static_cast<double>(t1 - t0) / 1e6;
          rec.stage_ms[static_cast<std::size_t>(obs::Stage::kWrite)] =
              static_cast<double>(steady_now_ns() - t1) / 1e6;
          traces_.push(std::move(rec));
        }
      }
    } catch (const Error& e) {
      // One malformed message must not take the daemon down.
      note(std::string("rejected message: ") + e.what());
    }
  }

  // The parties are gone: close the front door too (joins its threads), so
  // the counters below are final and destruction order never matters.
  if (reactor_) reactor_->stop();

  if (engine_.total_shards() == 1) {
    const auto view = engine_.pool_view();
    summary.pool_records = view.data->size();
    summary.pool_epoch = view.epoch;
    summary.pool_digest = dataset_digest(*view.data);
  } else {
    // Sharded: records sum over owned shards; the epoch is the watermark;
    // the digest is the commutative multiset combine — per-record hashes
    // sum, so the value is independent of shard count and layout and equal
    // to dataset_multiset_digest of the union.
    std::size_t records = 0;
    std::uint64_t digest = 0;
    for (const auto g : engine_.owned_shards()) {
      const auto view = engine_.shard_view(g);
      records += view.snap->rows.size();
      digest += dataset_multiset_digest(view.snap->rows);
    }
    summary.pool_records = records;
    summary.pool_epoch = engine_.pool_epoch();
    summary.pool_digest = digest;
  }
  summary.contributions = contributions_.load(std::memory_order_relaxed);
  summary.requests_served = requests_served_.load(std::memory_order_relaxed);
  return summary;
}

void MinerDaemon::resync_owned_shards() {
  for (const auto g : engine_.owned_shards()) {
    const std::uint64_t local_epoch = engine_.shard_epoch(g);
    bool adopted = false;
    for (const auto& peer : opts_.resync_peers) {
      try {
        ServeClient::Options copts;
        copts.timeout_ms = opts_.resync_timeout_ms;
        copts.max_frame_body = opts_.tcp.max_frame_body;
        ServeClient client(peer, opts_.seed, opts_.parties, copts);
        auto snap = client.shard_snapshot(g);
        client.bye();
        if (snap.shard_epoch <= local_epoch) {
          note("resync: peer " + peer.to_string() + " shard " + std::to_string(g) +
               " epoch " + std::to_string(snap.shard_epoch) + " not ahead of local " +
               std::to_string(local_epoch) + "; keeping exchange state");
          continue;
        }
        const std::size_t records = snap.rows.size();
        engine_.install_shard(g, std::move(snap.rows), std::move(snap.keys),
                              snap.shard_epoch);
        note("resync: shard " + std::to_string(g) + " adopted from " +
             peer.to_string() + " at epoch " + std::to_string(snap.shard_epoch) +
             " (" + std::to_string(records) + " records)");
        adopted = true;
        break;
      } catch (const Error& e) {
        // Down peer, non-owner (typed kNotOwner), or mid-install: try the
        // next one. Resync is best effort — a cold start still serves.
        note("resync: peer " + peer.to_string() + " shard " + std::to_string(g) +
             " unavailable: " + e.what());
      }
    }
    if (!adopted && opts_.log)
      note("resync: shard " + std::to_string(g) + " keeps local epoch " +
           std::to_string(local_epoch));
  }
}

// ---- ServeClient ---------------------------------------------------------

ServeClient::ServeClient(const SocketAddr& addr, std::uint64_t seed, std::size_t parties,
                         Options opts)
    : sock_(TcpSocket::connect(addr, opts.timeout_ms)),
      reader_(opts.max_frame_body),
      opts_(opts),
      addr_(addr),
      parties_(parties),
      retry_eng_(opts.retry_seed) {
  SAP_REQUIRE(parties >= 3, "ServeClient: need at least 3 parties");
  secret_ = proto::logic::derive_session_seeds(seed, parties).session_secret;
  miner_ = static_cast<proto::PartyId>(parties);
  handshake();
}

void ServeClient::handshake() {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.body = u32_body(kClaimAnyParty);
  std::vector<std::uint8_t> bytes;
  encode_frame(hello, bytes);
  sock_.write_all(bytes.data(), bytes.size(), opts_.timeout_ms);

  const Frame welcome = read_frame();
  if (welcome.type == FrameType::kError)
    SAP_FAIL("ServeClient: endpoint refused the claim: " + body_text(welcome.body));
  SAP_REQUIRE(welcome.type == FrameType::kWelcome,
              "ServeClient: expected kWelcome during the handshake");
  id_ = body_u32(welcome.body);
}

void ServeClient::reconnect() {
  sock_ = TcpSocket::connect(addr_, opts_.timeout_ms);
  reader_.reset();
  said_bye_ = false;
  handshake();
}

Frame ServeClient::read_frame() {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.timeout_ms);
  Frame frame;
  std::vector<std::uint8_t> chunk(16u << 10);
  while (!reader_.next(frame)) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    SAP_REQUIRE(remaining.count() > 0, "ServeClient: timed out waiting for a reply");
    bool closed = false;
    const std::size_t got =
        sock_.read_some(chunk.data(), chunk.size(), static_cast<int>(remaining.count()),
                        closed);
    SAP_REQUIRE(!closed || got > 0, "ServeClient: endpoint closed the connection");
    if (got > 0) reader_.feed(chunk.data(), got);
  }
  return frame;
}

std::vector<double> ServeClient::transact(proto::PayloadKind kind,
                                          std::span<const double> payload,
                                          proto::PayloadKind expect_kind) {
  Frame req;
  req.type = FrameType::kData;
  req.payload_kind = static_cast<std::uint8_t>(kind);
  req.from = id_;
  req.to = miner_;
  req.trace = trace_;
  req.body = envelope_body(proto::EncryptedEnvelope(
      payload, proto::detail::derive_link_key(secret_, id_, miner_)));
  std::vector<std::uint8_t> bytes;
  encode_frame(req, bytes);
  sock_.write_all(bytes.data(), bytes.size(), opts_.timeout_ms);

  for (;;) {
    const Frame resp = read_frame();
    if (resp.type == FrameType::kError)
      SAP_FAIL("ServeClient: request refused: " + body_text(resp.body));
    if (resp.type != FrameType::kData) continue;  // stray control traffic
    last_trace_ = resp.trace;
    const bool typed_error =
        resp.payload_kind == static_cast<std::uint8_t>(proto::PayloadKind::kServeError);
    SAP_REQUIRE(typed_error || resp.payload_kind == static_cast<std::uint8_t>(expect_kind),
                "ServeClient: unexpected reply payload kind");
    auto plain = body_envelope(resp.body)
                     .open(proto::detail::derive_link_key(secret_, miner_, id_));
    if (typed_error) {
      const auto err = proto::decode_serve_error(plain);
      throw ServeError(err.code, err.message);
    }
    return plain;
  }
}

std::vector<double> ServeClient::transact_idempotent(proto::PayloadKind kind,
                                                     std::span<const double> payload,
                                                     proto::PayloadKind expect_kind) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.retry_deadline_ms);
  for (int attempt = 0;; ++attempt) {
    try {
      if (attempt > 0 && !sock_.valid()) reconnect();
      return transact(kind, payload, expect_kind);
    } catch (const ServeError&) {
      throw;  // the daemon answered — typed refusals are never transport noise
    } catch (const Error& e) {
      // Transport failure (reset, timeout, corrupt frame, dropped write):
      // state on the wire is unknown but the request is idempotent, so a
      // fresh connection + resend is safe. Budget- AND deadline-bounded.
      if (attempt >= opts_.retry_attempts) throw;
      const int base =
          std::min(opts_.retry_backoff_ms << attempt, opts_.retry_backoff_cap_ms);
      const int jitter =
          base > 0 ? static_cast<int>(retry_eng_.uniform_index(
                         static_cast<std::uint64_t>(base))) : 0;
      const auto wake = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(base + jitter);
      if (wake >= deadline) throw;  // deadline-scoped: no attempt past it
      std::this_thread::sleep_for(std::chrono::milliseconds(base + jitter));
      ++retries_;
      // The old socket may be half-dead in any number of ways — drop it so
      // the next attempt rebuilds from scratch (reconnect failures route
      // through this same catch and back off further).
      sock_.close();
      (void)e;
    }
  }
}

proto::WireMiningResponse ServeClient::mine_named(const std::string& job,
                                                  const proto::JobParams& params) {
  const auto wire = transact_idempotent(proto::PayloadKind::kMiningRequest,
                                        proto::encode_mining_request(job, params),
                                        proto::PayloadKind::kMiningResponse);
  return proto::decode_mining_response(wire);
}

proto::DecodedPartialResponse ServeClient::mine_partial(std::size_t shard,
                                                        const std::string& job,
                                                        const proto::JobParams& params,
                                                        const data::Dataset& queries) {
  const auto wire = transact_idempotent(
      proto::PayloadKind::kPartialRequest,
      proto::encode_partial_request(shard, job, params, queries),
      proto::PayloadKind::kPartialResponse);
  return proto::decode_partial_response(wire);
}

proto::DecodedPoolSlice ServeClient::pool_slice(std::size_t shard,
                                                std::size_t max_records) {
  const auto wire = transact_idempotent(proto::PayloadKind::kPoolSliceRequest,
                                        proto::encode_pool_slice_request(shard, max_records),
                                        proto::PayloadKind::kPoolSliceResponse);
  return proto::decode_pool_slice(wire);
}

proto::DecodedPoolSlice ServeClient::shard_snapshot(std::size_t shard) {
  const auto wire = transact_idempotent(proto::PayloadKind::kShardSnapshotRequest,
                                        proto::encode_shard_snapshot_request(shard),
                                        proto::PayloadKind::kShardSnapshotResponse);
  return proto::decode_pool_slice(wire);
}

proto::DecodedStats ServeClient::stats() {
  const auto wire = transact_idempotent(proto::PayloadKind::kStatsRequest,
                                        proto::encode_stats_request(),
                                        proto::PayloadKind::kStatsResponse);
  return proto::decode_stats_response(wire);
}

proto::DecodedReceipt ServeClient::contribute_wire(const std::vector<double>& wire) {
  const auto ack = transact(proto::PayloadKind::kContribution, wire,
                            proto::PayloadKind::kContributionAck);
  const auto receipt = proto::decode_receipt(ack);
  SAP_REQUIRE(receipt.pool_epoch != 0,
              "ServeClient::contribute_wire: the miner rejected this contribution");
  return receipt;
}

void ServeClient::bye() {
  if (said_bye_) return;
  said_bye_ = true;
  Frame frame;
  frame.type = FrameType::kBye;
  frame.from = id_;
  frame.to = miner_;
  std::vector<std::uint8_t> bytes;
  encode_frame(frame, bytes);
  try {
    sock_.write_all(bytes.data(), bytes.size(), opts_.timeout_ms);
  } catch (const Error&) {
    // Peer already gone — goodbye is best-effort by definition.
  }
}

// ---- PartyClient ---------------------------------------------------------

PartyClient::PartyClient(data::Dataset shard, PartyClientOptions opts)
    : opts_(std::move(opts)), shard_(std::move(shard)) {
  k_ = opts_.parties;
  SAP_REQUIRE(k_ >= 3, "PartyClient: need at least 3 parties");
  SAP_REQUIRE(opts_.index < k_, "PartyClient: party index out of range");
  SAP_REQUIRE(shard_.size() >= 8, "PartyClient: shard too small (need >= 8 records)");
  dims_ = shard_.dims();
  x_ = shard_.features_T();
  coordinator_ = static_cast<proto::PartyId>(k_ - 1);
  miner_ = static_cast<proto::PartyId>(k_);

  auto seeds = proto::logic::derive_session_seeds(opts_.sap.seed, k_);
  eng_ = seeds.provider_eng[opts_.index];
  coord_eng_ = seeds.coordinator_eng;
  transport_ = TcpTransport::connect(opts_.connect, seeds.session_secret, opts_.tcp);
  id_ = transport_->claim_party(static_cast<std::uint32_t>(opts_.index));
  SAP_REQUIRE(id_ == opts_.index, "PartyClient: hub assigned an unexpected party id");
}

proto::Transport::Delivery PartyClient::expect(
    std::initializer_list<proto::PayloadKind> kinds) {
  const auto wanted = [&](proto::PayloadKind kind) {
    return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
  };
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (wanted(it->kind)) {
      auto msg = std::move(*it);
      stash_.erase(it);
      return msg;
    }
  }
  for (;;) {
    auto msg = transport_->receive(id_);
    if (wanted(msg.kind)) return msg;
    // Out-of-phase but legitimate traffic (no cross-process barriers): park
    // it for the phase that wants it.
    stash_.push_back(std::move(msg));
    SAP_REQUIRE(stash_.size() <= 1024, "PartyClient: runaway message stash");
  }
}

proto::PartyReport PartyClient::run_exchange() {
  SAP_REQUIRE(!exchange_done_, "PartyClient: exchange already ran");

  // ---- LocalOptimize ----------------------------------------------------
  local_ = proto::logic::optimize_local(x_, dims_, opts_.sap, eng_);

  // ---- TargetDistribution + PermutationExchange -------------------------
  proto::PartyId send_to = 0;
  std::uint32_t inbound = 0;
  if (id_ == coordinator_) {
    target_ = proto::logic::make_target_space(dims_, coord_eng_);
    const auto target_wire =
        proto::encode_target_space(target_.rotation(), target_.translation());
    for (std::size_t j = 0; j + 1 < k_; ++j)
      transport_->send(id_, static_cast<proto::PartyId>(j), proto::PayloadKind::kTargetSpace,
                       target_wire);
    const auto plan = proto::logic::make_exchange_plan(k_, coord_eng_);
    for (std::size_t j = 0; j + 1 < k_; ++j)
      transport_->send(id_, static_cast<proto::PartyId>(j),
                       proto::PayloadKind::kRoutingNotice,
                       proto::encode_routing(
                           static_cast<proto::PartyId>(plan.receiver_of_source[j]),
                           plan.inbound[j]));
    send_to = static_cast<proto::PartyId>(plan.receiver_of_source[k_ - 1]);
    inbound = plan.inbound[k_ - 1];  // 0 by construction (coordinator redirect)
  } else {
    bool got_target = false;
    bool got_routing = false;
    while (!(got_target && got_routing)) {
      const auto msg = expect({proto::PayloadKind::kTargetSpace,
                               proto::PayloadKind::kRoutingNotice});
      if (msg.kind == proto::PayloadKind::kTargetSpace) {
        const auto ts = proto::decode_target_space(msg.payload);
        target_ = perturb::GeometricPerturbation(ts.r, ts.t, 0.0);
        got_target = true;
      } else {
        const auto notice = proto::decode_routing(msg.payload);
        send_to = notice.receiver;
        inbound = notice.inbound;
        got_routing = true;
      }
    }
  }

  // ---- PerturbAndForward ------------------------------------------------
  const linalg::Matrix y = local_.g.apply(x_, eng_);
  const auto data_wire =
      proto::logic::tagged_wire(local_.nonce, proto::encode_dataset(y, shard_.labels()));
  const bool self_held = send_to == id_;
  if (!self_held)
    transport_->send(id_, send_to, proto::PayloadKind::kPerturbedData, data_wire);
  if (self_held)
    transport_->send(id_, miner_, proto::PayloadKind::kForwardedData, data_wire);
  for (std::uint32_t n = 0; n < inbound; ++n) {
    const auto msg = expect({proto::PayloadKind::kPerturbedData});
    transport_->send(id_, miner_, proto::PayloadKind::kForwardedData, msg.payload);
  }

  // ---- AdaptorAlignment -------------------------------------------------
  adaptor_ = perturb::SpaceAdaptor::between(local_.g, target_);
  if (id_ != coordinator_) {
    transport_->send(id_, coordinator_, proto::PayloadKind::kSpaceAdaptor,
                     proto::logic::tagged_wire(local_.nonce, adaptor_.serialize()));
  } else {
    std::vector<std::vector<double>> entries;
    for (std::size_t j = 0; j + 1 < k_; ++j)
      entries.push_back(expect({proto::PayloadKind::kSpaceAdaptor}).payload);
    entries.push_back(proto::logic::tagged_wire(local_.nonce, adaptor_.serialize()));
    proto::logic::shuffle_entries(entries, coord_eng_);
    for (const auto& e : entries)
      transport_->send(id_, miner_, proto::PayloadKind::kAdaptorSequence, e);
  }

  // ---- accounting (party-side knowledge only) ---------------------------
  const auto report = proto::logic::account_party(x_, y, adaptor_, id_, local_.rho,
                                                  local_.bound, k_, opts_.sap, eng_);
  exchange_done_ = true;
  return report;
}

proto::SapSession::ContributionReceipt PartyClient::contribute(const data::Dataset& batch) {
  SAP_REQUIRE(exchange_done_, "PartyClient::contribute: run the exchange first");
  SAP_REQUIRE(batch.size() >= 1, "PartyClient::contribute: empty batch");
  SAP_REQUIRE(batch.dims() == dims_, "PartyClient::contribute: dimension mismatch");
  const linalg::Matrix y = local_.g.apply(batch.features_T(), eng_);
  transport_->send(id_, miner_, proto::PayloadKind::kContribution,
                   proto::encode_contribution(local_.nonce, y, batch.labels()));
  const auto ack = expect({proto::PayloadKind::kContributionAck,
                           proto::PayloadKind::kServeError});
  if (ack.kind == proto::PayloadKind::kServeError) {
    const auto err = proto::decode_serve_error(ack.payload);
    throw ServeError(err.code, err.message);
  }
  const auto receipt = proto::decode_receipt(ack.payload);
  // Epoch 0 is the negative receipt (an accepted append is always >= 2:
  // set_pool is epoch 1). Fail with the real diagnosis, not a timeout.
  SAP_REQUIRE(receipt.pool_epoch != 0,
              "PartyClient::contribute: the miner rejected this contribution");
  return {receipt.pool_epoch, receipt.pool_records};
}

proto::WireMiningResponse PartyClient::mine_named(const std::string& job,
                                                  const proto::JobParams& params) {
  SAP_REQUIRE(exchange_done_, "PartyClient::mine_named: run the exchange first");
  transport_->send(id_, miner_, proto::PayloadKind::kMiningRequest,
                   proto::encode_mining_request(job, params));
  const auto msg = expect({proto::PayloadKind::kMiningResponse,
                           proto::PayloadKind::kServeError});
  if (msg.kind == proto::PayloadKind::kServeError) {
    const auto err = proto::decode_serve_error(msg.payload);
    throw ServeError(err.code, err.message);
  }
  return proto::decode_mining_response(msg.payload);
}

void PartyClient::finish() {
  if (transport_) transport_->send_bye();
}

}  // namespace sap::net
