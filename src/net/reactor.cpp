#include "net/reactor.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <deque>

#include "common/error.hpp"

namespace sap::net {
namespace {

using Clock = std::chrono::steady_clock;

/// epoll user-data tag reserved for the wake eventfd; connections use
/// (generation << 32) | slot, and slots never reach 2^32.
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};
constexpr std::size_t kWheelBuckets = 64;
/// Max frames gathered into one writev (IOV_MAX is >= 1024 everywhere; 64
/// already amortizes the syscall without big stack iovec arrays).
constexpr int kMaxIov = 64;
constexpr std::size_t kReadChunk = 64u << 10;

}  // namespace

/// Pre-encoded response bytes riding back to the owning loop. Posted even
/// when empty: the completion is what decrements the connection's in-flight
/// count (and un-spares it from idle eviction).
struct Reactor::Completion {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  std::size_t frames = 0;
  std::vector<std::uint8_t> bytes;
};

/// One connection. Owned exclusively by its loop thread; compute refers to
/// it only through {slot, gen} tickets.
struct Reactor::Conn {
  explicit Conn(std::size_t max_body) : reader(max_body) {}

  TcpSocket sock;
  FrameReader reader;
  std::uint32_t gen = 0;
  std::uint32_t id = 0;
  bool hello_done = false;
  bool closing = false;      ///< kBye received: flush, then close
  std::size_t inflight = 0;  ///< requests currently in compute
  std::deque<std::vector<std::uint8_t>> outq;
  std::size_t outq_head = 0;   ///< bytes of outq.front() already written
  std::size_t outq_bytes = 0;  ///< total queued bytes (bounded)
  /// Last completed inbound frame or accepted outbound byte — the signal
  /// the timer wheel evicts on. A half-sent header or a drip-fed body
  /// never advances it, which is exactly the slow-loris definition.
  Clock::time_point last_progress;
};

/// One sharded event loop. Everything below the "loop-thread-owned" line is
/// touched only by loop_main's thread — the cross-thread surface is the two
/// internally-locked DrainQueues, the eventfd, and the stats atomic.
struct Reactor::Loop {
  std::size_t index = 0;
  int epfd = -1;
  int wakefd = -1;
  int tick_ms = 100;

  DrainQueue<TcpSocket> fresh;   ///< acceptor -> loop (new connections)
  DrainQueue<Completion> done;   ///< compute -> loop (responses)
  std::atomic<std::size_t> assigned{0};

  // ---- loop-thread-owned ----
  std::vector<std::unique_ptr<Conn>> slots;
  std::vector<std::uint32_t> free_slots;
  std::uint32_t gen_counter = 0;
  struct WheelEntry {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  std::array<std::vector<WheelEntry>, kWheelBuckets> wheel;
  std::uint64_t tick = 0;

  std::thread thread;

  ~Loop() {
    if (epfd >= 0) ::close(epfd);
    if (wakefd >= 0) ::close(wakefd);
  }
};

Reactor::Reactor(ReactorOptions opts, Handler handler)
    : opts_(std::move(opts)),
      handler_(std::move(handler)),
      next_client_id_(opts_.first_client_id),
      work_q_(opts_.compute_queue_cap) {
  SAP_REQUIRE(handler_ != nullptr, "Reactor: null handler");
  SAP_REQUIRE(opts_.loops >= 1, "Reactor: need at least one event loop");
  SAP_REQUIRE(opts_.idle_timeout_ms > 0, "Reactor: idle timeout must be positive");
  if (opts_.metrics != nullptr) {
    // Register once, here: the record path must never take the registry
    // mutex (DESIGN.md §12).
    hist_queue_wait_ = &opts_.metrics->histogram("reactor.queue_wait_ms");
    hist_handler_ = &opts_.metrics->histogram("reactor.handler_ms");
    hist_writev_batch_ = &opts_.metrics->histogram("reactor.writev_batch");
  }
  listener_ = TcpListener::listen(opts_.listen);
  listener_addr_ = listener_.local_addr();

  for (std::size_t i = 0; i < opts_.loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->tick_ms = std::clamp(opts_.idle_timeout_ms / 16, 5, 1000);
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    SAP_REQUIRE(loop->epfd >= 0, "Reactor: epoll_create1 failed");
    loop->wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    SAP_REQUIRE(loop->wakefd >= 0, "Reactor: eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = kWakeTag;
    SAP_REQUIRE(::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakefd, &ev) == 0,
                "Reactor: cannot register the wake fd");
    loops_.push_back(std::move(loop));
  }

  // Threads last: everything they touch exists by now.
  for (std::size_t i = 0; i < loops_.size(); ++i)
    loops_[i]->thread = std::thread([this, i] { loop_main(i); });
  // Compute runs ON a sap::ThreadPool: one long-lived run_indexed batch
  // whose bodies drain the work queue until close() — the pool's barrier
  // becomes the compute-side join. Zero threads = one inline lane on the
  // launcher thread.
  const std::size_t lanes = std::max<std::size_t>(1, opts_.compute_threads);
  compute_pool_ = std::make_unique<ThreadPool>(opts_.compute_threads);
  compute_launcher_ = std::thread([this, lanes] {
    compute_pool_->run_indexed(lanes, [this](std::size_t) { compute_main(); });
  });
  acceptor_ = std::thread([this] { acceptor_main(); });
}

Reactor::~Reactor() { stop(); }

void Reactor::stop() {
  if (stopped_.exchange(true)) return;
  stop_.store(true, std::memory_order_release);
  // Order matters: close the work queue first so compute lanes drain and
  // post their last completions, THEN stop the loops (which apply or drop
  // them), then the acceptor (its poll tick notices stop_ within 100ms).
  work_q_.close();
  if (compute_launcher_.joinable()) compute_launcher_.join();
  for (auto& loop : loops_) wake(*loop);
  for (auto& loop : loops_)
    if (loop->thread.joinable()) loop->thread.join();
  if (acceptor_.joinable()) acceptor_.join();
  // Release the listening socket NOW, not at destruction: a stopped-but-
  // still-constructed reactor must refuse new connects immediately (clients
  // probing a downed cluster member need ECONNREFUSED to fail over fast,
  // not a handshake timeout against the kernel backlog).
  listener_ = TcpListener{};
}

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  s.live = live_.load(std::memory_order_relaxed);
  s.evicted_idle = evicted_idle_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.queue_depth = work_q_.size();
  for (const auto& loop : loops_)
    s.loop_conns.push_back(loop->assigned.load(std::memory_order_relaxed));
  return s;
}

void Reactor::wake(Loop& loop) {
  const std::uint64_t one = 1;
  // EAGAIN (counter saturated) already guarantees a pending wake; short
  // writes cannot happen on an eventfd.
  (void)!::write(loop.wakefd, &one, sizeof one);
}

// ---- acceptor ------------------------------------------------------------

void Reactor::acceptor_main() {
  std::size_t next_loop = 0;
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      if (!poll_fd(listener_.fd(), POLLIN, 100)) continue;
      // Drain the kernel queue to EAGAIN: a connection storm must not sit
      // in the backlog for one-accept-per-poll-tick.
      for (;;) {
        TcpSocket sock = listener_.accept(0);
        if (!sock.valid()) break;
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (live_.load(std::memory_order_relaxed) >= opts_.max_connections) {
          refused_.fetch_add(1, std::memory_order_relaxed);
          continue;  // dropped: the socket closes on scope exit
        }
        live_.fetch_add(1, std::memory_order_relaxed);
        Loop& loop = *loops_[next_loop];
        next_loop = (next_loop + 1) % loops_.size();
        if (loop.fresh.push(std::move(sock))) wake(loop);
      }
    }
  } catch (const Error&) {
    // Listener failure: stop accepting; existing connections keep serving.
  }
}

// ---- event loop ----------------------------------------------------------

Reactor::Conn* Reactor::conn_at(Loop& loop, std::uint32_t slot, std::uint32_t gen) {
  if (slot >= loop.slots.size()) return nullptr;
  Conn* conn = loop.slots[slot].get();
  return (conn != nullptr && conn->gen == gen) ? conn : nullptr;
}

void Reactor::loop_main(std::size_t loop_index) {
  Loop& loop = *loops_[loop_index];
  const auto tick = std::chrono::milliseconds(loop.tick_ms);
  auto next_tick = Clock::now() + tick;
  std::vector<epoll_event> events(512);
  std::vector<std::uint8_t> rbuf(kReadChunk);

  while (!stop_.load(std::memory_order_acquire)) {
    auto timeout = std::chrono::duration_cast<std::chrono::milliseconds>(
                       next_tick - Clock::now())
                       .count();
    const int wait_ms = static_cast<int>(std::clamp<decltype(timeout)>(
        timeout, 0, loop.tick_ms));
    const int n = ::epoll_wait(loop.epfd, events.data(),
                               static_cast<int>(events.size()), wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure: this shard shuts down
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        (void)!::read(loop.wakefd, &drained, sizeof drained);
        adopt_fresh(loop);
        apply_completions(loop);
        continue;
      }
      const auto slot = static_cast<std::uint32_t>(tag & 0xFFFFFFFFu);
      const auto gen = static_cast<std::uint32_t>(tag >> 32);
      if (conn_at(loop, slot, gen) == nullptr) continue;  // stale event
      const std::uint32_t ev = events[i].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        evict(loop, slot, /*idle=*/false);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) flush_conn(loop, slot);
      if (conn_at(loop, slot, gen) == nullptr) continue;  // flush evicted it
      if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) handle_readable(loop, slot, rbuf);
    }
    while (Clock::now() >= next_tick) {
      process_tick(loop);
      next_tick += tick;
    }
  }

  for (std::uint32_t slot = 0; slot < loop.slots.size(); ++slot)
    if (loop.slots[slot] != nullptr) evict(loop, slot, /*idle=*/false);
}

void Reactor::adopt_fresh(Loop& loop) {
  for (auto& sock : loop.fresh.drain()) {
    std::uint32_t slot = 0;
    if (!loop.free_slots.empty()) {
      slot = loop.free_slots.back();
      loop.free_slots.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(loop.slots.size());
      loop.slots.emplace_back();
    }
    auto conn = std::make_unique<Conn>(opts_.max_frame_body);
    conn->sock = std::move(sock);
    conn->gen = ++loop.gen_counter;
    conn->last_progress = Clock::now();
    epoll_event ev{};
    // Edge-triggered both ways; registration reports an initial edge for
    // data that raced in before the ADD, so nothing is missed.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = (static_cast<std::uint64_t>(conn->gen) << 32) | slot;
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->sock.fd(), &ev) != 0) {
      loop.free_slots.push_back(slot);
      live_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    const std::uint64_t idle_ticks = std::min<std::uint64_t>(
        kWheelBuckets - 1,
        static_cast<std::uint64_t>(opts_.idle_timeout_ms) /
                static_cast<std::uint64_t>(loop.tick_ms) +
            1);
    loop.wheel[(loop.tick + idle_ticks) % kWheelBuckets].push_back({slot, conn->gen});
    loop.slots[slot] = std::move(conn);
    loop.assigned.fetch_add(1, std::memory_order_relaxed);
  }
}

void Reactor::apply_completions(Loop& loop) {
  for (auto& comp : loop.done.drain()) {
    Conn* conn = conn_at(loop, comp.slot, comp.gen);
    if (conn == nullptr) continue;  // connection died while computing
    conn->inflight -= 1;
    responses_.fetch_add(comp.frames, std::memory_order_relaxed);
    if (!comp.bytes.empty()) {
      enqueue_bytes(loop, comp.slot, std::move(comp.bytes));
      conn = conn_at(loop, comp.slot, comp.gen);  // enqueue may evict
      if (conn == nullptr) continue;
    }
    if (conn->closing && conn->outq.empty() && conn->inflight == 0)
      evict(loop, comp.slot, /*idle=*/false);
  }
}

void Reactor::handle_readable(Loop& loop, std::uint32_t slot,
                              std::vector<std::uint8_t>& rbuf) {
  Conn* conn = loop.slots[slot].get();
  const std::uint32_t gen = conn->gen;
  for (;;) {
    bool closed = false;
    std::size_t got = 0;
    try {
      got = conn->sock.read_some(rbuf.data(), rbuf.size(), 0, closed);
    } catch (const Error&) {
      evict(loop, slot, /*idle=*/false);
      return;
    }
    if (got == 0) {
      if (closed) evict(loop, slot, /*idle=*/false);
      return;  // EAGAIN: drained (edge-triggered contract satisfied)
    }
    conn->reader.feed(rbuf.data(), got);
    try {
      Frame frame;
      while (conn->reader.next(frame)) {
        conn->last_progress = Clock::now();
        on_frame(loop, slot, std::move(frame));
        if (conn_at(loop, slot, gen) == nullptr) return;  // frame evicted it
      }
    } catch (const Error&) {
      // Malformed stream (bad magic, checksum, oversized body, bad control
      // payload): unrecoverable mid-stream, drop the connection.
      evict(loop, slot, /*idle=*/false);
      return;
    }
  }
}

void Reactor::on_frame(Loop& loop, std::uint32_t slot, Frame&& frame) {
  Conn& conn = *loop.slots[slot];
  switch (frame.type) {
    case FrameType::kHello: {
      // Claims are always auto-assigned: the front door serves an open
      // client population, not the k fixed protocol parties. The body must
      // still parse (body_u32 throws -> caller evicts).
      (void)body_u32(frame.body);
      if (conn.hello_done) {
        SAP_FAIL("Reactor: duplicate Hello on one connection");
      }
      conn.id = next_client_id_.fetch_add(1, std::memory_order_relaxed);
      conn.hello_done = true;
      Frame welcome;
      welcome.type = FrameType::kWelcome;
      welcome.body = u32_body(conn.id);
      std::vector<std::uint8_t> bytes;
      encode_frame(welcome, bytes);
      enqueue_bytes(loop, slot, std::move(bytes));
      break;
    }
    case FrameType::kData: {
      if (!conn.hello_done || frame.from != conn.id) {
        // Anti-spoof parity with the hub: answer kError, keep the
        // connection (the framing layer is still intact).
        Frame err;
        err.type = FrameType::kError;
        err.to = conn.id;
        err.body = text_body(conn.hello_done
                                 ? "data frame from an id this connection does not own"
                                 : "data frame before Hello");
        std::vector<std::uint8_t> bytes;
        encode_frame(err, bytes);
        enqueue_bytes(loop, slot, std::move(bytes));
        break;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      conn.inflight += 1;
      // Receive stamp: queue-wait (and the handler's kQueue trace stage)
      // measures from "frame fully parsed" to compute pickup.
      frame.recv_steady_ns = steady_now_ns();
      Work work;
      work.loop = static_cast<std::uint32_t>(loop.index);
      work.slot = slot;
      work.gen = conn.gen;
      work.frame = std::move(frame);
      if (!work_q_.try_push(work)) {
        // Compute is saturated: shed instead of blocking the whole shard
        // (one stalled loop would starve every connection it owns).
        conn.inflight -= 1;
        shed_.fetch_add(1, std::memory_order_relaxed);
        Frame err;
        err.type = FrameType::kError;
        err.to = conn.id;
        err.body = text_body("server overloaded: request shed");
        std::vector<std::uint8_t> bytes;
        encode_frame(err, bytes);
        enqueue_bytes(loop, slot, std::move(bytes));
      }
      break;
    }
    case FrameType::kBye: {
      conn.closing = true;
      if (conn.outq.empty() && conn.inflight == 0) evict(loop, slot, /*idle=*/false);
      break;
    }
    case FrameType::kWelcome:
    case FrameType::kError:
      break;  // hub-only frames from a client: nothing to serve, ignore
  }
}

void Reactor::enqueue_bytes(Loop& loop, std::uint32_t slot,
                            std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return;
  Conn& conn = *loop.slots[slot];
  if (conn.outq_bytes + bytes.size() > opts_.max_outq_bytes) {
    // The peer requests faster than it reads: same stall policy as the
    // hub's bounded outq — drop the connection, not the process.
    evict(loop, slot, /*idle=*/false);
    return;
  }
  conn.outq_bytes += bytes.size();
  conn.outq.push_back(std::move(bytes));
  flush_conn(loop, slot);
}

void Reactor::flush_conn(Loop& loop, std::uint32_t slot) {
  Conn& conn = *loop.slots[slot];
  try {
    while (!conn.outq.empty()) {
      // Gather up to kMaxIov queued frames into one writev: under load many
      // responses ride one syscall instead of one write() each.
      std::array<struct iovec, kMaxIov> iov;
      int iovcnt = 0;
      std::size_t head = conn.outq_head;
      for (auto it = conn.outq.begin(); it != conn.outq.end() && iovcnt < kMaxIov;
           ++it) {
        iov[static_cast<std::size_t>(iovcnt)].iov_base = it->data() + head;
        iov[static_cast<std::size_t>(iovcnt)].iov_len = it->size() - head;
        head = 0;
        ++iovcnt;
      }
      const std::size_t wrote = conn.sock.writev_some(iov.data(), iovcnt);
      if (wrote == 0) return;  // kernel buffer full: the EPOLLOUT edge resumes
      if (hist_writev_batch_ != nullptr) hist_writev_batch_->record(iovcnt);
      conn.outq_bytes -= wrote;
      conn.last_progress = Clock::now();
      std::size_t left = wrote;
      while (left > 0) {
        const std::size_t avail = conn.outq.front().size() - conn.outq_head;
        if (left >= avail) {
          left -= avail;
          conn.outq.pop_front();
          conn.outq_head = 0;
        } else {
          conn.outq_head += left;
          left = 0;
        }
      }
    }
    if (conn.closing && conn.inflight == 0) evict(loop, slot, /*idle=*/false);
  } catch (const Error&) {
    evict(loop, slot, /*idle=*/false);
  }
}

void Reactor::evict(Loop& loop, std::uint32_t slot, bool idle) {
  if (slot >= loop.slots.size() || loop.slots[slot] == nullptr) return;
  // Closing the fd deregisters it from epoll; wheel entries and in-flight
  // completions for this slot die on their generation check.
  loop.slots[slot].reset();
  loop.free_slots.push_back(slot);
  live_.fetch_sub(1, std::memory_order_relaxed);
  if (idle) evicted_idle_.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::process_tick(Loop& loop) {
  loop.tick += 1;
  auto& bucket = loop.wheel[loop.tick % kWheelBuckets];
  if (bucket.empty()) return;
  std::vector<Loop::WheelEntry> entries;
  entries.swap(bucket);
  const auto now = Clock::now();
  const auto idle = std::chrono::milliseconds(opts_.idle_timeout_ms);
  for (const auto& entry : entries) {
    Conn* conn = conn_at(loop, entry.slot, entry.gen);
    if (conn == nullptr) continue;  // already gone: stale wheel entry
    const auto deadline = conn->last_progress + idle;
    // Connections with work in compute are spared: a long mining job is
    // not a dead peer. They re-arm and get re-checked next round.
    if (now >= deadline && conn->inflight == 0) {
      evict(loop, entry.slot, /*idle=*/true);
      continue;
    }
    std::uint64_t ahead = 1;
    if (deadline > now) {
      const auto left_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - now)
                               .count();
      ahead = static_cast<std::uint64_t>(left_ms) /
                  static_cast<std::uint64_t>(loop.tick_ms) +
              1;
    }
    if (ahead >= kWheelBuckets) ahead = kWheelBuckets - 1;
    loop.wheel[(loop.tick + ahead) % kWheelBuckets].push_back(entry);
  }
}

// ---- compute lanes -------------------------------------------------------

void Reactor::compute_main() {
  Work work;
  while (work_q_.pop(work)) {
    Completion comp;
    comp.slot = work.slot;
    comp.gen = work.gen;
    const std::uint64_t picked_ns = steady_now_ns();
    if (hist_queue_wait_ != nullptr && work.frame.recv_steady_ns != 0)
      hist_queue_wait_->record(static_cast<double>(picked_ns - work.frame.recv_steady_ns) /
                               1e6);
    std::vector<Frame> out;
    try {
      out = handler_(work.frame);
    } catch (...) {
      // Handler contract says "don't throw"; contain anyway — one bad
      // request must not kill a compute lane.
    }
    if (hist_handler_ != nullptr)
      hist_handler_->record(static_cast<double>(steady_now_ns() - picked_ns) / 1e6);
    comp.frames = out.size();
    for (const Frame& frame : out) encode_frame(frame, comp.bytes);
    Loop& loop = *loops_[work.loop];
    if (loop.done.push(std::move(comp))) wake(loop);
  }
}

}  // namespace sap::net
