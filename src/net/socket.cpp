#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/fault.hpp"

namespace sap::net {
namespace {

void fault_sleep(int delay_ms) {
  if (delay_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SAP_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "socket: cannot switch fd to nonblocking");
  // CLOEXEC everywhere: processes this one spawns (cli_test daemons, the
  // bench's driver children) must not inherit live connections — an
  // inherited server fd would keep a "closed" connection half-alive.
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: NODELAY failing (e.g. on a non-TCP fd in tests) only costs
  // latency, never correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in to_sockaddr(const SocketAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  const std::string host = (addr.host == "localhost") ? "127.0.0.1" : addr.host;
  SAP_REQUIRE(::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1,
              "socket: bad IPv4 host '" + addr.host + "'");
  return sa;
}

}  // namespace

SocketAddr SocketAddr::parse(const std::string& text) {
  const auto colon = text.rfind(':');
  SAP_REQUIRE(colon != std::string::npos && colon > 0 && colon + 1 < text.size(),
              "SocketAddr: expected HOST:PORT, got '" + text + "'");
  SocketAddr addr;
  addr.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  std::uint32_t port = 0;
  for (const char c : port_text) {
    SAP_REQUIRE(c >= '0' && c <= '9', "SocketAddr: bad port in '" + text + "'");
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    SAP_REQUIRE(port <= 65535, "SocketAddr: port out of range in '" + text + "'");
  }
  addr.port = static_cast<std::uint16_t>(port);
  (void)to_sockaddr(addr);  // validate the host eagerly
  return addr;
}

std::string SocketAddr::to_string() const {
  return host + ":" + std::to_string(port);
}

bool poll_fd(int fd, short events, int timeout_ms) {
  // The deadline is absolute: EINTR retries poll with the REMAINING time,
  // so a stream of signals cannot extend it indefinitely.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  int remaining = timeout_ms;
  for (;;) {
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc < 0 && errno == EINTR) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      remaining = static_cast<int>(left.count());
      if (remaining <= 0) return false;
      continue;
    }
    SAP_REQUIRE(rc >= 0, "socket: poll failed");
    if (rc == 0) return false;
    return true;
  }
}

// ---- TcpSocket -----------------------------------------------------------

TcpSocket::TcpSocket(int fd) : fd_(fd) {
  SAP_REQUIRE(fd_ >= 0, "TcpSocket: bad fd");
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

TcpSocket::~TcpSocket() { close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket TcpSocket::connect(const SocketAddr& addr, int timeout_ms) {
  if (fault::enabled() && fault::next_connect_fault()) {
    SAP_FAIL("TcpSocket::connect: connect to " + addr.to_string() +
             " failed: injected fault (reset)");
  }
  const sockaddr_in sa = to_sockaddr(addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SAP_REQUIRE(fd >= 0, "TcpSocket::connect: cannot create socket");
  TcpSocket sock(fd);  // takes ownership; nonblocking from here on
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  if (rc != 0) {
    SAP_REQUIRE(errno == EINPROGRESS,
                "TcpSocket::connect: connect to " + addr.to_string() + " failed: " +
                    std::strerror(errno));
    SAP_REQUIRE(poll_fd(fd, POLLOUT, timeout_ms),
                "TcpSocket::connect: timed out connecting to " + addr.to_string());
    int err = 0;
    socklen_t len = sizeof err;
    SAP_REQUIRE(::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0,
                "TcpSocket::connect: connect to " + addr.to_string() + " failed: " +
                    std::strerror(err));
  }
  return sock;
}

namespace {

// The deadline-driven send loop write_all always used; factored out so the
// fault hooks can send prefixes / corrupted copies through the exact same
// kernel path as healthy traffic.
void send_all(int fd, const std::uint8_t* bytes, std::size_t len, int timeout_ms) {
  std::size_t written = 0;
  while (written < len) {
    const ssize_t rc = ::send(fd, bytes + written, len - written, MSG_NOSIGNAL);
    if (rc > 0) {
      written += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SAP_REQUIRE(poll_fd(fd, POLLOUT, timeout_ms),
                  "TcpSocket::write_all: write stalled past the deadline");
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    SAP_FAIL(std::string("TcpSocket::write_all: connection lost: ") + std::strerror(errno));
  }
}

}  // namespace

void TcpSocket::write_all(const void* data, std::size_t len, int timeout_ms) {
  SAP_REQUIRE(valid(), "TcpSocket::write_all: closed socket");
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  if (fault::enabled()) {
    const fault::WriteFault f = fault::next_write_fault(len);
    switch (f.kind) {
      case fault::Kind::kDrop:
        return;  // swallowed whole: the peer's read deadline surfaces it
      case fault::Kind::kDelay:
        fault_sleep(f.delay_ms);
        break;
      case fault::Kind::kPartialWrite:
        // Prefix now, a pause, then the remainder — exercises reassembly.
        send_all(fd_, bytes, f.keep, timeout_ms);
        fault_sleep(f.delay_ms);
        bytes += f.keep;
        len -= f.keep;
        break;
      case fault::Kind::kTruncate:
        send_all(fd_, bytes, f.keep, timeout_ms);
        return;  // remainder discarded: peer sees a short frame
      case fault::Kind::kCorrupt: {
        std::vector<std::uint8_t> copy(bytes, bytes + len);
        copy[f.corrupt_at] = static_cast<std::uint8_t>(copy[f.corrupt_at] ^ f.corrupt_mask);
        send_all(fd_, copy.data(), len, timeout_ms);
        return;  // the frame CRC catches the flip on the peer
      }
      case fault::Kind::kReset:
        close();
        SAP_FAIL("TcpSocket::write_all: connection lost: injected fault (reset)");
      default:
        break;
    }
  }
  send_all(fd_, bytes, len, timeout_ms);
}

std::size_t TcpSocket::write_some(const void* data, std::size_t len) {
  SAP_REQUIRE(valid(), "TcpSocket::write_some: closed socket");
  if (fault::enabled()) {
    // Nonblocking path (hub io loop, reactor flush): only the faults that
    // keep the "never waits" contract — drop, corrupt, reset.
    const fault::WriteFault f = fault::next_write_fault(len);
    if (f.kind == fault::Kind::kDrop) return len;  // pretend written
    if (f.kind == fault::Kind::kReset) {
      close();
      SAP_FAIL("TcpSocket::write_some: connection lost: injected fault (reset)");
    }
    if (f.kind == fault::Kind::kCorrupt && len >= 1) {
      const auto* bytes = static_cast<const std::uint8_t*>(data);
      std::vector<std::uint8_t> copy(bytes, bytes + len);
      copy[f.corrupt_at] = static_cast<std::uint8_t>(copy[f.corrupt_at] ^ f.corrupt_mask);
      data = copy.data();
      for (;;) {
        const ssize_t rc = ::send(fd_, data, len, MSG_NOSIGNAL);
        if (rc >= 0) return static_cast<std::size_t>(rc);
        if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
        if (errno == EINTR) continue;
        SAP_FAIL(std::string("TcpSocket::write_some: connection lost: ") + std::strerror(errno));
      }
    }
  }
  for (;;) {
    const ssize_t rc = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EINTR) continue;
    SAP_FAIL(std::string("TcpSocket::write_some: connection lost: ") + std::strerror(errno));
  }
}

std::size_t TcpSocket::writev_some(const struct iovec* iov, int iovcnt) {
  SAP_REQUIRE(valid(), "TcpSocket::writev_some: closed socket");
  if (fault::enabled() && iovcnt > 0) {
    std::size_t total = 0;
    for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
    const fault::WriteFault f = fault::next_write_fault(total);
    if (f.kind == fault::Kind::kDrop) return total;  // pretend written
    if (f.kind == fault::Kind::kReset) {
      close();
      SAP_FAIL("TcpSocket::writev_some: connection lost: injected fault (reset)");
    }
    if (f.kind == fault::Kind::kCorrupt && iov[0].iov_len >= 1) {
      // Corrupt within the first buffer and send only it; the caller's
      // partial-progress handling resumes the queue behind the bad bytes.
      const auto* base = static_cast<const std::uint8_t*>(iov[0].iov_base);
      std::vector<std::uint8_t> copy(base, base + iov[0].iov_len);
      const std::size_t at = f.corrupt_at % copy.size();
      copy[at] = static_cast<std::uint8_t>(copy[at] ^ f.corrupt_mask);
      for (;;) {
        const ssize_t rc = ::send(fd_, copy.data(), copy.size(), MSG_NOSIGNAL);
        if (rc >= 0) return static_cast<std::size_t>(rc);
        if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
        if (errno == EINTR) continue;
        SAP_FAIL(std::string("TcpSocket::writev_some: connection lost: ") + std::strerror(errno));
      }
    }
  }
  // sendmsg rather than writev for MSG_NOSIGNAL: a peer that closed mid-queue
  // must surface as sap::Error, not SIGPIPE.
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  for (;;) {
    const ssize_t rc = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EINTR) continue;
    SAP_FAIL(std::string("TcpSocket::writev_some: connection lost: ") + std::strerror(errno));
  }
}

std::size_t TcpSocket::read_some(void* data, std::size_t len, int timeout_ms, bool& closed) {
  SAP_REQUIRE(valid(), "TcpSocket::read_some: closed socket");
  closed = false;
  if (!poll_fd(fd_, POLLIN, timeout_ms)) return 0;
  for (;;) {
    const ssize_t rc = ::recv(fd_, data, len, 0);
    if (rc > 0) {
      if (fault::enabled()) {
        const fault::ReadFault f = fault::next_read_fault(static_cast<std::size_t>(rc));
        switch (f.kind) {
          case fault::Kind::kDelay:
            fault_sleep(f.delay_ms);
            break;
          case fault::Kind::kCorrupt:
            if (f.corrupt_at < static_cast<std::size_t>(rc)) {
              auto* bytes = static_cast<std::uint8_t*>(data);
              bytes[f.corrupt_at] =
                  static_cast<std::uint8_t>(bytes[f.corrupt_at] ^ f.corrupt_mask);
            }
            break;
          case fault::Kind::kReset:
            // Received bytes vanish and the connection reads as torn down —
            // the framing layer above turns mid-frame EOF into an error.
            closed = true;
            close();
            return 0;
          default:
            break;
        }
      }
      return static_cast<std::size_t>(rc);
    }
    if (rc == 0) {
      closed = true;
      return 0;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    // Reset by peer etc. — surface as a close, the caller's framing layer
    // decides whether mid-frame EOF is an error.
    closed = true;
    return 0;
  }
}

void TcpSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- TcpListener ---------------------------------------------------------

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener TcpListener::listen(const SocketAddr& addr, int backlog) {
  const sockaddr_in sa = to_sockaddr(addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SAP_REQUIRE(fd >= 0, "TcpListener: cannot create socket");
  TcpListener listener;
  listener.fd_ = fd;
  set_nonblocking(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  SAP_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0,
              "TcpListener: cannot bind " + addr.to_string() + ": " + std::strerror(errno));
  SAP_REQUIRE(::listen(fd, backlog > 0 ? backlog : SOMAXCONN) == 0,
              "TcpListener: listen failed");
  return listener;
}

SocketAddr TcpListener::local_addr() const {
  SAP_REQUIRE(valid(), "TcpListener::local_addr: closed listener");
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  SAP_REQUIRE(::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) == 0,
              "TcpListener::local_addr: getsockname failed");
  char host[INET_ADDRSTRLEN] = {};
  SAP_REQUIRE(::inet_ntop(AF_INET, &sa.sin_addr, host, sizeof host) != nullptr,
              "TcpListener::local_addr: inet_ntop failed");
  return {host, ntohs(sa.sin_port)};
}

TcpSocket TcpListener::accept(int timeout_ms) {
  SAP_REQUIRE(valid(), "TcpListener::accept: closed listener");
  if (timeout_ms > 0 && !poll_fd(fd_, POLLIN, timeout_ms)) return {};
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return {};  // kernel queue empty (EAGAIN), raced, or transient
  if (fault::enabled() && fault::next_accept_fault()) {
    // Drop the connection before any byte flows: the client sees an
    // immediate close, indistinguishable from a crashing peer.
    ::close(fd);
    return {};
  }
  return TcpSocket(fd);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sap::net
