#include "net/tcp_transport.hpp"

#include <poll.h>

#include <chrono>

#include "common/error.hpp"

namespace sap::net {
namespace {

/// Hub io-loop tick: long enough to be cheap, short enough that stop_ and
/// freshly-registered connections are noticed promptly.
constexpr int kIoTickMs = 20;
/// Frames parked for party ids nobody has claimed yet (clients that are
/// still connecting). Bounded by COUNT per id and by total BYTES across all
/// ids — parking is for setup races, not storage; beyond either cap frames
/// are dropped and counted.
constexpr std::size_t kMaxPendingPerParty = 4096;
constexpr std::size_t kMaxPendingBytes = 64u << 20;
/// Per-connection outbound queue cap: a peer that stops draining costs at
/// most this much memory before it is disconnected.
constexpr std::size_t kMaxOutqBytes = 64u << 20;
/// Hub trace retention cap (metadata only): the hub is the first
/// unbounded-lifetime Transport user, so its trace must not grow with
/// traffic. Counters (total_bytes, dropped) keep counting past the cap.
constexpr std::size_t kMaxHubTraceEntries = 65536;

std::vector<std::uint8_t> frame_bytes(const Frame& frame) {
  std::vector<std::uint8_t> bytes;
  encode_frame(frame, bytes);
  return bytes;
}

}  // namespace

// ---- construction --------------------------------------------------------

TcpTransport::TcpTransport(Role role, std::uint64_t session_secret, TcpOptions opts)
    : role_(role), session_secret_(session_secret), opts_(opts) {}

std::unique_ptr<TcpTransport> TcpTransport::listen(const SocketAddr& addr,
                                                   std::uint64_t session_secret,
                                                   TcpOptions opts) {
  std::unique_ptr<TcpTransport> t(new TcpTransport(Role::kHub, session_secret, opts));
  t->listener_ = TcpListener::listen(addr);
  t->io_thread_ = std::thread([raw = t.get()] { raw->io_loop_hub(); });
  return t;
}

std::unique_ptr<TcpTransport> TcpTransport::connect(const SocketAddr& addr,
                                                    std::uint64_t session_secret,
                                                    TcpOptions opts) {
  std::unique_ptr<TcpTransport> t(new TcpTransport(Role::kClient, session_secret, opts));
  t->peer_addr_ = addr;
  t->socket_ = TcpSocket::connect(addr, opts.connect_timeout_ms);
  t->io_thread_ = std::thread([raw = t.get()] { raw->io_loop_client(); });
  return t;
}

TcpTransport::~TcpTransport() {
  if (role_ == Role::kClient) {
    try {
      send_bye();
    } catch (...) {
      // best-effort goodbye; the hub treats EOF the same way
    }
  }
  stop_.store(true);
  if (io_thread_.joinable()) io_thread_.join();
  socket_.close();
  listener_.close();
}

std::uint64_t TcpTransport::link_key(proto::PartyId from, proto::PartyId to) const noexcept {
  return proto::detail::derive_link_key(session_secret_, from, to);
}

// ---- party registration --------------------------------------------------

proto::PartyId TcpTransport::add_party() { return claim_party(kClaimAnyParty); }

TcpTransport::ClaimOutcome TcpTransport::register_claim_locked(std::uint32_t desired,
                                                               std::size_t owner) {
  ClaimOutcome outcome;
  outcome.id = desired;
  if (outcome.id == kClaimAnyParty) {
    while (route_.count(next_auto_id_)) ++next_auto_id_;
    outcome.id = next_auto_id_;
  }
  if (route_.count(outcome.id)) {
    outcome.conflict = true;
    return outcome;
  }
  route_[outcome.id] = owner;
  if (const auto it = pending_.find(outcome.id); it != pending_.end()) {
    outcome.parked = std::move(it->second);
    for (const Frame& f : outcome.parked) pending_bytes_ -= f.body.size();
    pending_.erase(it);
  }
  return outcome;
}

proto::PartyId TcpTransport::claim_party(std::uint32_t desired) {
  if (role_ == Role::kHub) {
    MutexLock conn_lock(conn_mutex_);
    const auto claim = register_claim_locked(desired, kLocalHost);
    SAP_REQUIRE(!claim.conflict,
                "TcpTransport: party id " + std::to_string(claim.id) + " already claimed");
    const std::uint32_t id = claim.id;
    const std::vector<Frame>& parked = claim.parked;
    MutexLock lock(mutex_);
    local_ids_.push_back(id);
    inbox_.try_emplace(id);
    for (const Frame& f : parked) {
      try {
        deliver_locked(f);
      } catch (const Error&) {
        // Parked frames are adversarial input like any inbound traffic: a
        // malformed body is dropped per-message, it must not throw out of
        // the daemon's startup path.
        ++dropped_;
      }
    }
    cv_.notify_all();
    return id;
  }

  // Client: Hello/Welcome handshake. Claims are serialized by the protocol
  // structure (parties register before any exchange traffic).
  {
    MutexLock lock(mutex_);
    SAP_REQUIRE(!closed_ && error_.empty(), "TcpTransport: connection is down");
    welcome_.reset();
  }
  Frame hello;
  hello.type = FrameType::kHello;
  hello.body = u32_body(desired);
  const auto bytes = frame_bytes(hello);
  {
    MutexLock wlock(write_mutex_);
    socket_.write_all(bytes.data(), bytes.size(), opts_.write_timeout_ms);
  }
  MutexLock lock(mutex_);
  const auto deadline = deadline_after_ms(opts_.connect_timeout_ms);
  bool awake = true;
  while (awake && !welcome_.has_value() && !closed_ && error_.empty())
    awake = cv_.wait_until(lock, deadline);
  SAP_REQUIRE(error_.empty(), "TcpTransport: hub refused claim: " + error_);
  SAP_REQUIRE(welcome_.has_value() && !closed_,
              "TcpTransport: claim handshake timed out or connection closed");
  const proto::PartyId id = *welcome_;
  welcome_.reset();
  local_ids_.push_back(id);
  inbox_.try_emplace(id);
  return id;
}

std::size_t TcpTransport::party_count() const {
  MutexLock lock(mutex_);
  return local_ids_.size();
}

// ---- send path -----------------------------------------------------------

bool TcpTransport::record_send(proto::PartyId from, proto::PartyId to,
                               proto::PayloadKind kind, proto::EncryptedEnvelope envelope) {
  MutexLock lock(mutex_);
  proto::Message msg;
  msg.from = from;
  msg.to = to;
  msg.kind = kind;
  msg.wire_bytes = envelope.size_doubles() * sizeof(double);
  // Hub role: the daemon serves unbounded traffic, so retain metadata only
  // (no ciphertext) and stop appending past the cap — clients live for one
  // bounded session and keep the full envelope trace.
  if (role_ != Role::kHub) msg.envelope = std::move(envelope);
  total_bytes_ += msg.wire_bytes;
  const bool dropped = drop_filter_ && drop_filter_(from, to, kind);
  if (role_ != Role::kHub || trace_.size() < kMaxHubTraceEntries)
    trace_.push_back(std::move(msg));
  if (dropped) ++dropped_;
  return !dropped;
}

void TcpTransport::send(proto::PartyId from, proto::PartyId to, proto::PayloadKind kind,
                        std::span<const double> payload) {
  SAP_REQUIRE(from != to, "TcpTransport::send: self-send is not a protocol step");
  proto::EncryptedEnvelope envelope(payload, link_key(from, to));

  Frame frame;
  frame.type = FrameType::kData;
  frame.payload_kind = static_cast<std::uint8_t>(kind);
  frame.from = from;
  frame.to = to;
  frame.body = envelope_body(envelope);
  SAP_REQUIRE(frame.body.size() <= opts_.max_frame_body,
              "TcpTransport::send: payload exceeds the frame size cap");

  if (!record_send(from, to, kind, std::move(envelope))) return;  // dropped

  if (role_ == Role::kHub) {
    hub_dispatch(std::move(frame));
    return;
  }

  // Client: when the destination lives on THIS transport the frame is a
  // relay round trip — note the target delivery count before writing, then
  // block until the hub echoes it back, so has_mail() is truthful for the
  // next batch.
  bool to_local = false;
  std::size_t target = 0;
  {
    MutexLock lock(mutex_);
    to_local = inbox_.count(to) > 0;
    if (to_local) target = ++link_sent_[{from, to}];
  }
  const auto bytes = frame_bytes(frame);
  {
    MutexLock wlock(write_mutex_);
    socket_.write_all(bytes.data(), bytes.size(), opts_.write_timeout_ms);
  }
  if (to_local) {
    MutexLock lock(mutex_);
    const auto deadline = deadline_after_ms(opts_.receive_timeout_ms);
    bool awake = true;
    while (awake && link_delivered_[{from, to}] < target && !closed_ && error_.empty())
      awake = cv_.wait_until(lock, deadline);
    SAP_REQUIRE(error_.empty(), "TcpTransport::send: " + error_);
    SAP_REQUIRE((link_delivered_[{from, to}] >= target),
                "TcpTransport::send: relay round trip timed out (hub gone?)");
  }
}

// ---- receive path --------------------------------------------------------

bool TcpTransport::has_mail(proto::PartyId party) const {
  MutexLock lock(mutex_);
  const auto it = inbox_.find(party);
  SAP_REQUIRE(it != inbox_.end(), "TcpTransport::has_mail: party not hosted here");
  return !it->second.empty();
}

proto::Transport::Delivery TcpTransport::receive(proto::PartyId party) {
  Delivery out;
  SAP_REQUIRE(try_receive(party, out, opts_.receive_timeout_ms),
              "TcpTransport::receive: timed out waiting for mail (deadline " +
                  std::to_string(opts_.receive_timeout_ms) + " ms) — peer gone or message "
                  "lost");
  return out;
}

bool TcpTransport::try_receive(proto::PartyId party, Delivery& out, int timeout_ms) {
  MutexLock lock(mutex_);
  const auto it = inbox_.find(party);
  SAP_REQUIRE(it != inbox_.end(), "TcpTransport::receive: party not hosted here");
  auto& box = it->second;
  const auto deadline = deadline_after_ms(timeout_ms);
  bool awake = true;
  while (awake && box.empty() && !closed_ && error_.empty())
    awake = cv_.wait_until(lock, deadline);
  if (box.empty()) {
    SAP_REQUIRE(error_.empty(), "TcpTransport::receive: " + error_);
    SAP_REQUIRE(!closed_, "TcpTransport::receive: connection closed by peer");
    return false;
  }
  proto::Message msg = std::move(box.front());
  box.pop_front();
  lock.unlock();
  out = {msg.from, msg.kind, msg.envelope.open(link_key(msg.from, msg.to))};
  return true;
}

// ---- misc accessors ------------------------------------------------------

void TcpTransport::set_drop_filter(DropFilter filter) {
  MutexLock lock(mutex_);
  drop_filter_ = std::move(filter);
}

std::size_t TcpTransport::dropped_count() const {
  MutexLock lock(mutex_);
  return dropped_;
}

const std::vector<proto::Message>& TcpTransport::trace() const {
  // Base-class contract: callers may only look while no batch is executing.
  // The (uncontended) lock makes the guarded read well-formed for the
  // analysis; the returned reference is covered by the same contract.
  MutexLock lock(mutex_);
  return trace_;
}

std::size_t TcpTransport::total_bytes() const {
  MutexLock lock(mutex_);
  return total_bytes_;
}

SocketAddr TcpTransport::local_addr() const {
  if (role_ == Role::kHub) return listener_.local_addr();
  return peer_addr_;
}

std::size_t TcpTransport::live_connections() const {
  MutexLock lock(conn_mutex_);
  return live_conns_;
}

std::size_t TcpTransport::total_connections() const {
  MutexLock lock(conn_mutex_);
  return total_conns_;
}

void TcpTransport::send_bye() {
  if (role_ != Role::kClient || !socket_.valid()) return;
  {
    MutexLock lock(mutex_);
    if (closed_ || bye_sent_) return;
    bye_sent_ = true;
  }
  Frame bye;
  bye.type = FrameType::kBye;
  const auto bytes = frame_bytes(bye);
  MutexLock wlock(write_mutex_);
  socket_.write_all(bytes.data(), bytes.size(), opts_.write_timeout_ms);
}

// ---- delivery ------------------------------------------------------------

void TcpTransport::deliver_locked(const Frame& frame) {
  const auto it = inbox_.find(frame.to);
  if (it == inbox_.end()) return;  // raced with a claim we never made
  proto::Message msg;
  msg.from = frame.from;
  msg.to = frame.to;
  msg.kind = static_cast<proto::PayloadKind>(frame.payload_kind);
  msg.envelope = body_envelope(frame.body);
  msg.wire_bytes = msg.envelope.size_doubles() * sizeof(double);
  it->second.push_back(std::move(msg));
  ++link_delivered_[{frame.from, frame.to}];
}

void TcpTransport::deliver_local(const Frame& frame) {
  MutexLock lock(mutex_);
  deliver_locked(frame);
  cv_.notify_all();
}

void TcpTransport::fail_all(const std::string& why) {
  MutexLock lock(mutex_);
  if (error_.empty()) error_ = why;
  cv_.notify_all();
}

// ---- client I/O ----------------------------------------------------------

void TcpTransport::client_handle_frame(Frame frame) {
  switch (frame.type) {
    case FrameType::kWelcome: {
      MutexLock lock(mutex_);
      welcome_ = body_u32(frame.body);
      // The hub flushes frames parked for this id right behind the Welcome;
      // the inbox must exist BEFORE this thread processes them, not when
      // the claiming thread eventually wakes up.
      inbox_.try_emplace(*welcome_);
      cv_.notify_all();
      break;
    }
    case FrameType::kError:
      fail_all("hub error: " + body_text(frame.body));
      break;
    case FrameType::kData:
      deliver_local(frame);
      break;
    case FrameType::kBye: {
      MutexLock lock(mutex_);
      closed_ = true;
      cv_.notify_all();
      break;
    }
    case FrameType::kHello:
      fail_all("protocol violation: hub sent Hello");
      break;
  }
}

void TcpTransport::io_loop_client() {
  FrameReader reader(opts_.max_frame_body);
  std::uint8_t buf[64 * 1024];
  while (!stop_.load()) {
    bool closed = false;
    std::size_t n = 0;
    try {
      n = socket_.read_some(buf, sizeof buf, kIoTickMs, closed);
      if (n > 0) {
        reader.feed(buf, n);
        Frame frame;
        while (reader.next(frame)) client_handle_frame(std::move(frame));
      }
    } catch (const Error& e) {
      fail_all(std::string("wire error: ") + e.what());
      return;
    }
    if (closed) {
      MutexLock lock(mutex_);
      closed_ = true;
      cv_.notify_all();
      return;
    }
  }
}

// ---- hub I/O -------------------------------------------------------------

bool TcpTransport::enqueue_frame_locked(Conn& conn, const Frame& frame) {
  if (!conn.open.load()) return false;
  auto bytes = frame_bytes(frame);
  if (conn.outq_bytes.load() + bytes.size() > kMaxOutqBytes) return false;  // not draining
  conn.outq_bytes.fetch_add(bytes.size());
  conn.outq.push_back(std::move(bytes));
  return true;
}

bool TcpTransport::flush_outq_locked(Conn& conn) {
  if (!conn.open.load()) return false;
  try {
    while (!conn.outq.empty()) {
      const auto& front = conn.outq.front();
      const std::size_t n =
          conn.sock.write_some(front.data() + conn.outq_head, front.size() - conn.outq_head);
      if (n == 0) break;  // kernel buffer full — the io loop resumes on POLLOUT
      conn.outq_head += n;
      conn.outq_bytes.fetch_sub(n);
      conn.flushed_total.fetch_add(n);
      if (conn.outq_head == front.size()) {
        conn.outq.pop_front();
        conn.outq_head = 0;
      }
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

void TcpTransport::mark_conn_closed(Conn* conn) {
  if (!conn->open.exchange(false)) return;  // exactly-once: bye/EOF/write-error race
  {
    MutexLock conn_lock(conn_mutex_);
    --live_conns_;
  }
  cv_.notify_all();
  // The fd itself is closed later by the io thread (or the destructor)
  // under the conn's write_mutex — never here, where an in-flight writer
  // could still hold the descriptor.
}

void TcpTransport::hub_write(std::size_t conn_index, const Frame& frame) {
  Conn* conn;
  {
    MutexLock conn_lock(conn_mutex_);
    conn = conns_[conn_index].get();
  }
  bool ok;
  {
    MutexLock wlock(conn->write_mutex);
    // Enqueue plus an opportunistic nonblocking drain: the common case
    // goes straight to the socket, a full kernel buffer leaves the rest
    // for the io loop's POLLOUT pass — never a blocking wait.
    ok = enqueue_frame_locked(*conn, frame) && flush_outq_locked(*conn);
  }
  if (!ok) {
    mark_conn_closed(conn);
    MutexLock lock(mutex_);
    ++dropped_;
  }
}

void TcpTransport::hub_dispatch(Frame frame) {
  std::size_t dest = kLocalHost;
  bool to_local = false;
  {
    MutexLock conn_lock(conn_mutex_);
    const auto it = route_.find(frame.to);
    if (it == route_.end()) {
      // Unclaimed destination: park (count- AND byte-bounded) until the
      // owner connects.
      auto& parked = pending_[frame.to];
      if (parked.size() < kMaxPendingPerParty &&
          pending_bytes_ + frame.body.size() <= kMaxPendingBytes) {
        pending_bytes_ += frame.body.size();
        parked.push_back(std::move(frame));
      } else {
        MutexLock lock(mutex_);
        ++dropped_;
      }
      return;
    }
    to_local = it->second == kLocalHost;
    dest = it->second;
  }
  if (to_local) {
    deliver_local(frame);
  } else {
    hub_write(dest, frame);
  }
}

void TcpTransport::hub_handle_frame(std::size_t conn_index, Frame frame) {
  Conn* conn;
  {
    MutexLock conn_lock(conn_mutex_);
    conn = conns_[conn_index].get();
  }
  switch (frame.type) {
    case FrameType::kHello: {
      // Hold this conn's write_mutex across claim registration AND the
      // Welcome/parked-frame flush: a concurrent router either parks
      // (pre-registration, flushed here) or blocks on the write_mutex
      // (post-registration) — either way nothing reaches the client
      // before its Welcome.
      MutexLock wlock(conn->write_mutex);
      ClaimOutcome claim;
      {
        MutexLock conn_lock(conn_mutex_);
        claim = register_claim_locked(body_u32(frame.body), conn_index);
        if (!claim.conflict) conn->parties.push_back(claim.id);
      }
      bool ok;
      if (claim.conflict) {
        Frame err;
        err.type = FrameType::kError;
        err.body = text_body("party id " + std::to_string(claim.id) + " already claimed");
        ok = enqueue_frame_locked(*conn, err);
      } else {
        Frame welcome;
        welcome.type = FrameType::kWelcome;
        welcome.body = u32_body(claim.id);
        ok = enqueue_frame_locked(*conn, welcome);
        for (const Frame& f : claim.parked) ok = ok && enqueue_frame_locked(*conn, f);
      }
      ok = ok && flush_outq_locked(*conn);
      if (!ok) mark_conn_closed(conn);
      break;
    }
    case FrameType::kData: {
      // Anti-spoof: the claimed sender must be hosted by this connection.
      bool spoofed;
      {
        MutexLock conn_lock(conn_mutex_);
        const auto owner = route_.find(frame.from);
        spoofed = owner == route_.end() || owner->second != conn_index;
      }
      if (spoofed) {
        Frame err;
        err.type = FrameType::kError;
        err.body = text_body("data frame from a party this connection does not host");
        hub_write(conn_index, err);
        return;
      }
      hub_dispatch(std::move(frame));
      break;
    }
    case FrameType::kBye:
      mark_conn_closed(conn);
      break;
    case FrameType::kWelcome:
    case FrameType::kError: {
      Frame err;
      err.type = FrameType::kError;
      err.body = text_body("protocol violation: client sent a hub-only frame");
      hub_write(conn_index, err);
      break;
    }
  }
}

void TcpTransport::io_loop_hub() {
  std::uint8_t buf[64 * 1024];
  while (!stop_.load()) {
    // Snapshot the poll set without holding the lock across poll(); close
    // fds of conns that died since the last pass (io thread is the sole
    // reader, and the write_mutex excludes in-flight writers).
    std::vector<pollfd> pfds;
    std::vector<std::pair<std::size_t, Conn*>> polled;
    std::vector<Conn*> dead;
    {
      MutexLock conn_lock(conn_mutex_);
      pfds.push_back({listener_.fd(), POLLIN, 0});
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        Conn* conn = conns_[i].get();
        if (!conn->open.load()) {
          if (conn->sock.valid()) dead.push_back(conn);
          continue;
        }
        const short events =
            static_cast<short>(POLLIN | (conn->outq_bytes.load() > 0 ? POLLOUT : 0));
        pfds.push_back({conn->sock.fd(), events, 0});
        polled.emplace_back(i, conn);
      }
    }
    // Close dead fds OUTSIDE conn_mutex_ (lock order: write_mutex first);
    // free their buffers with them — undeliverable queues AND any
    // half-received frame, so connection churn cannot accumulate memory
    // (only the tiny Conn shells are retained).
    for (Conn* conn : dead) {
      MutexLock wlock(conn->write_mutex);
      conn->sock.close();
      conn->outq.clear();
      conn->outq_bytes.store(0);
      conn->reader.reset();
    }
    const int rc = ::poll(pfds.data(), pfds.size(), kIoTickMs);
    if (rc < 0) continue;

    // New connections.
    if (pfds[0].revents & POLLIN) {
      MutexLock conn_lock(conn_mutex_);
      for (;;) {
        TcpSocket sock = listener_.accept(0);
        if (!sock.valid()) break;
        conns_.push_back(std::make_unique<Conn>(std::move(sock), opts_.max_frame_body));
        ++live_conns_;
        ++total_conns_;
      }
    }
    // Inbound frames — handled WITHOUT conn_mutex_ held, so routing a
    // frame to a slow client never stalls the other connections.
    for (std::size_t p = 1; p < pfds.size(); ++p) {
      const auto [i, conn] = polled[p - 1];
      if (!conn->open.load()) continue;
      if (pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) {
        bool closed = false;
        try {
          const std::size_t n = conn->sock.read_some(buf, sizeof buf, 0, closed);
          if (n > 0) {
            conn->reader.feed(buf, n);
            Frame frame;
            // A frame can close the connection (kBye) — stop consuming then.
            while (conn->open.load() && conn->reader.next(frame))
              hub_handle_frame(i, std::move(frame));
          }
        } catch (const Error&) {
          // Malformed stream: this connection is unrecoverable.
          closed = true;
        }
        if (closed) {
          mark_conn_closed(conn);
          continue;
        }
      }
      // Drain the outbound queue as the socket allows; disconnect a peer
      // whose queue is nonempty but makes no progress for the write
      // deadline (it stopped reading — the hub must not hold its frames
      // forever).
      if (conn->outq_bytes.load() > 0) {
        if (pfds[p].revents & POLLOUT) {
          MutexLock wlock(conn->write_mutex);
          if (!flush_outq_locked(*conn)) {
            mark_conn_closed(conn);
            continue;
          }
        }
        const std::uint64_t flushed = conn->flushed_total.load();
        if (flushed != conn->io_prev_flushed || conn->outq_bytes.load() == 0) {
          conn->io_prev_flushed = flushed;
          conn->io_stalled = false;
        } else if (!conn->io_stalled) {
          conn->io_stalled = true;
          conn->io_stall_start = std::chrono::steady_clock::now();
        } else if (std::chrono::steady_clock::now() - conn->io_stall_start >
                   std::chrono::milliseconds(opts_.write_timeout_ms)) {
          mark_conn_closed(conn);
        }
      } else {
        conn->io_stalled = false;
      }
    }
  }
}

proto::SapSession::TransportFactory tcp_transport_factory(const SocketAddr& addr,
                                                          TcpOptions opts) {
  return [addr, opts](std::uint64_t session_secret) {
    return TcpTransport::connect(addr, session_secret, opts);
  };
}

}  // namespace sap::net
