// Concurrent in-process transport: mutex+condvar inboxes, one worker thread
// per party task.
//
// run_parties() spawns one worker per (non-null) task; sends from any worker
// are safe, and receive() blocks on a condition variable until mail arrives
// — so tasks inside one batch may exchange messages with each other, unlike
// the synchronous backend where a receiver's mail must already be enqueued.
//
// Starvation detection replaces wall-clock timeouts: receive() gives up and
// throws sap::Error exactly when the inbox is empty AND every worker still
// running is itself blocked in receive() — at that point no message can ever
// arrive (a dropped message, or a protocol bug routing mail to the wrong
// party). This keeps fault-injection tests deterministic and instant under
// both backends.
//
// The trace and all counters are protected by one mutex; accessors that
// return references (trace()) must only be called while no batch is running,
// as the Transport contract states.
#pragma once

#include <deque>
#include <vector>

#include "common/mutex.hpp"
#include "protocol/transport.hpp"

namespace sap::proto {

class ThreadedLocalTransport final : public Transport {
 public:
  /// `session_secret` seeds per-link key derivation (same derivation as
  /// SimulatedNetwork: identical secret → identical ciphertext bytes).
  explicit ThreadedLocalTransport(std::uint64_t session_secret);

  PartyId add_party() override;
  [[nodiscard]] std::size_t party_count() const override;
  void send(PartyId from, PartyId to, PayloadKind kind,
            std::span<const double> payload) override;
  [[nodiscard]] bool has_mail(PartyId party) const override;
  Delivery receive(PartyId party) override;
  void set_drop_filter(DropFilter filter) override;
  [[nodiscard]] std::size_t dropped_count() const override;
  [[nodiscard]] const std::vector<Message>& trace() const override;
  [[nodiscard]] std::size_t total_bytes() const override;

  /// One worker thread per non-null task; rethrows the first task exception
  /// after all workers have joined.
  void run_parties(std::vector<std::function<void()>> tasks) override;

  [[nodiscard]] bool concurrent() const noexcept override { return true; }

 private:
  [[nodiscard]] std::uint64_t link_key(PartyId from, PartyId to) const noexcept;

  std::uint64_t session_secret_;
  mutable Mutex mutex_;
  CondVar cv_;
  /// Per-party mailboxes: indices into trace_.
  std::vector<std::deque<std::size_t>> inboxes_ SAP_GUARDED_BY(mutex_);
  std::vector<Message> trace_ SAP_GUARDED_BY(mutex_);
  std::size_t total_bytes_ SAP_GUARDED_BY(mutex_) = 0;
  DropFilter drop_filter_ SAP_GUARDED_BY(mutex_);
  std::size_t dropped_ SAP_GUARDED_BY(mutex_) = 0;
  /// Workers currently executing a task.
  std::size_t busy_workers_ SAP_GUARDED_BY(mutex_) = 0;
  /// Of those, how many wait in receive().
  std::size_t blocked_workers_ SAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace sap::proto
