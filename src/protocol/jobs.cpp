#include "protocol/jobs.hpp"

#include "classify/knn.hpp"
#include "classify/naive_bayes.hpp"
#include "classify/svm.hpp"

namespace sap::proto {

const std::map<std::string, MinerJob>& builtin_miner_jobs() {
  static const std::map<std::string, MinerJob> registry = {
      {"record-count",
       [](const data::Dataset& unified) {
         return std::vector<double>{static_cast<double>(unified.size())};
       }},
      {"class-histogram",
       [](const data::Dataset& unified) {
         const auto counts = unified.class_counts();
         std::vector<double> report;
         report.reserve(counts.size());
         for (const auto count : counts) report.push_back(static_cast<double>(count));
         return report;
       }},
      {"knn-train-accuracy",
       [](const data::Dataset& unified) {
         ml::Knn knn(5);
         knn.fit(unified);
         return std::vector<double>{ml::accuracy(knn, unified)};
       }},
      {"svm-train-accuracy",
       [](const data::Dataset& unified) {
         ml::Svm svm;
         svm.fit(unified);
         return std::vector<double>{ml::accuracy(svm, unified)};
       }},
      {"nb-train-accuracy",
       [](const data::Dataset& unified) {
         ml::GaussianNaiveBayes nb;
         nb.fit(unified);
         return std::vector<double>{ml::accuracy(nb, unified)};
       }},
  };
  return registry;
}

}  // namespace sap::proto
