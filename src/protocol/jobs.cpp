#include "protocol/jobs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "classify/knn.hpp"
#include "classify/naive_bayes.hpp"
#include "classify/perceptron.hpp"
#include "classify/svm.hpp"
#include "common/error.hpp"

namespace sap::proto {
namespace {

double param(const JobParams& resolved, const std::string& name) {
  const auto it = resolved.find(name);
  SAP_REQUIRE(it != resolved.end(), "JobSpec: missing resolved parameter '" + name + "'");
  return it->second;
}

/// Shared serving function for every trainable accuracy job: score the
/// fitted model on the pool prefix selected by eval-records (0 = all). The
/// prefix is a deterministic subset, so a request's report is a pure
/// function of (pool, params) — required for cacheable serving.
std::vector<double> serve_accuracy(const ml::Classifier& model, const data::Dataset& pool,
                                   const JobParams& resolved) {
  const auto limit = static_cast<std::size_t>(param(resolved, "eval-records"));
  return {ml::accuracy(model, pool, limit)};
}

const ParamSpec kEvalRecords{"eval-records", 0.0, 0.0, 1e9, /*serve_only=*/true};

// ---- exact-merge helpers (DESIGN.md §11) ---------------------------------
// Partial blobs are flat double vectors, exactly like the wire payloads in
// protocol/message.cpp. They cross the cluster's encrypted links, but a
// confused or stale miner could still ship a malformed blob — every merge
// validates shape with SAP_REQUIRE before touching contents.

/// Row indices of a shard's pool in canonical (nonce, seq) order.
std::vector<std::size_t> canonical_order(std::span<const PoolKey> keys) {
  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return keys[a] < keys[b];
  });
  return order;
}

/// Reads doubles off a partial blob with bounds/shape checking.
class BlobReader {
 public:
  explicit BlobReader(std::span<const double> blob) : blob_(blob) {}
  double next(const char* what) {
    SAP_REQUIRE(pos_ < blob_.size(), std::string("merge_partials: truncated blob at ") + what);
    return blob_[pos_++];
  }
  std::size_t next_count(const char* what, std::size_t max) {
    const double v = next(what);
    SAP_REQUIRE(std::isfinite(v) && v >= 0.0 && v == std::floor(v) &&
                    v <= static_cast<double>(max),
                std::string("merge_partials: malformed count for ") + what);
    return static_cast<std::size_t>(v);
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == blob_.size(); }

 private:
  std::span<const double> blob_;
  std::size_t pos_ = 0;
};

// -- record-count: partials are per-shard counts; the merge is an exact
//    integer sum (record counts are far below 2^53).
std::vector<double> count_partial(const data::Dataset& rows, std::span<const PoolKey>,
                                  const data::Dataset&, const JobParams&) {
  return {static_cast<double>(rows.size())};
}

std::vector<double> count_merge(const std::vector<std::vector<double>>& partials,
                                const data::Dataset&, const JobParams&) {
  double total = 0.0;
  for (const auto& blob : partials) {
    SAP_REQUIRE(blob.size() == 1, "record-count merge: malformed partial");
    BlobReader r(blob);
    total += static_cast<double>(r.next_count("record-count", 1ull << 52));
  }
  return {total};
}

// -- class-histogram: partials are (label, count) pairs; the merge sums per
//    label and reports counts in ascending label order — exactly what
//    Dataset::class_counts() yields on the concatenated pool.
std::vector<double> hist_partial(const data::Dataset& rows, std::span<const PoolKey>,
                                 const data::Dataset&, const JobParams&) {
  const auto labels = rows.classes();
  const auto counts = rows.class_counts();
  std::vector<double> blob;
  blob.reserve(1 + 2 * labels.size());
  blob.push_back(static_cast<double>(labels.size()));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    blob.push_back(static_cast<double>(labels[i]));
    blob.push_back(static_cast<double>(counts[i]));
  }
  return blob;
}

std::vector<double> hist_merge(const std::vector<std::vector<double>>& partials,
                               const data::Dataset&, const JobParams&) {
  std::map<int, double> tally;
  for (const auto& blob : partials) {
    BlobReader r(blob);
    const std::size_t classes = r.next_count("class count", 4096);
    for (std::size_t i = 0; i < classes; ++i) {
      const double label = r.next("label");
      SAP_REQUIRE(std::isfinite(label) && label == std::floor(label) &&
                      std::abs(label) < 2147483648.0,
                  "class-histogram merge: malformed label");
      tally[static_cast<int>(label)] +=
          static_cast<double>(r.next_count("class size", 1ull << 52));
    }
    SAP_REQUIRE(r.done(), "class-histogram merge: trailing bytes in partial");
  }
  std::vector<double> report;
  report.reserve(tally.size());
  for (const auto& [label, count] : tally) report.push_back(count);
  return report;
}

// -- nb-train-accuracy: partials carry per-NONCE-segment sufficient
//    statistics (the segment set is a pure function of the pool, not of the
//    shard layout); the merge folds segments in canonical nonce order via
//    GaussianNaiveBayes::merge_stats and scores the queries. Blob layout:
//    [dims, segments, {nonce, classes, {label, count, shift[d], sum[d],
//    sumsq[d]}*}*].
std::vector<double> nb_partial(const data::Dataset& rows, std::span<const PoolKey> keys,
                               const data::Dataset&, const JobParams&) {
  SAP_REQUIRE(keys.size() == rows.size(), "nb partial: keys/rows size mismatch");
  const std::size_t d = rows.dims();
  const auto order = canonical_order(keys);
  std::vector<double> blob{static_cast<double>(d), 0.0};
  std::size_t segments = 0;
  std::size_t at = 0;
  while (at < order.size()) {
    const std::uint64_t nonce = keys[order[at]].nonce;
    std::vector<std::size_t> segment;
    while (at < order.size() && keys[order[at]].nonce == nonce) segment.push_back(order[at++]);
    const auto stats = ml::GaussianNaiveBayes::collect_stats(rows.subset(segment));
    blob.push_back(static_cast<double>(nonce));
    blob.push_back(static_cast<double>(stats.size()));
    for (const auto& cls : stats) {
      blob.push_back(static_cast<double>(cls.label));
      blob.push_back(static_cast<double>(cls.count));
      blob.insert(blob.end(), cls.shift.begin(), cls.shift.end());
      blob.insert(blob.end(), cls.sum.begin(), cls.sum.end());
      blob.insert(blob.end(), cls.sumsq.begin(), cls.sumsq.end());
    }
    ++segments;
  }
  blob[1] = static_cast<double>(segments);
  return blob;
}

std::vector<double> nb_merge(const std::vector<std::vector<double>>& partials,
                             const data::Dataset& queries, const JobParams& resolved) {
  SAP_REQUIRE(!partials.empty(), "nb merge: no partials");
  // Decode every (nonce, stats) segment, then refold in canonical nonce
  // order — each nonce lives on exactly one shard, so the segment sequence
  // is a pure function of the pool whatever the layout was.
  std::vector<std::pair<std::uint64_t, std::vector<ml::NbClassStats>>> segments;
  std::size_t dims = 0;
  for (const auto& blob : partials) {
    BlobReader r(blob);
    const std::size_t d = r.next_count("dims", 1u << 20);
    const std::size_t nsegs = r.next_count("segments", 1u << 20);
    if (nsegs > 0) {  // an empty shard's blob carries no dims to reconcile
      SAP_REQUIRE(d > 0 && (dims == 0 || d == dims), "nb merge: inconsistent dims");
      dims = d;
    }
    for (std::size_t s = 0; s < nsegs; ++s) {
      const double nonce = r.next("nonce");
      SAP_REQUIRE(std::isfinite(nonce) && nonce >= 0.0 && nonce == std::floor(nonce) &&
                      nonce < 9007199254740992.0,
                  "nb merge: malformed nonce");
      const std::size_t classes = r.next_count("classes", 4096);
      std::vector<ml::NbClassStats> stats(classes);
      for (auto& cls : stats) {
        const double label = r.next("label");
        SAP_REQUIRE(std::isfinite(label) && label == std::floor(label) &&
                        std::abs(label) < 2147483648.0,
                    "nb merge: malformed label");
        cls.label = static_cast<int>(label);
        cls.count = r.next_count("class size", 1ull << 52);
        cls.shift.resize(dims);
        cls.sum.resize(dims);
        cls.sumsq.resize(dims);
        for (auto& v : cls.shift) v = r.next("shift");
        for (auto& v : cls.sum) v = r.next("sum");
        for (auto& v : cls.sumsq) v = r.next("sumsq");
      }
      segments.emplace_back(static_cast<std::uint64_t>(nonce), std::move(stats));
    }
    SAP_REQUIRE(r.done(), "nb merge: trailing bytes in partial");
  }
  SAP_REQUIRE(!segments.empty(), "nb merge: no rows across shards");
  std::sort(segments.begin(), segments.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < segments.size(); ++i)
    SAP_REQUIRE(segments[i].first != segments[i - 1].first,
                "nb merge: duplicate nonce segment across partials");
  std::vector<std::vector<ml::NbClassStats>> ordered;
  ordered.reserve(segments.size());
  for (auto& [nonce, stats] : segments) ordered.push_back(std::move(stats));
  const auto model =
      ml::GaussianNaiveBayes::merge_stats(ordered, dims, param(resolved, "var-smoothing"));
  return {ml::accuracy(model, queries)};
}

// -- knn-train-accuracy: partials carry, per query, the shard's k nearest
//    candidates as (dist², nonce, seq, label); the merge re-selects the
//    global k by the same (distance, canonical index) tie-break Knn uses
//    and replays its majority vote. Blob layout: [k, queries, {cands,
//    {dist, nonce, seq, label}*}*].
std::vector<double> knn_partial(const data::Dataset& rows, std::span<const PoolKey> keys,
                                const data::Dataset& queries, const JobParams& resolved) {
  SAP_REQUIRE(keys.size() == rows.size(), "knn partial: keys/rows size mismatch");
  const auto k = static_cast<std::size_t>(param(resolved, "k"));
  const std::size_t n = rows.size();
  const std::size_t local_k = std::min(k, n);
  std::vector<double> blob{static_cast<double>(k), static_cast<double>(queries.size())};
  struct Cand {
    double dist = 0.0;
    PoolKey key;
    int label = 0;
  };
  std::vector<Cand> cands(n);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto query = queries.record(q);
    for (std::size_t i = 0; i < n; ++i) {
      // The exact distance loop Knn's backends evaluate — identical FP op
      // sequence, so merged selection sees identical doubles.
      auto row = rows.record(i);
      double acc = 0.0;
      for (std::size_t c = 0; c < query.size(); ++c) {
        const double diff = row[c] - query[c];
        acc += diff * diff;
      }
      cands[i] = {acc, keys[i], rows.label(i)};
    }
    const auto closer = [](const Cand& a, const Cand& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.key < b.key;
    };
    std::partial_sort(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(local_k),
                      cands.end(), closer);
    blob.push_back(static_cast<double>(local_k));
    for (std::size_t i = 0; i < local_k; ++i) {
      blob.push_back(cands[i].dist);
      blob.push_back(static_cast<double>(cands[i].key.nonce));
      blob.push_back(static_cast<double>(cands[i].key.seq));
      blob.push_back(static_cast<double>(cands[i].label));
    }
  }
  return blob;
}

std::vector<double> knn_merge(const std::vector<std::vector<double>>& partials,
                              const data::Dataset& queries, const JobParams& resolved) {
  SAP_REQUIRE(!partials.empty(), "knn merge: no partials");
  SAP_REQUIRE(queries.size() > 0, "knn merge: empty query prefix");
  const auto k = static_cast<std::size_t>(param(resolved, "k"));
  struct Cand {
    double dist = 0.0;
    PoolKey key;
    int label = 0;
  };
  // Per query, the union of every shard's local candidates.
  std::vector<std::vector<Cand>> merged(queries.size());
  for (const auto& blob : partials) {
    BlobReader r(blob);
    SAP_REQUIRE(r.next_count("k", 1u << 20) == k, "knn merge: k mismatch across partials");
    SAP_REQUIRE(r.next_count("queries", 1u << 26) == queries.size(),
                "knn merge: query count mismatch");
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::size_t cands = r.next_count("candidates", k);
      for (std::size_t i = 0; i < cands; ++i) {
        Cand c;
        c.dist = r.next("distance");
        SAP_REQUIRE(std::isfinite(c.dist) && c.dist >= 0.0, "knn merge: malformed distance");
        const double nonce = r.next("nonce");
        SAP_REQUIRE(std::isfinite(nonce) && nonce >= 0.0 && nonce == std::floor(nonce) &&
                        nonce < 9007199254740992.0,
                    "knn merge: malformed nonce");
        c.key.nonce = static_cast<std::uint64_t>(nonce);
        c.key.seq = static_cast<std::uint32_t>(r.next_count("seq", 0xFFFFFFFFull));
        const double label = r.next("label");
        SAP_REQUIRE(std::isfinite(label) && label == std::floor(label) &&
                        std::abs(label) < 2147483648.0,
                    "knn merge: malformed label");
        c.label = static_cast<int>(label);
        merged[q].push_back(c);
      }
    }
    SAP_REQUIRE(r.done(), "knn merge: trailing bytes in partial");
  }
  std::size_t hits = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto& cands = merged[q];
    SAP_REQUIRE(!cands.empty(), "knn merge: no candidates for a query");
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.key < b.key;
    });
    const std::size_t kk = std::min(k, cands.size());
    // Replay Knn::predict's vote exactly: tallies accumulate in ascending
    // (distance, canonical index) order, majority wins, ties break toward
    // the smaller summed distance.
    std::map<int, std::pair<std::size_t, double>> votes;
    for (std::size_t i = 0; i < kk; ++i) {
      auto& [count, dsum] = votes[cands[i].label];
      ++count;
      dsum += cands[i].dist;
    }
    int best_label = votes.begin()->first;
    std::pair<std::size_t, double> best{0, 0.0};
    for (const auto& [label, tally] : votes) {
      const bool wins = tally.first > best.first ||
                        (tally.first == best.first && tally.second < best.second);
      if (wins) {
        best = tally;
        best_label = label;
      }
    }
    hits += (best_label == queries.label(q));
  }
  return {static_cast<double>(hits) / static_cast<double>(queries.size())};
}

}  // namespace

JobParams JobSpec::resolve_params(const JobParams& request) const {
  JobParams resolved;
  for (const auto& spec : params) resolved[spec.name] = spec.def;
  for (const auto& [name, value] : request) {
    const auto it = std::find_if(params.begin(), params.end(),
                                 [&](const ParamSpec& p) { return p.name == name; });
    SAP_REQUIRE(it != params.end(),
                "JobSpec '" + this->name + "': unknown parameter '" + name + "'");
    SAP_REQUIRE(std::isfinite(value) && value >= it->min_value && value <= it->max_value,
                "JobSpec '" + this->name + "': parameter '" + name + "' out of range");
    resolved[name] = value;
  }
  return resolved;
}

std::string JobSpec::canonical_params(const JobParams& resolved) {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : resolved) {  // std::map: already name-sorted
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += name;
    out += '=';
    out += buf;
    out += ';';
  }
  return out;
}

std::string JobSpec::model_key_params(const JobParams& resolved) const {
  JobParams model_relevant;
  for (const auto& [name, value] : resolved) {
    const auto it = std::find_if(params.begin(), params.end(),
                                 [&](const ParamSpec& p) { return p.name == name; });
    if (it == params.end() || !it->serve_only) model_relevant.emplace(name, value);
  }
  return canonical_params(model_relevant);
}

void JobRegistry::register_job(JobSpec spec) {
  SAP_REQUIRE(!spec.name.empty(), "JobRegistry: empty job name");
  SAP_REQUIRE(static_cast<bool>(spec.run) != spec.trainable(),
              "JobRegistry '" + spec.name +
                  "': exactly one of run or make_model must be set");
  SAP_REQUIRE(!spec.trainable() || static_cast<bool>(spec.serve),
              "JobRegistry '" + spec.name + "': trainable job needs a serve function");
  SAP_REQUIRE(static_cast<bool>(spec.partial) == static_cast<bool>(spec.merge_partials),
              "JobRegistry '" + spec.name +
                  "': partial and merge_partials must be set together");
  for (std::size_t i = 0; i < spec.params.size(); ++i) {
    const auto& p = spec.params[i];
    SAP_REQUIRE(!p.name.empty(), "JobRegistry '" + spec.name + "': empty parameter name");
    SAP_REQUIRE(p.min_value <= p.def && p.def <= p.max_value,
                "JobRegistry '" + spec.name + "': default for '" + p.name +
                    "' outside its declared range");
    for (std::size_t j = i + 1; j < spec.params.size(); ++j)
      SAP_REQUIRE(spec.params[j].name != p.name,
                  "JobRegistry '" + spec.name + "': duplicate parameter '" + p.name + "'");
  }
  specs_[spec.name] = std::move(spec);  // replaces an existing spec
}

void JobRegistry::register_job(std::string name, MinerJob job) {
  SAP_REQUIRE(job != nullptr, "JobRegistry: null job");
  JobSpec spec;
  spec.name = std::move(name);
  spec.summary = "ad-hoc closure job";
  spec.run = [job = std::move(job)](const data::Dataset& pool, const JobParams&) {
    return job(pool);
  };
  register_job(std::move(spec));
}

bool JobRegistry::contains(const std::string& name) const {
  return specs_.find(name) != specs_.end();
}

const JobSpec& JobRegistry::find(const std::string& name) const {
  const auto it = specs_.find(name);
  SAP_REQUIRE(it != specs_.end(), "JobRegistry: unknown miner job '" + name + "'");
  return it->second;
}

std::vector<std::string> JobRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(name);
  return out;
}

JobRegistry JobRegistry::builtins() {
  JobRegistry reg;

  {
    JobSpec spec;
    spec.name = "record-count";
    spec.summary = "pool size {N}";
    spec.run = [](const data::Dataset& pool, const JobParams&) {
      return std::vector<double>{static_cast<double>(pool.size())};
    };
    spec.partial = count_partial;
    spec.merge_partials = count_merge;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "class-histogram";
    spec.summary = "per-class record counts";
    spec.run = [](const data::Dataset& pool, const JobParams&) {
      const auto counts = pool.class_counts();
      std::vector<double> report;
      report.reserve(counts.size());
      for (const auto count : counts) report.push_back(static_cast<double>(count));
      return report;
    };
    spec.partial = hist_partial;
    spec.merge_partials = hist_merge;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "knn-train-accuracy";
    spec.summary = "k-NN accuracy on the pool";
    spec.params = {{"k", 5.0, 1.0, 256.0}, kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      return std::make_unique<ml::Knn>(static_cast<std::size_t>(param(p, "k")));
    };
    spec.serve = serve_accuracy;
    spec.partial = knn_partial;
    spec.merge_partials = knn_merge;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "svm-train-accuracy";
    spec.summary = "SMO-trained RBF SVM accuracy on the pool";
    spec.params = {{"c", 4.0, 1e-3, 1e3},
                   {"gamma", 0.0, 0.0, 1e3},  // 0 = scale heuristic
                   kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      ml::SvmOptions opts;
      opts.c = param(p, "c");
      opts.gamma = param(p, "gamma");
      return std::make_unique<ml::Svm>(opts);
    };
    spec.serve = serve_accuracy;
    // SMO's working-set selection is a global optimization over all rows —
    // no exact merge exists, so a sharded serve gathers the canonical pool.
    spec.merge_fallback = MergeFallback::kGather;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "nb-train-accuracy";
    spec.summary = "Gaussian Naive Bayes accuracy on the pool";
    spec.params = {{"var-smoothing", 1e-9, 0.0, 1.0}, kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      return std::make_unique<ml::GaussianNaiveBayes>(param(p, "var-smoothing"));
    };
    spec.serve = serve_accuracy;
    spec.partial = nb_partial;
    spec.merge_partials = nb_merge;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "perceptron-train-accuracy";
    spec.summary = "averaged perceptron accuracy on the pool";
    spec.params = {{"epochs", 30.0, 1.0, 1e4}, {"learning-rate", 0.5, 1e-6, 10.0},
                   kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      ml::PerceptronOptions opts;
      opts.epochs = static_cast<std::size_t>(param(p, "epochs"));
      opts.learning_rate = param(p, "learning-rate");
      return std::make_unique<ml::Perceptron>(opts);
    };
    spec.serve = serve_accuracy;
    // Epoch-ordered mistake-driven updates depend on the full record
    // sequence; like the SVM, sharded serves gather rather than merge.
    spec.merge_fallback = MergeFallback::kGather;
    reg.register_job(std::move(spec));
  }

  return reg;
}

std::string schema_json(const JobRegistry& registry) {
  // Max round-trip precision, plain JSON-number syntax (%.17g may print an
  // exponent, which is still valid JSON). JSON has no inf/nan, so
  // non-finite bounds (register_job accepts e.g. +inf as "no upper bound")
  // serialize as null.
  const auto num = [](double v) -> std::string {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    std::string s(buf);
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    return s;
  };
  // register_job accepts arbitrary names/summaries, so escape — an
  // unescaped quote in a registered spec must not break the orchestration
  // surface this exists for.
  const auto str = [](const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
    return out;
  };
  std::string out = "{\"jobs\": [\n";
  bool first_job = true;
  for (const auto& name : registry.names()) {
    const auto& spec = registry.find(name);
    if (!first_job) out += ",\n";
    first_job = false;
    out += "  {\"name\": " + str(spec.name) + ", \"kind\": \"";
    out += spec.trainable() ? "trainable" : "structural";
    out += "\", \"summary\": " + str(spec.summary) + ", \"params\": [";
    bool first_param = true;
    for (const auto& p : spec.params) {
      if (!first_param) out += ", ";
      first_param = false;
      out += "{\"name\": " + str(p.name) + ", \"default\": " + num(p.def) +
             ", \"min\": " + num(p.min_value) + ", \"max\": " + num(p.max_value) +
             ", \"serve_only\": " + (p.serve_only ? "true" : "false") + "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace sap::proto
