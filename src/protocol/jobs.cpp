#include "protocol/jobs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "classify/knn.hpp"
#include "classify/naive_bayes.hpp"
#include "classify/perceptron.hpp"
#include "classify/svm.hpp"
#include "common/error.hpp"

namespace sap::proto {
namespace {

double param(const JobParams& resolved, const std::string& name) {
  const auto it = resolved.find(name);
  SAP_REQUIRE(it != resolved.end(), "JobSpec: missing resolved parameter '" + name + "'");
  return it->second;
}

/// Shared serving function for every trainable accuracy job: score the
/// fitted model on the pool prefix selected by eval-records (0 = all). The
/// prefix is a deterministic subset, so a request's report is a pure
/// function of (pool, params) — required for cacheable serving.
std::vector<double> serve_accuracy(const ml::Classifier& model, const data::Dataset& pool,
                                   const JobParams& resolved) {
  const auto limit = static_cast<std::size_t>(param(resolved, "eval-records"));
  return {ml::accuracy(model, pool, limit)};
}

const ParamSpec kEvalRecords{"eval-records", 0.0, 0.0, 1e9, /*serve_only=*/true};

}  // namespace

JobParams JobSpec::resolve_params(const JobParams& request) const {
  JobParams resolved;
  for (const auto& spec : params) resolved[spec.name] = spec.def;
  for (const auto& [name, value] : request) {
    const auto it = std::find_if(params.begin(), params.end(),
                                 [&](const ParamSpec& p) { return p.name == name; });
    SAP_REQUIRE(it != params.end(),
                "JobSpec '" + this->name + "': unknown parameter '" + name + "'");
    SAP_REQUIRE(std::isfinite(value) && value >= it->min_value && value <= it->max_value,
                "JobSpec '" + this->name + "': parameter '" + name + "' out of range");
    resolved[name] = value;
  }
  return resolved;
}

std::string JobSpec::canonical_params(const JobParams& resolved) {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : resolved) {  // std::map: already name-sorted
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += name;
    out += '=';
    out += buf;
    out += ';';
  }
  return out;
}

std::string JobSpec::model_key_params(const JobParams& resolved) const {
  JobParams model_relevant;
  for (const auto& [name, value] : resolved) {
    const auto it = std::find_if(params.begin(), params.end(),
                                 [&](const ParamSpec& p) { return p.name == name; });
    if (it == params.end() || !it->serve_only) model_relevant.emplace(name, value);
  }
  return canonical_params(model_relevant);
}

void JobRegistry::register_job(JobSpec spec) {
  SAP_REQUIRE(!spec.name.empty(), "JobRegistry: empty job name");
  SAP_REQUIRE(static_cast<bool>(spec.run) != spec.trainable(),
              "JobRegistry '" + spec.name +
                  "': exactly one of run or make_model must be set");
  SAP_REQUIRE(!spec.trainable() || static_cast<bool>(spec.serve),
              "JobRegistry '" + spec.name + "': trainable job needs a serve function");
  for (std::size_t i = 0; i < spec.params.size(); ++i) {
    const auto& p = spec.params[i];
    SAP_REQUIRE(!p.name.empty(), "JobRegistry '" + spec.name + "': empty parameter name");
    SAP_REQUIRE(p.min_value <= p.def && p.def <= p.max_value,
                "JobRegistry '" + spec.name + "': default for '" + p.name +
                    "' outside its declared range");
    for (std::size_t j = i + 1; j < spec.params.size(); ++j)
      SAP_REQUIRE(spec.params[j].name != p.name,
                  "JobRegistry '" + spec.name + "': duplicate parameter '" + p.name + "'");
  }
  specs_[spec.name] = std::move(spec);  // replaces an existing spec
}

void JobRegistry::register_job(std::string name, MinerJob job) {
  SAP_REQUIRE(job != nullptr, "JobRegistry: null job");
  JobSpec spec;
  spec.name = std::move(name);
  spec.summary = "ad-hoc closure job";
  spec.run = [job = std::move(job)](const data::Dataset& pool, const JobParams&) {
    return job(pool);
  };
  register_job(std::move(spec));
}

bool JobRegistry::contains(const std::string& name) const {
  return specs_.find(name) != specs_.end();
}

const JobSpec& JobRegistry::find(const std::string& name) const {
  const auto it = specs_.find(name);
  SAP_REQUIRE(it != specs_.end(), "JobRegistry: unknown miner job '" + name + "'");
  return it->second;
}

std::vector<std::string> JobRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(name);
  return out;
}

JobRegistry JobRegistry::builtins() {
  JobRegistry reg;

  {
    JobSpec spec;
    spec.name = "record-count";
    spec.summary = "pool size {N}";
    spec.run = [](const data::Dataset& pool, const JobParams&) {
      return std::vector<double>{static_cast<double>(pool.size())};
    };
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "class-histogram";
    spec.summary = "per-class record counts";
    spec.run = [](const data::Dataset& pool, const JobParams&) {
      const auto counts = pool.class_counts();
      std::vector<double> report;
      report.reserve(counts.size());
      for (const auto count : counts) report.push_back(static_cast<double>(count));
      return report;
    };
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "knn-train-accuracy";
    spec.summary = "k-NN accuracy on the pool";
    spec.params = {{"k", 5.0, 1.0, 256.0}, kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      return std::make_unique<ml::Knn>(static_cast<std::size_t>(param(p, "k")));
    };
    spec.serve = serve_accuracy;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "svm-train-accuracy";
    spec.summary = "SMO-trained RBF SVM accuracy on the pool";
    spec.params = {{"c", 4.0, 1e-3, 1e3},
                   {"gamma", 0.0, 0.0, 1e3},  // 0 = scale heuristic
                   kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      ml::SvmOptions opts;
      opts.c = param(p, "c");
      opts.gamma = param(p, "gamma");
      return std::make_unique<ml::Svm>(opts);
    };
    spec.serve = serve_accuracy;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "nb-train-accuracy";
    spec.summary = "Gaussian Naive Bayes accuracy on the pool";
    spec.params = {{"var-smoothing", 1e-9, 0.0, 1.0}, kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      return std::make_unique<ml::GaussianNaiveBayes>(param(p, "var-smoothing"));
    };
    spec.serve = serve_accuracy;
    reg.register_job(std::move(spec));
  }

  {
    JobSpec spec;
    spec.name = "perceptron-train-accuracy";
    spec.summary = "averaged perceptron accuracy on the pool";
    spec.params = {{"epochs", 30.0, 1.0, 1e4}, {"learning-rate", 0.5, 1e-6, 10.0},
                   kEvalRecords};
    spec.make_model = [](const JobParams& p) -> std::unique_ptr<ml::Classifier> {
      ml::PerceptronOptions opts;
      opts.epochs = static_cast<std::size_t>(param(p, "epochs"));
      opts.learning_rate = param(p, "learning-rate");
      return std::make_unique<ml::Perceptron>(opts);
    };
    spec.serve = serve_accuracy;
    reg.register_job(std::move(spec));
  }

  return reg;
}

std::string schema_json(const JobRegistry& registry) {
  // Max round-trip precision, plain JSON-number syntax (%.17g may print an
  // exponent, which is still valid JSON). JSON has no inf/nan, so
  // non-finite bounds (register_job accepts e.g. +inf as "no upper bound")
  // serialize as null.
  const auto num = [](double v) -> std::string {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    std::string s(buf);
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    return s;
  };
  // register_job accepts arbitrary names/summaries, so escape — an
  // unescaped quote in a registered spec must not break the orchestration
  // surface this exists for.
  const auto str = [](const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
    return out;
  };
  std::string out = "{\"jobs\": [\n";
  bool first_job = true;
  for (const auto& name : registry.names()) {
    const auto& spec = registry.find(name);
    if (!first_job) out += ",\n";
    first_job = false;
    out += "  {\"name\": " + str(spec.name) + ", \"kind\": \"";
    out += spec.trainable() ? "trainable" : "structural";
    out += "\", \"summary\": " + str(spec.summary) + ", \"params\": [";
    bool first_param = true;
    for (const auto& p : spec.params) {
      if (!first_param) out += ", ";
      first_param = false;
      out += "{\"name\": " + str(p.name) + ", \"default\": " + num(p.def) +
             ", \"min\": " + num(p.min_value) + ", \"max\": " + num(p.max_value) +
             ", \"serve_only\": " + (p.serve_only ? "true" : "false") + "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace sap::proto
