// SapProtocol — single-shot compatibility wrapper over SapSession.
//
// COMPATIBILITY SHIM, kept for one release: new code should construct a
// SapSession (session.hpp) directly — it exposes the protocol phases, the
// pluggable Transport backend, and re-runnable named mining jobs. This
// wrapper preserves the original one-call surface (construct → run() →
// network()) for callers that have not migrated yet; it always runs over
// the synchronous SimulatedNetwork backend.
//
// Each run() executes a fresh session (fresh transport, fresh trace), which
// matches the historical semantics of the monolithic SapProtocol::run().
#pragma once

#include "protocol/network.hpp"
#include "protocol/session.hpp"

namespace sap::proto {

class SapProtocol {
 public:
  /// One dataset per provider (>= 3 providers; same contract as SapSession).
  SapProtocol(std::vector<data::Dataset> provider_data, SapOptions opts);

  /// Execute the full protocol; `job` may be empty.
  SapResult run(const MinerJob& job = {});

  /// Failure injection for tests/benches: messages matching the filter are
  /// dropped during the next run(). The protocol must detect the incomplete
  /// exchange and throw sap::Error rather than mine a partial pool
  /// (DESIGN.md §4 invariant 3).
  void inject_faults(SimulatedNetwork::DropFilter filter);

  /// Network trace of the last run (throws before the first run()).
  [[nodiscard]] const SimulatedNetwork& network() const;

  [[nodiscard]] std::size_t provider_count() const noexcept {
    return provider_data_.size();
  }

 private:
  std::vector<data::Dataset> provider_data_;
  SapOptions opts_;
  Transport::DropFilter fault_filter_;
  std::unique_ptr<SapSession> session_;
};

}  // namespace sap::proto
