// Space Adaptation Protocol (paper §3) — end-to-end orchestration.
//
// Roles (all simulated in-process over SimulatedNetwork, which enforces and
// records the information flow):
//   * k data providers DP_0 .. DP_{k-1}; DP_{k-1} doubles as the
//     *coordinator* (the paper's DP_k),
//   * one mining service provider (SP / "the miner").
//
// Steps:
//   1. every provider locally optimizes its perturbation G_i : (R_i, t_i)
//      with the common noise level sigma (randomized optimizer of [2]);
//   2. the coordinator selects a random *noise-free* target space
//      G_t : (R_t, t_t) and distributes it to the providers (encrypted);
//   3. the coordinator samples a permutation tau of the k providers and
//      redirects its own slot to a random non-coordinator provider j —
//      the coordinator must never receive data because it later holds the
//      space adaptors, which would let it undo any perturbation it saw;
//   4. providers perturb (Y_i = R_i X_i + Psi_i + Delta_i) and send Y_i to
//      their assigned peer; peers forward everything to the miner —
//      from the miner's view each dataset now comes from any of the k-1
//      forwarders, so source identifiability drops to 1/(k-1);
//   5. providers send their space adaptor A_it = <R_it, Psi_it> to the
//      coordinator, which aligns adaptors with forwarders via tau and ships
//      the aligned sequence to the miner;
//   6. the miner applies each adaptor to the matching dataset, obtaining
//      every record in the unified target space (noise inherited from the
//      source spaces), pools them, runs the mining job, and reports back.
//
// The run() result carries the miner's unified dataset, per-party privacy
// accounting (rho_i, b_i, satisfaction s_i, identifiability pi_i, risk
// eq. (1) and eq. (2)) and cost statistics from the network trace.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "data/dataset.hpp"
#include "optimize/optimizer.hpp"
#include "perturb/geometric.hpp"
#include "perturb/space_adaptor.hpp"
#include "protocol/network.hpp"
#include "protocol/risk.hpp"

namespace sap::proto {

struct SapOptions {
  /// Common noise level Delta shared by all parties (paper §3).
  double noise_sigma = 0.1;
  /// Locally optimize G_i (paper default). false → random G_i, the
  /// baseline of Figure 2.
  bool optimize_local = true;
  /// Randomized-optimizer configuration (also supplies the attack suite
  /// used for rho / satisfaction accounting).
  opt::OptimizerOptions optimizer{};
  /// Extra optimization runs per party used to estimate the bound b_i
  /// (>= 1; the paper estimates b empirically as a max over runs).
  std::size_t bound_runs = 2;
  /// Evaluate satisfaction s_i = rho^G_i / rho_i (costs one attack-suite
  /// evaluation per party; disable for pure cost benches).
  bool compute_satisfaction = true;
  /// Master seed: a run is bit-for-bit reproducible given options + data.
  std::uint64_t seed = 0x5A9;

  /// Cheap preset for unit tests (few candidates, no refinement).
  static SapOptions fast();
};

/// Per-provider accounting, all in the paper's notation.
struct PartyReport {
  PartyId id = 0;
  double local_rho = 0.0;        ///< rho_i
  double bound = 0.0;            ///< b-hat_i
  double unified_rho = 0.0;      ///< rho^G_i (privacy in the target space)
  double satisfaction = 0.0;     ///< s_i = rho^G_i / rho_i (capped at b_i/rho_i)
  double identifiability = 0.0;  ///< pi_i = 1/(k-1)
  double risk_breach = 0.0;      ///< eq. (1), miner's view
  double risk_sap = 0.0;         ///< eq. (2), overall
};

struct SapResult {
  /// Miner's pooled dataset in the unified target space (N x d rows).
  data::Dataset unified;
  /// Target space parameters (provider-side knowledge; needed to transform
  /// test data into the mining space — never shipped to the miner).
  perturb::GeometricPerturbation target_space;
  std::vector<PartyReport> parties;

  // ---- cost statistics (from the network trace)
  std::size_t messages = 0;
  std::size_t total_bytes = 0;

  // ---- audit-only ground truth (invisible to the simulated miner; used by
  //      tests to verify the anonymity mechanics)
  std::vector<PartyId> audit_receiver_of;   ///< provider i's data went to this peer
  std::vector<PartyId> audit_forwarder_of;  ///< and reached the miner via this peer
};

/// Optional mining job executed at the miner on the unified dataset; the
/// returned doubles are broadcast back to providers as kModelReport.
using MinerJob = std::function<std::vector<double>(const data::Dataset&)>;

class SapProtocol {
 public:
  /// One dataset per provider (>= 3 providers: with fewer than two
  /// non-coordinator providers the exchange cannot anonymize anything).
  /// All datasets must share dimensionality and be pre-normalized.
  SapProtocol(std::vector<data::Dataset> provider_data, SapOptions opts);

  /// Execute the protocol; `job` may be empty.
  SapResult run(const MinerJob& job = {});

  /// Failure injection for tests/benches: messages matching the filter are
  /// dropped by the network during the next run(). The protocol must detect
  /// the incomplete exchange and throw sap::Error rather than mine a partial
  /// pool (DESIGN.md §4 invariant 3).
  void inject_faults(SimulatedNetwork::DropFilter filter);

  /// Network trace of the last run (empty before run()); tests audit this.
  [[nodiscard]] const SimulatedNetwork& network() const;

  [[nodiscard]] std::size_t provider_count() const noexcept { return provider_data_.size(); }

 private:
  std::vector<data::Dataset> provider_data_;
  SapOptions opts_;
  SimulatedNetwork::DropFilter fault_filter_;
  std::optional<SimulatedNetwork> net_;
};

}  // namespace sap::proto
