#include "protocol/transport.hpp"

#include <exception>

#include "common/error.hpp"
#include "protocol/network.hpp"
#include "protocol/threaded_transport.hpp"

namespace sap::proto {

std::string to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSimulated: return "simulated";
    case TransportKind::kThreadedLocal: return "threaded-local";
    case TransportKind::kTcp: return "tcp";
  }
  return "unknown";
}

void Transport::run_parties(std::vector<std::function<void()>> tasks) {
  // Sequential policy: tasks run in index order on the calling thread. The
  // protocol orders its batches so every receive happens after the batch
  // that produced the mail, which this policy preserves trivially.
  std::exception_ptr first_error;
  for (auto& task : tasks) {
    if (!task) continue;
    try {
      task();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::map<std::pair<PartyId, PartyId>, std::size_t> Transport::link_bytes() const {
  std::map<std::pair<PartyId, PartyId>, std::size_t> bytes;
  for (const Message& msg : trace()) bytes[{msg.from, msg.to}] += msg.wire_bytes;
  return bytes;
}

std::size_t Transport::count_received(PartyId party, PayloadKind kind) const {
  std::size_t count = 0;
  for (const Message& msg : trace()) count += (msg.to == party && msg.kind == kind);
  return count;
}

std::unique_ptr<Transport> make_transport(TransportKind kind, std::uint64_t session_secret) {
  switch (kind) {
    case TransportKind::kSimulated:
      return std::make_unique<SimulatedNetwork>(session_secret);
    case TransportKind::kThreadedLocal:
      return std::make_unique<ThreadedLocalTransport>(session_secret);
    case TransportKind::kTcp:
      SAP_FAIL("make_transport: the tcp transport needs an address — use "
               "net::tcp_transport_factory(address, ...)");
  }
  SAP_FAIL("make_transport: unknown transport kind");
}

namespace detail {

std::uint64_t derive_link_key(std::uint64_t session_secret, PartyId from,
                              PartyId to) noexcept {
  std::uint64_t h = session_secret;
  h ^= 0x9E3779B97F4A7C15ULL + (static_cast<std::uint64_t>(from) << 32 | to);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

}  // namespace detail

}  // namespace sap::proto
