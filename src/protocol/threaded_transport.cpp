#include "protocol/threaded_transport.hpp"

#include <exception>
#include <thread>

#include "common/error.hpp"

namespace sap::proto {
namespace {

/// True on threads spawned by run_parties(); starvation detection only
/// applies to workers (a non-worker caller with an empty inbox and no busy
/// workers fails immediately, like the synchronous backend).
thread_local bool tl_is_worker = false;

}  // namespace

ThreadedLocalTransport::ThreadedLocalTransport(std::uint64_t session_secret)
    : session_secret_(session_secret) {}

std::uint64_t ThreadedLocalTransport::link_key(PartyId from, PartyId to) const noexcept {
  return detail::derive_link_key(session_secret_, from, to);
}

PartyId ThreadedLocalTransport::add_party() {
  const MutexLock lock(mutex_);
  inboxes_.emplace_back();
  return static_cast<PartyId>(inboxes_.size() - 1);
}

std::size_t ThreadedLocalTransport::party_count() const {
  const MutexLock lock(mutex_);
  return inboxes_.size();
}

void ThreadedLocalTransport::set_drop_filter(DropFilter filter) {
  const MutexLock lock(mutex_);
  drop_filter_ = std::move(filter);
}

std::size_t ThreadedLocalTransport::dropped_count() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

const std::vector<Message>& ThreadedLocalTransport::trace() const {
  const MutexLock lock(mutex_);
  return trace_;
}

std::size_t ThreadedLocalTransport::total_bytes() const {
  const MutexLock lock(mutex_);
  return total_bytes_;
}

void ThreadedLocalTransport::send(PartyId from, PartyId to, PayloadKind kind,
                                  std::span<const double> payload) {
  // Encrypt outside the lock: the envelope only depends on the link key.
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.kind = kind;
  msg.envelope = EncryptedEnvelope(payload, link_key(from, to));
  msg.wire_bytes = msg.envelope.size_doubles() * sizeof(double);
  // Evaluate the user-supplied drop filter outside the lock too: a filter
  // that calls back into a value accessor (dropped_count(), total_bytes())
  // must not deadlock on this backend when it works on the synchronous one.
  // (trace() remains off limits mid-batch — it returns a reference that
  // concurrent sends reallocate; see the Transport contract.)
  DropFilter filter;
  {
    const MutexLock lock(mutex_);
    SAP_REQUIRE(from < inboxes_.size() && to < inboxes_.size(),
                "ThreadedLocalTransport::send: unknown party");
    SAP_REQUIRE(from != to, "ThreadedLocalTransport::send: self-send is not a protocol step");
    filter = drop_filter_;
  }
  const bool dropped = filter && filter(from, to, kind);
  {
    const MutexLock lock(mutex_);
    total_bytes_ += msg.wire_bytes;
    trace_.push_back(std::move(msg));
    if (dropped) {
      ++dropped_;
    } else {
      inboxes_[to].push_back(trace_.size() - 1);
    }
  }
  cv_.notify_all();
}

bool ThreadedLocalTransport::has_mail(PartyId party) const {
  const MutexLock lock(mutex_);
  SAP_REQUIRE(party < inboxes_.size(), "ThreadedLocalTransport::has_mail: unknown party");
  return !inboxes_[party].empty();
}

Transport::Delivery ThreadedLocalTransport::receive(PartyId party) {
  MutexLock lock(mutex_);
  SAP_REQUIRE(party < inboxes_.size(), "ThreadedLocalTransport::receive: unknown party");
  for (;;) {
    if (!inboxes_[party].empty()) {
      const std::size_t idx = inboxes_[party].front();
      inboxes_[party].pop_front();
      const Message& msg = trace_[idx];
      // Decrypt under the lock: trace_ may reallocate under concurrent
      // sends, so the reference must not be used after unlocking.
      return {msg.from, msg.kind, msg.envelope.open(link_key(msg.from, msg.to))};
    }
    if (!tl_is_worker) {
      // Non-worker callers cannot be counted toward starvation; they may
      // only wait while workers that could still send are running.
      SAP_REQUIRE(busy_workers_ > 0, "ThreadedLocalTransport::receive: empty inbox");
      cv_.wait(lock);
      continue;
    }
    ++blocked_workers_;
    if (blocked_workers_ >= busy_workers_) {
      // Every running worker is blocked in receive() and this inbox is
      // empty: no message can ever arrive. Wake the others so they reach
      // the same conclusion for their own inboxes.
      --blocked_workers_;
      cv_.notify_all();
      SAP_FAIL(
          "ThreadedLocalTransport::receive: starved — no pending or in-flight "
          "mail for this party (dropped message?)");
    }
    cv_.wait(lock);
    --blocked_workers_;
  }
}

void ThreadedLocalTransport::run_parties(std::vector<std::function<void()>> tasks) {
  std::size_t live = 0;
  for (const auto& task : tasks) live += (task != nullptr);
  if (live == 0) return;
  {
    const MutexLock lock(mutex_);
    SAP_REQUIRE(busy_workers_ == 0,
                "ThreadedLocalTransport::run_parties: batch already running");
    busy_workers_ = live;
  }

  Mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(live);
  for (auto& task : tasks) {
    if (!task) continue;
    workers.emplace_back([this, &error_mutex, &first_error, work = std::move(task)] {
      tl_is_worker = true;
      try {
        work();
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      {
        const MutexLock lock(mutex_);
        --busy_workers_;
      }
      // A finished worker can no longer send: blocked peers must re-check
      // their starvation condition.
      cv_.notify_all();
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sap::proto
