// Protocol messages and the encrypted-channel boundary.
//
// The paper assumes encrypted pairwise channels and a semi-honest model; the
// protocol's privacy therefore rests on *who is sent what*, which these
// types make explicit and the network records for the invariant tests.
// Payloads travel as EncryptedEnvelope: a per-link keystream cipher over the
// serialized doubles. The cipher is a stand-in for TLS (documented
// substitution) — the point is that the network trace retains only
// ciphertext + metadata, so tests can assert that no honest-but-curious
// observer of the wire sees plaintext.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/shard.hpp"

namespace sap::proto {

using PartyId = std::uint32_t;

/// Message kinds — one per protocol step (paper §3).
enum class PayloadKind : std::uint8_t {
  kTargetSpace = 1,      ///< coordinator -> provider: G_t parameters
  kRoutingNotice = 2,    ///< coordinator -> provider: where to send your data
  kPerturbedData = 3,    ///< provider -> provider: Y_i = G_i(X_i) + labels
  kForwardedData = 4,    ///< provider -> miner: relayed Y_tau(i)
  kSpaceAdaptor = 5,     ///< provider -> coordinator: A_it
  kAdaptorSequence = 6,  ///< coordinator -> miner: adaptors aligned to forwarders
  kModelReport = 7,      ///< miner -> providers: trained model summary
  kContribution = 8,     ///< party -> miner: post-exchange perturbed batch
  kContributionAck = 9,  ///< miner -> party: receipt for an accepted batch
  kMiningRequest = 10,   ///< party -> miner: named job + params to serve
  kMiningResponse = 11,  ///< miner -> party: the served job report
  // -- cluster traffic (PR 8): router <-> sharded miners ------------------
  kServeError = 12,        ///< miner -> client: typed serving refusal
  kPartialRequest = 13,    ///< router -> miner: one shard's partial blob, please
  kPartialResponse = 14,   ///< miner -> router: the opaque partial blob
  kPoolSliceRequest = 15,  ///< router -> miner: one shard's canonical rows
  kPoolSliceResponse = 16, ///< miner -> router: rows + keys, canonical order
  // -- observability (PR 9): the live stats door ---------------------------
  kStatsRequest = 17,      ///< operator/router -> daemon: metrics snapshot, please
  kStatsResponse = 18,     ///< daemon -> requester: snapshot + recent traces
  // -- self-healing (PR 10): the shard-snapshot resync door -----------------
  kShardSnapshotRequest = 19,   ///< rejoining miner -> live owner: one shard, please
  kShardSnapshotResponse = 20,  ///< owner -> rejoiner: rows in ARRIVAL order + epoch
};

/// Printable name for traces and tests.
std::string to_string(PayloadKind kind);

/// Ciphertext container. Construction encrypts; open() decrypts. Keys are
/// per-(sender, receiver) pair and derived inside the network from its
/// session secret — parties never exchange them in-band.
class EncryptedEnvelope {
 public:
  EncryptedEnvelope() = default;

  /// Encrypt `plain` under `key`.
  EncryptedEnvelope(std::span<const double> plain, std::uint64_t key);

  /// Decrypt under `key`; wrong keys yield garbage (checked via checksum):
  /// throws sap::Error on checksum mismatch.
  [[nodiscard]] std::vector<double> open(std::uint64_t key) const;

  [[nodiscard]] std::size_t size_doubles() const noexcept { return cipher_.size(); }
  [[nodiscard]] std::span<const std::uint64_t> ciphertext() const noexcept { return cipher_; }

  /// Integrity word carried beside the ciphertext. Exposed (with from_raw)
  /// so wire transports can serialize an envelope byte-exactly; it reveals
  /// nothing beyond what a wire observer already sees.
  [[nodiscard]] std::uint64_t checksum() const noexcept { return checksum_; }

  /// Rebuild an envelope from its wire parts (net::Frame decoding). The
  /// result is exactly the envelope whose ciphertext()/checksum() produced
  /// the parts; open() still enforces the integrity check.
  [[nodiscard]] static EncryptedEnvelope from_raw(std::vector<std::uint64_t> cipher,
                                                  std::uint64_t checksum);

 private:
  std::vector<std::uint64_t> cipher_;
  std::uint64_t checksum_ = 0;
};

/// One wire message (as recorded by the simulated network).
struct Message {
  PartyId from = 0;
  PartyId to = 0;
  PayloadKind kind = PayloadKind::kTargetSpace;
  EncryptedEnvelope envelope;
  std::size_t wire_bytes = 0;  ///< ciphertext size (8 bytes per word)
};

// ---- payload (de)serialization helpers --------------------------------
// Flat double-vector encodings; every encoder has a matching decoder that
// validates shape and throws sap::Error on malformed input.

/// [d, N, features column-major... , labels...]
std::vector<double> encode_dataset(const linalg::Matrix& features_dxn,
                                   std::span<const int> labels);
struct DecodedDataset {
  linalg::Matrix features;  ///< d x N
  std::vector<int> labels;
};
DecodedDataset decode_dataset(std::span<const double> wire);

/// [d, R row-major..., t...] for a noiseless target space (R_t, t_t).
std::vector<double> encode_target_space(const linalg::Matrix& r, const linalg::Vector& t);
struct DecodedTargetSpace {
  linalg::Matrix r;
  linalg::Vector t;
};
DecodedTargetSpace decode_target_space(std::span<const double> wire);

/// Contribution: [nonce, d, m, features column-major..., labels...] — an
/// incremental batch of m records in the contributor's perturbed space,
/// submitted to the miner after the exchange (Contribute phase). The nonce
/// is the contributor's protocol-level identity: it binds the batch to the
/// space adaptor negotiated in the initial exchange, so the miner can unify
/// the records without learning anything new about the source.
std::vector<double> encode_contribution(std::uint64_t nonce,
                                        const linalg::Matrix& features_dxm,
                                        std::span<const int> labels);
struct DecodedContribution {
  std::uint64_t nonce = 0;
  DecodedDataset data;
};
DecodedContribution decode_contribution(std::span<const double> wire);

/// Routing notice: [receiver id, inbound count]. The coordinator tells each
/// provider where to send its perturbed data AND how many peer datasets it
/// must expect and forward — the count is what lets a receiver detect a
/// dropped exchange message instead of waiting on mail that never comes.
std::vector<double> encode_routing(PartyId receiver, std::uint32_t inbound);
struct RoutingNotice {
  PartyId receiver = 0;    ///< where to send this provider's perturbed data
  std::uint32_t inbound = 0;  ///< how many peer datasets to receive & forward
};
RoutingNotice decode_routing(std::span<const double> wire);

// ---- cross-process serving payloads -----------------------------------
// These kinds only flow in the distributed (miner daemon / party client)
// topology; the in-process SapSession exchange never emits them. Strings
// travel one printable ASCII code point per double (decoders reject
// anything outside [32, 126] or over the declared length caps — wire
// payloads are adversarial input).

/// Mining request: [name_len, name..., param_count, (key_len, key...,
/// value)...]. Name/key caps: 128 chars; at most 64 params.
std::vector<double> encode_mining_request(const std::string& job,
                                          const std::map<std::string, double>& params);
struct DecodedMiningRequest {
  std::string job;
  std::map<std::string, double> params;
};
DecodedMiningRequest decode_mining_request(std::span<const double> wire);

/// Mining response: [pool_epoch, cached, incremental, value_count,
/// values...]. Values are the job's report, forwarded verbatim.
struct WireMiningResponse {
  std::uint64_t pool_epoch = 0;
  bool model_cached = false;
  bool model_incremental = false;
  std::vector<double> values;
};
std::vector<double> encode_mining_response(const WireMiningResponse& response);
WireMiningResponse decode_mining_response(std::span<const double> wire);

/// Contribution receipt: [pool_epoch, pool_records] — the miner's ack for
/// a streamed batch. pool_epoch 0 is the NEGATIVE receipt (rejected batch;
/// an accepted append is always epoch >= 2 since set_pool is epoch 1).
std::vector<double> encode_receipt(std::uint64_t pool_epoch, std::size_t pool_records);
struct DecodedReceipt {
  std::uint64_t pool_epoch = 0;
  std::size_t pool_records = 0;
};
DecodedReceipt decode_receipt(std::span<const double> wire);

// ---- cluster serving payloads (PR 8) -----------------------------------
// The scatter-gather router (net/cluster.hpp) speaks these to sharded
// miners. All of them ride the same encrypted envelope as every other
// serving payload.

/// Typed serving refusal — what lets a router distinguish "this request is
/// wrong" (no point retrying a replica) from "this miner cannot serve it
/// right now" (fail over).
enum class ServeErrorCode : std::uint8_t {
  kBadRequest = 1,   ///< unknown job / bad params — definitive, do not retry
  kNotOwner = 2,     ///< this miner does not own the addressed shard
  kUnavailable = 3,  ///< transient (exchange pending, shard not installed)
};
std::string to_string(ServeErrorCode code);

/// Serve error: [code, message_len, message...]. Messages are truncated to
/// the wire string cap on encode.
std::vector<double> encode_serve_error(ServeErrorCode code, const std::string& message);
struct DecodedServeError {
  ServeErrorCode code = ServeErrorCode::kBadRequest;
  std::string message;
};
DecodedServeError decode_serve_error(std::span<const double> wire);

/// Partial request: [shard, req_len, mining_request..., qd, qm, queries
/// row-major qm x qd, labels...] — run `job` with `params` over one shard
/// and return the exact-merge partial blob. `queries` is the canonical eval
/// prefix the merge scores against (qm == 0 => no queries; structural
/// merges).
std::vector<double> encode_partial_request(std::size_t shard, const std::string& job,
                                           const std::map<std::string, double>& params,
                                           const data::Dataset& queries);
struct DecodedPartialRequest {
  std::size_t shard = 0;
  std::string job;
  std::map<std::string, double> params;
  data::Dataset queries;
};
DecodedPartialRequest decode_partial_request(std::span<const double> wire);

/// Partial response: [shard_epoch, value_count, blob...]. The blob is the
/// job's opaque partial; the epoch is the shard epoch it was computed at
/// (the router's per-shard watermark input).
std::vector<double> encode_partial_response(std::uint64_t shard_epoch,
                                            std::span<const double> blob);
struct DecodedPartialResponse {
  std::uint64_t shard_epoch = 0;
  std::vector<double> blob;
};
DecodedPartialResponse decode_partial_response(std::span<const double> wire);

/// Pool-slice request: [shard, max_records] (0 = all) — one shard's rows in
/// canonical (nonce, seq) order, for router-side gathers of non-mergeable
/// jobs and canonical query prefixes.
std::vector<double> encode_pool_slice_request(std::size_t shard, std::size_t max_records);
struct DecodedPoolSliceRequest {
  std::size_t shard = 0;
  std::size_t max_records = 0;
};
DecodedPoolSliceRequest decode_pool_slice_request(std::span<const double> wire);

// ---- observability payloads (PR 9) --------------------------------------
// The live stats door (DESIGN.md §12). A stats snapshot rides the same
// encrypted envelope as every serving payload; both daemon front doors
// answer it through the one serve_payload dispatch.

/// Stats request: [version]. Version 1 is the only one defined; decoders
/// reject anything else so a future layout change is a clean break.
std::vector<double> encode_stats_request();
void decode_stats_request(std::span<const double> wire);

/// Stats response: [version,
///   n_counters, (name, value)...,
///   n_gauges, (name, value)...,
///   n_hists, (name, count, sum, max, n_buckets, (index, count)...)...,
///   n_traces, (id, op, stage_ms x 5)...].
/// Strings use the printable-ASCII-per-double convention; counts and ids
/// must be exactly representable as doubles (< 2^53) — enforced on encode
/// so the decoder's adversarial checks mirror a real peer.
struct DecodedStats {
  obs::Snapshot snapshot;
  std::vector<obs::TraceRecord> traces;
};
std::vector<double> encode_stats_response(const obs::Snapshot& snapshot,
                                          std::span<const obs::TraceRecord> traces);
DecodedStats decode_stats_response(std::span<const double> wire);

// ---- self-healing payloads (PR 10) --------------------------------------
// The shard-snapshot resync door (DESIGN.md §13): a restarted miner asks a
// live owner for each shard it owns and installs the answer verbatim.

/// Shard-snapshot request: [shard]. The response reuses the pool-slice
/// layout (encode_pool_slice / decode_pool_slice) but with rows in ARRIVAL
/// order — the order incremental partial_fit lineage depends on — and the
/// donor's CURRENT shard epoch, which the rejoiner adopts so the router's
/// per-shard epoch floors keep holding.
std::vector<double> encode_shard_snapshot_request(std::size_t shard);
std::size_t decode_shard_snapshot_request(std::span<const double> wire);

/// Pool-slice response: [shard_epoch, d, m, features row-major m x d,
/// labels x m, (nonce, seq) x m]. m == 0 encodes an installed-but-empty
/// shard (d 0 too).
std::vector<double> encode_pool_slice(std::uint64_t shard_epoch, const data::Dataset& rows,
                                      std::span<const PoolKey> keys);
struct DecodedPoolSlice {
  std::uint64_t shard_epoch = 0;
  data::Dataset rows;
  std::vector<PoolKey> keys;
};
DecodedPoolSlice decode_pool_slice(std::span<const double> wire);

}  // namespace sap::proto
