// Protocol messages and the encrypted-channel boundary.
//
// The paper assumes encrypted pairwise channels and a semi-honest model; the
// protocol's privacy therefore rests on *who is sent what*, which these
// types make explicit and the network records for the invariant tests.
// Payloads travel as EncryptedEnvelope: a per-link keystream cipher over the
// serialized doubles. The cipher is a stand-in for TLS (documented
// substitution) — the point is that the network trace retains only
// ciphertext + metadata, so tests can assert that no honest-but-curious
// observer of the wire sees plaintext.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace sap::proto {

using PartyId = std::uint32_t;

/// Message kinds — one per protocol step (paper §3).
enum class PayloadKind : std::uint8_t {
  kTargetSpace = 1,      ///< coordinator -> provider: G_t parameters
  kRoutingNotice = 2,    ///< coordinator -> provider: where to send your data
  kPerturbedData = 3,    ///< provider -> provider: Y_i = G_i(X_i) + labels
  kForwardedData = 4,    ///< provider -> miner: relayed Y_tau(i)
  kSpaceAdaptor = 5,     ///< provider -> coordinator: A_it
  kAdaptorSequence = 6,  ///< coordinator -> miner: adaptors aligned to forwarders
  kModelReport = 7,      ///< miner -> providers: trained model summary
  kContribution = 8,     ///< party -> miner: post-exchange perturbed batch
};

/// Printable name for traces and tests.
std::string to_string(PayloadKind kind);

/// Ciphertext container. Construction encrypts; open() decrypts. Keys are
/// per-(sender, receiver) pair and derived inside the network from its
/// session secret — parties never exchange them in-band.
class EncryptedEnvelope {
 public:
  EncryptedEnvelope() = default;

  /// Encrypt `plain` under `key`.
  EncryptedEnvelope(std::span<const double> plain, std::uint64_t key);

  /// Decrypt under `key`; wrong keys yield garbage (checked via checksum):
  /// throws sap::Error on checksum mismatch.
  [[nodiscard]] std::vector<double> open(std::uint64_t key) const;

  [[nodiscard]] std::size_t size_doubles() const noexcept { return cipher_.size(); }
  [[nodiscard]] std::span<const std::uint64_t> ciphertext() const noexcept { return cipher_; }

 private:
  std::vector<std::uint64_t> cipher_;
  std::uint64_t checksum_ = 0;
};

/// One wire message (as recorded by the simulated network).
struct Message {
  PartyId from = 0;
  PartyId to = 0;
  PayloadKind kind = PayloadKind::kTargetSpace;
  EncryptedEnvelope envelope;
  std::size_t wire_bytes = 0;  ///< ciphertext size (8 bytes per word)
};

// ---- payload (de)serialization helpers --------------------------------
// Flat double-vector encodings; every encoder has a matching decoder that
// validates shape and throws sap::Error on malformed input.

/// [d, N, features column-major... , labels...]
std::vector<double> encode_dataset(const linalg::Matrix& features_dxn,
                                   std::span<const int> labels);
struct DecodedDataset {
  linalg::Matrix features;  ///< d x N
  std::vector<int> labels;
};
DecodedDataset decode_dataset(std::span<const double> wire);

/// [d, R row-major..., t...] for a noiseless target space (R_t, t_t).
std::vector<double> encode_target_space(const linalg::Matrix& r, const linalg::Vector& t);
struct DecodedTargetSpace {
  linalg::Matrix r;
  linalg::Vector t;
};
DecodedTargetSpace decode_target_space(std::span<const double> wire);

/// Contribution: [nonce, d, m, features column-major..., labels...] — an
/// incremental batch of m records in the contributor's perturbed space,
/// submitted to the miner after the exchange (Contribute phase). The nonce
/// is the contributor's protocol-level identity: it binds the batch to the
/// space adaptor negotiated in the initial exchange, so the miner can unify
/// the records without learning anything new about the source.
std::vector<double> encode_contribution(std::uint64_t nonce,
                                        const linalg::Matrix& features_dxm,
                                        std::span<const int> labels);
struct DecodedContribution {
  std::uint64_t nonce = 0;
  DecodedDataset data;
};
DecodedContribution decode_contribution(std::span<const double> wire);

/// Routing notice: [receiver id, inbound count]. The coordinator tells each
/// provider where to send its perturbed data AND how many peer datasets it
/// must expect and forward — the count is what lets a receiver detect a
/// dropped exchange message instead of waiting on mail that never comes.
std::vector<double> encode_routing(PartyId receiver, std::uint32_t inbound);
struct RoutingNotice {
  PartyId receiver = 0;    ///< where to send this provider's perturbed data
  std::uint32_t inbound = 0;  ///< how many peer datasets to receive & forward
};
RoutingNotice decode_routing(std::span<const double> wire);

}  // namespace sap::proto
