#include "protocol/session.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "protocol/party_logic.hpp"

namespace sap::proto {

SapOptions SapOptions::fast() {
  SapOptions o;
  o.optimizer.candidates = 4;
  o.optimizer.refine_steps = 2;
  o.optimizer.max_eval_records = 80;
  o.optimizer.attacks.ica = false;  // naive + known-input: cheap and sufficient for tests
  o.optimizer.attacks.known_inputs = 3;
  o.bound_runs = 1;
  return o;
}

std::string to_string(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kLocalOptimize: return "local-optimize";
    case SessionPhase::kTargetDistribution: return "target-distribution";
    case SessionPhase::kPermutationExchange: return "permutation-exchange";
    case SessionPhase::kPerturbAndForward: return "perturb-and-forward";
    case SessionPhase::kAdaptorAlignment: return "adaptor-alignment";
    case SessionPhase::kMine: return "mine";
  }
  return "unknown";
}

SapSession::SapSession(std::vector<data::Dataset> provider_data, SapOptions opts)
    : SapSession(std::move(provider_data), opts, TransportFactory{}) {}

void SapSession::validate(const std::vector<data::Dataset>& provider_data,
                          const SapOptions& opts) {
  SAP_REQUIRE(provider_data.size() >= 3,
              "SapSession: need at least 3 providers (2 non-coordinator peers)");
  const std::size_t d = provider_data.front().dims();
  for (const auto& ds : provider_data) {
    SAP_REQUIRE(ds.dims() == d, "SapSession: providers disagree on dimensionality");
    SAP_REQUIRE(ds.size() >= 8, "SapSession: provider dataset too small (need >= 8 records)");
  }
  SAP_REQUIRE(opts.bound_runs >= 1, "SapSession: bound_runs must be >= 1");
  SAP_REQUIRE(opts.noise_sigma >= 0.0, "SapSession: noise_sigma must be non-negative");
}

SapSession::SapSession(std::vector<data::Dataset> provider_data, SapOptions opts,
                       TransportFactory transport_factory)
    : opts_(opts),
      engine_({.threads = opts.mining_threads,
               .cache_models = opts.cache_models,
               .shards = 1,
               .layout = proto::ShardLayout::kHashMod,
               .owned = {}}) {
  validate(provider_data, opts_);
  dims_ = provider_data.front().dims();

  const std::size_t k = provider_data.size();
  auto seeds = logic::derive_session_seeds(opts_.seed, k);
  SAP_REQUIRE(opts_.transport != TransportKind::kTcp || transport_factory,
              "SapSession: the tcp transport needs an address — pass "
              "net::tcp_transport_factory(...) as the transport factory");
  transport_ = transport_factory ? transport_factory(seeds.session_secret)
                                 : make_transport(opts_.transport, seeds.session_secret);
  SAP_REQUIRE(transport_ != nullptr, "SapSession: transport factory returned null");

  provider_id_.resize(k);
  for (std::size_t i = 0; i < k; ++i) provider_id_[i] = transport_->add_party();
  coordinator_ = provider_id_[k - 1];
  miner_ = transport_->add_party();

  ps_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    ps_[i].x = provider_data[i].features_T();
    ps_[i].labels = provider_data[i].labels();
    ps_[i].eng = seeds.provider_eng[i];
  }
  coord_eng_ = seeds.coordinator_eng;
}

void SapSession::inject_faults(Transport::DropFilter filter) {
  transport_->set_drop_filter(std::move(filter));
}

void SapSession::advance() {
  SAP_REQUIRE(!failed_,
              "SapSession: a phase failed; the partially-executed exchange cannot be "
              "resumed — construct a new session");
  if (phase_ == SessionPhase::kMine) return;
  const SessionPhase executing = phase_;
  Stopwatch sw;
  try {
    run_phase(executing);
  } catch (...) {
    failed_ = true;
    throw;
  }
  phase_log_.push_back({executing, sw.millis(), transport_->trace().size(),
                        transport_->total_bytes()});
}

void SapSession::run_phase(SessionPhase executing) {
  switch (executing) {
    case SessionPhase::kLocalOptimize:
      run_local_optimize();
      phase_ = SessionPhase::kTargetDistribution;
      break;
    case SessionPhase::kTargetDistribution:
      run_target_distribution();
      phase_ = SessionPhase::kPermutationExchange;
      break;
    case SessionPhase::kPermutationExchange:
      run_permutation_exchange();
      phase_ = SessionPhase::kPerturbAndForward;
      break;
    case SessionPhase::kPerturbAndForward:
      run_perturb_and_forward();
      phase_ = SessionPhase::kAdaptorAlignment;
      break;
    case SessionPhase::kAdaptorAlignment:
      run_adaptor_alignment();
      run_unify_and_account();
      phase_ = SessionPhase::kMine;
      break;
    case SessionPhase::kMine:
      break;
  }
}

void SapSession::run_until(SessionPhase target) {
  while (static_cast<int>(phase_) < static_cast<int>(target)) advance();
}

SapResult SapSession::run(const MinerJob& job) { return mine(job); }

// ---------------- phase 1: local perturbation optimization ---------------

void SapSession::run_local_optimize() {
  const std::size_t k = ps_.size();
  std::vector<std::function<void()>> tasks(k);
  for (std::size_t i = 0; i < k; ++i) {
    tasks[i] = [this, i] {
      auto& p = ps_[i];
      auto local = logic::optimize_local(p.x, dims_, opts_, p.eng);
      p.g = std::move(local.g);
      p.rho = local.rho;
      p.bound = local.bound;
      p.nonce = local.nonce;
    };
  }
  transport_->run_parties(std::move(tasks));
}

// ---------------- phase 2: coordinator selects the noise-free target ------

void SapSession::run_target_distribution() {
  const std::size_t k = ps_.size();
  g_t_ = logic::make_target_space(dims_, coord_eng_);
  const auto target_wire = encode_target_space(g_t_.rotation(), g_t_.translation());
  for (std::size_t i = 0; i + 1 < k; ++i)
    transport_->send(coordinator_, provider_id_[i], PayloadKind::kTargetSpace, target_wire);
  ps_[k - 1].target = g_t_;  // the coordinator knows its own choice
}

// ---------------- phase 3: permutation with coordinator redirect ----------

void SapSession::run_permutation_exchange() {
  const std::size_t k = ps_.size();
  // provider_id_ values are dense 0..k-1 by construction, so the plan's
  // provider indices map straight onto party ids. Self-assignments stay
  // local; see the exchange phase.
  const auto plan = logic::make_exchange_plan(k, coord_eng_);
  receiver_of_source_.assign(k, 0);
  for (std::size_t source = 0; source < k; ++source)
    receiver_of_source_[source] = provider_id_[plan.receiver_of_source[source]];
  for (std::size_t i = 0; i + 1 < k; ++i)
    transport_->send(coordinator_, provider_id_[i], PayloadKind::kRoutingNotice,
                     encode_routing(receiver_of_source_[i], plan.inbound[i]));
  ps_[k - 1].send_to = receiver_of_source_[k - 1];
  ps_[k - 1].inbound = plan.inbound[k - 1];  // 0 by construction (coordinator redirect)

  // Providers drain target-space + routing notices; a provider that did not
  // receive BOTH must abort the round (a dropped setup message would
  // otherwise silently misroute its data).
  std::vector<std::function<void()>> tasks(k - 1);
  for (std::size_t i = 0; i + 1 < k; ++i) {
    tasks[i] = [this, i] {
      bool got_target = false;
      bool got_routing = false;
      while (transport_->has_mail(provider_id_[i])) {
        const auto msg = transport_->receive(provider_id_[i]);
        switch (msg.kind) {
          case PayloadKind::kTargetSpace: {
            const auto ts = decode_target_space(msg.payload);
            ps_[i].target = perturb::GeometricPerturbation(ts.r, ts.t, 0.0);
            got_target = true;
            break;
          }
          case PayloadKind::kRoutingNotice: {
            const auto notice = decode_routing(msg.payload);
            ps_[i].send_to = notice.receiver;
            ps_[i].inbound = notice.inbound;
            got_routing = true;
            break;
          }
          default:
            SAP_FAIL("SapSession: unexpected message kind in setup phase");
        }
      }
      SAP_REQUIRE(got_target && got_routing,
                  "SapSession: provider missed setup messages (lossy network?) — aborting");
    };
  }
  transport_->run_parties(std::move(tasks));
}

// ---------------- phase 4: perturb and exchange ---------------------------

void SapSession::run_perturb_and_forward() {
  const std::size_t k = ps_.size();
  // tau may map a provider to itself; in that case the dataset simply stays
  // put (no wire message) and the provider forwards its own perturbed data —
  // the miner cannot distinguish this case, so pi_i = 1/(k-1) still holds.
  self_held_.assign(k, {});
  std::vector<std::function<void()>> perturb_tasks(k);
  for (std::size_t i = 0; i < k; ++i) {
    perturb_tasks[i] = [this, i] {
      auto& p = ps_[i];
      p.y = p.g.apply(p.x, p.eng);
      auto wire = logic::tagged_wire(p.nonce, encode_dataset(p.y, p.labels));
      if (p.send_to == provider_id_[i]) {
        self_held_[i].push_back(std::move(wire));
      } else {
        transport_->send(provider_id_[i], p.send_to, PayloadKind::kPerturbedData, wire);
      }
    };
  }
  transport_->run_parties(std::move(perturb_tasks));

  // Peers forward everything they received (or held) to the miner. Each
  // provider knows exactly how many peer datasets to expect from its routing
  // notice, so a dropped exchange message is detected here.
  std::vector<std::function<void()>> forward_tasks(k - 1);
  for (std::size_t i = 0; i + 1 < k; ++i) {
    forward_tasks[i] = [this, i] {
      for (const auto& wire : self_held_[i])
        transport_->send(provider_id_[i], miner_, PayloadKind::kForwardedData, wire);
      for (std::uint32_t n = 0; n < ps_[i].inbound; ++n) {
        SAP_REQUIRE(transport_->has_mail(provider_id_[i]),
                    "SapSession: missing perturbed dataset (dropped message?)");
        const auto msg = transport_->receive(provider_id_[i]);
        SAP_REQUIRE(msg.kind == PayloadKind::kPerturbedData,
                    "SapSession: unexpected message kind in exchange phase");
        transport_->send(provider_id_[i], miner_, PayloadKind::kForwardedData, msg.payload);
      }
    };
  }
  transport_->run_parties(std::move(forward_tasks));

  SAP_REQUIRE(self_held_[k - 1].empty(),
              "SapSession invariant violated: coordinator assigned as receiver");
  SAP_REQUIRE(!transport_->has_mail(coordinator_),
              "SapSession invariant violated: coordinator received a dataset");
}

// ---------------- phase 5: adaptors to the coordinator, aligned to miner --

void SapSession::run_adaptor_alignment() {
  const std::size_t k = ps_.size();
  std::vector<std::function<void()>> adaptor_tasks(k);
  for (std::size_t i = 0; i < k; ++i) {
    adaptor_tasks[i] = [this, i] {
      auto& p = ps_[i];
      p.adaptor = perturb::SpaceAdaptor::between(p.g, p.target);
      if (provider_id_[i] != coordinator_) {
        transport_->send(provider_id_[i], coordinator_, PayloadKind::kSpaceAdaptor,
                         logic::tagged_wire(p.nonce, p.adaptor.serialize()));
      }
    };
  }
  transport_->run_parties(std::move(adaptor_tasks));

  // Coordinator collects (nonce, adaptor) pairs — its own included — and
  // ships the sequence to the miner. It never learns more than it already
  // knows (it generated tau), and the miner learns nothing about sources.
  std::vector<std::vector<double>> entries;
  while (transport_->has_mail(coordinator_)) {
    const auto msg = transport_->receive(coordinator_);
    SAP_REQUIRE(msg.kind == PayloadKind::kSpaceAdaptor,
                "SapSession: coordinator expected only adaptors");
    entries.push_back(msg.payload);
  }
  SAP_REQUIRE(entries.size() == k - 1,
              "SapSession: coordinator missing space adaptors (dropped message?)");
  entries.push_back(logic::tagged_wire(ps_[k - 1].nonce, ps_[k - 1].adaptor.serialize()));
  // Shuffle so the wire order itself carries no information about provider
  // identity.
  logic::shuffle_entries(entries, coord_eng_);
  for (const auto& e : entries)
    transport_->send(coordinator_, miner_, PayloadKind::kAdaptorSequence, e);
}

// ---------------- phase 6 (entry): the miner unifies; accounting ----------

void SapSession::run_unify_and_account() {
  const std::size_t k = ps_.size();

  std::vector<logic::MinerShard> received;
  std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> adaptors;
  while (transport_->has_mail(miner_)) {
    const auto msg = transport_->receive(miner_);
    const std::span<const double> payload(msg.payload);
    SAP_REQUIRE(!payload.empty(), "SapSession: empty payload at miner");
    const auto nonce = static_cast<std::uint64_t>(payload[0]);
    if (msg.kind == PayloadKind::kForwardedData) {
      received.push_back({nonce, msg.from, decode_dataset(payload.subspan(1))});
    } else if (msg.kind == PayloadKind::kAdaptorSequence) {
      adaptors.emplace_back(nonce, perturb::SpaceAdaptor::deserialize(payload.subspan(1)));
    } else {
      SAP_FAIL("SapSession: unexpected message kind at miner");
    }
  }
  auto unified = logic::unify_pool(std::move(received), std::move(adaptors), k);
  // miner_adaptors_ kept beyond this phase: the Contribute path reuses the
  // negotiated adaptors per nonce.
  miner_adaptors_ = std::move(unified.adaptors);
  engine_.set_pool(std::move(unified.pool));

  audit_receiver_of_ = receiver_of_source_;
  audit_forwarder_of_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto it = std::find_if(unified.forwarder_of_nonce.begin(),
                                 unified.forwarder_of_nonce.end(),
                                 [&](const auto& f) { return f.first == ps_[i].nonce; });
    SAP_REQUIRE(it != unified.forwarder_of_nonce.end(), "SapSession: audit lost a dataset");
    audit_forwarder_of_[i] = it->second;
  }

  // Accounting (party-side knowledge only: each provider knows X_i, G_i,
  // G_t and can score its own exposure). The satisfaction evaluation is the
  // expensive part, so each party's accounting is one run_parties task.
  reports_.assign(k, PartyReport{});
  std::vector<std::function<void()>> accounting_tasks(k);
  for (std::size_t i = 0; i < k; ++i) {
    accounting_tasks[i] = [this, i, k] {
      auto& p = ps_[i];
      reports_[i] = logic::account_party(p.x, p.y, p.adaptor, provider_id_[i], p.rho,
                                         p.bound, k, opts_, p.eng);
    };
  }
  transport_->run_parties(std::move(accounting_tasks));
}

// ---------------- mining (served by the engine) ---------------------------

SapResult SapSession::finish_mine(const std::vector<double>& report, bool broadcast) {
  SapResult result;
  result.unified = engine_.pool();
  result.target_space = g_t_;
  result.parties = reports_;
  result.audit_receiver_of = audit_receiver_of_;
  result.audit_forwarder_of = audit_forwarder_of_;

  if (broadcast) {
    for (const PartyId id : provider_id_)
      transport_->send(miner_, id, PayloadKind::kModelReport, report);
    // Providers drain their report (best effort: a dropped report degrades
    // service but must not corrupt the protocol result).
    for (const PartyId id : provider_id_)
      while (transport_->has_mail(id)) (void)transport_->receive(id);
  }

  result.messages = transport_->trace().size();
  result.total_bytes = transport_->total_bytes();
  return result;
}

SapResult SapSession::mine(const MinerJob& job) {
  run_until(SessionPhase::kMine);
  if (!job) return finish_mine({}, /*broadcast=*/false);
  return finish_mine(engine_.run_adhoc(job), /*broadcast=*/true);
}

SapResult SapSession::mine_named(const std::string& job_name, const JobParams& params) {
  // Fail fast: reject an unknown name or invalid params BEFORE paying for
  // any outstanding exchange phases.
  (void)engine_.registry().find(job_name).resolve_params(params);
  run_until(SessionPhase::kMine);
  const auto response = engine_.run({job_name, params});
  return finish_mine(response.values, /*broadcast=*/true);
}

void SapSession::register_job(std::string name, MinerJob job) {
  SAP_REQUIRE(!name.empty(), "SapSession::register_job: empty job name");
  SAP_REQUIRE(job != nullptr, "SapSession::register_job: null job");
  engine_.registry().register_job(std::move(name), std::move(job));
}

std::vector<std::string> SapSession::job_names() const { return engine_.registry().names(); }

MiningEngine& SapSession::engine() {
  run_until(SessionPhase::kMine);
  return engine_;
}

std::uint64_t SapSession::provider_nonce(std::size_t provider_index) const {
  SAP_REQUIRE(provider_index < ps_.size(), "SapSession::provider_nonce: unknown provider");
  return ps_[provider_index].nonce;
}

// ---------------- Contribute phase (streaming ingest) ---------------------

SapSession::ContributionReceipt SapSession::contribute(std::size_t provider_index,
                                                       const data::Dataset& batch) {
  SAP_REQUIRE(provider_index < ps_.size(), "SapSession::contribute: unknown provider");
  SAP_REQUIRE(batch.size() >= 1, "SapSession::contribute: empty batch");
  SAP_REQUIRE(batch.dims() == dims_, "SapSession::contribute: dimension mismatch");
  run_until(SessionPhase::kMine);
  auto& p = ps_[provider_index];
  // Same perturbation, fresh noise: the batch leaves the provider exactly as
  // the initial shard did (Y = G_i(X)), drawn from the provider's own
  // deterministic stream so runs are reproducible across backends.
  const linalg::Matrix y = p.g.apply(batch.features_T(), p.eng);
  return contribute_raw(provider_index, p.nonce, y, batch.labels());
}

SapSession::ContributionReceipt SapSession::contribute_raw(std::size_t via_provider,
                                                           std::uint64_t nonce,
                                                           const linalg::Matrix& y_dxm,
                                                           std::span<const int> labels) {
  SAP_REQUIRE(via_provider < ps_.size(), "SapSession::contribute_raw: unknown provider");
  run_until(SessionPhase::kMine);
  const auto wire = encode_contribution(nonce, y_dxm, labels);

  // One run_parties batch: the contributor sends, the miner ingests. On the
  // synchronous backend the send lands before the miner's receive; on the
  // threaded backend the miner blocks until the message arrives — and if it
  // was dropped, starvation detection (all workers blocked or done) turns
  // "mail that will never come" into an immediate sap::Error, exactly like
  // the exchange phases. Ingest failures of any kind leave the pool
  // untouched, so the session keeps serving the previous epoch.
  ContributionReceipt receipt;
  std::vector<std::function<void()>> tasks(2);
  tasks[0] = [this, via_provider, &wire] {
    transport_->send(provider_id_[via_provider], miner_, PayloadKind::kContribution, wire);
  };
  tasks[1] = [this, &receipt] {
    const auto msg = transport_->receive(miner_);
    SAP_REQUIRE(msg.kind == PayloadKind::kContribution,
                "SapSession: miner expected a contribution");
    const auto contribution = decode_contribution(msg.payload);
    const auto it =
        std::find_if(miner_adaptors_.begin(), miner_adaptors_.end(),
                     [&](const auto& a) { return a.first == contribution.nonce; });
    SAP_REQUIRE(it != miner_adaptors_.end(),
                "SapSession: contribution from unknown party (no adaptor for nonce)");
    const data::Dataset appended = logic::adapt_contribution(contribution, it->second, dims_);
    receipt.pool_epoch = engine_.append_records(appended);
    receipt.pool_records = engine_.pool_view().data->size();
  };
  transport_->run_parties(std::move(tasks));
  return receipt;
}

}  // namespace sap::proto
