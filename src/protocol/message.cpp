#include "protocol/message.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "rng/rng.hpp"

namespace sap::proto {
namespace {

/// Validate-and-cast a wire double that must encode a small non-negative
/// integer (dimension, record count, label, party id). Rejects non-finite,
/// non-integral, negative, or absurdly large values — wire payloads are
/// adversarial input until proven otherwise.
std::size_t checked_count(double v, const char* what) {
  SAP_REQUIRE(std::isfinite(v) && v >= 0.0 && v < 1e9 && v == std::floor(v),
              std::string("decode: malformed ") + what);
  return static_cast<std::size_t>(v);
}

int checked_label(double v) {
  SAP_REQUIRE(std::isfinite(v) && std::abs(v) < 2e9 && v == std::floor(v),
              "decode: malformed label");
  return static_cast<int>(v);
}

}  // namespace

std::string to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kTargetSpace: return "target-space";
    case PayloadKind::kRoutingNotice: return "routing-notice";
    case PayloadKind::kPerturbedData: return "perturbed-data";
    case PayloadKind::kForwardedData: return "forwarded-data";
    case PayloadKind::kSpaceAdaptor: return "space-adaptor";
    case PayloadKind::kAdaptorSequence: return "adaptor-sequence";
    case PayloadKind::kModelReport: return "model-report";
    case PayloadKind::kContribution: return "contribution";
  }
  return "unknown";
}

EncryptedEnvelope::EncryptedEnvelope(std::span<const double> plain, std::uint64_t key) {
  rng::Engine keystream(key);
  cipher_.resize(plain.size());
  checksum_ = 0xC0FFEE ^ key;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const auto word = std::bit_cast<std::uint64_t>(plain[i]);
    checksum_ = checksum_ * 1099511628211ULL ^ word;
    cipher_[i] = word ^ keystream();
  }
}

std::vector<double> EncryptedEnvelope::open(std::uint64_t key) const {
  rng::Engine keystream(key);
  std::vector<double> plain(cipher_.size());
  std::uint64_t check = 0xC0FFEE ^ key;
  for (std::size_t i = 0; i < cipher_.size(); ++i) {
    const std::uint64_t word = cipher_[i] ^ keystream();
    check = check * 1099511628211ULL ^ word;
    plain[i] = std::bit_cast<double>(word);
  }
  SAP_REQUIRE(check == checksum_, "EncryptedEnvelope::open: checksum mismatch (wrong key?)");
  return plain;
}

std::vector<double> encode_dataset(const linalg::Matrix& features_dxn,
                                   std::span<const int> labels) {
  SAP_REQUIRE(features_dxn.cols() == labels.size(), "encode_dataset: label count mismatch");
  std::vector<double> wire;
  const std::size_t d = features_dxn.rows();
  const std::size_t n = features_dxn.cols();
  wire.reserve(2 + d * n + n);
  wire.push_back(static_cast<double>(d));
  wire.push_back(static_cast<double>(n));
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < d; ++i) wire.push_back(features_dxn(i, j));
  for (int label : labels) wire.push_back(static_cast<double>(label));
  return wire;
}

DecodedDataset decode_dataset(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() >= 2, "decode_dataset: truncated payload");
  const std::size_t d = checked_count(wire[0], "dimension count");
  const std::size_t n = checked_count(wire[1], "record count");
  SAP_REQUIRE(d > 0 && n > 0 && wire.size() == 2 + d * n + n,
              "decode_dataset: malformed payload");
  DecodedDataset out;
  out.features = linalg::Matrix(d, n);
  std::size_t pos = 2;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < d; ++i) out.features(i, j) = wire[pos++];
  out.labels.resize(n);
  for (std::size_t j = 0; j < n; ++j) out.labels[j] = checked_label(wire[pos++]);
  return out;
}

std::vector<double> encode_target_space(const linalg::Matrix& r, const linalg::Vector& t) {
  SAP_REQUIRE(r.rows() == r.cols() && r.rows() == t.size(),
              "encode_target_space: shape mismatch");
  std::vector<double> wire;
  wire.reserve(1 + r.size() + t.size());
  wire.push_back(static_cast<double>(r.rows()));
  wire.insert(wire.end(), r.data().begin(), r.data().end());
  wire.insert(wire.end(), t.begin(), t.end());
  return wire;
}

DecodedTargetSpace decode_target_space(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty(), "decode_target_space: empty payload");
  const std::size_t d = checked_count(wire[0], "dimension count");
  SAP_REQUIRE(d > 0 && wire.size() == 1 + d * d + d, "decode_target_space: malformed payload");
  DecodedTargetSpace out;
  out.r = linalg::Matrix(d, d);
  for (std::size_t i = 0; i < d * d; ++i) out.r.data()[i] = wire[1 + i];
  out.t.assign(wire.begin() + static_cast<std::ptrdiff_t>(1 + d * d), wire.end());
  return out;
}

std::vector<double> encode_contribution(std::uint64_t nonce,
                                        const linalg::Matrix& features_dxm,
                                        std::span<const int> labels) {
  // Nonces are 32-bit by construction (session.cpp), hence exactly
  // representable as doubles; reject anything that would round on the wire.
  SAP_REQUIRE(nonce < (1ULL << 53), "encode_contribution: nonce not double-exact");
  std::vector<double> wire;
  wire.push_back(static_cast<double>(nonce));
  const auto body = encode_dataset(features_dxm, labels);
  wire.insert(wire.end(), body.begin(), body.end());
  return wire;
}

DecodedContribution decode_contribution(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty(), "decode_contribution: empty payload");
  // Mirror the encode-side bound: the cast below is UB for values >= 2^64,
  // and wire payloads are adversarial input until proven otherwise.
  SAP_REQUIRE(std::isfinite(wire[0]) && wire[0] >= 0.0 && wire[0] < 9007199254740992.0 &&
                  wire[0] == std::floor(wire[0]),
              "decode_contribution: malformed nonce");
  DecodedContribution out;
  out.nonce = static_cast<std::uint64_t>(wire[0]);
  out.data = decode_dataset(wire.subspan(1));
  return out;
}

std::vector<double> encode_routing(PartyId receiver, std::uint32_t inbound) {
  return {static_cast<double>(receiver), static_cast<double>(inbound)};
}

RoutingNotice decode_routing(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() == 2, "decode_routing: malformed payload");
  RoutingNotice notice;
  notice.receiver = static_cast<PartyId>(checked_count(wire[0], "party id"));
  notice.inbound = static_cast<std::uint32_t>(checked_count(wire[1], "inbound count"));
  return notice;
}

}  // namespace sap::proto
