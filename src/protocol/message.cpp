#include "protocol/message.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "rng/rng.hpp"

namespace sap::proto {
namespace {

/// Validate-and-cast a wire double that must encode a small non-negative
/// integer (dimension, record count, label, party id). Rejects non-finite,
/// non-integral, negative, or absurdly large values — wire payloads are
/// adversarial input until proven otherwise.
std::size_t checked_count(double v, const char* what) {
  SAP_REQUIRE(std::isfinite(v) && v >= 0.0 && v < 1e9 && v == std::floor(v),
              std::string("decode: malformed ") + what);
  return static_cast<std::size_t>(v);
}

int checked_label(double v) {
  SAP_REQUIRE(std::isfinite(v) && std::abs(v) < 2e9 && v == std::floor(v),
              "decode: malformed label");
  return static_cast<int>(v);
}

constexpr std::size_t kMaxWireString = 128;
constexpr std::size_t kMaxWireParams = 64;

void encode_string(std::vector<double>& wire, const std::string& text, const char* what) {
  SAP_REQUIRE(!text.empty() && text.size() <= kMaxWireString,
              std::string("encode: bad length for ") + what);
  for (const char c : text)
    SAP_REQUIRE(c >= 32 && c <= 126, std::string("encode: non-printable char in ") + what);
  wire.push_back(static_cast<double>(text.size()));
  for (const char c : text) wire.push_back(static_cast<double>(c));
}

/// Decode a length-prefixed printable-ASCII string starting at wire[pos];
/// advances pos past it. Throws on truncation or hostile code points.
std::string decode_string(std::span<const double> wire, std::size_t& pos, const char* what) {
  SAP_REQUIRE(pos < wire.size(), std::string("decode: truncated ") + what);
  const std::size_t len = checked_count(wire[pos], what);
  SAP_REQUIRE(len >= 1 && len <= kMaxWireString && pos + 1 + len <= wire.size(),
              std::string("decode: malformed ") + what);
  ++pos;
  std::string text;
  text.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    const double v = wire[pos++];
    SAP_REQUIRE(v == std::floor(v) && v >= 32.0 && v <= 126.0,
                std::string("decode: hostile char in ") + what);
    text.push_back(static_cast<char>(v));
  }
  return text;
}

}  // namespace

std::string to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kTargetSpace: return "target-space";
    case PayloadKind::kRoutingNotice: return "routing-notice";
    case PayloadKind::kPerturbedData: return "perturbed-data";
    case PayloadKind::kForwardedData: return "forwarded-data";
    case PayloadKind::kSpaceAdaptor: return "space-adaptor";
    case PayloadKind::kAdaptorSequence: return "adaptor-sequence";
    case PayloadKind::kModelReport: return "model-report";
    case PayloadKind::kContribution: return "contribution";
    case PayloadKind::kContributionAck: return "contribution-ack";
    case PayloadKind::kMiningRequest: return "mining-request";
    case PayloadKind::kMiningResponse: return "mining-response";
    case PayloadKind::kServeError: return "serve-error";
    case PayloadKind::kPartialRequest: return "partial-request";
    case PayloadKind::kPartialResponse: return "partial-response";
    case PayloadKind::kPoolSliceRequest: return "pool-slice-request";
    case PayloadKind::kPoolSliceResponse: return "pool-slice-response";
    case PayloadKind::kStatsRequest: return "stats-request";
    case PayloadKind::kStatsResponse: return "stats-response";
    case PayloadKind::kShardSnapshotRequest: return "shard-snapshot-request";
    case PayloadKind::kShardSnapshotResponse: return "shard-snapshot-response";
  }
  return "unknown";
}

std::string to_string(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kBadRequest: return "bad-request";
    case ServeErrorCode::kNotOwner: return "not-owner";
    case ServeErrorCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

EncryptedEnvelope EncryptedEnvelope::from_raw(std::vector<std::uint64_t> cipher,
                                              std::uint64_t checksum) {
  EncryptedEnvelope env;
  env.cipher_ = std::move(cipher);
  env.checksum_ = checksum;
  return env;
}

EncryptedEnvelope::EncryptedEnvelope(std::span<const double> plain, std::uint64_t key) {
  rng::Engine keystream(key);
  cipher_.resize(plain.size());
  checksum_ = 0xC0FFEE ^ key;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const auto word = std::bit_cast<std::uint64_t>(plain[i]);
    checksum_ = checksum_ * 1099511628211ULL ^ word;
    cipher_[i] = word ^ keystream();
  }
}

std::vector<double> EncryptedEnvelope::open(std::uint64_t key) const {
  rng::Engine keystream(key);
  std::vector<double> plain(cipher_.size());
  std::uint64_t check = 0xC0FFEE ^ key;
  for (std::size_t i = 0; i < cipher_.size(); ++i) {
    const std::uint64_t word = cipher_[i] ^ keystream();
    check = check * 1099511628211ULL ^ word;
    plain[i] = std::bit_cast<double>(word);
  }
  SAP_REQUIRE(check == checksum_, "EncryptedEnvelope::open: checksum mismatch (wrong key?)");
  return plain;
}

std::vector<double> encode_dataset(const linalg::Matrix& features_dxn,
                                   std::span<const int> labels) {
  SAP_REQUIRE(features_dxn.cols() == labels.size(), "encode_dataset: label count mismatch");
  std::vector<double> wire;
  const std::size_t d = features_dxn.rows();
  const std::size_t n = features_dxn.cols();
  wire.reserve(2 + d * n + n);
  wire.push_back(static_cast<double>(d));
  wire.push_back(static_cast<double>(n));
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < d; ++i) wire.push_back(features_dxn(i, j));
  for (int label : labels) wire.push_back(static_cast<double>(label));
  return wire;
}

DecodedDataset decode_dataset(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() >= 2, "decode_dataset: truncated payload");
  const std::size_t d = checked_count(wire[0], "dimension count");
  const std::size_t n = checked_count(wire[1], "record count");
  SAP_REQUIRE(d > 0 && n > 0 && wire.size() == 2 + d * n + n,
              "decode_dataset: malformed payload");
  DecodedDataset out;
  out.features = linalg::Matrix(d, n);
  std::size_t pos = 2;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < d; ++i) out.features(i, j) = wire[pos++];
  out.labels.resize(n);
  for (std::size_t j = 0; j < n; ++j) out.labels[j] = checked_label(wire[pos++]);
  return out;
}

std::vector<double> encode_target_space(const linalg::Matrix& r, const linalg::Vector& t) {
  SAP_REQUIRE(r.rows() == r.cols() && r.rows() == t.size(),
              "encode_target_space: shape mismatch");
  std::vector<double> wire;
  wire.reserve(1 + r.size() + t.size());
  wire.push_back(static_cast<double>(r.rows()));
  wire.insert(wire.end(), r.data().begin(), r.data().end());
  wire.insert(wire.end(), t.begin(), t.end());
  return wire;
}

DecodedTargetSpace decode_target_space(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty(), "decode_target_space: empty payload");
  const std::size_t d = checked_count(wire[0], "dimension count");
  SAP_REQUIRE(d > 0 && wire.size() == 1 + d * d + d, "decode_target_space: malformed payload");
  DecodedTargetSpace out;
  out.r = linalg::Matrix(d, d);
  for (std::size_t i = 0; i < d * d; ++i) out.r.data()[i] = wire[1 + i];
  out.t.assign(wire.begin() + static_cast<std::ptrdiff_t>(1 + d * d), wire.end());
  return out;
}

std::vector<double> encode_contribution(std::uint64_t nonce,
                                        const linalg::Matrix& features_dxm,
                                        std::span<const int> labels) {
  // Nonces are 32-bit by construction (session.cpp), hence exactly
  // representable as doubles; reject anything that would round on the wire.
  SAP_REQUIRE(nonce < (1ULL << 53), "encode_contribution: nonce not double-exact");
  std::vector<double> wire;
  wire.push_back(static_cast<double>(nonce));
  const auto body = encode_dataset(features_dxm, labels);
  wire.insert(wire.end(), body.begin(), body.end());
  return wire;
}

DecodedContribution decode_contribution(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty(), "decode_contribution: empty payload");
  // Mirror the encode-side bound: the cast below is UB for values >= 2^64,
  // and wire payloads are adversarial input until proven otherwise.
  SAP_REQUIRE(std::isfinite(wire[0]) && wire[0] >= 0.0 && wire[0] < 9007199254740992.0 &&
                  wire[0] == std::floor(wire[0]),
              "decode_contribution: malformed nonce");
  DecodedContribution out;
  out.nonce = static_cast<std::uint64_t>(wire[0]);
  out.data = decode_dataset(wire.subspan(1));
  return out;
}

std::vector<double> encode_routing(PartyId receiver, std::uint32_t inbound) {
  return {static_cast<double>(receiver), static_cast<double>(inbound)};
}

RoutingNotice decode_routing(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() == 2, "decode_routing: malformed payload");
  RoutingNotice notice;
  notice.receiver = static_cast<PartyId>(checked_count(wire[0], "party id"));
  notice.inbound = static_cast<std::uint32_t>(checked_count(wire[1], "inbound count"));
  return notice;
}

std::vector<double> encode_mining_request(const std::string& job,
                                          const std::map<std::string, double>& params) {
  SAP_REQUIRE(params.size() <= kMaxWireParams, "encode_mining_request: too many params");
  std::vector<double> wire;
  encode_string(wire, job, "job name");
  wire.push_back(static_cast<double>(params.size()));
  for (const auto& [key, value] : params) {
    encode_string(wire, key, "param name");
    SAP_REQUIRE(std::isfinite(value), "encode_mining_request: non-finite param value");
    wire.push_back(value);
  }
  return wire;
}

DecodedMiningRequest decode_mining_request(std::span<const double> wire) {
  DecodedMiningRequest out;
  std::size_t pos = 0;
  out.job = decode_string(wire, pos, "job name");
  SAP_REQUIRE(pos < wire.size(), "decode_mining_request: truncated payload");
  const std::size_t count = checked_count(wire[pos++], "param count");
  SAP_REQUIRE(count <= kMaxWireParams, "decode_mining_request: too many params");
  for (std::size_t i = 0; i < count; ++i) {
    std::string key = decode_string(wire, pos, "param name");
    SAP_REQUIRE(pos < wire.size(), "decode_mining_request: truncated payload");
    const double value = wire[pos++];
    SAP_REQUIRE(std::isfinite(value), "decode_mining_request: non-finite param value");
    SAP_REQUIRE(out.params.emplace(std::move(key), value).second,
                "decode_mining_request: duplicate param");
  }
  SAP_REQUIRE(pos == wire.size(), "decode_mining_request: trailing garbage");
  return out;
}

std::vector<double> encode_mining_response(const WireMiningResponse& response) {
  // Mirror the decoder's checked_count bound (< 1e9) — an encoder that
  // accepts what every well-behaved peer rejects is a wire-contract bug.
  SAP_REQUIRE(response.pool_epoch < 1000000000ULL,
              "encode_mining_response: epoch out of wire range");
  std::vector<double> wire;
  wire.reserve(4 + response.values.size());
  wire.push_back(static_cast<double>(response.pool_epoch));
  wire.push_back(response.model_cached ? 1.0 : 0.0);
  wire.push_back(response.model_incremental ? 1.0 : 0.0);
  wire.push_back(static_cast<double>(response.values.size()));
  wire.insert(wire.end(), response.values.begin(), response.values.end());
  return wire;
}

WireMiningResponse decode_mining_response(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() >= 4, "decode_mining_response: truncated payload");
  WireMiningResponse out;
  out.pool_epoch = static_cast<std::uint64_t>(checked_count(wire[0], "pool epoch"));
  SAP_REQUIRE(wire[1] == 0.0 || wire[1] == 1.0, "decode_mining_response: malformed flag");
  SAP_REQUIRE(wire[2] == 0.0 || wire[2] == 1.0, "decode_mining_response: malformed flag");
  out.model_cached = wire[1] == 1.0;
  out.model_incremental = wire[2] == 1.0;
  const std::size_t count = checked_count(wire[3], "value count");
  SAP_REQUIRE(wire.size() == 4 + count, "decode_mining_response: malformed payload");
  out.values.assign(wire.begin() + 4, wire.end());
  return out;
}

std::vector<double> encode_receipt(std::uint64_t pool_epoch, std::size_t pool_records) {
  // Mirror the decoder's checked_count bound (< 1e9), as above.
  SAP_REQUIRE(pool_epoch < 1000000000ULL, "encode_receipt: epoch out of wire range");
  SAP_REQUIRE(pool_records < 1000000000ULL, "encode_receipt: record count out of wire range");
  return {static_cast<double>(pool_epoch), static_cast<double>(pool_records)};
}

DecodedReceipt decode_receipt(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() == 2, "decode_receipt: malformed payload");
  DecodedReceipt out;
  out.pool_epoch = static_cast<std::uint64_t>(checked_count(wire[0], "pool epoch"));
  out.pool_records = checked_count(wire[1], "record count");
  return out;
}

std::vector<double> encode_serve_error(ServeErrorCode code, const std::string& message) {
  std::vector<double> wire{static_cast<double>(static_cast<std::uint8_t>(code))};
  // Error texts come from exception messages, which may exceed the wire
  // string cap or carry odd bytes — clamp instead of refusing to report.
  std::string clipped = message.empty() ? std::string("(no message)") : message;
  if (clipped.size() > kMaxWireString) clipped.resize(kMaxWireString);
  for (auto& c : clipped)
    if (c < 32 || c > 126) c = '?';
  encode_string(wire, clipped, "error message");
  return wire;
}

DecodedServeError decode_serve_error(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty(), "decode_serve_error: empty payload");
  const auto code = checked_count(wire[0], "error code");
  SAP_REQUIRE(code >= 1 && code <= 3, "decode_serve_error: unknown error code");
  DecodedServeError out;
  out.code = static_cast<ServeErrorCode>(code);
  std::size_t pos = 1;
  out.message = decode_string(wire, pos, "error message");
  SAP_REQUIRE(pos == wire.size(), "decode_serve_error: trailing garbage");
  return out;
}

namespace {

/// [qd, qm, features col-major, labels] with qm == 0 allowed (no queries).
void encode_query_block(std::vector<double>& wire, const data::Dataset& queries) {
  const std::size_t d = queries.size() == 0 ? 0 : queries.dims();
  const std::size_t m = queries.size();
  wire.push_back(static_cast<double>(d));
  wire.push_back(static_cast<double>(m));
  for (std::size_t j = 0; j < m; ++j) {
    const auto rec = queries.record(j);
    wire.insert(wire.end(), rec.begin(), rec.end());
  }
  for (std::size_t j = 0; j < m; ++j)
    wire.push_back(static_cast<double>(queries.label(j)));
}

data::Dataset decode_query_block(std::span<const double> wire, std::size_t& pos,
                                 const char* what) {
  SAP_REQUIRE(pos + 2 <= wire.size(), std::string("decode: truncated ") + what);
  const std::size_t d = checked_count(wire[pos++], "dimension count");
  const std::size_t m = checked_count(wire[pos++], "record count");
  if (m == 0) {
    SAP_REQUIRE(d == 0, std::string("decode: malformed ") + what);
    return {};
  }
  SAP_REQUIRE(d > 0 && pos + m * d + m <= wire.size(),
              std::string("decode: malformed ") + what);
  linalg::Matrix features(m, d, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    auto row = features.row(j);
    for (std::size_t i = 0; i < d; ++i) row[i] = wire[pos++];
  }
  std::vector<int> labels(m);
  for (std::size_t j = 0; j < m; ++j) labels[j] = checked_label(wire[pos++]);
  return data::Dataset("wire", std::move(features), std::move(labels));
}

}  // namespace

std::vector<double> encode_partial_request(std::size_t shard, const std::string& job,
                                           const std::map<std::string, double>& params,
                                           const data::Dataset& queries) {
  SAP_REQUIRE(shard < 1000000000ULL, "encode_partial_request: shard out of wire range");
  std::vector<double> wire{static_cast<double>(shard)};
  const auto request = encode_mining_request(job, params);
  wire.push_back(static_cast<double>(request.size()));
  wire.insert(wire.end(), request.begin(), request.end());
  encode_query_block(wire, queries);
  return wire;
}

DecodedPartialRequest decode_partial_request(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() >= 2, "decode_partial_request: truncated payload");
  DecodedPartialRequest out;
  out.shard = checked_count(wire[0], "shard id");
  const std::size_t req_len = checked_count(wire[1], "request length");
  SAP_REQUIRE(2 + req_len <= wire.size(), "decode_partial_request: malformed payload");
  const auto request = decode_mining_request(wire.subspan(2, req_len));
  out.job = request.job;
  out.params = request.params;
  std::size_t pos = 2 + req_len;
  out.queries = decode_query_block(wire, pos, "query block");
  SAP_REQUIRE(pos == wire.size(), "decode_partial_request: trailing garbage");
  return out;
}

std::vector<double> encode_partial_response(std::uint64_t shard_epoch,
                                            std::span<const double> blob) {
  SAP_REQUIRE(shard_epoch < 1000000000ULL,
              "encode_partial_response: epoch out of wire range");
  std::vector<double> wire;
  wire.reserve(2 + blob.size());
  wire.push_back(static_cast<double>(shard_epoch));
  wire.push_back(static_cast<double>(blob.size()));
  wire.insert(wire.end(), blob.begin(), blob.end());
  return wire;
}

DecodedPartialResponse decode_partial_response(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() >= 2, "decode_partial_response: truncated payload");
  DecodedPartialResponse out;
  out.shard_epoch = static_cast<std::uint64_t>(checked_count(wire[0], "shard epoch"));
  const std::size_t count = checked_count(wire[1], "blob length");
  SAP_REQUIRE(wire.size() == 2 + count, "decode_partial_response: malformed payload");
  out.blob.assign(wire.begin() + 2, wire.end());
  return out;
}

std::vector<double> encode_pool_slice_request(std::size_t shard, std::size_t max_records) {
  SAP_REQUIRE(shard < 1000000000ULL, "encode_pool_slice_request: shard out of wire range");
  SAP_REQUIRE(max_records < 1000000000ULL,
              "encode_pool_slice_request: max_records out of wire range");
  return {static_cast<double>(shard), static_cast<double>(max_records)};
}

DecodedPoolSliceRequest decode_pool_slice_request(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() == 2, "decode_pool_slice_request: malformed payload");
  DecodedPoolSliceRequest out;
  out.shard = checked_count(wire[0], "shard id");
  out.max_records = checked_count(wire[1], "max records");
  return out;
}

std::vector<double> encode_shard_snapshot_request(std::size_t shard) {
  SAP_REQUIRE(shard < 1000000000ULL, "encode_shard_snapshot_request: shard out of wire range");
  return {static_cast<double>(shard)};
}

std::size_t decode_shard_snapshot_request(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() == 1, "decode_shard_snapshot_request: malformed payload");
  return checked_count(wire[0], "shard id");
}

std::vector<double> encode_pool_slice(std::uint64_t shard_epoch, const data::Dataset& rows,
                                      std::span<const PoolKey> keys) {
  SAP_REQUIRE(shard_epoch < 1000000000ULL, "encode_pool_slice: epoch out of wire range");
  SAP_REQUIRE(rows.size() == keys.size(), "encode_pool_slice: rows/keys size mismatch");
  std::vector<double> wire{static_cast<double>(shard_epoch)};
  for (const auto& key : keys) {
    SAP_REQUIRE(key.nonce < (1ULL << 53), "encode_pool_slice: nonce not double-exact");
    SAP_REQUIRE(key.seq < 1000000000U, "encode_pool_slice: seq out of wire range");
  }
  encode_query_block(wire, rows);
  for (const auto& key : keys) {
    wire.push_back(static_cast<double>(key.nonce));
    wire.push_back(static_cast<double>(key.seq));
  }
  return wire;
}

DecodedPoolSlice decode_pool_slice(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty(), "decode_pool_slice: truncated payload");
  DecodedPoolSlice out;
  out.shard_epoch = static_cast<std::uint64_t>(checked_count(wire[0], "shard epoch"));
  std::size_t pos = 1;
  out.rows = decode_query_block(wire, pos, "slice rows");
  SAP_REQUIRE(wire.size() == pos + 2 * out.rows.size(),
              "decode_pool_slice: malformed payload");
  out.keys.reserve(out.rows.size());
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    const double nonce = wire[pos++];
    SAP_REQUIRE(std::isfinite(nonce) && nonce >= 0.0 && nonce < 9007199254740992.0 &&
                    nonce == std::floor(nonce),
                "decode_pool_slice: malformed nonce");
    const auto seq = checked_count(wire[pos++], "slice seq");
    out.keys.push_back({static_cast<std::uint64_t>(nonce),
                        static_cast<std::uint32_t>(seq)});
  }
  return out;
}

// ---- stats door (PR 9) ---------------------------------------------------

namespace {

constexpr double kStatsWireVersion = 1.0;
/// Caps on collection counts — a stats payload is operator traffic, but it
/// still crosses the adversarial wire boundary like everything else.
constexpr std::size_t kMaxStatsEntries = 4096;

/// Validate-and-cast a wire double that must encode an exact u64 (counter
/// values, bucket counts, trace ids can legitimately exceed checked_count's
/// 1e9 range but must survive the double round-trip bit-exactly).
std::uint64_t checked_u64(double v, const char* what) {
  SAP_REQUIRE(std::isfinite(v) && v >= 0.0 && v < 9007199254740992.0 && v == std::floor(v),
              std::string("decode: malformed ") + what);
  return static_cast<std::uint64_t>(v);
}

void encode_u64(std::vector<double>& wire, std::uint64_t v, const char* what) {
  SAP_REQUIRE(v < (1ULL << 53), std::string("encode: not double-exact: ") + what);
  wire.push_back(static_cast<double>(v));
}

void encode_stat_value(std::vector<double>& wire, double v, const char* what) {
  SAP_REQUIRE(std::isfinite(v), std::string("encode: non-finite ") + what);
  wire.push_back(v);
}

double checked_stat_value(std::span<const double> wire, std::size_t& pos, const char* what) {
  SAP_REQUIRE(pos < wire.size(), std::string("decode: truncated ") + what);
  const double v = wire[pos++];
  SAP_REQUIRE(std::isfinite(v), std::string("decode: non-finite ") + what);
  return v;
}

}  // namespace

std::vector<double> encode_stats_request() { return {kStatsWireVersion}; }

void decode_stats_request(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() == 1 && wire[0] == kStatsWireVersion,
              "decode_stats_request: unsupported stats version");
}

std::vector<double> encode_stats_response(const obs::Snapshot& snapshot,
                                          std::span<const obs::TraceRecord> traces) {
  SAP_REQUIRE(snapshot.counters.size() <= kMaxStatsEntries &&
                  snapshot.gauges.size() <= kMaxStatsEntries &&
                  snapshot.histograms.size() <= kMaxStatsEntries &&
                  traces.size() <= kMaxStatsEntries,
              "encode_stats_response: too many entries");
  std::vector<double> wire{kStatsWireVersion};
  wire.push_back(static_cast<double>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    encode_string(wire, name, "counter name");
    encode_u64(wire, value, "counter value");
  }
  wire.push_back(static_cast<double>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    encode_string(wire, name, "gauge name");
    encode_stat_value(wire, value, "gauge value");
  }
  wire.push_back(static_cast<double>(snapshot.histograms.size()));
  for (const auto& [name, hist] : snapshot.histograms) {
    encode_string(wire, name, "histogram name");
    encode_u64(wire, hist.count, "histogram count");
    encode_stat_value(wire, hist.sum, "histogram sum");
    encode_stat_value(wire, hist.max, "histogram max");
    SAP_REQUIRE(hist.buckets.size() <= obs::Histogram::kBucketCount,
                "encode_stats_response: too many histogram buckets");
    wire.push_back(static_cast<double>(hist.buckets.size()));
    for (const auto& [index, n] : hist.buckets) {
      SAP_REQUIRE(index < obs::Histogram::kBucketCount,
                  "encode_stats_response: bucket index out of range");
      wire.push_back(static_cast<double>(index));
      encode_u64(wire, n, "bucket count");
    }
  }
  wire.push_back(static_cast<double>(traces.size()));
  for (const auto& trace : traces) {
    // A trace id uses the full 64 bits (16-bit door salt in the top bits),
    // so it cannot ride the double-exact u64 path — split into 32-bit
    // halves, each trivially exact.
    encode_u64(wire, trace.id >> 32, "trace id hi");
    encode_u64(wire, trace.id & 0xFFFFFFFFull, "trace id lo");
    encode_string(wire, trace.op.empty() ? std::string("?") : trace.op, "trace op");
    for (const double ms : trace.stage_ms) encode_stat_value(wire, ms, "trace stage ms");
  }
  return wire;
}

DecodedStats decode_stats_response(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty() && wire[0] == kStatsWireVersion,
              "decode_stats_response: unsupported stats version");
  DecodedStats out;
  std::size_t pos = 1;

  const auto read_count = [&](const char* what) {
    SAP_REQUIRE(pos < wire.size(), std::string("decode: truncated ") + what);
    const std::size_t n = checked_count(wire[pos++], what);
    SAP_REQUIRE(n <= kMaxStatsEntries, std::string("decode: oversized ") + what);
    return n;
  };

  const std::size_t n_counters = read_count("counter section");
  out.snapshot.counters.reserve(n_counters);
  for (std::size_t i = 0; i < n_counters; ++i) {
    std::string name = decode_string(wire, pos, "counter name");
    SAP_REQUIRE(pos < wire.size(), "decode_stats_response: truncated counter");
    const std::uint64_t value = checked_u64(wire[pos++], "counter value");
    out.snapshot.counters.emplace_back(std::move(name), value);
  }

  const std::size_t n_gauges = read_count("gauge section");
  out.snapshot.gauges.reserve(n_gauges);
  for (std::size_t i = 0; i < n_gauges; ++i) {
    std::string name = decode_string(wire, pos, "gauge name");
    const double value = checked_stat_value(wire, pos, "gauge value");
    out.snapshot.gauges.emplace_back(std::move(name), value);
  }

  const std::size_t n_hists = read_count("histogram section");
  out.snapshot.histograms.reserve(n_hists);
  for (std::size_t i = 0; i < n_hists; ++i) {
    std::string name = decode_string(wire, pos, "histogram name");
    obs::HistogramSnapshot hist;
    SAP_REQUIRE(pos < wire.size(), "decode_stats_response: truncated histogram");
    hist.count = checked_u64(wire[pos++], "histogram count");
    hist.sum = checked_stat_value(wire, pos, "histogram sum");
    hist.max = checked_stat_value(wire, pos, "histogram max");
    SAP_REQUIRE(pos < wire.size(), "decode_stats_response: truncated histogram");
    const std::size_t n_buckets = checked_count(wire[pos++], "bucket count");
    SAP_REQUIRE(n_buckets <= obs::Histogram::kBucketCount,
                "decode_stats_response: too many buckets");
    hist.buckets.reserve(n_buckets);
    std::uint64_t bucket_total = 0;
    std::uint32_t prev_index = 0;
    for (std::size_t b = 0; b < n_buckets; ++b) {
      SAP_REQUIRE(pos + 1 < wire.size(), "decode_stats_response: truncated bucket");
      const auto index = static_cast<std::uint32_t>(checked_count(wire[pos++], "bucket index"));
      SAP_REQUIRE(index < obs::Histogram::kBucketCount,
                  "decode_stats_response: bucket index out of range");
      SAP_REQUIRE(b == 0 || index > prev_index,
                  "decode_stats_response: bucket indices not ascending");
      prev_index = index;
      const std::uint64_t n = checked_u64(wire[pos++], "bucket count");
      bucket_total += n;
      hist.buckets.emplace_back(index, n);
    }
    SAP_REQUIRE(bucket_total == hist.count,
                "decode_stats_response: bucket counts disagree with total");
    out.snapshot.histograms.emplace_back(std::move(name), std::move(hist));
  }

  const std::size_t n_traces = read_count("trace section");
  out.traces.reserve(n_traces);
  for (std::size_t i = 0; i < n_traces; ++i) {
    obs::TraceRecord trace;
    SAP_REQUIRE(pos + 1 < wire.size(), "decode_stats_response: truncated trace");
    const std::uint64_t id_hi = checked_u64(wire[pos++], "trace id hi");
    const std::uint64_t id_lo = checked_u64(wire[pos++], "trace id lo");
    SAP_REQUIRE(id_hi <= 0xFFFFFFFFull && id_lo <= 0xFFFFFFFFull,
                "decode_stats_response: trace id half out of range");
    trace.id = (id_hi << 32) | id_lo;
    trace.op = decode_string(wire, pos, "trace op");
    for (double& ms : trace.stage_ms) ms = checked_stat_value(wire, pos, "trace stage ms");
    out.traces.push_back(std::move(trace));
  }
  SAP_REQUIRE(pos == wire.size(), "decode_stats_response: trailing garbage");
  return out;
}

}  // namespace sap::proto
