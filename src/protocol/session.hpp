// SapSession — the Space Adaptation Protocol (paper §3) as a phase-explicit
// state machine over a pluggable Transport backend.
//
// Roles (all in-process over the chosen Transport, which enforces and
// records the information flow):
//   * k data providers DP_0 .. DP_{k-1}; DP_{k-1} doubles as the
//     *coordinator* (the paper's DP_k),
//   * one mining service provider (SP / "the miner").
//
// Phases (each individually observable via phase() / phase_log(), each a
// run_parties() batch so the threaded backend parallelizes per-party work):
//
//   LocalOptimize        every provider locally optimizes its perturbation
//                        G_i : (R_i, t_i) with the common noise level sigma;
//   TargetDistribution   the coordinator selects a random *noise-free*
//                        target space G_t and distributes it (encrypted);
//   PermutationExchange  the coordinator samples a permutation tau and
//                        redirects its own slot to a random non-coordinator
//                        provider — the coordinator must never receive data
//                        because it later holds the space adaptors, which
//                        would let it undo any perturbation it saw;
//   PerturbAndForward    providers perturb (Y_i = R_i X_i + Psi_i + Delta_i)
//                        and send Y_i to their assigned peer; peers forward
//                        everything to the miner — source identifiability
//                        drops to 1/(k-1);
//   AdaptorAlignment     providers send their space adaptor A_it to the
//                        coordinator, which aligns adaptors with forwarders
//                        via tau and ships the aligned sequence to the miner;
//   Mine                 the miner applies each adaptor to the matching
//                        dataset, pools every record in the unified target
//                        space, and serves mining jobs.
//
// Mine is a *serving* state, not a single shot: once the exchange has run,
// the session's MiningEngine (mining_engine.hpp) serves any number of
// parameterized mining requests against the pooled unified space without
// redoing the exchange — concurrently, with fitted models cached per (job,
// params) and extended incrementally across pool epochs. mine()/mine_named()
// are thin single-request wrappers that additionally broadcast the job's
// model report to every provider; engine() exposes the batched serving
// surface directly (no broadcasts).
//
// Contribute (the streaming extension, DESIGN.md §6): after the exchange,
// any provider can keep submitting perturbed record batches — contribute()
// perturbs with the provider's already-optimized G_i and ships a
// kContribution message to the miner, which maps the batch into the unified
// space by REUSING the space adaptor negotiated in the initial exchange (no
// re-run of LocalOptimize/Exchange, no new information to the miner beyond
// pool growth) and appends it to the engine's epoch-scoped live pool.
// Serving stays available during ingest: in-flight mining requests finish
// against the pool epoch they started on, and cached models refit
// incrementally where the classifier supports partial_fit. A rejected
// contribution (unknown nonce, dimension mismatch, dropped message) throws
// but leaves the pool untouched and the session serviceable.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "optimize/optimizer.hpp"
#include "perturb/geometric.hpp"
#include "perturb/space_adaptor.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/risk.hpp"
#include "protocol/transport.hpp"

namespace sap::proto {

struct SapOptions {
  /// Common noise level Delta shared by all parties (paper §3).
  double noise_sigma = 0.1;
  /// Locally optimize G_i (paper default). false → random G_i, the
  /// baseline of Figure 2.
  bool optimize_local = true;
  /// Randomized-optimizer configuration (also supplies the attack suite
  /// used for rho / satisfaction accounting). `optimizer.threads` sizes the
  /// per-party LocalOptimize scoring pool; results are bit-identical for
  /// any thread count (optimizer.hpp), so it is purely a latency knob.
  opt::OptimizerOptions optimizer{};
  /// Extra optimization runs per party used to estimate the bound b_i
  /// (>= 1; the paper estimates b empirically as a max over runs).
  std::size_t bound_runs = 2;
  /// Evaluate satisfaction s_i = rho^G_i / rho_i (costs one attack-suite
  /// evaluation per party; disable for pure cost benches).
  bool compute_satisfaction = true;
  /// Master seed: a run is bit-for-bit reproducible given options + data,
  /// regardless of the transport backend (the miner pools shards in a
  /// canonical order, so even concurrent delivery yields identical output).
  std::uint64_t seed = 0x5A9;
  /// Messaging + party-execution backend.
  TransportKind transport = TransportKind::kSimulated;
  /// Worker threads for the session's MiningEngine (0 = serve batches
  /// inline; the engine's reports are thread-count-invariant either way).
  std::size_t mining_threads = 0;
  /// Cache fitted models in the engine (per job, params and pool-epoch).
  bool cache_models = true;

  /// Cheap preset for unit tests (few candidates, no refinement).
  static SapOptions fast();
};

/// Per-provider accounting, all in the paper's notation.
struct PartyReport {
  PartyId id = 0;
  double local_rho = 0.0;        ///< rho_i
  double bound = 0.0;            ///< b-hat_i
  double unified_rho = 0.0;      ///< rho^G_i (privacy in the target space)
  double satisfaction = 0.0;     ///< s_i = rho^G_i / rho_i (capped at b_i/rho_i)
  double identifiability = 0.0;  ///< pi_i = 1/(k-1)
  double risk_breach = 0.0;      ///< eq. (1), miner's view
  double risk_sap = 0.0;         ///< eq. (2), overall
};

struct SapResult {
  /// Miner's pooled dataset in the unified target space (N x d rows).
  data::Dataset unified;
  /// Target space parameters (provider-side knowledge; needed to transform
  /// test data into the mining space — never shipped to the miner).
  perturb::GeometricPerturbation target_space;
  std::vector<PartyReport> parties;

  // ---- cost statistics (from the transport trace)
  std::size_t messages = 0;
  std::size_t total_bytes = 0;

  // ---- audit-only ground truth (invisible to the simulated miner; used by
  //      tests to verify the anonymity mechanics)
  std::vector<PartyId> audit_receiver_of;   ///< provider i's data went to this peer
  std::vector<PartyId> audit_forwarder_of;  ///< and reached the miner via this peer
};

/// Protocol phases in execution order. kMine is terminal: the session stays
/// there serving mining jobs against the pooled unified space.
enum class SessionPhase : std::uint8_t {
  kLocalOptimize = 0,
  kTargetDistribution = 1,
  kPermutationExchange = 2,
  kPerturbAndForward = 3,
  kAdaptorAlignment = 4,
  kMine = 5,
};

/// Printable phase name for logs and tests.
std::string to_string(SessionPhase phase);

class SapSession {
 public:
  /// Custom backend hook (real-network transports plug in here); receives
  /// the session secret that seeds per-link key derivation.
  using TransportFactory = std::function<std::unique_ptr<Transport>(std::uint64_t)>;

  /// One dataset per provider (>= 3 providers: with fewer than two
  /// non-coordinator providers the exchange cannot anonymize anything).
  /// All datasets must share dimensionality and be pre-normalized.
  /// The backend is chosen by `opts.transport`.
  SapSession(std::vector<data::Dataset> provider_data, SapOptions opts);

  /// Same, but with an explicit transport factory overriding opts.transport.
  SapSession(std::vector<data::Dataset> provider_data, SapOptions opts,
             TransportFactory transport_factory);

  SapSession(const SapSession&) = delete;
  SapSession& operator=(const SapSession&) = delete;

  // ---- phase stepping --------------------------------------------------

  /// Contract checks shared with the compatibility wrapper: >= 3 providers,
  /// equal dimensionality, >= 8 records each, valid options. Throws
  /// sap::Error on violation.
  static void validate(const std::vector<data::Dataset>& provider_data,
                       const SapOptions& opts);

  /// The next phase advance() would execute; kMine once the exchange is
  /// complete and the unified pool is available.
  [[nodiscard]] SessionPhase phase() const noexcept { return phase_; }

  /// True once a phase has thrown: partially-executed exchange state cannot
  /// be resumed, so every later advance()/mine() refuses to run. Construct
  /// a fresh session to retry.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Execute the current phase and move to the next. No-op at kMine.
  /// If the phase throws, the session is poisoned (see failed()).
  void advance();

  /// advance() until phase() == target.
  void run_until(SessionPhase target);

  /// Convenience single-shot: run every phase, then mine(job).
  SapResult run(const MinerJob& job = {});

  // ---- mining (served by the engine over the pooled unified space) ------

  /// Run `job` (may be empty) at the miner on the unified pool; broadcasts
  /// the model report to every provider. Implicitly completes outstanding
  /// phases. Callable any number of times without redoing the exchange.
  SapResult mine(const MinerJob& job = {});

  /// Serve one request from the engine's job registry (seeded with the
  /// built-in jobs; see jobs.hpp), optionally parameterized, and broadcast
  /// its report. Throws sap::Error for unknown names or invalid params.
  SapResult mine_named(const std::string& job_name, const JobParams& params = {});

  /// Add (or replace) a named closure job in the engine's registry.
  void register_job(std::string name, MinerJob job);

  /// Names in the engine's registry, sorted.
  [[nodiscard]] std::vector<std::string> job_names() const;

  /// Direct access to the mining engine (batched, concurrent, cached
  /// serving — no per-request broadcasts). Implicitly completes outstanding
  /// phases so the pool is installed. See mining_engine.hpp.
  [[nodiscard]] MiningEngine& engine();

  // ---- Contribute phase (streaming ingest into the live pool) ----------

  /// What the miner acknowledges after accepting a contribution.
  struct ContributionReceipt {
    std::uint64_t pool_epoch = 0;   ///< engine pool epoch after the append
    std::size_t pool_records = 0;   ///< unified pool size after the append
  };

  /// Provider `provider_index` contributes `batch` (records in its own
  /// original normalized space, N x d rows like every Dataset): the provider
  /// perturbs it with its negotiated G_i (fresh noise), ships it to the
  /// miner as kContribution, and the miner unifies it with the adaptor from
  /// the initial exchange and appends it to the live pool. Implicitly
  /// completes outstanding phases. Throws sap::Error on a malformed or
  /// undeliverable contribution — the pool is left untouched and the
  /// session keeps serving. Contribute calls must not overlap each other
  /// (engine requests may run concurrently; see MiningEngine).
  ContributionReceipt contribute(std::size_t provider_index, const data::Dataset& batch);

  /// Wire-level variant: submit an already-perturbed d x m batch under an
  /// explicit nonce via provider `via_provider`'s link. This is the actual
  /// deployment surface (contributions are identified by nonce, not by
  /// link) and the fault-modeling hook: an unknown nonce models a party
  /// outside the exchange and is rejected by the miner.
  ContributionReceipt contribute_raw(std::size_t via_provider, std::uint64_t nonce,
                                     const linalg::Matrix& y_dxm,
                                     std::span<const int> labels);

  // ---- observability ---------------------------------------------------

  /// Per-executed-phase timing and cumulative transport cost.
  struct PhaseStats {
    SessionPhase phase = SessionPhase::kLocalOptimize;
    double millis = 0.0;
    std::size_t messages = 0;     ///< cumulative trace size after the phase
    std::size_t total_bytes = 0;  ///< cumulative ciphertext bytes after the phase
  };
  [[nodiscard]] const std::vector<PhaseStats>& phase_log() const noexcept {
    return phase_log_;
  }

  /// The transport carrying this session (trace, cost and drop accounting).
  [[nodiscard]] const Transport& transport() const noexcept { return *transport_; }

  /// Failure injection for tests/benches: messages matching the filter are
  /// dropped by the transport. The protocol must detect the incomplete
  /// exchange and throw sap::Error rather than mine a partial pool
  /// (DESIGN.md §4 invariant 3).
  void inject_faults(Transport::DropFilter filter);

  [[nodiscard]] std::size_t provider_count() const noexcept { return ps_.size(); }

  /// Audit-only: provider i's exchange nonce (its protocol-level identity
  /// for contributions). Tests use this to forge wire-accurate Contribute
  /// traffic; a real deployment's party holds only its own nonce.
  [[nodiscard]] std::uint64_t provider_nonce(std::size_t provider_index) const;

 private:
  /// Simulation container for one provider's private state; nothing outside
  /// the owning party's task reads an entry except through the transport.
  struct ProviderState {
    linalg::Matrix x;  // d x N original (normalized) data
    std::vector<int> labels;
    perturb::GeometricPerturbation g;
    double rho = 0.0;
    double bound = 0.0;
    linalg::Matrix y;  // perturbed data actually shipped
    perturb::GeometricPerturbation target;  // G_t as received
    perturb::SpaceAdaptor adaptor;
    std::uint64_t nonce = 0;
    PartyId send_to = 0;
    std::uint32_t inbound = 0;  // peer datasets to expect (from routing notice)
    rng::Engine eng{0};
  };

  void run_phase(SessionPhase executing);
  void run_local_optimize();
  void run_target_distribution();
  void run_permutation_exchange();
  void run_perturb_and_forward();
  void run_adaptor_alignment();
  void run_unify_and_account();

  /// Shared mine()/mine_named() tail: assemble the SapResult, broadcast
  /// `report` (unless empty) as kModelReport, snapshot transport costs.
  SapResult finish_mine(const std::vector<double>& report, bool broadcast);

  std::size_t dims_ = 0;
  SapOptions opts_;
  std::unique_ptr<Transport> transport_;
  std::vector<PartyId> provider_id_;
  PartyId coordinator_ = 0;
  PartyId miner_ = 0;
  std::vector<ProviderState> ps_;
  rng::Engine coord_eng_{0};

  SessionPhase phase_ = SessionPhase::kLocalOptimize;
  bool failed_ = false;
  std::vector<PhaseStats> phase_log_;

  perturb::GeometricPerturbation g_t_;
  std::vector<PartyId> receiver_of_source_;
  std::vector<std::vector<std::vector<double>>> self_held_;
  /// Miner-side state retained for the Contribute phase: the adaptor
  /// negotiated per contributor nonce (the miner's only knowledge of a
  /// source, exactly as in the initial exchange).
  std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> miner_adaptors_;

  std::vector<PartyReport> reports_;
  std::vector<PartyId> audit_receiver_of_;
  std::vector<PartyId> audit_forwarder_of_;

  /// Serves the Mine state; owns the unified pool once the exchange is done.
  MiningEngine engine_;
};

}  // namespace sap::proto
