#include "protocol/mining_engine.hpp"

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace sap::proto {

MiningEngine::MiningEngine(MiningEngineOptions opts, JobRegistry registry)
    : opts_(opts), registry_(std::move(registry)), pool_threads_(opts.threads) {}

void MiningEngine::set_pool(data::Dataset pool) {
  pool_ = std::move(pool);
  ++pool_epoch_;
  // Cache keys embed the epoch, so stale entries could never be *served*;
  // dropping them here just releases the dead models' memory.
  std::scoped_lock lk(cache_mutex_);
  cache_.clear();
}

const data::Dataset& MiningEngine::pool() const {
  SAP_REQUIRE(has_pool(), "MiningEngine: no pool installed (set_pool first)");
  return pool_;
}

std::shared_ptr<const ml::Classifier> MiningEngine::model_for(const JobSpec& spec,
                                                              const JobParams& resolved,
                                                              bool& cached) {
  cached = false;
  if (!opts_.cache_models) {
    auto model = spec.make_model(resolved);
    model->fit(pool_);
    fits_.fetch_add(1, std::memory_order_relaxed);
    return model;
  }

  std::string key = spec.name;
  key += '\0';
  key += spec.model_key_params(resolved);  // serve-only params share a model
  key += '\0';
  key += std::to_string(pool_epoch_);

  std::promise<std::shared_ptr<const ml::Classifier>> promise;
  ModelFuture future;
  bool fitter = false;
  {
    std::scoped_lock lk(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      future = it->second;
      // A completed entry is a genuine cache hit; an in-flight one means a
      // peer worker is fitting this exact key right now and we share its
      // result — counted as a hit too (no second fit happens).
      cached = true;
    } else {
      future = ModelFuture(promise.get_future());
      cache_.emplace(key, future);
      fitter = true;
    }
  }

  if (fitter) {
    try {
      auto model = spec.make_model(resolved);
      model->fit(pool_);
      fits_.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(std::shared_ptr<const ml::Classifier>(std::move(model)));
    } catch (...) {
      // Waiting peers see the exception; drop the poisoned entry so a later
      // request retries instead of replaying a stale error forever.
      promise.set_exception(std::current_exception());
      std::scoped_lock lk(cache_mutex_);
      cache_.erase(key);
    }
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return future.get();  // rethrows a fit failure
}

MiningResponse MiningEngine::run(const MiningRequest& request) {
  Stopwatch sw;
  MiningResponse response;
  if (request.job.empty()) {  // the no-op request
    response.millis = sw.millis();
    return response;
  }
  const JobSpec& spec = registry_.find(request.job);
  SAP_REQUIRE(has_pool(), "MiningEngine: no pool installed (set_pool first)");
  const JobParams resolved = spec.resolve_params(request.params);

  if (spec.trainable()) {
    const auto model = model_for(spec, resolved, response.model_cached);
    response.values = spec.serve(*model, pool_, resolved);
  } else {
    response.values = spec.run(pool_, resolved);
  }
  response.millis = sw.millis();
  return response;
}

std::vector<MiningResponse> MiningEngine::run_batch(
    const std::vector<MiningRequest>& requests) {
  // Validate every request up front (name AND params — resolve_params is
  // cheap and pure): a malformed batch must fail before any request
  // executes, and before any model is fitted.
  for (const auto& request : requests)
    if (!request.job.empty())
      (void)registry_.find(request.job).resolve_params(request.params);

  std::vector<MiningResponse> responses(requests.size());
  pool_threads_.run_indexed(requests.size(),
                            [&](std::size_t i) { responses[i] = run(requests[i]); });
  return responses;
}

std::vector<double> MiningEngine::run_adhoc(const MinerJob& job) {
  if (!job) return {};
  return job(pool());
}

MiningCacheStats MiningEngine::cache_stats() const {
  MiningCacheStats stats;
  stats.fits = fits_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  std::scoped_lock lk(cache_mutex_);
  stats.entries = cache_.size();
  return stats;
}

}  // namespace sap::proto
