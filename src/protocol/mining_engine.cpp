#include "protocol/mining_engine.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace sap::proto {

MiningEngine::MiningEngine(MiningEngineOptions opts, JobRegistry registry)
    : opts_(opts), registry_(std::move(registry)), pool_threads_(opts.threads) {
  SAP_REQUIRE(opts_.shards >= 1, "MiningEngine: shards must be >= 1");
  if (opts_.owned.empty()) {
    owned_.resize(opts_.shards);
    std::iota(owned_.begin(), owned_.end(), std::size_t{0});
  } else {
    owned_ = opts_.owned;
    std::sort(owned_.begin(), owned_.end());
    owned_.erase(std::unique(owned_.begin(), owned_.end()), owned_.end());
    SAP_REQUIRE(owned_.back() < opts_.shards,
                "MiningEngine: owned shard id out of range");
  }
  slots_.reserve(owned_.size());
  for (std::size_t i = 0; i < owned_.size(); ++i)
    slots_.push_back(std::make_unique<PoolShard>(opts_.cache_models));
}

PoolShard& MiningEngine::slot_for(std::size_t global_shard) const {
  const auto it = std::lower_bound(owned_.begin(), owned_.end(), global_shard);
  SAP_REQUIRE(it != owned_.end() && *it == global_shard,
              "MiningEngine: shard " + std::to_string(global_shard) +
                  " is not owned by this engine");
  return *slots_[static_cast<std::size_t>(it - owned_.begin())];
}

PoolShard& MiningEngine::sole_slot(const char* what) const {
  SAP_REQUIRE(opts_.shards == 1,
              std::string("MiningEngine::") + what +
                  ": sharded engines use the shard-aware surface");
  return *slots_.front();
}

void MiningEngine::set_pool(data::Dataset pool) {
  auto& slot = sole_slot("set_pool");
  // A flat dataset has no nonce structure: every row keys under the
  // synthetic nonce 0 in arrival order, so canonical order == arrival
  // order — the classic single-pool behavior.
  std::vector<PoolKey> keys;
  keys.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    keys.push_back({0, static_cast<std::uint32_t>(i)});
  slot.install(std::move(pool), std::move(keys));
}

void MiningEngine::set_pool_segments(std::vector<PoolSegment> segments) {
  for (std::size_t s = 0; s < owned_.size(); ++s) {
    const std::size_t global = owned_[s];
    data::Dataset rows;
    std::vector<PoolKey> keys;
    bool first = true;
    for (auto& segment : segments) {
      if (shard_of_nonce(segment.nonce, opts_.shards, opts_.layout) != global) continue;
      for (std::size_t i = 0; i < segment.rows.size(); ++i)
        keys.push_back({segment.nonce, static_cast<std::uint32_t>(i)});
      if (first) {
        rows = segment.rows;  // copy: a segment may be re-routed on re-install
        first = false;
      } else {
        rows.append(segment.rows);
      }
    }
    slots_[s]->install(std::move(rows), std::move(keys));
  }
}

std::uint64_t MiningEngine::append_records(const data::Dataset& batch) {
  return sole_slot("append_records").append(0, batch);
}

std::uint64_t MiningEngine::append_records(std::uint64_t nonce,
                                           const data::Dataset& batch) {
  const std::size_t global = shard_of_nonce(nonce, opts_.shards, opts_.layout);
  return slot_for(global).append(nonce, batch);
}

bool MiningEngine::has_pool() const {
  for (const auto& slot : slots_)
    if (slot->installed()) return true;
  return false;
}

const data::Dataset& MiningEngine::pool() const {
  auto view = sole_slot("pool").view();
  SAP_REQUIRE(view.snap != nullptr, "MiningEngine: no pool installed (set_pool first)");
  // The snapshot stays alive through the slot's own reference; per the
  // header contract the returned reference is only valid while no
  // concurrent mutation can replace it.
  return view.snap->rows;
}

MiningEngine::PoolView MiningEngine::pool_view() const {
  auto view = sole_slot("pool_view").view();
  if (view.snap == nullptr) return {nullptr, view.epoch};
  // Aliasing share: the Dataset pointer keeps the whole snapshot alive.
  return {std::shared_ptr<const data::Dataset>(view.snap, &view.snap->rows), view.epoch};
}

std::uint64_t MiningEngine::pool_epoch() const {
  std::uint64_t watermark = 0;
  bool first = true;
  for (const auto& slot : slots_) {
    const auto e = slot->epoch();
    watermark = first ? e : std::min(watermark, e);
    first = false;
  }
  return watermark;
}

bool MiningEngine::owns(std::size_t global_shard) const {
  const auto it = std::lower_bound(owned_.begin(), owned_.end(), global_shard);
  return it != owned_.end() && *it == global_shard;
}

PoolShard::View MiningEngine::shard_view(std::size_t global_shard) const {
  return slot_for(global_shard).view();
}

std::uint64_t MiningEngine::shard_epoch(std::size_t global_shard) const {
  return slot_for(global_shard).epoch();
}

void MiningEngine::install_shard(std::size_t global_shard, data::Dataset rows,
                                 std::vector<PoolKey> keys, std::uint64_t epoch) {
  slot_for(global_shard).install_at(std::move(rows), std::move(keys), epoch);
}

data::Dataset MiningEngine::gather_canonical(const std::vector<PoolShard::View>& views,
                                             std::size_t limit) {
  struct Row {
    PoolKey key;
    std::size_t view_idx;
    std::size_t row_idx;
  };
  std::vector<Row> rows;
  std::size_t dims = 0;
  std::string name;
  for (std::size_t v = 0; v < views.size(); ++v) {
    const auto& snap = *views[v].snap;
    if (snap.rows.size() == 0) continue;
    if (dims == 0) {
      dims = snap.rows.dims();
      name = snap.rows.name();
    }
    SAP_REQUIRE(snap.rows.dims() == dims,
                "MiningEngine: shard dimensionality mismatch in gather");
    for (std::size_t i = 0; i < snap.rows.size(); ++i)
      rows.push_back({snap.keys[i], v, i});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  const std::size_t n =
      limit == 0 ? rows.size() : std::min(limit, rows.size());
  linalg::Matrix features(n, dims, 0.0);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& snap = *views[rows[i].view_idx].snap;
    const auto rec = snap.rows.record(rows[i].row_idx);
    auto dst = features.row(i);
    std::copy(rec.begin(), rec.end(), dst.begin());
    labels[i] = snap.rows.label(rows[i].row_idx);
  }
  return data::Dataset(std::move(name), std::move(features), std::move(labels));
}

MiningResponse MiningEngine::run_sharded(const JobSpec& spec, const JobParams& resolved) {
  MiningResponse response;
  std::vector<PoolShard::View> views;
  views.reserve(slots_.size());
  std::uint64_t watermark = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    auto view = slots_[s]->view();
    SAP_REQUIRE(view.snap != nullptr,
                "MiningEngine: no pool installed (set_pool_segments first)");
    watermark = s == 0 ? view.epoch : std::min(watermark, view.epoch);
    views.push_back(std::move(view));
  }
  response.pool_epoch = watermark;

  if (spec.mergeable()) {
    // Exact merge: per-shard partials over coordinator-grade canonical
    // queries, folded by the job's merge contract (DESIGN.md §11).
    data::Dataset queries;
    if (spec.trainable()) {
      std::size_t limit = 0;
      const auto it = resolved.find("eval-records");
      if (it != resolved.end()) limit = static_cast<std::size_t>(it->second);
      queries = gather_canonical(views, limit);
      SAP_REQUIRE(queries.size() > 0, "MiningEngine: empty pool across shards");
    }
    std::vector<std::vector<double>> partials;
    partials.reserve(views.size());
    for (const auto& view : views) {
      if (view.snap->rows.size() == 0) continue;  // empty shards contribute nothing
      partials.push_back(spec.partial(view.snap->rows, view.snap->keys, queries, resolved));
    }
    SAP_REQUIRE(!partials.empty(), "MiningEngine: empty pool across shards");
    response.values = spec.merge_partials(partials, queries, resolved);
    return response;
  }

  // No exact merge declared: gather the canonical pool and execute flat
  // (MergeFallback::kGather — the router may choose kRoute instead and
  // never reach a multi-shard engine run).
  auto pool = gather_canonical(views, 0);
  SAP_REQUIRE(pool.size() > 0, "MiningEngine: empty pool across shards");
  if (spec.trainable()) {
    Stopwatch fit_sw;
    auto model = spec.make_model(resolved);
    model->fit(pool);
    response.fit_millis = fit_sw.millis();
    response.values = spec.serve(*model, pool, resolved);
  } else {
    response.values = spec.run(pool, resolved);
  }
  return response;
}

MiningResponse MiningEngine::run(const MiningRequest& request) {
  Stopwatch sw;
  MiningResponse response;
  if (request.job.empty()) {  // the no-op request
    response.millis = sw.millis();
    return response;
  }
  const JobSpec& spec = registry_.find(request.job);
  const JobParams resolved = spec.resolve_params(request.params);

  if (opts_.shards == 1) {
    const auto view = slots_.front()->view();
    SAP_REQUIRE(view.snap != nullptr, "MiningEngine: no pool installed (set_pool first)");
    response.pool_epoch = view.epoch;
    if (spec.trainable()) {
      Stopwatch fit_sw;
      const auto model = slots_.front()->model_for(spec, resolved, view,
                                                   response.model_cached,
                                                   response.model_incremental);
      response.fit_millis = fit_sw.millis();
      response.values = spec.serve(*model, view.snap->rows, resolved);
    } else {
      response.values = spec.run(view.snap->rows, resolved);
    }
  } else {
    response = run_sharded(spec, resolved);
  }
  response.millis = sw.millis();
  return response;
}

std::vector<MiningResponse> MiningEngine::run_batch(
    const std::vector<MiningRequest>& requests) {
  // Validate every request up front (name AND params — resolve_params is
  // cheap and pure): a malformed batch must fail before any request
  // executes, and before any model is fitted.
  for (const auto& request : requests)
    if (!request.job.empty())
      (void)registry_.find(request.job).resolve_params(request.params);

  std::vector<MiningResponse> responses(requests.size());
  pool_threads_.run_indexed(requests.size(),
                            [&](std::size_t i) { responses[i] = run(requests[i]); });
  return responses;
}

std::vector<double> MiningEngine::run_adhoc(const MinerJob& job) {
  if (!job) return {};
  if (opts_.shards == 1) {
    const auto view = slots_.front()->view();
    SAP_REQUIRE(view.snap != nullptr, "MiningEngine: no pool installed (set_pool first)");
    return job(view.snap->rows);
  }
  std::vector<PoolShard::View> views;
  views.reserve(slots_.size());
  for (const auto& slot : slots_) {
    auto view = slot->view();
    SAP_REQUIRE(view.snap != nullptr,
                "MiningEngine: no pool installed (set_pool_segments first)");
    views.push_back(std::move(view));
  }
  return job(gather_canonical(views, 0));
}

MiningResponse MiningEngine::run_partial(std::size_t global_shard,
                                         const MiningRequest& request,
                                         const data::Dataset& queries) {
  Stopwatch sw;
  const JobSpec& spec = registry_.find(request.job);
  const JobParams resolved = spec.resolve_params(request.params);
  SAP_REQUIRE(spec.mergeable(),
              "MiningEngine::run_partial: job '" + spec.name +
                  "' declares no exact-merge contract");
  const auto view = slot_for(global_shard).view();
  SAP_REQUIRE(view.snap != nullptr,
              "MiningEngine::run_partial: shard not installed");
  MiningResponse response;
  response.pool_epoch = view.epoch;
  response.values = spec.partial(view.snap->rows, view.snap->keys, queries, resolved);
  response.millis = sw.millis();
  return response;
}

ShardSlice MiningEngine::shard_slice(std::size_t global_shard,
                                     std::size_t max_records) const {
  const auto view = slot_for(global_shard).view();
  SAP_REQUIRE(view.snap != nullptr,
              "MiningEngine::shard_slice: shard not installed");
  const auto& keys = view.snap->keys;
  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return keys[a] < keys[b];
  });
  // A shard contributes at most max_records rows to any global
  // max_records-prefix, so per-shard truncation loses nothing.
  if (max_records != 0 && order.size() > max_records) order.resize(max_records);
  ShardSlice slice;
  slice.epoch = view.epoch;
  slice.rows = view.snap->rows.subset(order);
  slice.keys.reserve(order.size());
  for (const auto i : order) slice.keys.push_back(keys[i]);
  return slice;
}

MiningCacheStats MiningEngine::cache_stats() const {
  MiningCacheStats stats;
  for (const auto& slot : slots_) {
    const auto s = slot->stats();
    stats.fits += s.fits;
    stats.incremental += s.incremental;
    stats.hits += s.hits;
    stats.entries += s.entries;
  }
  return stats;
}

}  // namespace sap::proto
