#include "protocol/mining_engine.hpp"

#include "common/error.hpp"
#include "common/stopwatch.hpp"

namespace sap::proto {

MiningEngine::MiningEngine(MiningEngineOptions opts, JobRegistry registry)
    : opts_(opts), registry_(std::move(registry)), pool_threads_(opts.threads) {}

void MiningEngine::set_pool(data::Dataset pool) {
  MutexLock ingest(ingest_mutex_);
  auto snapshot = std::make_shared<const data::Dataset>(std::move(pool));
  {
    MutexLock lk(pool_mutex_);
    pool_ = std::move(snapshot);
    ++pool_epoch_;
    // New generation: only the new epoch's size is known lineage, so a model
    // fitted on any replaced pool can never seed an incremental refit.
    epoch_rows_.clear();
    epoch_rows_[pool_epoch_] = pool_->size();
  }
  // Dropping the cache releases dead models' memory; correctness never
  // depends on it (a stale entry fails the lineage check and is refitted).
  MutexLock lk(cache_mutex_);
  cache_.clear();
}

std::uint64_t MiningEngine::append_records(const data::Dataset& batch) {
  SAP_REQUIRE(batch.size() > 0, "MiningEngine::append_records: empty batch");
  MutexLock ingest(ingest_mutex_);
  PoolView view = pool_view();
  SAP_REQUIRE(view.data != nullptr,
              "MiningEngine::append_records: no pool installed (set_pool first)");
  SAP_REQUIRE(batch.dims() == view.data->dims(),
              "MiningEngine::append_records: dimension mismatch");
  // Build the grown pool outside pool_mutex_ (appends are serialized by
  // ingest_mutex_, so `view` cannot go stale) — serving only blocks for the
  // pointer swap, not for the O(N) copy.
  auto grown = std::make_shared<data::Dataset>(*view.data);
  grown->append(batch);
  MutexLock lk(pool_mutex_);
  pool_ = std::move(grown);
  ++pool_epoch_;
  epoch_rows_[pool_epoch_] = pool_->size();
  // Bound the lineage history on long-running streams: a cache entry more
  // than kEpochHistory appends behind just loses its incremental seed and
  // refits in full (rows_at_epoch fails), so pruning never affects
  // correctness.
  constexpr std::size_t kEpochHistory = 64;
  while (epoch_rows_.size() > kEpochHistory) epoch_rows_.erase(epoch_rows_.begin());
  return pool_epoch_;
}

bool MiningEngine::has_pool() const {
  MutexLock lk(pool_mutex_);
  return pool_ != nullptr;
}

const data::Dataset& MiningEngine::pool() const {
  MutexLock lk(pool_mutex_);
  SAP_REQUIRE(pool_ != nullptr, "MiningEngine: no pool installed (set_pool first)");
  return *pool_;
}

MiningEngine::PoolView MiningEngine::pool_view() const {
  MutexLock lk(pool_mutex_);
  return {pool_, pool_epoch_};
}

std::uint64_t MiningEngine::pool_epoch() const {
  MutexLock lk(pool_mutex_);
  return pool_epoch_;
}

bool MiningEngine::rows_at_epoch(std::uint64_t epoch, std::size_t& rows) const {
  MutexLock lk(pool_mutex_);
  const auto it = epoch_rows_.find(epoch);
  if (it == epoch_rows_.end()) return false;
  rows = it->second;
  return true;
}

std::shared_ptr<const ml::Classifier> MiningEngine::model_for(const JobSpec& spec,
                                                              const JobParams& resolved,
                                                              const PoolView& view,
                                                              bool& cached,
                                                              bool& incremental) {
  cached = false;
  incremental = false;
  if (!opts_.cache_models) {
    auto model = spec.make_model(resolved);
    model->fit(*view.data);
    fits_.fetch_add(1, std::memory_order_relaxed);
    return model;
  }

  std::string key = spec.name;
  key += '\0';
  key += spec.model_key_params(resolved);  // serve-only params share a model

  std::promise<std::shared_ptr<const ml::Classifier>> promise;
  ModelFuture future;
  ModelFuture base;
  std::uint64_t base_epoch = 0;
  bool fitter = false;
  bool have_base = false;
  {
    MutexLock lk(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end() && it->second.epoch == view.epoch) {
      // Current-epoch entry: a completed one is a genuine cache hit; an
      // in-flight one means a peer worker is fitting this exact key right
      // now and we share its result — counted as a hit too.
      future = it->second.future;
      cached = true;
    } else if (it != cache_.end() && it->second.epoch > view.epoch) {
      // The slot already answers a NEWER pool (this request started before
      // an append landed). Bounded staleness: serve this request's own
      // epoch with a one-off fit, and never regress the cache.
      fitter = false;
    } else {
      if (it != cache_.end()) {
        base = it->second.future;  // older epoch's model: incremental seed
        base_epoch = it->second.epoch;
        have_base = true;
      }
      future = ModelFuture(promise.get_future());
      cache_[key] = {view.epoch, future};
      fitter = true;
    }
  }

  if (!cached && !fitter) {  // the stale-request one-off path
    auto model = spec.make_model(resolved);
    model->fit(*view.data);
    fits_.fetch_add(1, std::memory_order_relaxed);
    return model;
  }

  if (fitter) {
    try {
      std::shared_ptr<const ml::Classifier> model;
      std::size_t base_rows = 0;
      if (have_base && rows_at_epoch(base_epoch, base_rows)) {
        std::shared_ptr<const ml::Classifier> seed;
        try {
          seed = base.get();
        } catch (...) {
          seed = nullptr;  // the base fit failed; fall through to a full fit
        }
        if (seed && seed->supports_partial_fit() && base_rows < view.data->size()) {
          model = seed->partial_fit(view.data->slice(base_rows, view.data->size()));
          incremental = true;
          incremental_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!model) {
        auto fresh = spec.make_model(resolved);
        fresh->fit(*view.data);
        fits_.fetch_add(1, std::memory_order_relaxed);
        model = std::move(fresh);
      }
      promise.set_value(std::move(model));
    } catch (...) {
      // Waiting peers see the exception; drop the poisoned entry (only if it
      // is still ours) so a later request retries instead of replaying a
      // stale error forever.
      promise.set_exception(std::current_exception());
      MutexLock lk(cache_mutex_);
      const auto it = cache_.find(key);
      if (it != cache_.end() && it->second.epoch == view.epoch) cache_.erase(it);
    }
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return future.get();  // rethrows a fit failure
}

MiningResponse MiningEngine::run(const MiningRequest& request) {
  Stopwatch sw;
  MiningResponse response;
  if (request.job.empty()) {  // the no-op request
    response.millis = sw.millis();
    return response;
  }
  const JobSpec& spec = registry_.find(request.job);
  const PoolView view = pool_view();
  SAP_REQUIRE(view.data != nullptr, "MiningEngine: no pool installed (set_pool first)");
  response.pool_epoch = view.epoch;
  const JobParams resolved = spec.resolve_params(request.params);

  if (spec.trainable()) {
    Stopwatch fit_sw;
    const auto model =
        model_for(spec, resolved, view, response.model_cached, response.model_incremental);
    response.fit_millis = fit_sw.millis();
    response.values = spec.serve(*model, *view.data, resolved);
  } else {
    response.values = spec.run(*view.data, resolved);
  }
  response.millis = sw.millis();
  return response;
}

std::vector<MiningResponse> MiningEngine::run_batch(
    const std::vector<MiningRequest>& requests) {
  // Validate every request up front (name AND params — resolve_params is
  // cheap and pure): a malformed batch must fail before any request
  // executes, and before any model is fitted.
  for (const auto& request : requests)
    if (!request.job.empty())
      (void)registry_.find(request.job).resolve_params(request.params);

  std::vector<MiningResponse> responses(requests.size());
  pool_threads_.run_indexed(requests.size(),
                            [&](std::size_t i) { responses[i] = run(requests[i]); });
  return responses;
}

std::vector<double> MiningEngine::run_adhoc(const MinerJob& job) {
  if (!job) return {};
  const PoolView view = pool_view();
  SAP_REQUIRE(view.data != nullptr, "MiningEngine: no pool installed (set_pool first)");
  return job(*view.data);
}

MiningCacheStats MiningEngine::cache_stats() const {
  MiningCacheStats stats;
  stats.fits = fits_.load(std::memory_order_relaxed);
  stats.incremental = incremental_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  MutexLock lk(cache_mutex_);
  stats.entries = cache_.size();
  return stats;
}

}  // namespace sap::proto
