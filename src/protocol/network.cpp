#include "protocol/network.hpp"

#include "common/error.hpp"

namespace sap::proto {

SimulatedNetwork::SimulatedNetwork(std::uint64_t session_secret)
    : session_secret_(session_secret) {}

PartyId SimulatedNetwork::add_party() {
  inboxes_.emplace_back();
  return static_cast<PartyId>(inboxes_.size() - 1);
}

std::uint64_t SimulatedNetwork::link_key(PartyId from, PartyId to) const {
  return detail::derive_link_key(session_secret_, from, to);
}

void SimulatedNetwork::set_drop_filter(DropFilter filter) {
  drop_filter_ = std::move(filter);
}

void SimulatedNetwork::send(PartyId from, PartyId to, PayloadKind kind,
                            std::span<const double> payload) {
  SAP_REQUIRE(from < party_count() && to < party_count(),
              "SimulatedNetwork::send: unknown party");
  SAP_REQUIRE(from != to, "SimulatedNetwork::send: self-send is not a protocol step");
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.kind = kind;
  msg.envelope = EncryptedEnvelope(payload, link_key(from, to));
  msg.wire_bytes = msg.envelope.size_doubles() * sizeof(double);
  total_bytes_ += msg.wire_bytes;
  const bool dropped = drop_filter_ && drop_filter_(from, to, kind);
  trace_.push_back(std::move(msg));
  if (dropped) {
    ++dropped_;
  } else {
    inboxes_[to].push_back(trace_.size() - 1);
  }
}

bool SimulatedNetwork::has_mail(PartyId party) const {
  SAP_REQUIRE(party < party_count(), "SimulatedNetwork::has_mail: unknown party");
  return !inboxes_[party].empty();
}

Transport::Delivery SimulatedNetwork::receive(PartyId party) {
  SAP_REQUIRE(party < party_count(), "SimulatedNetwork::receive: unknown party");
  SAP_REQUIRE(!inboxes_[party].empty(), "SimulatedNetwork::receive: empty inbox");
  const std::size_t idx = inboxes_[party].front();
  inboxes_[party].pop_front();
  const Message& msg = trace_[idx];
  return {msg.from, msg.kind, msg.envelope.open(link_key(msg.from, msg.to))};
}

}  // namespace sap::proto
