#include "protocol/pool_shard.hpp"

#include "common/error.hpp"

namespace sap::proto {

void PoolShard::install(data::Dataset rows, std::vector<PoolKey> keys) {
  SAP_REQUIRE(rows.size() == keys.size(),
              "PoolShard::install: rows/keys size mismatch");
  MutexLock ingest(ingest_mutex_);
  next_seq_.clear();
  for (const auto& key : keys) {
    auto& next = next_seq_[key.nonce];
    if (key.seq >= next) next = key.seq + 1;
  }
  auto snapshot = std::make_shared<ShardSnapshot>();
  snapshot->rows = std::move(rows);
  snapshot->keys = std::move(keys);
  {
    MutexLock lk(pool_mutex_);
    snap_ = std::move(snapshot);
    ++epoch_;
    // New generation: only the new epoch's size is known lineage, so a
    // model fitted on any replaced shard can never seed an incremental
    // refit.
    epoch_rows_.clear();
    epoch_rows_[epoch_] = snap_->rows.size();
  }
  // Dropping the cache releases dead models' memory; correctness never
  // depends on it (a stale entry fails the lineage check and is refitted).
  MutexLock lk(cache_mutex_);
  cache_.clear();
}

void PoolShard::install_at(data::Dataset rows, std::vector<PoolKey> keys,
                           std::uint64_t epoch) {
  SAP_REQUIRE(rows.size() == keys.size(),
              "PoolShard::install_at: rows/keys size mismatch");
  SAP_REQUIRE(epoch >= 1, "PoolShard::install_at: epoch must be >= 1");
  MutexLock ingest(ingest_mutex_);
  next_seq_.clear();
  for (const auto& key : keys) {
    auto& next = next_seq_[key.nonce];
    if (key.seq >= next) next = key.seq + 1;
  }
  auto snapshot = std::make_shared<ShardSnapshot>();
  snapshot->rows = std::move(rows);
  snapshot->keys = std::move(keys);
  {
    MutexLock lk(pool_mutex_);
    SAP_REQUIRE(epoch >= epoch_,
                "PoolShard::install_at: adopted epoch " + std::to_string(epoch) +
                    " would regress local epoch " + std::to_string(epoch_));
    snap_ = std::move(snapshot);
    epoch_ = epoch;
    epoch_rows_.clear();
    epoch_rows_[epoch_] = snap_->rows.size();
  }
  MutexLock lk(cache_mutex_);
  cache_.clear();
}

std::uint64_t PoolShard::append(std::uint64_t nonce, const data::Dataset& batch) {
  SAP_REQUIRE(batch.size() > 0, "PoolShard::append: empty batch");
  MutexLock ingest(ingest_mutex_);
  View current = view();
  SAP_REQUIRE(current.snap != nullptr,
              "PoolShard::append: shard not installed (install first)");
  SAP_REQUIRE(current.snap->rows.size() == 0 ||
                  batch.dims() == current.snap->rows.dims(),
              "PoolShard::append: dimension mismatch");
  // Build the grown snapshot outside pool_mutex_ (appends are serialized by
  // ingest_mutex_, so `current` cannot go stale) — serving only blocks for
  // the pointer swap, not for the O(N) copy.
  auto grown = std::make_shared<ShardSnapshot>();
  if (current.snap->rows.size() == 0) {
    grown->rows = batch;  // an empty shard adopts the batch's dimensionality
  } else {
    grown->rows = current.snap->rows;
    grown->rows.append(batch);
  }
  grown->keys = current.snap->keys;
  auto& next = next_seq_[nonce];
  for (std::size_t i = 0; i < batch.size(); ++i) grown->keys.push_back({nonce, next++});
  MutexLock lk(pool_mutex_);
  snap_ = std::move(grown);
  ++epoch_;
  epoch_rows_[epoch_] = snap_->rows.size();
  // Bound the lineage history on long-running streams: a cache entry more
  // than kEpochHistory appends behind just loses its incremental seed and
  // refits in full (rows_at_epoch fails), so pruning never affects
  // correctness.
  constexpr std::size_t kEpochHistory = 64;
  while (epoch_rows_.size() > kEpochHistory) epoch_rows_.erase(epoch_rows_.begin());
  return epoch_;
}

bool PoolShard::installed() const {
  MutexLock lk(pool_mutex_);
  return snap_ != nullptr;
}

PoolShard::View PoolShard::view() const {
  MutexLock lk(pool_mutex_);
  return {snap_, epoch_};
}

std::uint64_t PoolShard::epoch() const {
  MutexLock lk(pool_mutex_);
  return epoch_;
}

bool PoolShard::rows_at_epoch(std::uint64_t epoch, std::size_t& rows) const {
  MutexLock lk(pool_mutex_);
  const auto it = epoch_rows_.find(epoch);
  if (it == epoch_rows_.end()) return false;
  rows = it->second;
  return true;
}

std::shared_ptr<const ml::Classifier> PoolShard::model_for(const JobSpec& spec,
                                                           const JobParams& resolved,
                                                           const View& view,
                                                           bool& cached,
                                                           bool& incremental) {
  cached = false;
  incremental = false;
  const data::Dataset& rows = view.snap->rows;
  if (!cache_models_) {
    auto model = spec.make_model(resolved);
    model->fit(rows);
    fits_.fetch_add(1, std::memory_order_relaxed);
    return model;
  }

  std::string key = spec.name;
  key += '\0';
  key += spec.model_key_params(resolved);  // serve-only params share a model

  std::promise<std::shared_ptr<const ml::Classifier>> promise;
  ModelFuture future;
  ModelFuture base;
  std::uint64_t base_epoch = 0;
  bool fitter = false;
  bool have_base = false;
  {
    MutexLock lk(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end() && it->second.epoch == view.epoch) {
      // Current-epoch entry: a completed one is a genuine cache hit; an
      // in-flight one means a peer worker is fitting this exact key right
      // now and we share its result — counted as a hit too.
      future = it->second.future;
      cached = true;
    } else if (it != cache_.end() && it->second.epoch > view.epoch) {
      // The slot already answers a NEWER shard epoch (this request started
      // before an append landed). Bounded staleness: serve this request's
      // own epoch with a one-off fit, and never regress the cache.
      fitter = false;
    } else {
      if (it != cache_.end()) {
        base = it->second.future;  // older epoch's model: incremental seed
        base_epoch = it->second.epoch;
        have_base = true;
      }
      future = ModelFuture(promise.get_future());
      cache_[key] = {view.epoch, future};
      fitter = true;
    }
  }

  if (!cached && !fitter) {  // the stale-request one-off path
    auto model = spec.make_model(resolved);
    model->fit(rows);
    fits_.fetch_add(1, std::memory_order_relaxed);
    return model;
  }

  if (fitter) {
    try {
      std::shared_ptr<const ml::Classifier> model;
      std::size_t base_rows = 0;
      if (have_base && rows_at_epoch(base_epoch, base_rows)) {
        std::shared_ptr<const ml::Classifier> seed;
        try {
          seed = base.get();
        } catch (...) {
          seed = nullptr;  // the base fit failed; fall through to a full fit
        }
        if (seed && seed->supports_partial_fit() && base_rows < rows.size()) {
          model = seed->partial_fit(rows.slice(base_rows, rows.size()));
          incremental = true;
          incremental_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!model) {
        auto fresh = spec.make_model(resolved);
        fresh->fit(rows);
        fits_.fetch_add(1, std::memory_order_relaxed);
        model = std::move(fresh);
      }
      promise.set_value(std::move(model));
    } catch (...) {
      // Waiting peers see the exception; drop the poisoned entry (only if it
      // is still ours) so a later request retries instead of replaying a
      // stale error forever.
      promise.set_exception(std::current_exception());
      MutexLock lk(cache_mutex_);
      const auto it = cache_.find(key);
      if (it != cache_.end() && it->second.epoch == view.epoch) cache_.erase(it);
    }
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return future.get();  // rethrows a fit failure
}

PoolShard::Stats PoolShard::stats() const {
  Stats stats;
  stats.fits = fits_.load(std::memory_order_relaxed);
  stats.incremental = incremental_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  MutexLock lk(cache_mutex_);
  stats.entries = cache_.size();
  return stats;
}

}  // namespace sap::proto
