#include "protocol/risk.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sap::proto {
namespace {

void validate(const RiskInputs& in) {
  SAP_REQUIRE(in.bound > 0.0, "risk: bound b_i must be positive");
  SAP_REQUIRE(in.rho >= 0.0 && in.rho <= in.bound + 1e-12,
              "risk: rho must lie in [0, b_i]");
  SAP_REQUIRE(in.satisfaction >= 0.0, "risk: satisfaction must be non-negative");
  SAP_REQUIRE(in.identifiability >= 0.0 && in.identifiability <= 1.0,
              "risk: identifiability must be a probability");
}

}  // namespace

double risk_of_privacy_breach(const RiskInputs& in) {
  validate(in);
  const double inner = 1.0 - in.satisfaction * in.rho / in.bound;
  return in.identifiability * std::max(0.0, inner);
}

double sap_risk(const RiskInputs& in, std::size_t parties) {
  validate(in);
  SAP_REQUIRE(parties >= 2, "sap_risk: need at least two parties");
  const double local_term = (in.bound - in.rho) / in.bound;
  const double collab_term = std::max(0.0, (in.bound - in.satisfaction * in.rho) / in.bound) /
                             static_cast<double>(parties - 1);
  return std::max(local_term, collab_term);
}

std::size_t min_parties(double s0, double optimality_rate, MinPartiesCriterion criterion,
                        std::size_t max_parties) {
  SAP_REQUIRE(s0 > 0.0 && s0 < 1.0, "min_parties: s0 must be in (0,1)");
  SAP_REQUIRE(optimality_rate > 0.0 && optimality_rate <= 1.0,
              "min_parties: optimality rate must be in (0,1]");
  SAP_REQUIRE(max_parties >= 2, "min_parties: cap must allow at least two parties");

  const double numerator = 1.0 - s0 * optimality_rate;  // (b - s0 rho)/b with rho = r b
  const double tolerance = (criterion == MinPartiesCriterion::kResidualTolerance)
                               ? 1.0 - s0
                               : 1.0 - optimality_rate;
  if (tolerance <= 0.0) return max_parties + 1;  // r == 1 under kNoExtraRisk
  // Need (k - 1) >= numerator / tolerance.
  const double k_real = 1.0 + numerator / tolerance;
  const auto k = static_cast<std::size_t>(std::ceil(k_real - 1e-12));
  const std::size_t clamped = std::max<std::size_t>(k, 2);
  return (clamped > max_parties) ? max_parties + 1 : clamped;
}

}  // namespace sap::proto
