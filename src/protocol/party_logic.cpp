#include "protocol/party_logic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "optimize/optimizer.hpp"
#include "privacy/attacks.hpp"
#include "protocol/risk.hpp"

namespace sap::proto::logic {
namespace {

/// Joint column subsample of an (original, transformed) pair so the privacy
/// metric compares the same records on both sides.
void joint_subsample(const linalg::Matrix& x, const linalg::Matrix& y,
                     std::size_t max_records, rng::Engine& eng, linalg::Matrix& x_out,
                     linalg::Matrix& y_out) {
  if (x.cols() <= max_records) {
    x_out = x;
    y_out = y;
    return;
  }
  const auto idx = eng.sample_without_replacement(x.cols(), max_records);
  x_out = linalg::Matrix(x.rows(), max_records);
  y_out = linalg::Matrix(y.rows(), max_records);
  for (std::size_t j = 0; j < max_records; ++j) {
    const linalg::Vector xc = x.col(idx[j]);
    const linalg::Vector yc = y.col(idx[j]);
    x_out.set_col(j, xc);
    y_out.set_col(j, yc);
  }
}

}  // namespace

SessionSeeds derive_session_seeds(std::uint64_t seed, std::size_t k) {
  rng::Engine master(seed);
  SessionSeeds seeds;
  seeds.session_secret = master();
  seeds.provider_eng.reserve(k);
  for (std::size_t i = 0; i < k; ++i) seeds.provider_eng.push_back(master.spawn());
  seeds.coordinator_eng = master.spawn();
  return seeds;
}

LocalPerturbation optimize_local(const linalg::Matrix& x_dxn, std::size_t dims,
                                 const SapOptions& opts, rng::Engine& eng) {
  LocalPerturbation out;
  auto opt_opts = opts.optimizer;
  opt_opts.noise_sigma = opts.noise_sigma;  // common noise component
  if (opts.optimize_local) {
    // One scoring pool shared by the main run and every bound run (results
    // are thread-count-invariant, so opt_opts.threads is purely a speed
    // knob here — see optimizer.hpp's determinism contract).
    ThreadPool pool(opt_opts.threads);
    opt::OptimizationResult first = opt::optimize_perturbation(x_dxn, opt_opts, eng, pool);
    out.g = first.best;
    out.rho = first.best_rho;
    out.bound = first.best_rho;
    for (std::size_t r = 1; r < opts.bound_runs; ++r) {
      const auto extra = opt::optimize_perturbation(x_dxn, opt_opts, eng, pool);
      out.bound = std::max(out.bound, extra.best_rho);
    }
  } else {
    out.g = perturb::GeometricPerturbation::random(dims, opts.noise_sigma, eng);
    out.rho = opt::evaluate_perturbation(x_dxn, out.g, opt_opts.attacks,
                                         opt_opts.max_eval_records, eng);
    out.bound = out.rho;
    for (std::size_t r = 1; r < opts.bound_runs; ++r) {
      const auto probe = perturb::GeometricPerturbation::random(dims, opts.noise_sigma, eng);
      out.bound = std::max(out.bound, opt::evaluate_perturbation(x_dxn, probe, opt_opts.attacks,
                                                                 opt_opts.max_eval_records,
                                                                 eng));
    }
  }
  out.nonce = eng() >> 32;  // 32-bit nonce, exactly representable as double
  return out;
}

perturb::GeometricPerturbation make_target_space(std::size_t dims, rng::Engine& coord_eng) {
  return perturb::GeometricPerturbation::random(dims, /*noise_sigma=*/0.0, coord_eng);
}

ExchangePlan make_exchange_plan(std::size_t k, rng::Engine& coord_eng) {
  const auto tau = coord_eng.permutation(k);
  const std::size_t redirect = coord_eng.uniform_index(k - 1);
  ExchangePlan plan;
  plan.receiver_of_source.assign(k, 0);
  for (std::size_t pos = 0; pos < k; ++pos) {
    const std::size_t source = tau[pos];
    plan.receiver_of_source[source] = (pos == k - 1) ? redirect : pos;
  }
  plan.inbound.assign(k, 0);
  for (std::size_t source = 0; source < k; ++source) {
    if (plan.receiver_of_source[source] != source) ++plan.inbound[plan.receiver_of_source[source]];
  }
  return plan;
}

std::vector<double> tagged_wire(std::uint64_t nonce, std::span<const double> body) {
  std::vector<double> wire;
  wire.reserve(1 + body.size());
  wire.push_back(static_cast<double>(nonce));
  wire.insert(wire.end(), body.begin(), body.end());
  return wire;
}

void shuffle_entries(std::vector<std::vector<double>>& entries, rng::Engine& coord_eng) {
  for (std::size_t i = entries.size(); i > 1; --i)
    std::swap(entries[i - 1], entries[coord_eng.uniform_index(i)]);
}

UnifiedPool unify_pool(std::vector<MinerShard> received,
                       std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> adaptors,
                       std::size_t k) {
  SAP_REQUIRE(received.size() == k && adaptors.size() == k,
              "SapSession: miner did not receive k datasets and k adaptors");

  // Canonical pooling order: sort by nonce so the unified dataset is
  // bit-identical across transport backends (concurrent delivery reorders
  // arrivals). Nonces are per-run random values and carry no source
  // information the adaptor matching does not already use.
  std::sort(received.begin(), received.end(),
            [](const MinerShard& a, const MinerShard& b) { return a.nonce < b.nonce; });

  linalg::Matrix unified_features;  // d x N_total, built incrementally
  std::vector<int> unified_labels;
  UnifiedPool out;
  for (const auto& rec : received) {
    const auto it = std::find_if(adaptors.begin(), adaptors.end(),
                                 [&](const auto& a) { return a.first == rec.nonce; });
    SAP_REQUIRE(it != adaptors.end(), "SapSession: no adaptor for received dataset");
    linalg::Matrix in_target = it->second.apply(rec.data.features);
    unified_features = unified_features.empty()
                           ? std::move(in_target)
                           : linalg::Matrix::hcat(unified_features, in_target);
    unified_labels.insert(unified_labels.end(), rec.data.labels.begin(),
                          rec.data.labels.end());
    out.forwarder_of_nonce.emplace_back(rec.nonce, rec.forwarder);
  }
  out.pool = data::Dataset("sap-unified", unified_features.transpose(),
                           std::move(unified_labels));
  out.adaptors = std::move(adaptors);
  return out;
}

data::Dataset adapt_contribution(const DecodedContribution& contribution,
                                 const perturb::SpaceAdaptor& adaptor, std::size_t dims) {
  SAP_REQUIRE(contribution.data.features.rows() == dims,
              "SapSession: contribution dimension mismatch");
  const linalg::Matrix in_target = adaptor.apply(contribution.data.features);
  return data::Dataset("sap-unified", in_target.transpose(), contribution.data.labels);
}

PartyReport account_party(const linalg::Matrix& x, const linalg::Matrix& y,
                          const perturb::SpaceAdaptor& adaptor, PartyId id, double rho,
                          double bound, std::size_t k, const SapOptions& opts,
                          rng::Engine& eng) {
  const double pi = 1.0 / static_cast<double>(k - 1);
  PartyReport report;
  report.id = id;
  report.local_rho = rho;
  report.bound = std::max(bound, rho);
  report.identifiability = pi;

  if (opts.compute_satisfaction && rho > 0.0) {
    const privacy::AttackSuite suite(opts.optimizer.attacks);
    const linalg::Matrix y_in_target = adaptor.apply(y);
    linalg::Matrix x_s, y_s;
    joint_subsample(x, y_in_target, opts.optimizer.max_eval_records, eng, x_s, y_s);
    report.unified_rho = suite.evaluate(x_s, y_s, eng).rho;
    report.satisfaction = std::min(report.unified_rho / rho, report.bound / rho);
  } else {
    report.unified_rho = rho;
    report.satisfaction = 1.0;
  }

  RiskInputs in{.rho = std::min(report.local_rho, report.bound),
                .bound = report.bound,
                .satisfaction = report.satisfaction,
                .identifiability = pi};
  report.risk_breach = risk_of_privacy_breach(in);
  report.risk_sap = sap_risk(in, k);
  return report;
}

}  // namespace sap::proto::logic
