// Per-role protocol computations, shared verbatim by the in-process
// SapSession and the cross-process net:: drivers (MinerDaemon/PartyClient).
//
// A logical SAP run is a pure function of (provider shards, SapOptions) —
// the same math has to produce bit-identical results whether every party
// lives in one process (SapSession over an in-process Transport) or each
// party is its own OS process talking TCP (sap::net). These helpers are the
// single home of that math: each one reproduces exactly the draws and
// floating-point operations of the corresponding SapSession phase task, and
// SapSession itself calls them, so the two deployments cannot drift apart.
//
// RNG discipline: derive_session_seeds() reproduces the session's engine
// derivation (master -> session secret -> one engine per provider -> the
// coordinator engine) from the master seed alone, so any process that knows
// the seed and its party index can regenerate its own private stream without
// any in-band seed exchange.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "data/dataset.hpp"
#include "perturb/geometric.hpp"
#include "perturb/space_adaptor.hpp"
#include "protocol/message.hpp"
#include "protocol/session.hpp"
#include "rng/rng.hpp"

namespace sap::proto::logic {

/// The session-wide RNG material every process derives from the master seed.
struct SessionSeeds {
  std::uint64_t session_secret = 0;        ///< per-link key derivation input
  std::vector<rng::Engine> provider_eng;   ///< one private stream per provider
  rng::Engine coordinator_eng{0};          ///< target space, tau, shuffle
};
[[nodiscard]] SessionSeeds derive_session_seeds(std::uint64_t seed, std::size_t k);

/// Phase 1 (per provider): locally optimized perturbation, privacy bound,
/// and the provider's protocol nonce. Exactly the LocalOptimize task.
struct LocalPerturbation {
  perturb::GeometricPerturbation g;
  double rho = 0.0;
  double bound = 0.0;
  std::uint64_t nonce = 0;
};
[[nodiscard]] LocalPerturbation optimize_local(const linalg::Matrix& x_dxn, std::size_t dims,
                                               const SapOptions& opts, rng::Engine& eng);

/// Phase 2 (coordinator): the noise-free target space G_t.
[[nodiscard]] perturb::GeometricPerturbation make_target_space(std::size_t dims,
                                                               rng::Engine& coord_eng);

/// Phase 3 (coordinator): tau with the coordinator redirect, as provider
/// *indices* (party ids are dense by protocol construction).
struct ExchangePlan {
  std::vector<std::size_t> receiver_of_source;  ///< source index -> receiver index
  std::vector<std::uint32_t> inbound;           ///< receiver index -> peer datasets expected
};
[[nodiscard]] ExchangePlan make_exchange_plan(std::size_t k, rng::Engine& coord_eng);

/// [nonce, body...] — the tagging shared by perturbed-data and adaptor wires.
[[nodiscard]] std::vector<double> tagged_wire(std::uint64_t nonce,
                                              std::span<const double> body);

/// Phase 5 (coordinator): unbiased in-place shuffle of the adaptor sequence
/// so wire order carries no source information. Exactly the session's loop.
void shuffle_entries(std::vector<std::vector<double>>& entries, rng::Engine& coord_eng);

/// Phase 6 (miner): pool the forwarded shards in canonical nonce order
/// through their matching adaptors. Throws sap::Error unless exactly k
/// shards and k adaptors pair up.
struct MinerShard {
  std::uint64_t nonce = 0;
  PartyId forwarder = 0;  ///< audit only; the miner never maps it to a source
  DecodedDataset data;
};
struct UnifiedPool {
  data::Dataset pool;  ///< N x d rows, canonical nonce order
  std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> adaptors;
  std::vector<std::pair<std::uint64_t, PartyId>> forwarder_of_nonce;
};
[[nodiscard]] UnifiedPool unify_pool(
    std::vector<MinerShard> received,
    std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> adaptors, std::size_t k);

/// Adapt one post-exchange contribution into the target space; the caller
/// appends the result to the live pool. Throws on dimension mismatch.
[[nodiscard]] data::Dataset adapt_contribution(const DecodedContribution& contribution,
                                               const perturb::SpaceAdaptor& adaptor,
                                               std::size_t dims);

/// Final accounting (party-side knowledge only). Exactly the session's
/// per-party accounting task, including its conditional engine draws.
[[nodiscard]] PartyReport account_party(const linalg::Matrix& x, const linalg::Matrix& y,
                                        const perturb::SpaceAdaptor& adaptor, PartyId id,
                                        double rho, double bound, std::size_t k,
                                        const SapOptions& opts, rng::Engine& eng);

}  // namespace sap::proto::logic
