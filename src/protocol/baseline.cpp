#include "protocol/baseline.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "privacy/attacks.hpp"

namespace sap::proto {

DirectSubmissionProtocol::DirectSubmissionProtocol(std::vector<data::Dataset> provider_data,
                                                   SapOptions opts)
    : provider_data_(std::move(provider_data)), opts_(opts) {
  SAP_REQUIRE(provider_data_.size() >= 2, "DirectSubmissionProtocol: need >= 2 providers");
  const std::size_t d = provider_data_.front().dims();
  for (const auto& ds : provider_data_) {
    SAP_REQUIRE(ds.dims() == d, "DirectSubmissionProtocol: dimensionality mismatch");
    SAP_REQUIRE(ds.size() >= 8, "DirectSubmissionProtocol: provider dataset too small");
  }
}

const Transport& DirectSubmissionProtocol::transport() const {
  SAP_REQUIRE(net_ != nullptr, "DirectSubmissionProtocol::transport: call run() first");
  return *net_;
}

SapResult DirectSubmissionProtocol::run(const MinerJob& job) {
  const std::size_t k = provider_data_.size();
  const std::size_t d = provider_data_.front().dims();
  rng::Engine master(opts_.seed);

  net_ = make_transport(opts_.transport, master());
  std::vector<PartyId> provider_id(k);
  for (std::size_t i = 0; i < k; ++i) provider_id[i] = net_->add_party();
  const PartyId miner = net_->add_party();

  struct ProviderState {
    linalg::Matrix x;
    std::vector<int> labels;
    perturb::GeometricPerturbation g;
    double rho = 0.0;
    double bound = 0.0;
    linalg::Matrix y;
    perturb::SpaceAdaptor adaptor;
    rng::Engine eng{0};
  };
  std::vector<ProviderState> ps(k);
  for (std::size_t i = 0; i < k; ++i) {
    ps[i].x = provider_data_[i].features_T();
    ps[i].labels = provider_data_[i].labels();
    ps[i].eng = master.spawn();
  }

  // Local optimization — identical to SAP phase 1; one task per provider so
  // a concurrent transport parallelizes the dominant cost.
  std::vector<std::function<void()>> optimize_tasks(k);
  for (std::size_t i = 0; i < k; ++i) {
    optimize_tasks[i] = [this, &ps, d, i] {
      auto& p = ps[i];
      auto opt_opts = opts_.optimizer;
      opt_opts.noise_sigma = opts_.noise_sigma;
      if (opts_.optimize_local) {
        // One scoring pool for the main run and every bound run, as in
        // party_logic::optimize_local (results are thread-count-invariant).
        ThreadPool pool(opt_opts.threads);
        const auto first = opt::optimize_perturbation(p.x, opt_opts, p.eng, pool);
        p.g = first.best;
        p.rho = first.best_rho;
        p.bound = first.best_rho;
        for (std::size_t r = 1; r < opts_.bound_runs; ++r)
          p.bound = std::max(
              p.bound, opt::optimize_perturbation(p.x, opt_opts, p.eng, pool).best_rho);
      } else {
        p.g = perturb::GeometricPerturbation::random(d, opts_.noise_sigma, p.eng);
        p.rho = opt::evaluate_perturbation(p.x, p.g, opt_opts.attacks,
                                           opt_opts.max_eval_records, p.eng);
        p.bound = p.rho;
      }
    };
  }
  net_->run_parties(std::move(optimize_tasks));

  // Provider 0 selects the target space and shares it with the other
  // providers (the miner must still not learn G_t).
  rng::Engine picker = master.spawn();
  const auto g_t = perturb::GeometricPerturbation::random(d, 0.0, picker);
  const auto target_wire = encode_target_space(g_t.rotation(), g_t.translation());
  for (std::size_t i = 1; i < k; ++i)
    net_->send(provider_id[0], provider_id[i], PayloadKind::kTargetSpace, target_wire);
  for (std::size_t i = 1; i < k; ++i) {
    const auto msg = net_->receive(provider_id[i]);
    SAP_REQUIRE(msg.kind == PayloadKind::kTargetSpace,
                "DirectSubmissionProtocol: expected target space");
    (void)decode_target_space(msg.payload);  // providers validate receipt
  }

  // Every provider perturbs and submits (data, adaptor) straight to the
  // miner — one hop, full source attribution.
  for (std::size_t i = 0; i < k; ++i) {
    auto& p = ps[i];
    p.y = p.g.apply(p.x, p.eng);
    p.adaptor = perturb::SpaceAdaptor::between(p.g, g_t);
    net_->send(provider_id[i], miner, PayloadKind::kForwardedData,
               encode_dataset(p.y, p.labels));
    net_->send(provider_id[i], miner, PayloadKind::kAdaptorSequence, p.adaptor.serialize());
  }

  // Miner unifies in arrival order (source identity is plain to see).
  linalg::Matrix unified_features;
  std::vector<int> unified_labels;
  std::size_t received = 0;
  std::optional<DecodedDataset> pending;
  while (net_->has_mail(miner)) {
    const auto msg = net_->receive(miner);
    if (msg.kind == PayloadKind::kForwardedData) {
      pending = decode_dataset(msg.payload);
    } else {
      SAP_REQUIRE(msg.kind == PayloadKind::kAdaptorSequence,
                  "DirectSubmissionProtocol: unexpected message at miner");
      SAP_REQUIRE(pending.has_value(), "DirectSubmissionProtocol: adaptor before data");
      const auto adaptor = perturb::SpaceAdaptor::deserialize(msg.payload);
      linalg::Matrix in_target = adaptor.apply(pending->features);
      unified_features = unified_features.empty()
                             ? std::move(in_target)
                             : linalg::Matrix::hcat(unified_features, in_target);
      unified_labels.insert(unified_labels.end(), pending->labels.begin(),
                            pending->labels.end());
      pending.reset();
      ++received;
    }
  }
  SAP_REQUIRE(received == k, "DirectSubmissionProtocol: miner missed submissions");

  SapResult result;
  result.unified = data::Dataset("direct-unified", unified_features.transpose(),
                                 std::move(unified_labels));
  result.target_space = g_t;

  if (job) {
    const auto report = job(result.unified);
    for (std::size_t i = 0; i < k; ++i)
      net_->send(miner, provider_id[i], PayloadKind::kModelReport, report);
    for (std::size_t i = 0; i < k; ++i)
      while (net_->has_mail(provider_id[i])) (void)net_->receive(provider_id[i]);
  }

  // Accounting: identical formulas, but the miner attributes every shard —
  // identifiability 1 (and eq. (2)'s anonymity dilution does not apply, so
  // risk_sap is reported with the k=2 worst case of a known source:
  // max{local, full collaboration term}).
  const privacy::AttackSuite suite(opts_.optimizer.attacks);
  for (std::size_t i = 0; i < k; ++i) {
    auto& p = ps[i];
    PartyReport report;
    report.id = provider_id[i];
    report.local_rho = p.rho;
    report.bound = std::max(p.bound, p.rho);
    report.identifiability = 1.0;

    if (opts_.compute_satisfaction && p.rho > 0.0) {
      const linalg::Matrix y_t = p.adaptor.apply(p.y);
      linalg::Matrix x_s = p.x, y_s = y_t;
      if (p.x.cols() > opts_.optimizer.max_eval_records) {
        const auto idx = p.eng.sample_without_replacement(p.x.cols(),
                                                          opts_.optimizer.max_eval_records);
        x_s = linalg::Matrix(p.x.rows(), idx.size());
        y_s = linalg::Matrix(p.x.rows(), idx.size());
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const linalg::Vector xc = p.x.col(idx[j]);
          const linalg::Vector yc = y_t.col(idx[j]);
          x_s.set_col(j, xc);
          y_s.set_col(j, yc);
        }
      }
      report.unified_rho = suite.evaluate(x_s, y_s, p.eng).rho;
      report.satisfaction = std::min(report.unified_rho / p.rho, report.bound / p.rho);
    } else {
      report.unified_rho = p.rho;
      report.satisfaction = 1.0;
    }

    RiskInputs in{.rho = std::min(report.local_rho, report.bound),
                  .bound = report.bound,
                  .satisfaction = report.satisfaction,
                  .identifiability = 1.0};
    report.risk_breach = risk_of_privacy_breach(in);
    report.risk_sap = sap_risk(in, 2);  // no anonymity set: worst-case k-1 = 1
    result.parties.push_back(report);
  }

  result.messages = net_->trace().size();
  result.total_bytes = net_->total_bytes();
  return result;
}

}  // namespace sap::proto
