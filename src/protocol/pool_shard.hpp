// PoolShard — one shard's slice of the live unified pool, with its own
// epoch line and model cache.
//
// PR 8 splits the MiningEngine's monolithic pool into N shards partitioned
// by contribution-nonce hash (protocol/shard.hpp). Everything the engine
// used to keep once — the epoch-scoped snapshot, the append lineage that
// feeds incremental refits, the (job, params)-keyed model cache — now lives
// per shard, so shards ingest and fit independently: an append to shard 2
// never invalidates shard 0's cache or blocks its serving.
//
// A shard's rows stay in ARRIVAL order (the order contributions landed),
// exactly like the old single pool — per-shard fits and incremental
// partial_fit extensions are therefore bit-identical to what a 1-shard
// engine produces from the same arrival sequence. The parallel `keys`
// vector carries each row's canonical (nonce, seq) coordinate, which is
// what exact merges and canonical gathers order by (DESIGN.md §11).
//
// Thread-safety mirrors the old engine: view()/model_for() may run
// concurrently with install()/append() (requests serve the snapshot they
// captured); mutators are serialized per shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "data/dataset.hpp"
#include "protocol/jobs.hpp"

namespace sap::proto {

/// Immutable snapshot of one shard's pool: rows in arrival order plus each
/// row's canonical (nonce, seq) coordinate, versioned TOGETHER so a reader
/// never pairs rows from one epoch with keys from another.
struct ShardSnapshot {
  data::Dataset rows;
  std::vector<PoolKey> keys;  ///< parallel to rows
};

/// One nonce's slice of a unified pool, in that nonce's record order — the
/// unit set_pool_segments() routes to shards.
struct PoolSegment {
  std::uint64_t nonce = 0;
  data::Dataset rows;
};

class PoolShard {
 public:
  /// cache_models mirrors MiningEngineOptions::cache_models.
  explicit PoolShard(bool cache_models) : cache_models_(cache_models) {}

  PoolShard(const PoolShard&) = delete;
  PoolShard& operator=(const PoolShard&) = delete;

  /// Atomic (snapshot, epoch) pair — the view one request serves against.
  struct View {
    std::shared_ptr<const ShardSnapshot> snap;
    std::uint64_t epoch = 0;
  };

  /// Install (or replace) this shard's rows. `keys` must parallel `rows`.
  /// Starts a new epoch generation: bumps the epoch, drops every cached
  /// model, severs incremental lineage, and re-derives per-nonce sequence
  /// counters from `keys` so later appends continue the canonical order.
  void install(data::Dataset rows, std::vector<PoolKey> keys);

  /// install() that ADOPTS a donor's epoch instead of bumping the local
  /// line — the resync path (DESIGN.md §13). A rejoining miner installs the
  /// live owner's arrival-order snapshot with the owner's current epoch so
  /// the router's per-shard epoch floors keep holding across the restart.
  /// Everything else matches install(): new generation, caches dropped,
  /// lineage severed, seq counters re-derived. `epoch` must not regress the
  /// local epoch line.
  void install_at(data::Dataset rows, std::vector<PoolKey> keys, std::uint64_t epoch);

  /// Streaming ingest: append `batch` under `nonce`, assigning consecutive
  /// canonical seq numbers. Bumps the epoch WITHOUT dropping cached models
  /// (incremental refits pick up exactly the appended rows). Returns the
  /// new epoch.
  std::uint64_t append(std::uint64_t nonce, const data::Dataset& batch);

  /// False until the first install().
  [[nodiscard]] bool installed() const;

  [[nodiscard]] View view() const;
  [[nodiscard]] std::uint64_t epoch() const;

  /// Fitted model for (spec, resolved params) serving `view` — from this
  /// shard's cache when current, extended incrementally from an earlier
  /// epoch's model when possible, freshly trained otherwise. Identical
  /// logic to the pre-shard engine's model_for, scoped to one shard.
  std::shared_ptr<const ml::Classifier> model_for(const JobSpec& spec,
                                                  const JobParams& resolved,
                                                  const View& view, bool& cached,
                                                  bool& incremental);

  /// Cumulative cache accounting for this shard.
  struct Stats {
    std::size_t fits = 0;
    std::size_t incremental = 0;
    std::size_t hits = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const ml::Classifier>>;

  /// One cached fitted model: the epoch it answers plus the (possibly still
  /// in-flight) fit. Keys are (job '\0' model-params).
  struct CacheEntry {
    std::uint64_t epoch = 0;
    ModelFuture future;
  };

  /// Row count this shard had at `epoch`, if `epoch` belongs to the current
  /// install generation (false otherwise — lineage severed).
  [[nodiscard]] bool rows_at_epoch(std::uint64_t epoch, std::size_t& rows) const;

  const bool cache_models_;

  mutable Mutex pool_mutex_;  ///< guards snap_, epoch_, epoch_rows_
  /// Serializes install/append; held around (never inside) pool_mutex_ so
  /// mutators can build the grown snapshot outside the lock serving
  /// contends on.
  Mutex ingest_mutex_ SAP_ACQUIRED_BEFORE(pool_mutex_);
  std::shared_ptr<const ShardSnapshot> snap_ SAP_GUARDED_BY(pool_mutex_);
  std::uint64_t epoch_ SAP_GUARDED_BY(pool_mutex_) = 0;
  /// Shard size per epoch of the current generation (cleared by install) —
  /// what lets an incremental refit slice out exactly the appended rows.
  std::map<std::uint64_t, std::size_t> epoch_rows_ SAP_GUARDED_BY(pool_mutex_);
  /// Next canonical seq per nonce (appends continue where install left off).
  std::map<std::uint64_t, std::uint32_t> next_seq_ SAP_GUARDED_BY(ingest_mutex_);

  mutable Mutex cache_mutex_;
  /// key: job '\0' model-params
  std::map<std::string, CacheEntry> cache_ SAP_GUARDED_BY(cache_mutex_);
  std::atomic<std::size_t> fits_{0};
  std::atomic<std::size_t> incremental_{0};
  std::atomic<std::size_t> hits_{0};
};

}  // namespace sap::proto
