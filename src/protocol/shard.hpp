// Shard partitioning for the pooled mining data.
//
// The unified pool is partitioned by CONTRIBUTION NONCE: every record enters
// the protocol tagged with the nonce of the party that contributed it (the
// exchange's forwarded shards and the post-exchange Contribute batches both
// carry one), so the nonce is the natural unit of data placement — all of a
// nonce's records always land on the same shard, which is what makes the
// exact cross-shard merges possible (DESIGN.md §11).
//
// Two hash-route layouts map a nonce onto one of `total` shards. Both mix
// the nonce through a SplitMix64 finalizer first (protocol nonces are
// uniform random draws, but a layout must not rely on that):
//
//   * kHashMod   — mixed hash modulo total;
//   * kHashRange — mixed hash scaled into [0, total) (fixed-point multiply),
//                  i.e. contiguous hash ranges per shard.
//
// The merge contract is layout-INVARIANT: merged reports are bit-identical
// whichever layout placed the nonces, because merging runs in canonical
// nonce order regardless of which shard held which segment (tested across
// both layouts in tests/cluster_test.cpp).
//
// PoolKey is the canonical per-record coordinate: (nonce, seq) where seq
// numbers the nonce's records in contribution order. Sorting any set of
// records by PoolKey reproduces the canonical pool order that unify_pool
// established (segments ascending by nonce, records in arrival order within
// a segment) — the order every exact merge and every gather fallback uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <tuple>

namespace sap::proto {

/// Canonical coordinate of one pooled record: the contribution nonce that
/// brought it in, plus its position within that nonce's stream.
struct PoolKey {
  std::uint64_t nonce = 0;
  std::uint32_t seq = 0;

  friend bool operator<(const PoolKey& a, const PoolKey& b) {
    return std::tie(a.nonce, a.seq) < std::tie(b.nonce, b.seq);
  }
  friend bool operator==(const PoolKey& a, const PoolKey& b) {
    return a.nonce == b.nonce && a.seq == b.seq;
  }
};

/// How nonces map onto shards (see file comment).
enum class ShardLayout : std::uint8_t {
  kHashMod = 0,
  kHashRange = 1,
};

/// SplitMix64 finalizer — the nonce mix both layouts share.
[[nodiscard]] std::uint64_t mix_nonce(std::uint64_t nonce) noexcept;

/// Owning shard of `nonce` under `layout`; total must be >= 1.
[[nodiscard]] std::size_t shard_of_nonce(std::uint64_t nonce, std::size_t total,
                                         ShardLayout layout) noexcept;

}  // namespace sap::proto
