// Direct-submission baseline: collaborative mining WITHOUT space adaptation.
//
// Each provider locally perturbs its shard and sends it (plus its space
// adaptor) straight to the miner. Utility is identical to SAP — the miner
// unifies with the same adaptors — but the miner knows exactly whose data is
// whose: source identifiability pi_i = 1. This is the comparator implicit in
// the paper's eq. (1)/(2): SAP's whole point is dividing that risk by (k-1)
// at the cost of one extra data hop. The baseline_direct_vs_sap bench
// quantifies both sides of that trade.
#pragma once

#include "protocol/session.hpp"

namespace sap::proto {

/// Same options as SAP (optimizer budget, noise level, seed, transport
/// backend); the exchange and coordinator machinery are simply not used.
class DirectSubmissionProtocol {
 public:
  /// Requires >= 2 providers with equal dimensionality (same contract as
  /// SapSession, minus the need for an anonymizing peer group).
  DirectSubmissionProtocol(std::vector<data::Dataset> provider_data, SapOptions opts);

  /// Execute; `job` may be empty. PartyReports carry identifiability 1.
  SapResult run(const MinerJob& job = {});

  /// The transport of the last run (throws before the first run()).
  [[nodiscard]] const Transport& transport() const;

 private:
  std::vector<data::Dataset> provider_data_;
  SapOptions opts_;
  std::unique_ptr<Transport> net_;
};

}  // namespace sap::proto
