// Multiparty privacy-risk model (paper §2 eq. (1), §3 eq. (2), Figure 4).
#pragma once

#include <cstddef>

namespace sap::proto {

/// Inputs of the per-party risk formulas. All quantities follow the paper:
///   rho   — locally optimized minimum privacy guarantee of DP_i
///   bound — b_i, the (empirical) upper bound of rho for DP_i's data
///   satisfaction — s_i = rho^G_i / rho_i, quality of the unified space
///   identifiability — pi_i = Pr(DP_i | X_i), source-identification risk
struct RiskInputs {
  double rho = 0.0;
  double bound = 1.0;
  double satisfaction = 1.0;
  double identifiability = 1.0;
};

/// Eq. (1): R^G_i = pi_i * (b_i - s_i rho_i) / b_i.
/// Throws sap::Error for non-positive bound or out-of-range pi/s.
double risk_of_privacy_breach(const RiskInputs& in);

/// Eq. (2): R^SAP_i = max{ (b_i - rho_i)/b_i,
///                         (b_i - s_i rho_i)/b_i * 1/(k-1) },
/// the overall risk under SAP with k parties (k >= 2).
double sap_risk(const RiskInputs& in, std::size_t parties);

/// Acceptance criteria for the Figure 4 "lower bound of the number of
/// parties" sweep. The brief announcement does not pin the threshold; both
/// published-plausible readings are implemented (DESIGN.md §3 note).
enum class MinPartiesCriterion {
  /// Collaboration-induced risk within residual tolerance:
  /// (1 - s0 r) / (k - 1) <= 1 - s0.
  kResidualTolerance,
  /// SAP adds no risk over local optimization:
  /// (1 - s0 r) / (k - 1) <= 1 - r.
  kNoExtraRisk,
};

/// Smallest k (>= 2) satisfying the criterion for desired satisfaction
/// s0 in (0, 1) and optimality rate r in (0, 1]; capped at `max_parties`
/// (returns max_parties + 1 when unsatisfiable below the cap — callers
/// can render that as "> cap").
std::size_t min_parties(double s0, double optimality_rate, MinPartiesCriterion criterion,
                        std::size_t max_parties = 1000);

}  // namespace sap::proto
