#include "protocol/sap.hpp"

#include "common/error.hpp"

namespace sap::proto {

SapProtocol::SapProtocol(std::vector<data::Dataset> provider_data, SapOptions opts)
    : provider_data_(std::move(provider_data)), opts_(opts) {
  opts_.transport = TransportKind::kSimulated;
  // Fail fast on contract violations without paying for a session (which
  // would copy every shard); run() builds the session lazily.
  SapSession::validate(provider_data_, opts_);
}

void SapProtocol::inject_faults(SimulatedNetwork::DropFilter filter) {
  fault_filter_ = std::move(filter);
}

const SimulatedNetwork& SapProtocol::network() const {
  SAP_REQUIRE(session_ != nullptr, "SapProtocol::network: call run() first");
  const auto* net = dynamic_cast<const SimulatedNetwork*>(&session_->transport());
  SAP_REQUIRE(net != nullptr, "SapProtocol::network: transport is not a SimulatedNetwork");
  return *net;
}

SapResult SapProtocol::run(const MinerJob& job) {
  // Fresh session per run: historical SapProtocol::run() semantics (a new
  // network and trace each call).
  session_ = std::make_unique<SapSession>(provider_data_, opts_);
  if (fault_filter_) session_->inject_faults(fault_filter_);
  return session_->run(job);
}

}  // namespace sap::proto
