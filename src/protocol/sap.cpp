#include "protocol/sap.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace sap::proto {
namespace {

/// Joint column subsample of an (original, transformed) pair so the privacy
/// metric compares the same records on both sides.
void joint_subsample(const linalg::Matrix& x, const linalg::Matrix& y,
                     std::size_t max_records, rng::Engine& eng, linalg::Matrix& x_out,
                     linalg::Matrix& y_out) {
  if (x.cols() <= max_records) {
    x_out = x;
    y_out = y;
    return;
  }
  const auto idx = eng.sample_without_replacement(x.cols(), max_records);
  x_out = linalg::Matrix(x.rows(), max_records);
  y_out = linalg::Matrix(y.rows(), max_records);
  for (std::size_t j = 0; j < max_records; ++j) {
    const linalg::Vector xc = x.col(idx[j]);
    const linalg::Vector yc = y.col(idx[j]);
    x_out.set_col(j, xc);
    y_out.set_col(j, yc);
  }
}

}  // namespace

SapOptions SapOptions::fast() {
  SapOptions o;
  o.optimizer.candidates = 4;
  o.optimizer.refine_steps = 2;
  o.optimizer.max_eval_records = 80;
  o.optimizer.attacks.ica = false;  // naive + known-input: cheap and sufficient for tests
  o.optimizer.attacks.known_inputs = 3;
  o.bound_runs = 1;
  return o;
}

SapProtocol::SapProtocol(std::vector<data::Dataset> provider_data, SapOptions opts)
    : provider_data_(std::move(provider_data)), opts_(opts) {
  SAP_REQUIRE(provider_data_.size() >= 3,
              "SapProtocol: need at least 3 providers (2 non-coordinator peers)");
  const std::size_t d = provider_data_.front().dims();
  for (const auto& ds : provider_data_) {
    SAP_REQUIRE(ds.dims() == d, "SapProtocol: providers disagree on dimensionality");
    SAP_REQUIRE(ds.size() >= 8, "SapProtocol: provider dataset too small (need >= 8 records)");
  }
  SAP_REQUIRE(opts_.bound_runs >= 1, "SapProtocol: bound_runs must be >= 1");
  SAP_REQUIRE(opts_.noise_sigma >= 0.0, "SapProtocol: noise_sigma must be non-negative");
}

const SimulatedNetwork& SapProtocol::network() const {
  SAP_REQUIRE(net_.has_value(), "SapProtocol::network: call run() first");
  return *net_;
}

void SapProtocol::inject_faults(SimulatedNetwork::DropFilter filter) {
  fault_filter_ = std::move(filter);
}

SapResult SapProtocol::run(const MinerJob& job) {
  const std::size_t k = provider_data_.size();
  const std::size_t d = provider_data_.front().dims();
  rng::Engine master(opts_.seed);

  net_.emplace(master());
  if (fault_filter_) net_->set_drop_filter(fault_filter_);
  std::vector<PartyId> provider_id(k);
  for (std::size_t i = 0; i < k; ++i) provider_id[i] = net_->add_party();
  const PartyId coordinator = provider_id[k - 1];
  const PartyId miner = net_->add_party();

  // ---------------- provider-local state (each entry is private to that
  // provider; the simulation keeps them in one vector but nothing below
  // reads across parties except through the network).
  struct ProviderState {
    linalg::Matrix x;  // d x N original (normalized) data
    std::vector<int> labels;
    perturb::GeometricPerturbation g;
    double rho = 0.0;
    double bound = 0.0;
    linalg::Matrix y;  // perturbed data actually shipped
    perturb::GeometricPerturbation target;  // G_t as received
    perturb::SpaceAdaptor adaptor;
    std::uint64_t nonce = 0;
    PartyId send_to = 0;
    rng::Engine eng{0};
  };
  std::vector<ProviderState> ps(k);
  for (std::size_t i = 0; i < k; ++i) {
    ps[i].x = provider_data_[i].features_T();
    ps[i].labels = provider_data_[i].labels();
    ps[i].eng = master.spawn();
  }

  // ---------------- step 1: local perturbation optimization
  for (std::size_t i = 0; i < k; ++i) {
    auto& p = ps[i];
    auto opt_opts = opts_.optimizer;
    opt_opts.noise_sigma = opts_.noise_sigma;  // common noise component
    if (opts_.optimize_local) {
      opt::OptimizationResult first = opt::optimize_perturbation(p.x, opt_opts, p.eng);
      p.g = first.best;
      p.rho = first.best_rho;
      p.bound = first.best_rho;
      for (std::size_t r = 1; r < opts_.bound_runs; ++r) {
        const auto extra = opt::optimize_perturbation(p.x, opt_opts, p.eng);
        p.bound = std::max(p.bound, extra.best_rho);
      }
    } else {
      p.g = perturb::GeometricPerturbation::random(d, opts_.noise_sigma, p.eng);
      p.rho = opt::evaluate_perturbation(p.x, p.g, opt_opts.attacks,
                                         opt_opts.max_eval_records, p.eng);
      p.bound = p.rho;
      for (std::size_t r = 1; r < opts_.bound_runs; ++r) {
        const auto probe = perturb::GeometricPerturbation::random(d, opts_.noise_sigma, p.eng);
        p.bound = std::max(p.bound, opt::evaluate_perturbation(p.x, probe, opt_opts.attacks,
                                                               opt_opts.max_eval_records,
                                                               p.eng));
      }
    }
    p.nonce = ps[i].eng() >> 32;  // 32-bit nonce, exactly representable as double
  }

  // ---------------- step 2: coordinator selects the noise-free target space
  rng::Engine coord_eng = master.spawn();
  const auto g_t = perturb::GeometricPerturbation::random(d, /*noise_sigma=*/0.0, coord_eng);
  const auto target_wire = encode_target_space(g_t.rotation(), g_t.translation());
  for (std::size_t i = 0; i + 1 < k; ++i)
    net_->send(coordinator, provider_id[i], PayloadKind::kTargetSpace, target_wire);
  ps[k - 1].target = g_t;  // the coordinator knows its own choice

  // ---------------- step 3: permutation with coordinator redirect
  const auto tau = coord_eng.permutation(k);
  const std::size_t redirect = coord_eng.uniform_index(k - 1);
  std::vector<PartyId> receiver_of_source(k);
  for (std::size_t pos = 0; pos < k; ++pos) {
    const std::size_t source = tau[pos];
    const std::size_t receiver = (pos == k - 1) ? redirect : pos;
    receiver_of_source[source] = provider_id[receiver];
  }
  for (std::size_t i = 0; i + 1 < k; ++i)
    net_->send(coordinator, provider_id[i], PayloadKind::kRoutingNotice,
               encode_routing(receiver_of_source[i]));
  ps[k - 1].send_to = receiver_of_source[k - 1];

  // providers drain target-space + routing notices; a provider that did not
  // receive BOTH must abort the round (a dropped setup message would
  // otherwise silently misroute its data).
  for (std::size_t i = 0; i + 1 < k; ++i) {
    bool got_target = false;
    bool got_routing = false;
    while (net_->has_mail(provider_id[i])) {
      const auto msg = net_->receive(provider_id[i]);
      switch (msg.kind) {
        case PayloadKind::kTargetSpace: {
          const auto ts = decode_target_space(msg.payload);
          ps[i].target = perturb::GeometricPerturbation(ts.r, ts.t, 0.0);
          got_target = true;
          break;
        }
        case PayloadKind::kRoutingNotice:
          ps[i].send_to = decode_routing(msg.payload);
          got_routing = true;
          break;
        default:
          SAP_FAIL("SapProtocol: unexpected message kind in setup phase");
      }
    }
    SAP_REQUIRE(got_target && got_routing,
                "SapProtocol: provider missed setup messages (lossy network?) — aborting");
  }

  // ---------------- step 4: perturb and exchange
  // tau may map a provider to itself; in that case the dataset simply stays
  // put (no wire message) and the provider forwards its own perturbed data —
  // the miner cannot distinguish this case, so pi_i = 1/(k-1) still holds.
  std::vector<std::vector<std::vector<double>>> self_held(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto& p = ps[i];
    p.y = p.g.apply(p.x, p.eng);
    std::vector<double> wire;
    wire.push_back(static_cast<double>(p.nonce));
    const auto body = encode_dataset(p.y, p.labels);
    wire.insert(wire.end(), body.begin(), body.end());
    if (p.send_to == provider_id[i]) {
      self_held[i].push_back(std::move(wire));
    } else {
      net_->send(provider_id[i], p.send_to, PayloadKind::kPerturbedData, wire);
    }
  }
  // peers forward everything they received (or held) to the miner
  for (std::size_t i = 0; i + 1 < k; ++i) {
    for (const auto& wire : self_held[i])
      net_->send(provider_id[i], miner, PayloadKind::kForwardedData, wire);
    while (net_->has_mail(provider_id[i])) {
      const auto msg = net_->receive(provider_id[i]);
      SAP_REQUIRE(msg.kind == PayloadKind::kPerturbedData,
                  "SapProtocol: unexpected message kind in exchange phase");
      net_->send(provider_id[i], miner, PayloadKind::kForwardedData, msg.payload);
    }
  }
  SAP_REQUIRE(self_held[k - 1].empty(),
              "SapProtocol invariant violated: coordinator assigned as receiver");
  SAP_REQUIRE(!net_->has_mail(coordinator),
              "SapProtocol invariant violated: coordinator received a dataset");

  // ---------------- step 5: adaptors to the coordinator, aligned to miner
  for (std::size_t i = 0; i < k; ++i) {
    auto& p = ps[i];
    p.adaptor = perturb::SpaceAdaptor::between(p.g, p.target);
    if (provider_id[i] != coordinator) {
      std::vector<double> wire;
      wire.push_back(static_cast<double>(p.nonce));
      const auto body = p.adaptor.serialize();
      wire.insert(wire.end(), body.begin(), body.end());
      net_->send(provider_id[i], coordinator, PayloadKind::kSpaceAdaptor, wire);
    }
  }
  // coordinator collects (nonce, adaptor) pairs — its own included — and
  // ships the sequence to the miner. It never learns more than it already
  // knows (it generated tau), and the miner learns nothing about sources.
  {
    std::vector<std::vector<double>> entries;
    while (net_->has_mail(coordinator)) {
      const auto msg = net_->receive(coordinator);
      SAP_REQUIRE(msg.kind == PayloadKind::kSpaceAdaptor,
                  "SapProtocol: coordinator expected only adaptors");
      entries.push_back(msg.payload);
    }
    std::vector<double> own;
    own.push_back(static_cast<double>(ps[k - 1].nonce));
    const auto body = ps[k - 1].adaptor.serialize();
    own.insert(own.end(), body.begin(), body.end());
    entries.push_back(std::move(own));
    // Shuffle so the wire order itself carries no information about
    // provider identity.
    for (std::size_t i = entries.size(); i > 1; --i)
      std::swap(entries[i - 1], entries[coord_eng.uniform_index(i)]);
    for (const auto& e : entries)
      net_->send(coordinator, miner, PayloadKind::kAdaptorSequence, e);
  }

  // ---------------- step 6: the miner unifies and mines
  struct MinerDataset {
    std::uint64_t nonce;
    PartyId forwarder;
    DecodedDataset data;
  };
  std::vector<MinerDataset> received;
  std::vector<std::pair<std::uint64_t, perturb::SpaceAdaptor>> adaptors;
  while (net_->has_mail(miner)) {
    const auto msg = net_->receive(miner);
    const std::span<const double> payload(msg.payload);
    SAP_REQUIRE(!payload.empty(), "SapProtocol: empty payload at miner");
    const auto nonce = static_cast<std::uint64_t>(payload[0]);
    if (msg.kind == PayloadKind::kForwardedData) {
      received.push_back({nonce, msg.from, decode_dataset(payload.subspan(1))});
    } else if (msg.kind == PayloadKind::kAdaptorSequence) {
      adaptors.emplace_back(nonce, perturb::SpaceAdaptor::deserialize(payload.subspan(1)));
    } else {
      SAP_FAIL("SapProtocol: unexpected message kind at miner");
    }
  }
  SAP_REQUIRE(received.size() == k && adaptors.size() == k,
              "SapProtocol: miner did not receive k datasets and k adaptors");

  linalg::Matrix unified_features;  // d x N_total, built incrementally
  std::vector<int> unified_labels;
  for (const auto& rec : received) {
    const auto it = std::find_if(adaptors.begin(), adaptors.end(),
                                 [&](const auto& a) { return a.first == rec.nonce; });
    SAP_REQUIRE(it != adaptors.end(), "SapProtocol: no adaptor for received dataset");
    linalg::Matrix in_target = it->second.apply(rec.data.features);
    unified_features = unified_features.empty()
                           ? std::move(in_target)
                           : linalg::Matrix::hcat(unified_features, in_target);
    unified_labels.insert(unified_labels.end(), rec.data.labels.begin(),
                          rec.data.labels.end());
  }

  SapResult result;
  result.unified = data::Dataset("sap-unified", unified_features.transpose(),
                                 std::move(unified_labels));
  result.target_space = g_t;

  if (job) {
    const std::vector<double> report = job(result.unified);
    for (std::size_t i = 0; i < k; ++i)
      net_->send(miner, provider_id[i], PayloadKind::kModelReport, report);
    for (std::size_t i = 0; i < k; ++i)
      while (net_->has_mail(provider_id[i])) (void)net_->receive(provider_id[i]);
  }

  // ---------------- accounting (party-side knowledge only: each provider
  // knows X_i, G_i, G_t and can score its own exposure).
  const double pi = 1.0 / static_cast<double>(k - 1);
  const privacy::AttackSuite suite(opts_.optimizer.attacks);
  for (std::size_t i = 0; i < k; ++i) {
    auto& p = ps[i];
    PartyReport report;
    report.id = provider_id[i];
    report.local_rho = p.rho;
    report.bound = std::max(p.bound, p.rho);
    report.identifiability = pi;

    if (opts_.compute_satisfaction && p.rho > 0.0) {
      const linalg::Matrix y_in_target = p.adaptor.apply(p.y);
      linalg::Matrix x_s, y_s;
      joint_subsample(p.x, y_in_target, opts_.optimizer.max_eval_records, p.eng, x_s, y_s);
      report.unified_rho = suite.evaluate(x_s, y_s, p.eng).rho;
      report.satisfaction = std::min(report.unified_rho / p.rho, report.bound / p.rho);
    } else {
      report.unified_rho = p.rho;
      report.satisfaction = 1.0;
    }

    RiskInputs in{.rho = std::min(report.local_rho, report.bound),
                  .bound = report.bound,
                  .satisfaction = report.satisfaction,
                  .identifiability = pi};
    report.risk_breach = risk_of_privacy_breach(in);
    report.risk_sap = sap_risk(in, k);
    result.parties.push_back(report);
  }

  result.messages = net_->trace().size();
  result.total_bytes = net_->total_bytes();
  result.audit_receiver_of.resize(k);
  result.audit_forwarder_of.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.audit_receiver_of[i] = receiver_of_source[i];
    const auto it = std::find_if(received.begin(), received.end(),
                                 [&](const auto& r) { return r.nonce == ps[i].nonce; });
    SAP_REQUIRE(it != received.end(), "SapProtocol: audit lost a dataset");
    result.audit_forwarder_of[i] = it->forwarder;
  }
  return result;
}

}  // namespace sap::proto
