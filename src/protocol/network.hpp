// In-process simulated network with per-link encryption and full metadata
// tracing — the synchronous Transport backend.
//
// Substitution note (DESIGN.md §2): the paper assumes encrypted channels
// over a real network; here delivery is synchronous and in-process, but the
// *information flow* is faithful — every payload is encrypted per link, each
// party can only open envelopes addressed to it, and the trace records
// (from, to, kind, bytes) so tests and benches can audit exactly what each
// role observed and what the protocol costs.
//
// Party tasks submitted through run_parties() execute sequentially in index
// order (the Transport base policy); for a concurrent backend over the same
// protocol code see ThreadedLocalTransport.
#pragma once

#include <deque>
#include <vector>

#include "protocol/message.hpp"
#include "protocol/transport.hpp"

namespace sap::proto {

class SimulatedNetwork final : public Transport {
 public:
  /// `session_secret` seeds per-link key derivation (models the out-of-band
  /// key exchange the paper assumes).
  explicit SimulatedNetwork(std::uint64_t session_secret);

  /// Register a party; returns its id (dense, starting at 0).
  PartyId add_party() override;

  /// Failure injection: drop (silently discard) messages matching the
  /// predicate. Dropped messages still appear in the trace (flagged) but are
  /// never delivered — models lossy links / crashed parties so tests can
  /// verify the protocol detects incomplete exchanges instead of mining a
  /// partial pool.
  void set_drop_filter(DropFilter filter) override;

  /// Number of messages dropped so far.
  [[nodiscard]] std::size_t dropped_count() const override { return dropped_; }

  [[nodiscard]] std::size_t party_count() const override { return inboxes_.size(); }

  /// Encrypt `payload` for the (from, to) link and enqueue it.
  void send(PartyId from, PartyId to, PayloadKind kind,
            std::span<const double> payload) override;

  /// True when `party` has pending messages.
  [[nodiscard]] bool has_mail(PartyId party) const override;

  /// Pop the oldest message addressed to `party` and decrypt it.
  /// Throws sap::Error when the inbox is empty.
  Delivery receive(PartyId party) override;

  /// Complete metadata trace (ciphertext retained, no plaintext).
  [[nodiscard]] const std::vector<Message>& trace() const override { return trace_; }

  /// Total ciphertext bytes sent so far.
  [[nodiscard]] std::size_t total_bytes() const override { return total_bytes_; }

 private:
  [[nodiscard]] std::uint64_t link_key(PartyId from, PartyId to) const;

  std::uint64_t session_secret_;
  std::vector<std::deque<std::size_t>> inboxes_;  // indices into trace_
  std::vector<Message> trace_;
  std::size_t total_bytes_ = 0;
  DropFilter drop_filter_;
  std::size_t dropped_ = 0;
};

}  // namespace sap::proto
