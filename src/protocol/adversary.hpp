// Source-linking adversary: does identifiability really drop to 1/(k-1)?
//
// The paper's pi_i = 1/(k-1) treats forwarded shards as exchangeable. A
// curious miner can do better when shards carry distributional fingerprints:
// class labels travel in the clear (they are what the miner mines), so if
// per-provider class profiles are known to the miner (e.g. hospitals publish
// case-mix statistics), it can match each received shard to the closest
// profile. This module implements that adversary and scores it against the
// ground truth, quantifying the residual linkability that uniform
// partitioning avoids and class-skewed partitioning leaks.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace sap::proto {

/// What the adversary observed for one forwarded shard.
struct ShardObservation {
  /// Class-label histogram of the shard, normalized (indexed by the pooled
  /// class list).
  std::vector<double> class_profile;
  std::size_t records = 0;
};

/// Per-provider public profile (same indexing as ShardObservation).
struct ProviderProfile {
  std::vector<double> class_profile;
  std::size_t records = 0;
};

struct LinkingResult {
  /// adversary's guess: for each shard (in observation order), the provider
  /// index it links to.
  std::vector<std::size_t> guesses;
  /// Fraction of shards linked to their true source.
  double accuracy = 0.0;
  /// The paper's baseline: 1/(k-1).
  double baseline = 0.0;
};

/// Build per-shard observations from a SAP run: one observation per
/// provider's dataset as the miner received it (labels are in the clear).
/// `provider_data` is the ground-truth shard list the experimenter used.
std::vector<ShardObservation> observe_shards(const std::vector<data::Dataset>& provider_data,
                                             const std::vector<int>& pooled_classes);

/// Public per-provider profiles (what the adversary is assumed to know).
std::vector<ProviderProfile> provider_profiles(const std::vector<data::Dataset>& provider_data,
                                               const std::vector<int>& pooled_classes);

/// Greedy nearest-profile matching by total-variation distance over class
/// profiles, each provider claimed at most once (the adversary knows shards
/// came from distinct sources). Scored against the identity mapping
/// (observation i is provider i's shard).
///
/// IMPORTANT experiment design: profiles must come from a *reference
/// sample* (e.g. historical data), never from the observed shards
/// themselves — matching a shard against its own exact histogram is
/// trivially perfect and measures nothing. See ablation_source_linking for
/// the split-shard setup.
LinkingResult link_sources(const std::vector<ShardObservation>& shards,
                           const std::vector<ProviderProfile>& profiles);

}  // namespace sap::proto
