// MiningEngine — concurrent, cached, parameterized job serving over the
// unified pool.
//
// PR 1 made Mine a "serving state" in name only: every mine() call ran
// serially on the caller's thread and re-trained its model from scratch.
// The engine turns the Mine state into an actual service:
//
//   * requests — MiningRequest{job, params} — execute against an immutable
//     pooled dataset, singly (run), as a batch fanned out over an internal
//     ThreadPool (run_batch), or concurrently from any number of caller
//     threads (run is thread-safe);
//   * trainable jobs fit once per (job, model-relevant canonical params,
//     pool-epoch) — serve-only params like eval-records never force a refit
//     — and every later request with the same key serves from the shared
//     immutable fitted model's const predict() path: train once, query many;
//   * the pool carries an epoch counter: set_pool() bumps it and drops every
//     cached model, so a model fitted on an old pool can never serve a new
//     one (cache keys embed the epoch).
//
// Determinism invariant (tested under TSAN like the threaded transport): a
// batch's reports (MiningResponse::values) are bit-identical to the same
// requests run serially, regardless of thread count — only the diagnostics
// (model_cached, millis) may reflect scheduling. This holds because (a) response slots are
// addressed by request index, (b) every job report is a pure function of
// (pool, resolved params) — see the Classifier fit-determinism contract —
// and (c) concurrent fits of the same key are collapsed onto one
// shared_future, and even a duplicated fit would produce an identical model.
//
// Thread-safety: run()/run_batch() may be called concurrently with each
// other. set_pool() and registry mutation must not overlap with in-flight
// requests (the engine serves a frozen registry + pool).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "protocol/jobs.hpp"

namespace sap::proto {

struct MiningEngineOptions {
  /// Worker threads for run_batch(); 0 = execute batches inline on the
  /// calling thread (the serial reference execution).
  std::size_t threads = 0;
  /// Cache fitted models per (job, params, pool-epoch). Disabling forces
  /// per-request retraining (the throughput bench's comparison baseline).
  bool cache_models = true;
};

/// One serving request: a registered job name plus per-request parameters
/// (merged over the spec's declared defaults). An empty job name is the
/// no-op request: it resolves to an empty report without touching the pool.
struct MiningRequest {
  std::string job;
  JobParams params;
};

/// One serving response. Values are the job's report; `model_cached` is true
/// when a trainable job served from an already-fitted model.
struct MiningResponse {
  std::vector<double> values;
  bool model_cached = false;
  double millis = 0.0;  ///< wall-clock service time of this request
};

/// Cache accounting (cumulative across the engine's lifetime).
struct MiningCacheStats {
  std::size_t fits = 0;     ///< models actually trained
  std::size_t hits = 0;     ///< requests served from a cached model
  std::size_t entries = 0;  ///< live cache entries (current epoch only)
};

class MiningEngine {
 public:
  explicit MiningEngine(MiningEngineOptions opts = {},
                        JobRegistry registry = JobRegistry::builtins());

  MiningEngine(const MiningEngine&) = delete;
  MiningEngine& operator=(const MiningEngine&) = delete;

  // ---- pool lifecycle --------------------------------------------------

  /// Install (or replace) the pooled dataset. Bumps the pool epoch and
  /// invalidates every cached model. Must not overlap in-flight requests.
  void set_pool(data::Dataset pool);

  [[nodiscard]] bool has_pool() const noexcept { return pool_epoch_ != 0; }
  [[nodiscard]] const data::Dataset& pool() const;
  /// 0 until the first set_pool(); then increments with every set_pool().
  [[nodiscard]] std::uint64_t pool_epoch() const noexcept { return pool_epoch_; }

  // ---- job registry ----------------------------------------------------

  /// Mutable registry access (register jobs before serving; registration
  /// must not race with in-flight requests).
  [[nodiscard]] JobRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const JobRegistry& registry() const noexcept { return registry_; }

  // ---- serving ---------------------------------------------------------

  /// Serve one request. Thread-safe against concurrent run() calls. Throws
  /// sap::Error for an unknown job name, invalid params, or a missing pool.
  MiningResponse run(const MiningRequest& request);

  /// Serve a batch across the worker pool (inline when threads == 0).
  /// Response i always answers request i. Every job name is validated
  /// before anything executes, so a malformed batch fails without side
  /// effects; a request that throws mid-batch poisons the batch after all
  /// in-flight requests drain (first error wins).
  std::vector<MiningResponse> run_batch(const std::vector<MiningRequest>& requests);

  /// Serve a legacy closure job (SapSession::mine() compat). Not cacheable —
  /// the closure is opaque. A null job yields an empty report.
  std::vector<double> run_adhoc(const MinerJob& job);

  // ---- observability ---------------------------------------------------

  [[nodiscard]] MiningCacheStats cache_stats() const;
  [[nodiscard]] std::size_t threads() const noexcept { return pool_threads_.thread_count(); }

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const ml::Classifier>>;

  /// Fitted model for (spec, resolved params) at the current epoch — from
  /// cache when enabled, freshly trained otherwise. Sets `cached` to true
  /// when the model came from an already-completed cache entry.
  std::shared_ptr<const ml::Classifier> model_for(const JobSpec& spec,
                                                  const JobParams& resolved, bool& cached);

  MiningEngineOptions opts_;
  JobRegistry registry_;
  ThreadPool pool_threads_;

  data::Dataset pool_;
  std::uint64_t pool_epoch_ = 0;

  mutable std::mutex cache_mutex_;
  std::map<std::string, ModelFuture> cache_;  ///< key: job '\0' model-params '\0' epoch
  std::atomic<std::size_t> fits_{0};
  std::atomic<std::size_t> hits_{0};
};

}  // namespace sap::proto
