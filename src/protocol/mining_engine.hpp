// MiningEngine — concurrent, cached, parameterized job serving over a LIVE
// unified pool, optionally split into nonce-hashed shards.
//
// PR 2 turned the Mine state into a service over a frozen snapshot; PR 4
// made the pool live (epoch-scoped appends, incremental refits); PR 8
// shards it. The engine is now a *ShardSet*: a view over N PoolShards
// (protocol/pool_shard.hpp), each holding one hash-partition of the pool
// with its own epoch line and model cache. With shards == 1 (the default)
// the engine delegates everything to its single slot and behaves — bit for
// bit, including epochs, cache hits, and incremental refits — like the
// pre-shard engine.
//
//   * requests — MiningRequest{job, params} — execute against immutable
//     shard *snapshots*, singly (run), as a batch fanned out over an
//     internal ThreadPool (run_batch), or concurrently from any number of
//     caller threads (run is thread-safe);
//   * contributions are routed by shard_of_nonce(nonce): an append to one
//     shard bumps only that shard's epoch and never invalidates another
//     shard's cache. pool_epoch() over a sharded engine is the cluster-
//     style WATERMARK — the minimum epoch across owned shards;
//   * a multi-shard run() executes a job's exact-merge contract when it
//     declares one (JobSpec::partial + merge_partials — report
//     bit-identical to the canonical concatenated pool, whatever the shard
//     count or layout), and otherwise gathers the canonical pool and
//     executes flat (MergeFallback::kGather semantics);
//   * a partially-owned engine (a cluster miner serving a subset of the
//     shard space) additionally serves run_partial() — one shard's partial
//     blob for a coordinator-side merge — and shard_slice() — one shard's
//     canonically-ordered rows for coordinator-side gathers
//     (net/cluster.hpp).
//
// Determinism invariant (tested under TSAN like the threaded transport): a
// batch's reports (MiningResponse::values) are bit-identical to the same
// requests run serially, regardless of thread count — only the diagnostics
// (model_cached, model_incremental, millis) may reflect scheduling. This
// holds because (a) response slots are addressed by request index, (b) every
// job report is a pure function of (shard snapshots, resolved params) — and
// the incremental-refit contract (DESIGN.md §6) makes a partial_fit-extended
// model equivalent to the full refit it replaces — and (c) concurrent fits
// of the same key are collapsed onto one shared_future. Pool mutations are
// epoch-ordered per shard: shard content at epoch e is a pure function of
// the install/append call sequence for that shard, independent of thread
// count or transport backend.
//
// Thread-safety: run()/run_batch() may be called concurrently with each
// other AND with append_records()/set_pool() (requests serve the snapshots
// they started with). Registry mutation must still not overlap serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "protocol/jobs.hpp"
#include "protocol/pool_shard.hpp"

namespace sap::proto {

struct MiningEngineOptions {
  /// Worker threads for run_batch(); 0 = execute batches inline on the
  /// calling thread (the serial reference execution).
  std::size_t threads = 0;
  /// Cache fitted models per (job, params, shard) with epoch-aware
  /// incremental refit. Disabling forces per-request retraining (the
  /// throughput bench's comparison baseline).
  bool cache_models = true;
  /// Total shards the pool is partitioned into (shard_of_nonce space).
  /// 1 = the classic unsharded engine.
  std::size_t shards = 1;
  /// Hash-route layout; both layouts satisfy the exact-merge contract.
  ShardLayout layout = ShardLayout::kHashMod;
  /// Global shard ids this engine owns (a cluster miner owns a subset).
  /// Empty = own all `shards` (the in-process ShardSet view).
  std::vector<std::size_t> owned;
};

/// One serving request: a registered job name plus per-request parameters
/// (merged over the spec's declared defaults). An empty job name is the
/// no-op request: it resolves to an empty report without touching the pool.
struct MiningRequest {
  std::string job;
  JobParams params;
};

/// One serving response. Values are the job's report; `model_cached` is true
/// when a trainable job served from an already-fitted model,
/// `model_incremental` when this request's fit extended an earlier epoch's
/// model via partial_fit instead of retraining from scratch.
struct MiningResponse {
  std::vector<double> values;
  bool model_cached = false;
  bool model_incremental = false;
  std::uint64_t pool_epoch = 0;  ///< epoch (sharded: watermark) served against
  double millis = 0.0;           ///< wall-clock service time of this request
  double fit_millis = 0.0;       ///< of which: acquiring the fitted model
                                 ///< (≈0 on a cache hit; the full vs
                                 ///< incremental refit cost otherwise)
};

/// Cache accounting (cumulative across the engine's lifetime; sharded:
/// summed over owned shards).
struct MiningCacheStats {
  std::size_t fits = 0;         ///< models trained from scratch
  std::size_t incremental = 0;  ///< models extended via partial_fit
  std::size_t hits = 0;         ///< requests served from a cached model
  std::size_t entries = 0;      ///< live cache entries
};

/// One shard's canonically-ordered rows (coordinator-side gathers).
struct ShardSlice {
  data::Dataset rows;             ///< sorted by canonical (nonce, seq)
  std::vector<PoolKey> keys;      ///< parallel to rows
  std::uint64_t epoch = 0;        ///< shard epoch the slice was cut at
};

class MiningEngine {
 public:
  explicit MiningEngine(MiningEngineOptions opts = {},
                        JobRegistry registry = JobRegistry::builtins());

  MiningEngine(const MiningEngine&) = delete;
  MiningEngine& operator=(const MiningEngine&) = delete;

  // ---- pool lifecycle --------------------------------------------------

  /// Install (or replace) the pooled dataset (single-shard engines only —
  /// a flat dataset carries no nonce structure to route by; sharded
  /// engines install via set_pool_segments). Starts a new epoch
  /// generation: bumps the pool epoch, drops every cached model, and
  /// severs incremental lineage. Safe to call concurrently with serving;
  /// in-flight requests finish against the snapshot they started on.
  void set_pool(data::Dataset pool);

  /// Install the unified pool from its per-nonce segments (callers pass
  /// canonical — ascending-nonce — order; party_logic's unify_pool already
  /// yields it). Every owned shard is (re)installed with exactly the
  /// segments that hash-route to it — possibly none — starting a new epoch
  /// generation on each; segments routed to unowned shards are skipped (a
  /// cluster miner installs only its slice).
  void set_pool_segments(std::vector<PoolSegment> segments);

  /// Streaming ingest, classic form (single-shard engines only): append
  /// `batch` to the pool under the synthetic nonce 0. Bumps the epoch
  /// WITHOUT dropping cached models — later requests extend them
  /// incrementally where supported. Returns the new epoch.
  std::uint64_t append_records(const data::Dataset& batch);

  /// Streaming ingest, routed form: append `batch` as a contribution under
  /// `nonce`, landing on shard_of_nonce(nonce) — which must be owned
  /// (callers check owns() first; cluster daemons answer kNotOwner).
  /// Returns the OWNING SHARD's new epoch (the contribution receipt).
  std::uint64_t append_records(std::uint64_t nonce, const data::Dataset& batch);

  [[nodiscard]] bool has_pool() const;
  /// Reference to the current pool (single-shard engines only). Valid only
  /// while no concurrent pool mutation can run; concurrent callers must use
  /// pool_view() instead.
  [[nodiscard]] const data::Dataset& pool() const;
  /// Atomic (snapshot, epoch) pair — the view one request serves against
  /// (single-shard engines only; sharded callers use shard_view()).
  struct PoolView {
    std::shared_ptr<const data::Dataset> data;
    std::uint64_t epoch = 0;
  };
  [[nodiscard]] PoolView pool_view() const;
  /// 0 until the first install; then increments with every set_pool/append.
  /// Sharded: the WATERMARK — the minimum epoch across owned shards (the
  /// epoch every shard is guaranteed to have reached).
  [[nodiscard]] std::uint64_t pool_epoch() const;

  // ---- shard topology --------------------------------------------------

  [[nodiscard]] std::size_t total_shards() const noexcept { return opts_.shards; }
  [[nodiscard]] ShardLayout layout() const noexcept { return opts_.layout; }
  /// Owned global shard ids, ascending.
  [[nodiscard]] const std::vector<std::size_t>& owned_shards() const noexcept {
    return owned_;
  }
  [[nodiscard]] bool owns(std::size_t global_shard) const;
  /// One owned shard's (snapshot, epoch) view / current epoch.
  [[nodiscard]] PoolShard::View shard_view(std::size_t global_shard) const;
  [[nodiscard]] std::uint64_t shard_epoch(std::size_t global_shard) const;

  /// Resync install (DESIGN.md §13): replace one owned shard with a donor's
  /// ARRIVAL-order snapshot and ADOPT the donor's epoch (no local bump).
  /// `rows`/`keys` must parallel; the epoch must not regress the shard's
  /// local line. Used by a rejoining miner after fetching the live owner's
  /// shard snapshot through the kShardSnapshotRequest door.
  void install_shard(std::size_t global_shard, data::Dataset rows,
                     std::vector<PoolKey> keys, std::uint64_t epoch);

  // ---- job registry ----------------------------------------------------

  /// Mutable registry access (register jobs before serving; registration
  /// must not race with in-flight requests).
  [[nodiscard]] JobRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const JobRegistry& registry() const noexcept { return registry_; }

  // ---- serving ---------------------------------------------------------

  /// Serve one request against the shard snapshots current at entry.
  /// Thread-safe against concurrent run()/append_records() calls. Sharded
  /// engines serve over their OWNED shards: exact-merge jobs run partial-
  /// per-shard + merge, others gather the owned shards' canonical pool and
  /// execute flat. Throws sap::Error for an unknown job name, invalid
  /// params, or a missing pool.
  MiningResponse run(const MiningRequest& request);

  /// Serve a batch across the worker pool (inline when threads == 0).
  /// Response i always answers request i. Every job name is validated
  /// before anything executes, so a malformed batch fails without side
  /// effects; a request that throws mid-batch poisons the batch after all
  /// in-flight requests drain (first error wins).
  std::vector<MiningResponse> run_batch(const std::vector<MiningRequest>& requests);

  /// Serve a legacy closure job (SapSession::mine() compat; single-shard
  /// engines only). Not cacheable — the closure is opaque. A null job
  /// yields an empty report.
  std::vector<double> run_adhoc(const MinerJob& job);

  /// One shard's partial blob for `request` (coordinator-side exact
  /// merges): executes spec.partial over the shard's snapshot with the
  /// coordinator-supplied canonical query prefix. values = the opaque
  /// blob; pool_epoch = the shard epoch served. Throws for non-mergeable
  /// jobs or unowned shards.
  MiningResponse run_partial(std::size_t global_shard, const MiningRequest& request,
                             const data::Dataset& queries);

  /// One shard's rows in canonical (nonce, seq) order, truncated to
  /// max_records (0 = all) — the coordinator-side gather primitive.
  [[nodiscard]] ShardSlice shard_slice(std::size_t global_shard,
                                       std::size_t max_records) const;

  // ---- observability ---------------------------------------------------

  [[nodiscard]] MiningCacheStats cache_stats() const;
  [[nodiscard]] std::size_t threads() const noexcept { return pool_threads_.thread_count(); }
  /// Batch-pool execution totals (exported by the stats door, DESIGN.md §12).
  [[nodiscard]] ThreadPool::Stats pool_stats() const noexcept {
    return pool_threads_.stats();
  }

 private:
  /// Owned slot for a global shard id; throws for unowned ids.
  [[nodiscard]] PoolShard& slot_for(std::size_t global_shard) const;
  /// The single slot of a 1-slot engine; throws when sharded surface must
  /// be used instead.
  [[nodiscard]] PoolShard& sole_slot(const char* what) const;

  /// Canonically-ordered gather across the given owned-slot views:
  /// all rows sorted by (nonce, seq), truncated to `limit` (0 = all).
  [[nodiscard]] static data::Dataset gather_canonical(
      const std::vector<PoolShard::View>& views, std::size_t limit);

  /// Multi-shard serving: exact merge when the spec declares one, canonical
  /// gather + flat execution otherwise.
  MiningResponse run_sharded(const JobSpec& spec, const JobParams& resolved);

  MiningEngineOptions opts_;
  JobRegistry registry_;
  ThreadPool pool_threads_;

  std::vector<std::size_t> owned_;                    ///< sorted global ids
  std::vector<std::unique_ptr<PoolShard>> slots_;     ///< parallel to owned_
};

}  // namespace sap::proto
