// MiningEngine — concurrent, cached, parameterized job serving over a LIVE
// unified pool.
//
// PR 2 turned the Mine state into a service over a frozen snapshot; this
// engine serves a pool that keeps growing while it serves:
//
//   * requests — MiningRequest{job, params} — execute against an immutable
//     pool *snapshot*, singly (run), as a batch fanned out over an internal
//     ThreadPool (run_batch), or concurrently from any number of caller
//     threads (run is thread-safe);
//   * the pool is epoch-scoped: set_pool() installs a fresh pool (epoch
//     generation reset, every cached model dropped), while append_records()
//     — the streaming-ingest path behind the protocol's Contribute phase —
//     extends the pool in place, bumps the epoch, and KEEPS still-valid
//     work: in-flight requests finish against the snapshot/epoch they
//     started on (bounded staleness, never a torn pool), and cached models
//     from earlier epochs seed incremental refits;
//   * trainable jobs fit once per (job, model-relevant canonical params) at
//     the epoch they are first requested. When the pool has grown since a
//     model was fitted, the engine refits INCREMENTALLY where the model
//     supports it (Classifier::partial_fit — NaiveBayes, Knn) by extending
//     the cached model with exactly the appended rows; SVM/perceptron fall
//     back to a full refit. Either way the replacement is installed under
//     the new epoch before it resolves, so concurrent requests collapse
//     onto one (re)fit.
//
// Determinism invariant (tested under TSAN like the threaded transport): a
// batch's reports (MiningResponse::values) are bit-identical to the same
// requests run serially, regardless of thread count — only the diagnostics
// (model_cached, model_incremental, millis) may reflect scheduling. This
// holds because (a) response slots are addressed by request index, (b) every
// job report is a pure function of (pool snapshot, resolved params) — and
// the incremental-refit contract (DESIGN.md §6) makes a partial_fit-extended
// model equivalent to the full refit it replaces — and (c) concurrent fits
// of the same key are collapsed onto one shared_future. Pool mutations are
// epoch-ordered: the pool content at epoch e is a pure function of the
// set_pool/append_records call sequence, independent of thread count or
// transport backend.
//
// Thread-safety: run()/run_batch() may be called concurrently with each
// other AND with append_records()/set_pool() (requests serve the snapshot
// they started with). Registry mutation must still not overlap serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "protocol/jobs.hpp"

namespace sap::proto {

struct MiningEngineOptions {
  /// Worker threads for run_batch(); 0 = execute batches inline on the
  /// calling thread (the serial reference execution).
  std::size_t threads = 0;
  /// Cache fitted models per (job, params) with epoch-aware incremental
  /// refit. Disabling forces per-request retraining (the throughput bench's
  /// comparison baseline).
  bool cache_models = true;
};

/// One serving request: a registered job name plus per-request parameters
/// (merged over the spec's declared defaults). An empty job name is the
/// no-op request: it resolves to an empty report without touching the pool.
struct MiningRequest {
  std::string job;
  JobParams params;
};

/// One serving response. Values are the job's report; `model_cached` is true
/// when a trainable job served from an already-fitted model,
/// `model_incremental` when this request's fit extended an earlier epoch's
/// model via partial_fit instead of retraining from scratch.
struct MiningResponse {
  std::vector<double> values;
  bool model_cached = false;
  bool model_incremental = false;
  std::uint64_t pool_epoch = 0;  ///< epoch this request was served against
  double millis = 0.0;           ///< wall-clock service time of this request
  double fit_millis = 0.0;       ///< of which: acquiring the fitted model
                                 ///< (≈0 on a cache hit; the full vs
                                 ///< incremental refit cost otherwise)
};

/// Cache accounting (cumulative across the engine's lifetime).
struct MiningCacheStats {
  std::size_t fits = 0;         ///< models trained from scratch
  std::size_t incremental = 0;  ///< models extended via partial_fit
  std::size_t hits = 0;         ///< requests served from a cached model
  std::size_t entries = 0;      ///< live cache entries
};

class MiningEngine {
 public:
  explicit MiningEngine(MiningEngineOptions opts = {},
                        JobRegistry registry = JobRegistry::builtins());

  MiningEngine(const MiningEngine&) = delete;
  MiningEngine& operator=(const MiningEngine&) = delete;

  // ---- pool lifecycle --------------------------------------------------

  /// Install (or replace) the pooled dataset. Starts a new epoch generation:
  /// bumps the pool epoch, drops every cached model, and severs incremental
  /// lineage (a model fitted on a replaced pool can never be extended).
  /// Safe to call concurrently with serving; in-flight requests finish
  /// against the snapshot they started on.
  void set_pool(data::Dataset pool);

  /// Streaming ingest: append `batch` (dims must match) to the live pool.
  /// Bumps the epoch WITHOUT dropping cached models — later requests extend
  /// them incrementally where supported. Appends are serialized and
  /// epoch-ordered: pool content at any epoch is a pure function of the
  /// mutation call sequence. Safe to call concurrently with serving
  /// (in-flight requests keep their snapshot). Returns the new epoch.
  std::uint64_t append_records(const data::Dataset& batch);

  [[nodiscard]] bool has_pool() const;
  /// Reference to the current pool. Valid only while no concurrent pool
  /// mutation can run; concurrent callers must use pool_view() instead.
  [[nodiscard]] const data::Dataset& pool() const;
  /// Atomic (snapshot, epoch) pair — the view one request serves against.
  struct PoolView {
    std::shared_ptr<const data::Dataset> data;
    std::uint64_t epoch = 0;
  };
  [[nodiscard]] PoolView pool_view() const;
  /// 0 until the first set_pool(); then increments with every set_pool()
  /// and every append_records().
  [[nodiscard]] std::uint64_t pool_epoch() const;

  // ---- job registry ----------------------------------------------------

  /// Mutable registry access (register jobs before serving; registration
  /// must not race with in-flight requests).
  [[nodiscard]] JobRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const JobRegistry& registry() const noexcept { return registry_; }

  // ---- serving ---------------------------------------------------------

  /// Serve one request against the pool snapshot current at entry. Thread-
  /// safe against concurrent run()/append_records() calls. Throws sap::Error
  /// for an unknown job name, invalid params, or a missing pool.
  MiningResponse run(const MiningRequest& request);

  /// Serve a batch across the worker pool (inline when threads == 0).
  /// Response i always answers request i. Every job name is validated
  /// before anything executes, so a malformed batch fails without side
  /// effects; a request that throws mid-batch poisons the batch after all
  /// in-flight requests drain (first error wins).
  std::vector<MiningResponse> run_batch(const std::vector<MiningRequest>& requests);

  /// Serve a legacy closure job (SapSession::mine() compat). Not cacheable —
  /// the closure is opaque. A null job yields an empty report.
  std::vector<double> run_adhoc(const MinerJob& job);

  // ---- observability ---------------------------------------------------

  [[nodiscard]] MiningCacheStats cache_stats() const;
  [[nodiscard]] std::size_t threads() const noexcept { return pool_threads_.thread_count(); }

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const ml::Classifier>>;

  /// One cached fitted model: the epoch it answers plus the (possibly still
  /// in-flight) fit. Keys are (job '\0' model-params); append_records leaves
  /// entries in place so a later epoch's fit can extend them.
  struct CacheEntry {
    std::uint64_t epoch = 0;
    ModelFuture future;
  };

  /// Fitted model for (spec, resolved params) serving `view` — from cache
  /// when current, extended incrementally from an earlier epoch's model when
  /// possible, freshly trained otherwise.
  std::shared_ptr<const ml::Classifier> model_for(const JobSpec& spec,
                                                  const JobParams& resolved,
                                                  const PoolView& view, bool& cached,
                                                  bool& incremental);

  /// Row count the pool had at `epoch`, if `epoch` belongs to the current
  /// set_pool generation (false otherwise — lineage severed).
  [[nodiscard]] bool rows_at_epoch(std::uint64_t epoch, std::size_t& rows) const;

  MiningEngineOptions opts_;
  JobRegistry registry_;
  ThreadPool pool_threads_;

  mutable Mutex pool_mutex_;  ///< guards pool_, pool_epoch_, epoch_rows_
  /// Serializes set_pool/append_records; held around (never inside)
  /// pool_mutex_ so mutators can build the grown pool outside the lock
  /// serving contends on.
  Mutex ingest_mutex_ SAP_ACQUIRED_BEFORE(pool_mutex_);
  std::shared_ptr<const data::Dataset> pool_ SAP_GUARDED_BY(pool_mutex_);
  std::uint64_t pool_epoch_ SAP_GUARDED_BY(pool_mutex_) = 0;
  /// Pool size per epoch of the current generation (cleared by set_pool) —
  /// what lets an incremental refit slice out exactly the appended rows.
  std::map<std::uint64_t, std::size_t> epoch_rows_ SAP_GUARDED_BY(pool_mutex_);

  mutable Mutex cache_mutex_;
  /// key: job '\0' model-params
  std::map<std::string, CacheEntry> cache_ SAP_GUARDED_BY(cache_mutex_);
  std::atomic<std::size_t> fits_{0};
  std::atomic<std::size_t> incremental_{0};
  std::atomic<std::size_t> hits_{0};
};

}  // namespace sap::proto
