// Transport — the protocol layer's messaging seam.
//
// The Space Adaptation Protocol only needs five capabilities from its
// channel layer: register parties, send an encrypted payload, test for
// pending mail, receive-and-decrypt, and (for tests) drop injection plus a
// metadata trace. Transport abstracts exactly that surface so the identical
// protocol code runs over interchangeable backends:
//
//   * SimulatedNetwork      — synchronous, single-threaded, in-process
//                             (network.hpp; the original simulation),
//   * ThreadedLocalTransport — concurrent: mutex+condvar inboxes with one
//                             worker thread per party task
//                             (threaded_transport.hpp).
//
// Backends also own the *execution policy* for per-party work via
// run_parties(): the synchronous backend runs party tasks sequentially in
// order, the threaded backend runs each on its own worker. SapSession
// structures every phase as run_parties() batches with a barrier between a
// send stage and the matching receive stage, so protocol code never needs to
// know which policy is active.
//
// Substitution note (DESIGN.md §2): both in-process backends stand in for
// the encrypted point-to-point channels the paper assumes; the information
// flow — who can open which envelope, what the wire observer sees — is
// faithful in either case.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "protocol/message.hpp"

namespace sap::proto {

/// Built-in transport backends selectable through SapOptions.
enum class TransportKind : std::uint8_t {
  kSimulated = 0,      ///< synchronous in-process delivery (SimulatedNetwork)
  kThreadedLocal = 1,  ///< concurrent in-process delivery (ThreadedLocalTransport)
  kTcp = 2,            ///< real sockets via a relay hub (net::TcpTransport);
                       ///< needs an address, so construct it through
                       ///< net::tcp_transport_factory rather than
                       ///< make_transport
};

/// Printable backend name for test parameterization and CLI flags.
std::string to_string(TransportKind kind);

/// Abstract encrypted-channel backend. All byte/message accounting is in
/// ciphertext terms; payload plaintext never appears in the trace.
class Transport {
 public:
  virtual ~Transport() = default;

  /// A decrypted message as seen by its addressee.
  struct Delivery {
    PartyId from;
    PayloadKind kind;
    std::vector<double> payload;
  };

  /// Failure injection: messages matching the predicate are dropped
  /// (recorded in the trace, never delivered).
  using DropFilter = std::function<bool(PartyId from, PartyId to, PayloadKind kind)>;

  /// Register a party; returns its id (dense, starting at 0).
  virtual PartyId add_party() = 0;

  [[nodiscard]] virtual std::size_t party_count() const = 0;

  /// Encrypt `payload` for the (from, to) link and enqueue it.
  virtual void send(PartyId from, PartyId to, PayloadKind kind,
                    std::span<const double> payload) = 0;

  /// True when `party` has pending messages. Only meaningful when no sender
  /// for `party` can still be in flight (i.e. between run_parties batches).
  [[nodiscard]] virtual bool has_mail(PartyId party) const = 0;

  /// Pop the oldest message addressed to `party` and decrypt it. Throws
  /// sap::Error when no message is pending and none can still arrive.
  virtual Delivery receive(PartyId party) = 0;

  virtual void set_drop_filter(DropFilter filter) = 0;

  /// Number of messages dropped so far.
  [[nodiscard]] virtual std::size_t dropped_count() const = 0;

  /// Complete metadata trace (ciphertext retained, no plaintext). Call only
  /// while no run_parties() batch is executing.
  [[nodiscard]] virtual const std::vector<Message>& trace() const = 0;

  /// Total ciphertext bytes sent so far.
  [[nodiscard]] virtual std::size_t total_bytes() const = 0;

  /// Execute one task per party. The base implementation runs the tasks
  /// sequentially in index order (the synchronous simulation); concurrent
  /// backends override this to run each task on its own worker. Null tasks
  /// are skipped. The first exception raised by any task is rethrown after
  /// every task has finished.
  virtual void run_parties(std::vector<std::function<void()>> tasks);

  /// True when run_parties() executes tasks concurrently.
  [[nodiscard]] virtual bool concurrent() const noexcept { return false; }

  // ---- trace-derived accounting shared by every backend ----------------

  /// Bytes per (from, to) link — the protocol-cost experiments read this.
  [[nodiscard]] std::map<std::pair<PartyId, PartyId>, std::size_t> link_bytes() const;

  /// Messages of `kind` received by `party` (metadata audit for tests).
  [[nodiscard]] std::size_t count_received(PartyId party, PayloadKind kind) const;
};

/// Construct a backend of the given kind. `session_secret` seeds per-link
/// key derivation (models the out-of-band key exchange the paper assumes).
std::unique_ptr<Transport> make_transport(TransportKind kind, std::uint64_t session_secret);

namespace detail {
/// Deterministic per-directed-link key derivation from a session secret
/// (SplitMix64 finalizer) — shared by every in-process backend.
[[nodiscard]] std::uint64_t derive_link_key(std::uint64_t session_secret, PartyId from,
                                            PartyId to) noexcept;
}  // namespace detail

}  // namespace sap::proto
