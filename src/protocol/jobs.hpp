// Mining job specifications and the named-job registry.
//
// A mining job is what the mining service provider executes on the unified
// pool once the exchange is complete. PR 1 modeled a job as a bare closure
// (`MinerJob`); that admits no per-request parameters and gives the engine
// nothing to cache by. A JobSpec instead declares:
//
//   * a parameter schema (names, defaults, valid ranges) — every request
//     merges its JobParams over the defaults and is validated against the
//     schema, so "k=5 by default" and "k=5 explicitly" are the same request
//     (and hit the same cache entry);
//   * whether the job is *trainable* (builds a Classifier on the pool, then
//     serves from the fitted model's const predict() path) or *structural*
//     (computes straight off the pool). The split is what the MiningEngine's
//     model cache keys on: trainable jobs fit once per (job, params) at the
//     pool epoch first requested, serve unlimited requests from the shared
//     immutable model, and — when the live pool grows via append_records —
//     are extended incrementally through Classifier::partial_fit where the
//     model supports it (see mining_engine.hpp).
//
// The built-in registry covers the paper's mining workloads (KNN / SVM /
// Naive Bayes / perceptron accuracy on the unified space) plus cheap
// structural jobs; every SapSession's engine starts with a copy and can
// register its own.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classify/classifier.hpp"
#include "data/dataset.hpp"
#include "protocol/shard.hpp"

namespace sap::proto {

/// Legacy closure form of a mining job: executed at the miner on the unified
/// dataset, the returned doubles are broadcast back to providers as
/// kModelReport. Still accepted everywhere a quick ad-hoc job is handier
/// than a full JobSpec (SapSession::mine(), register_job()).
using MinerJob = std::function<std::vector<double>(const data::Dataset&)>;

/// Per-request job parameters, merged over the spec's declared defaults.
using JobParams = std::map<std::string, double>;

/// One declared parameter: its default and the closed range of valid values.
/// serve_only marks parameters that shape the *report* but not the fitted
/// model (e.g. an evaluation limit) — they are excluded from the engine's
/// model-cache key, so requests differing only in serve-only params share
/// one fitted model.
struct ParamSpec {
  std::string name;
  double def = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  bool serve_only = false;
};

/// Fallback execution for a multi-shard serve when the job declares no
/// exact merge (merge_partials unset).
enum class MergeFallback : std::uint8_t {
  /// Reassemble the canonical pool from every shard and execute there —
  /// exact, but ships rows to the merging side (SVM/perceptron fits).
  kGather = 0,
  /// Serve from the lowest-numbered shard alone — never ships rows, but the
  /// report covers only that shard's slice of the pool.
  kRoute = 1,
};

/// A named mining workload. Exactly one of the two execution paths is set:
///   * structural: `run(pool, params)` computes the report directly;
///   * trainable:  `make_model(params)` builds an untrained Classifier, the
///     engine fits it on the pool (cacheable), and `serve(model, pool,
///     params)` produces the report from the fitted model's const,
///     thread-safe predict() path.
///
/// A job may additionally declare an EXACT-MERGE contract for sharded pools
/// (DESIGN.md §11): `partial` executes AT one shard over that shard's rows
/// (plus their parallel canonical PoolKeys) and returns an opaque double
/// blob; `merge_partials` executes at the coordinator over one blob per
/// shard — in ANY blob order, because exact merges reorder by canonical key
/// internally — and produces the final report. `queries` is the eval prefix
/// of the canonical pool (what the report scores against; empty for
/// structural merges). The contract: the merged report is bit-identical to
/// running the job on the canonical concatenated pool, whatever the shard
/// count or hash-route layout.
struct JobSpec {
  std::string name;
  std::string summary;
  std::vector<ParamSpec> params;

  /// Structural path (mutually exclusive with make_model/serve).
  std::function<std::vector<double>(const data::Dataset& pool, const JobParams&)> run;

  /// Trainable path: model factory + const serving function.
  std::function<std::unique_ptr<ml::Classifier>(const JobParams&)> make_model;
  std::function<std::vector<double>(const ml::Classifier& model, const data::Dataset& pool,
                                    const JobParams&)>
      serve;

  /// Exact-merge contract (optional; both set or both unset). See the
  /// struct comment for semantics.
  std::function<std::vector<double>(const data::Dataset& rows,
                                    std::span<const PoolKey> keys,
                                    const data::Dataset& queries, const JobParams&)>
      partial;
  std::function<std::vector<double>(const std::vector<std::vector<double>>& partials,
                                    const data::Dataset& queries, const JobParams&)>
      merge_partials;
  /// Multi-shard execution when no exact merge is declared.
  MergeFallback merge_fallback = MergeFallback::kGather;

  [[nodiscard]] bool trainable() const noexcept { return static_cast<bool>(make_model); }
  [[nodiscard]] bool mergeable() const noexcept { return static_cast<bool>(merge_partials); }

  /// Merge `request` over the declared defaults; throws sap::Error on an
  /// undeclared name or an out-of-range value.
  [[nodiscard]] JobParams resolve_params(const JobParams& request) const;

  /// Canonical "name=value;..." encoding of resolved params (sorted by name,
  /// max-precision values).
  [[nodiscard]] static std::string canonical_params(const JobParams& resolved);

  /// canonical_params restricted to the params the fitted model depends on
  /// (serve-only params skipped) — the params component of the engine's
  /// model-cache key.
  [[nodiscard]] std::string model_key_params(const JobParams& resolved) const;
};

/// Named JobSpec collection. Not internally synchronized: registration must
/// not race with lookups (the MiningEngine serves lookups concurrently but
/// treats its registry as frozen while a batch is in flight).
class JobRegistry {
 public:
  /// Add `spec`, replacing any existing spec with the same name. Throws
  /// sap::Error on an empty name, neither-or-both execution paths, or a
  /// malformed parameter schema (duplicate names, default outside range).
  void register_job(JobSpec spec);

  /// Wrap a legacy closure as a structural, parameterless JobSpec.
  void register_job(std::string name, MinerJob job);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Lookup; throws sap::Error for unknown names.
  [[nodiscard]] const JobSpec& find(const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

  /// Registry seeded with the built-in jobs:
  ///   structural
  ///     "record-count"             → {N}
  ///     "class-histogram"          → {count of class 0, count of class 1, ...}
  ///   trainable (all take eval-records: 0 = score the whole pool, else
  ///   score the first eval-records records — the train-once/query-many
  ///   serving path)
  ///     "knn-train-accuracy"        (k)
  ///     "svm-train-accuracy"        (c, gamma)
  ///     "nb-train-accuracy"         (var-smoothing)
  ///     "perceptron-train-accuracy" (epochs, learning-rate)
  [[nodiscard]] static JobRegistry builtins();

 private:
  std::map<std::string, JobSpec> specs_;
};

/// Machine-readable job/param schema (sap_cli `jobs --json`, orchestration
/// over the miner daemon):
///   {"jobs": [{"name": ..., "kind": "trainable"|"structural",
///              "summary": ..., "params": [{"name": ..., "default": ...,
///              "min": ..., "max": ..., "serve_only": bool}, ...]}, ...]}
/// Jobs are listed in name order; numbers print with max round-trip
/// precision.
[[nodiscard]] std::string schema_json(const JobRegistry& registry);

}  // namespace sap::proto
