// Named MinerJob registry.
//
// A MinerJob is what the mining service provider executes on the unified
// pool once the exchange is complete (SapSession phase kMine). Naming jobs
// lets callers — sap_cli's --job flag, benches, repeated mine_named() calls
// on one session — pick a workload without hand-writing the closure, and
// lets one exchange serve many jobs (the protocol cost is paid once).
//
// The built-in registry covers the paper's mining workloads (KNN / SVM
// training accuracy on the unified space) plus cheap structural jobs; every
// SapSession starts with a copy and can register_job() its own.
#pragma once

#include <map>
#include <string>

#include "protocol/session.hpp"

namespace sap::proto {

/// The built-in named jobs:
///   "record-count"       → {N}
///   "class-histogram"    → {count of class 0, count of class 1, ...}
///   "knn-train-accuracy" → {training accuracy of a 5-NN on the pool}
///   "svm-train-accuracy" → {training accuracy of the SMO-trained SVM}
///   "nb-train-accuracy"  → {training accuracy of Gaussian Naive Bayes}
const std::map<std::string, MinerJob>& builtin_miner_jobs();

}  // namespace sap::proto
