#include "protocol/shard.hpp"

namespace sap::proto {

std::uint64_t mix_nonce(std::uint64_t nonce) noexcept {
  // SplitMix64 finalizer (Steele et al.) — full-avalanche, branch-free.
  std::uint64_t z = nonce + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::size_t shard_of_nonce(std::uint64_t nonce, std::size_t total,
                           ShardLayout layout) noexcept {
  if (total <= 1) return 0;
  const std::uint64_t h = mix_nonce(nonce);
  if (layout == ShardLayout::kHashRange) {
    // Fixed-point scale of h into [0, total): the top of the hash picks a
    // contiguous range per shard (Lemire's multiply-shift reduction).
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(h) * static_cast<unsigned __int128>(total)) >> 64);
  }
  return static_cast<std::size_t>(h % static_cast<std::uint64_t>(total));
}

}  // namespace sap::proto
