#include "protocol/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace sap::proto {
namespace {

std::vector<double> class_histogram(const data::Dataset& ds,
                                    const std::vector<int>& pooled_classes) {
  std::vector<double> hist(pooled_classes.size(), 0.0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto it = std::find(pooled_classes.begin(), pooled_classes.end(), ds.label(i));
    SAP_REQUIRE(it != pooled_classes.end(), "adversary: shard label outside pooled classes");
    hist[static_cast<std::size_t>(it - pooled_classes.begin())] += 1.0;
  }
  for (auto& v : hist) v /= static_cast<double>(ds.size());
  return hist;
}

double total_variation(const std::vector<double>& a, const std::vector<double>& b) {
  SAP_REQUIRE(a.size() == b.size(), "adversary: profile size mismatch");
  double tv = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) tv += std::abs(a[i] - b[i]);
  return 0.5 * tv;
}

}  // namespace

std::vector<ShardObservation> observe_shards(const std::vector<data::Dataset>& provider_data,
                                             const std::vector<int>& pooled_classes) {
  SAP_REQUIRE(!provider_data.empty(), "observe_shards: no shards");
  std::vector<ShardObservation> out;
  out.reserve(provider_data.size());
  for (const auto& shard : provider_data) {
    SAP_REQUIRE(shard.size() > 0, "observe_shards: empty shard");
    out.push_back({class_histogram(shard, pooled_classes), shard.size()});
  }
  return out;
}

std::vector<ProviderProfile> provider_profiles(const std::vector<data::Dataset>& provider_data,
                                               const std::vector<int>& pooled_classes) {
  SAP_REQUIRE(!provider_data.empty(), "provider_profiles: no providers");
  std::vector<ProviderProfile> out;
  out.reserve(provider_data.size());
  for (const auto& shard : provider_data)
    out.push_back({class_histogram(shard, pooled_classes), shard.size()});
  return out;
}

LinkingResult link_sources(const std::vector<ShardObservation>& shards,
                           const std::vector<ProviderProfile>& profiles) {
  SAP_REQUIRE(shards.size() == profiles.size() && shards.size() >= 2,
              "link_sources: need matching shard/profile lists (>= 2)");
  const std::size_t k = shards.size();

  // Greedy globally-best assignment: repeatedly take the (shard, provider)
  // pair with the smallest TV distance among unassigned ones. (Optimal
  // assignment would be Hungarian; greedy is the standard cheap adversary
  // and suffices to expose the fingerprinting signal.)
  LinkingResult result;
  result.guesses.assign(k, k);
  std::vector<bool> shard_done(k, false), provider_done(k, false);
  // Class-profile distance only. Record counts are a second side channel
  // (mitigable by padding, orthogonal to what this adversary demonstrates),
  // so they are deliberately not used for linking.
  auto dist = [&](std::size_t s, std::size_t p) {
    return total_variation(shards[s].class_profile, profiles[p].class_profile);
  };
  for (std::size_t round = 0; round < k; ++round) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bs = k, bp = k;
    for (std::size_t s = 0; s < k; ++s) {
      if (shard_done[s]) continue;
      for (std::size_t p = 0; p < k; ++p) {
        if (provider_done[p]) continue;
        const double d = dist(s, p);
        if (d < best) {
          best = d;
          bs = s;
          bp = p;
        }
      }
    }
    SAP_REQUIRE(bs < k && bp < k, "link_sources: assignment failed");
    result.guesses[bs] = bp;
    shard_done[bs] = true;
    provider_done[bp] = true;
  }

  std::size_t hits = 0;
  for (std::size_t s = 0; s < k; ++s) hits += (result.guesses[s] == s);
  result.accuracy = static_cast<double>(hits) / static_cast<double>(k);
  result.baseline = 1.0 / static_cast<double>(k - 1);
  return result;
}

}  // namespace sap::proto
