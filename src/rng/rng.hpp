// Deterministic random number generation for libsap.
//
// Everything stochastic in the library (rotation sampling, noise, the SAP
// permutation, synthetic data) draws from sap::rng::Engine so that a single
// seed reproduces an entire protocol run bit-for-bit. The engine is
// xoshiro256++ (Blackman & Vigna), seeded through SplitMix64; it satisfies
// std::uniform_random_bit_generator so it composes with <algorithm>.
#pragma once

#include <cstdint>
#include <vector>

namespace sap::rng {

/// xoshiro256++ pseudo-random engine with convenience distributions.
///
/// Not cryptographically secure — it models the *randomized algorithm*
/// aspects of the paper (perturbation sampling, permutation τ), not the
/// encryption layer (see proto::EncryptedEnvelope for that boundary).
class Engine {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion of `seed` (any value is fine, incl. 0).
  explicit Engine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal() noexcept;

  /// Normal with the given mean / standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli draw.
  bool bernoulli(double p) noexcept;

  /// Random permutation of {0, ..., n-1} (Fisher–Yates).
  std::vector<std::size_t> permutation(std::size_t n);

  /// k distinct indices sampled uniformly from {0,...,n-1}; requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Dirichlet(alpha,...,alpha) sample of length n — used by the skewed
  /// partitioner. Larger alpha → more uniform weights. Requires alpha > 0.
  std::vector<double> dirichlet(std::size_t n, double alpha);

  /// Independent child engine; parent and child streams do not overlap in
  /// practice (re-seeded through SplitMix64 from fresh parent output).
  Engine spawn();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sap::rng
