#include "rng/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace sap::rng {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Engine::Engine(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; SplitMix64 cannot emit
  // four consecutive zeros, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

Engine::result_type Engine::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Engine::uniform() noexcept {
  // 53 high bits → double in [0,1) with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Engine::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Engine::uniform_index(std::uint64_t n) {
  SAP_REQUIRE(n > 0, "uniform_index: n must be positive");
  // Lemire-style rejection for unbiased sampling.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Engine::uniform_int(std::int64_t lo, std::int64_t hi) {
  SAP_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Engine::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 bounded away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Engine::normal(double mean, double sigma) {
  SAP_REQUIRE(sigma >= 0.0, "normal: sigma must be non-negative");
  return mean + sigma * normal();
}

bool Engine::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::size_t> Engine::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<std::size_t> Engine::sample_without_replacement(std::size_t n, std::size_t k) {
  SAP_REQUIRE(k <= n, "sample_without_replacement: k must be <= n");
  // Partial Fisher–Yates over an index vector: O(n) space, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<double> Engine::dirichlet(std::size_t n, double alpha) {
  SAP_REQUIRE(alpha > 0.0, "dirichlet: alpha must be positive");
  // Gamma(alpha) via Marsaglia–Tsang (with boost for alpha < 1), normalized.
  auto gamma_draw = [this](double shape) {
    double boost = 1.0;
    if (shape < 1.0) {
      boost = std::pow(uniform() + 1e-12, 1.0 / shape);
      shape += 1.0;
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
      if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
        return boost * d * v;
    }
  };
  std::vector<double> w(n);
  double total = 0.0;
  for (auto& v : w) {
    v = gamma_draw(alpha);
    total += v;
  }
  SAP_REQUIRE(total > 0.0, "dirichlet: degenerate sample");
  for (auto& v : w) v /= total;
  return w;
}

Engine Engine::spawn() {
  std::uint64_t child_seed = (*this)() ^ 0xA5A5A5A55A5A5A5AULL;
  return Engine(child_seed);
}

}  // namespace sap::rng
