// libsap umbrella header — the full public API in one include.
//
//   #include "sap.hpp"
//
// Module map (see README.md for the architecture overview):
//   sap::common   — error handling, logging, stopwatch, text tables
//   sap::rng      — deterministic xoshiro256++ engine + distributions
//   sap::linalg   — Matrix, decompositions, random orthogonal, Procrustes
//   sap::data     — Dataset, normalizers, partitioners, synthetic UCI suite
//   sap::perturb  — GeometricPerturbation G(X)=RX+Psi+Delta, SpaceAdaptor
//   sap::privacy  — minimum privacy guarantee, FastICA, attack suite
//   sap::opt      — randomized perturbation optimizer, optimality rate
//   sap::ml       — KNN, SVM(RBF)/SMO, perceptron, Gaussian Naive Bayes
//   sap::proto    — the Space Adaptation Protocol, risk model, adversaries
//   sap::obs      — metrics registry, latency histograms, request tracing
//   sap::net      — TCP wire frames, transport, miner daemon / party client,
//                   seeded fault injection (sap::net::fault)
#pragma once

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

#include "rng/rng.hpp"

#include "linalg/decompose.hpp"
#include "linalg/matrix.hpp"
#include "linalg/orthogonal.hpp"
#include "linalg/stats.hpp"

#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

#include "perturb/geometric.hpp"
#include "perturb/space_adaptor.hpp"

#include "privacy/attacks.hpp"
#include "privacy/evaluator.hpp"
#include "privacy/fastica.hpp"
#include "privacy/metric.hpp"

#include "optimize/optimizer.hpp"

#include "classify/classifier.hpp"
#include "classify/knn.hpp"
#include "classify/naive_bayes.hpp"
#include "classify/perceptron.hpp"
#include "classify/svm.hpp"

#include "common/thread_pool.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include "protocol/adversary.hpp"
#include "protocol/baseline.hpp"
#include "protocol/jobs.hpp"
#include "protocol/message.hpp"
#include "protocol/mining_engine.hpp"
#include "protocol/network.hpp"
#include "protocol/party_logic.hpp"
#include "protocol/risk.hpp"
#include "protocol/session.hpp"
#include "protocol/threaded_transport.hpp"
#include "protocol/transport.hpp"

#include "net/cluster.hpp"
#include "net/fault.hpp"
#include "net/frame.hpp"
#include "net/remote.hpp"
#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
