// Space adaptation (paper §3).
//
// Given a source perturbation G_i : (R_i, t_i) and a target perturbation
// G_t : (R_t, t_t), the identity
//
//   Y_{i->t} = R_t R_i^{-1} Y_i + (Psi_t - R_t R_i^{-1} Psi_i) - R_t R_i^{-1} Delta_i
//
// rewrites data perturbed in space G_i into space G_t. The paper names
//   R_it   = R_t R_i^{-1}                  the rotation adaptor,
//   Psi_it = Psi_t - R_t R_i^{-1} Psi_i    the translation adaptor,
//   Delta_it = R_t R_i^{-1} Delta_i        the complementary noise,
// and uses <R_it, Psi_it> as the space adaptor: applying only the first two
// components is exactly "inheriting the noise component Delta_i from the
// original space G_i" — the receiver never needs (and never learns) Delta_i.
#pragma once

#include "perturb/geometric.hpp"

namespace sap::perturb {

/// The pair <R_it, Psi_it>; Psi_it is stored as its generating d-vector
/// (every translation matrix here is rank one: psi * 1^T).
class SpaceAdaptor {
 public:
  SpaceAdaptor() = default;

  /// R_it must be orthogonal d x d; psi_it must have d entries.
  SpaceAdaptor(linalg::Matrix rotation_adaptor, linalg::Vector translation_adaptor);

  /// Build the adaptor taking data perturbed by `source` into the space of
  /// `target` (dimensions must match).
  static SpaceAdaptor between(const GeometricPerturbation& source,
                              const GeometricPerturbation& target);

  [[nodiscard]] std::size_t dims() const noexcept { return r_.rows(); }
  [[nodiscard]] const linalg::Matrix& rotation() const noexcept { return r_; }
  [[nodiscard]] const linalg::Vector& translation() const noexcept { return psi_; }

  /// Y_{i->t} = R_it Y_i + Psi_it (noise inherited from the source space).
  [[nodiscard]] linalg::Matrix apply(const linalg::Matrix& y) const;

  /// Compose adaptors: (this ∘ other)(Y) == this->apply(other.apply(Y)).
  /// Adapting i->t then t->u equals adapting i->u directly. The rotation
  /// product is re-orthonormalized (QR snap-back) whenever floating-point
  /// drift exceeds half the constructor's orthogonality gate, so arbitrarily
  /// long composition chains never throw.
  [[nodiscard]] SpaceAdaptor after(const SpaceAdaptor& other) const;

  /// Flat serialization: [d, R row-major..., psi...] — the protocol's wire
  /// payload for adaptor messages.
  [[nodiscard]] std::vector<double> serialize() const;
  static SpaceAdaptor deserialize(std::span<const double> wire);

 private:
  linalg::Matrix r_;
  linalg::Vector psi_;
};

}  // namespace sap::perturb
