// Geometric data perturbation G(X) = R X + Psi + Delta (paper §2).
//
//   X     d x N normalized dataset, each COLUMN one record
//   R     d x d random orthogonal ("rotation") matrix
//   Psi   d x N translation matrix, Psi = t * 1^T with t ~ U[-1,1]^d
//   Delta d x N noise matrix with i.i.d. N(0, sigma^2) entries
//
// The pair (R, t) plus the noise level sigma fully parameterizes a
// perturbation; Delta itself is freshly sampled per application unless a
// deterministic noise seed is requested (the protocol uses a common noise
// component across parties — see SpaceAdaptor).
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace sap::perturb {

/// Parameters of one geometric perturbation G : (R, t, sigma).
class GeometricPerturbation {
 public:
  GeometricPerturbation() = default;

  /// Construct from explicit parameters. R must be square and orthogonal
  /// (checked to 1e-8); t must have R.rows() entries; sigma >= 0.
  GeometricPerturbation(linalg::Matrix r, linalg::Vector t, double noise_sigma);

  /// Sample a random perturbation: Haar-orthogonal R, t ~ U[-1,1]^d.
  static GeometricPerturbation random(std::size_t dims, double noise_sigma,
                                      rng::Engine& eng);

  [[nodiscard]] std::size_t dims() const noexcept { return r_.rows(); }
  [[nodiscard]] const linalg::Matrix& rotation() const noexcept { return r_; }
  [[nodiscard]] const linalg::Vector& translation() const noexcept { return t_; }
  [[nodiscard]] double noise_sigma() const noexcept { return sigma_; }

  /// Y = R X + Psi + Delta with Delta sampled from `noise_eng`
  /// (pass sigma()==0 for the noiseless variant). X is d x N.
  [[nodiscard]] linalg::Matrix apply(const linalg::Matrix& x, rng::Engine& noise_eng) const;

  /// Y = R X + Psi (no noise term regardless of sigma). Used for the target
  /// space G_t of the protocol, which the paper defines noise-free.
  [[nodiscard]] linalg::Matrix apply_noiseless(const linalg::Matrix& x) const;

  /// No-temporary variants for hot loops (the optimizer scores hundreds of
  /// candidate applications per run): write Y into a caller-owned buffer,
  /// reshaping it only when the shape changed. The translation Psi rides the
  /// GEMM epilogue instead of a second pass over Y; the Gaussian noise is
  /// added in one canonical row-major sweep — its element order IS the RNG
  /// stream contract, so apply_into(x, y, eng) is bit-identical to
  /// apply_noiseless(x) followed by a row-major noise pass.
  void apply_into(const linalg::Matrix& x, linalg::Matrix& y, rng::Engine& noise_eng) const;
  void apply_noiseless_into(const linalg::Matrix& x, linalg::Matrix& y) const;

  /// Exact inverse of the noiseless map: X = R^-1 (Y - Psi).
  /// (With noise, this recovers X + R^-1 Delta.)
  [[nodiscard]] linalg::Matrix invert(const linalg::Matrix& y) const;

  /// Replace R by G R (left-compose an extra orthogonal factor) — the
  /// optimizer's local refinement step.
  void precompose_rotation(const linalg::Matrix& g);

  /// Flat serialization [d, sigma, R row-major..., t...] so providers can
  /// persist an optimized perturbation across sessions.
  [[nodiscard]] std::vector<double> serialize() const;
  static GeometricPerturbation deserialize(std::span<const double> wire);

 private:
  linalg::Matrix r_;
  linalg::Vector t_;
  double sigma_ = 0.0;
};

/// The translation matrix Psi = t * 1^T for N records.
linalg::Matrix translation_matrix(const linalg::Vector& t, std::size_t n);

}  // namespace sap::perturb
