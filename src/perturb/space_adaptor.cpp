#include "perturb/space_adaptor.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/orthogonal.hpp"

namespace sap::perturb {

SpaceAdaptor::SpaceAdaptor(linalg::Matrix rotation_adaptor, linalg::Vector translation_adaptor)
    : r_(std::move(rotation_adaptor)), psi_(std::move(translation_adaptor)) {
  SAP_REQUIRE(r_.rows() == r_.cols() && r_.rows() > 0, "SpaceAdaptor: R_it must be square");
  SAP_REQUIRE(psi_.size() == r_.rows(), "SpaceAdaptor: psi size must match R_it");
  SAP_REQUIRE(linalg::orthogonality_defect(r_) < 1e-7,
              "SpaceAdaptor: rotation adaptor must be orthogonal");
}

SpaceAdaptor SpaceAdaptor::between(const GeometricPerturbation& source,
                                   const GeometricPerturbation& target) {
  SAP_REQUIRE(source.dims() == target.dims(), "SpaceAdaptor::between: dimension mismatch");
  // R_i orthogonal => R_i^{-1} = R_i^T; R_it = R_t R_i^T.
  linalg::Matrix r_it = target.rotation() * source.rotation().transpose();
  // Psi_it = t_t - R_it t_i (as generating vectors).
  linalg::Vector psi = r_it.matvec(source.translation());
  for (std::size_t i = 0; i < psi.size(); ++i) psi[i] = target.translation()[i] - psi[i];
  return {std::move(r_it), std::move(psi)};
}

linalg::Matrix SpaceAdaptor::apply(const linalg::Matrix& y) const {
  SAP_REQUIRE(y.rows() == dims(), "SpaceAdaptor::apply: Y must be d x N");
  linalg::Matrix out = r_ * y;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    auto row = out.row(i);
    for (auto& v : row) v += psi_[i];
  }
  return out;
}

SpaceAdaptor SpaceAdaptor::after(const SpaceAdaptor& other) const {
  SAP_REQUIRE(dims() == other.dims(), "SpaceAdaptor::after: dimension mismatch");
  // this(other(Y)) = R1 (R2 Y + psi2) + psi1 = (R1 R2) Y + (R1 psi2 + psi1).
  linalg::Matrix r = r_ * other.r_;
  // Products of orthogonal matrices drift off O(d) linearly in chain length;
  // a long composition chain (the Contribute path reuses adaptors across
  // many batches) would eventually trip the constructor's 1e-7 gate. Snap
  // back once the defect crosses half the gate so chains of any length stay
  // comfortably inside it.
  if (linalg::orthogonality_defect(r) > 0.5e-7) r = linalg::re_orthonormalize(r);
  linalg::Vector psi = r_.matvec(other.psi_);
  for (std::size_t i = 0; i < psi.size(); ++i) psi[i] += psi_[i];
  return {std::move(r), std::move(psi)};
}

std::vector<double> SpaceAdaptor::serialize() const {
  std::vector<double> wire;
  wire.reserve(1 + r_.size() + psi_.size());
  wire.push_back(static_cast<double>(dims()));
  wire.insert(wire.end(), r_.data().begin(), r_.data().end());
  wire.insert(wire.end(), psi_.begin(), psi_.end());
  return wire;
}

SpaceAdaptor SpaceAdaptor::deserialize(std::span<const double> wire) {
  SAP_REQUIRE(!wire.empty(), "SpaceAdaptor::deserialize: empty payload");
  SAP_REQUIRE(std::isfinite(wire[0]) && wire[0] > 0.0 && wire[0] < 1e6 &&
                  wire[0] == std::floor(wire[0]),
              "SpaceAdaptor::deserialize: malformed dimension field");
  const auto d = static_cast<std::size_t>(wire[0]);
  SAP_REQUIRE(wire.size() == 1 + d * d + d,
              "SpaceAdaptor::deserialize: malformed payload");
  linalg::Matrix r(d, d);
  for (std::size_t i = 0; i < d * d; ++i) r.data()[i] = wire[1 + i];
  linalg::Vector psi(wire.begin() + static_cast<std::ptrdiff_t>(1 + d * d), wire.end());
  return {std::move(r), std::move(psi)};
}

}  // namespace sap::perturb
