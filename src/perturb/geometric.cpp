#include "perturb/geometric.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/decompose.hpp"
#include "linalg/orthogonal.hpp"

namespace sap::perturb {

GeometricPerturbation::GeometricPerturbation(linalg::Matrix r, linalg::Vector t,
                                             double noise_sigma)
    : r_(std::move(r)), t_(std::move(t)), sigma_(noise_sigma) {
  SAP_REQUIRE(r_.rows() == r_.cols() && r_.rows() > 0,
              "GeometricPerturbation: R must be square and non-empty");
  SAP_REQUIRE(t_.size() == r_.rows(), "GeometricPerturbation: t size must match R");
  SAP_REQUIRE(sigma_ >= 0.0, "GeometricPerturbation: sigma must be non-negative");
  SAP_REQUIRE(linalg::orthogonality_defect(r_) < 1e-8,
              "GeometricPerturbation: R must be orthogonal");
}

GeometricPerturbation GeometricPerturbation::random(std::size_t dims, double noise_sigma,
                                                    rng::Engine& eng) {
  SAP_REQUIRE(dims > 0, "GeometricPerturbation::random: dims must be positive");
  linalg::Matrix r = linalg::random_orthogonal(dims, eng);
  linalg::Vector t(dims);
  for (auto& v : t) v = eng.uniform(-1.0, 1.0);
  return {std::move(r), std::move(t), noise_sigma};
}

linalg::Matrix translation_matrix(const linalg::Vector& t, std::size_t n) {
  SAP_REQUIRE(n > 0, "translation_matrix: n must be positive");
  linalg::Matrix psi(t.size(), n);
  for (std::size_t i = 0; i < t.size(); ++i) {
    auto row = psi.row(i);
    for (auto& v : row) v = t[i];
  }
  return psi;
}

linalg::Matrix GeometricPerturbation::apply(const linalg::Matrix& x,
                                            rng::Engine& noise_eng) const {
  linalg::Matrix y;
  apply_into(x, y, noise_eng);
  return y;
}

linalg::Matrix GeometricPerturbation::apply_noiseless(const linalg::Matrix& x) const {
  linalg::Matrix y;
  apply_noiseless_into(x, y);
  return y;
}

void GeometricPerturbation::apply_into(const linalg::Matrix& x, linalg::Matrix& y,
                                       rng::Engine& noise_eng) const {
  apply_noiseless_into(x, y);
  if (sigma_ > 0.0) {
    for (auto& v : y.data()) v += noise_eng.normal(0.0, sigma_);
  }
}

void GeometricPerturbation::apply_noiseless_into(const linalg::Matrix& x,
                                                 linalg::Matrix& y) const {
  SAP_REQUIRE(x.rows() == dims(), "GeometricPerturbation::apply: X must be d x N");
  if (y.rows() != dims() || y.cols() != x.cols()) y = linalg::Matrix(dims(), x.cols());
  // One fused pass: R X accumulated by the blocked kernel, t added in its
  // epilogue (bit-identical to the naive product plus a translation pass).
  linalg::gemm(1.0, r_, x, 0.0, y, t_);
}

linalg::Matrix GeometricPerturbation::invert(const linalg::Matrix& y) const {
  SAP_REQUIRE(y.rows() == dims(), "GeometricPerturbation::invert: Y must be d x N");
  linalg::Matrix centered = y;
  for (std::size_t i = 0; i < centered.rows(); ++i) {
    auto row = centered.row(i);
    for (auto& v : row) v -= t_[i];
  }
  // R is orthogonal: R^-1 = R^T.
  return r_.transpose() * centered;
}

void GeometricPerturbation::precompose_rotation(const linalg::Matrix& g) {
  SAP_REQUIRE(g.rows() == dims() && g.cols() == dims(),
              "precompose_rotation: dimension mismatch");
  SAP_REQUIRE(linalg::orthogonality_defect(g) < 1e-8,
              "precompose_rotation: factor must be orthogonal");
  r_ = g * r_;
}

std::vector<double> GeometricPerturbation::serialize() const {
  SAP_REQUIRE(dims() > 0, "GeometricPerturbation::serialize: default-constructed");
  std::vector<double> wire;
  wire.reserve(2 + r_.size() + t_.size());
  wire.push_back(static_cast<double>(dims()));
  wire.push_back(sigma_);
  wire.insert(wire.end(), r_.data().begin(), r_.data().end());
  wire.insert(wire.end(), t_.begin(), t_.end());
  return wire;
}

GeometricPerturbation GeometricPerturbation::deserialize(std::span<const double> wire) {
  SAP_REQUIRE(wire.size() >= 2, "GeometricPerturbation::deserialize: truncated payload");
  SAP_REQUIRE(std::isfinite(wire[0]) && wire[0] > 0.0 && wire[0] < 1e6 &&
                  wire[0] == std::floor(wire[0]),
              "GeometricPerturbation::deserialize: malformed dimension field");
  const auto d = static_cast<std::size_t>(wire[0]);
  SAP_REQUIRE(wire.size() == 2 + d * d + d,
              "GeometricPerturbation::deserialize: malformed payload");
  linalg::Matrix r(d, d);
  for (std::size_t i = 0; i < d * d; ++i) r.data()[i] = wire[2 + i];
  linalg::Vector t(wire.begin() + static_cast<std::ptrdiff_t>(2 + d * d), wire.end());
  return {std::move(r), std::move(t), wire[1]};
}

}  // namespace sap::perturb
