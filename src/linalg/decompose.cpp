#include "linalg/decompose.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace sap::linalg {

// ---------------------------------------------------------------- QR

Qr qr_decompose(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  SAP_REQUIRE(m > 0 && n > 0, "qr_decompose: empty matrix");

  Matrix r = a;
  Matrix q = Matrix::identity(m);

  const std::size_t steps = std::min(m == 0 ? 0 : m - 1, n);
  for (std::size_t k = 0; k < steps; ++k) {
    // Householder vector for column k below the diagonal.
    double norm_x = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_x += r(i, k) * r(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;

    const double alpha = (r(k, k) >= 0.0) ? -norm_x : norm_x;
    Vector v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double vnorm = norm2(v);
    if (vnorm < 1e-300) continue;
    for (auto& x : v) x /= vnorm;

    // r := (I - 2 v v^T) r on the trailing block.
    for (std::size_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * r(i, j);
      proj *= 2.0;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= proj * v[i - k];
    }
    // q := q (I - 2 v v^T)  (accumulate reflections on the right so that
    // q * r == a at every step).
    for (std::size_t i = 0; i < m; ++i) {
      double proj = 0.0;
      for (std::size_t j = k; j < m; ++j) proj += q(i, j) * v[j - k];
      proj *= 2.0;
      for (std::size_t j = k; j < m; ++j) q(i, j) -= proj * v[j - k];
    }
  }
  // Clean numerical dust below the diagonal of R.
  for (std::size_t i = 1; i < m; ++i)
    for (std::size_t j = 0; j < std::min(i, n); ++j) r(i, j) = 0.0;
  return {std::move(q), std::move(r)};
}

// ---------------------------------------------------------------- LU

Lu lu_decompose(const Matrix& a) {
  SAP_REQUIRE(a.rows() == a.cols(), "lu_decompose: matrix must be square");
  const std::size_t n = a.rows();
  SAP_REQUIRE(n > 0, "lu_decompose: empty matrix");

  Lu f;
  f.lu = a;
  f.piv.resize(n);
  std::iota(f.piv.begin(), f.piv.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below row k.
    std::size_t pivot = k;
    double best = std::abs(f.lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(f.lu(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    SAP_REQUIRE(best > 1e-13, "lu_decompose: matrix is singular (to working precision)");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(f.lu(k, j), f.lu(pivot, j));
      std::swap(f.piv[k], f.piv[pivot]);
      f.sign = -f.sign;
    }
    const double diag = f.lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      f.lu(i, k) /= diag;
      const double lik = f.lu(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) f.lu(i, j) -= lik * f.lu(k, j);
    }
  }
  return f;
}

Vector lu_solve(const Lu& f, std::span<const double> b) {
  const std::size_t n = f.lu.rows();
  SAP_REQUIRE(b.size() == n, "lu_solve: rhs size mismatch");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[f.piv[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= f.lu(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= f.lu(ii, j) * x[j];
    x[ii] = acc / f.lu(ii, ii);
  }
  return x;
}

Matrix lu_solve(const Lu& f, const Matrix& b) {
  SAP_REQUIRE(b.rows() == f.lu.rows(), "lu_solve: rhs row count mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector col = b.col(c);
    const Vector sol = lu_solve(f, col);
    x.set_col(c, sol);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  const Lu f = lu_decompose(a);
  return lu_solve(f, Matrix::identity(a.rows()));
}

double determinant(const Matrix& a) {
  SAP_REQUIRE(a.rows() == a.cols(), "determinant: matrix must be square");
  Lu f;
  try {
    f = lu_decompose(a);
  } catch (const Error&) {
    return 0.0;  // singular
  }
  double det = static_cast<double>(f.sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

// ---------------------------------------------------------------- Cholesky

Matrix cholesky(const Matrix& a) {
  SAP_REQUIRE(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        SAP_REQUIRE(acc > 0.0, "cholesky: matrix is not positive definite");
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return l;
}

// ---------------------------------------------------------------- Jacobi eigen

SymEigen sym_eigen(const Matrix& a, double tol, int max_sweeps) {
  SAP_REQUIRE(a.rows() == a.cols(), "sym_eigen: matrix must be square");
  const std::size_t n = a.rows();
  SAP_REQUIRE(a.approx_equal(a.transpose(), 1e-8 * (1.0 + a.max_abs())),
              "sym_eigen: matrix must be symmetric");

  Matrix d = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off = std::max(off, std::abs(d(p, q)));
    if (off <= tol * (1.0 + d.max_abs())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Vector diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  SymEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = diag[order[j]];
    const Vector column = v.col(order[j]);
    out.vectors.set_col(j, column);
  }
  return out;
}

// ---------------------------------------------------------------- SVD

Svd svd(const Matrix& a, double tol, int max_sweeps) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  SAP_REQUIRE(m > 0 && n > 0, "svd: empty matrix");

  if (m < n) {
    // Work on the transpose and swap factors back: A = U S V^T  <=>
    // A^T = V S U^T.
    Svd t = svd(a.transpose(), tol, max_sweeps);
    return {std::move(t.v), std::move(t.s), std::move(t.u)};
  }

  // One-sided Jacobi: orthogonalize the columns of W = A by plane rotations
  // applied on the right; accumulate them into V. The iteration runs on the
  // TRANSPOSED storage (each column of W / V is a contiguous row of wt / vt)
  // so the O(n^2) column sweeps stream cache lines instead of striding, and
  // the inner loops run on raw pointers instead of bounds-checked element
  // access. The arithmetic — expressions, accumulation order, tolerance
  // checks — is exactly the classic column-layout loop, so the factors are
  // bit-identical to it; only the traversal changed.
  Matrix wt = a.transpose();  // n x m: row j = column j of W
  Matrix vt(n, n);            // row j = column j of V
  for (std::size_t j = 0; j < n; ++j) vt(j, j) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double* wp = wt.row(p).data();
        double* wq = wt.row(q).data();
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += wp[i] * wp[i];
          beta += wq[i] * wq[i];
          gamma += wp[i] * wq[i];
        }
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta) || gamma == 0.0) continue;
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wip = wp[i];
          const double wiq = wq[i];
          wp[i] = c * wip - s * wiq;
          wq[i] = s * wip + c * wiq;
        }
        double* vp = vt.row(p).data();
        double* vq = vt.row(q).data();
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = vp[i];
          const double viq = vq[i];
          vp[i] = c * vip - s * viq;
          vq[i] = s * vip + c * viq;
        }
      }
    }
    if (!rotated) break;
  }

  // Singular values are the column norms of W; U's columns are W normalized.
  Svd out;
  out.s.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Vector norms(n);
  for (std::size_t j = 0; j < n; ++j) norms[j] = norm2(wt.row(j));
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });

  // ut rows are U's columns; built sorted, normalized in place.
  Matrix ut(n, m);
  Matrix vsorted(n, n);
  std::vector<std::size_t> null_rows;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.s[j] = norms[src];
    auto dst = ut.row(j);
    if (norms[src] > 1e-300) {
      const auto wrow = wt.row(src);
      for (std::size_t i = 0; i < m; ++i) dst[i] = wrow[i] / norms[src];
    } else {
      // Null direction (rank-deficient input): completed below.
      null_rows.push_back(j);
    }
    vsorted.set_row(j, vt.row(src));
  }
  out.v = vsorted.transpose();

  // Complete null-space columns of U so its columns are always orthonormal
  // (A = U S V^T is unchanged: the completed columns multiply zero singular
  // values). Gram–Schmidt against the existing columns starting from
  // canonical basis vectors; a usable one always exists since rank < m.
  for (const std::size_t j : null_rows) {
    bool placed = false;
    for (std::size_t e = 0; e < m && !placed; ++e) {
      Vector v(m, 0.0);
      v[e] = 1.0;
      for (std::size_t c = 0; c < n; ++c) {
        if (c == j) continue;
        const auto uc = ut.row(c);
        const double proj = dot(uc, v);
        for (std::size_t i = 0; i < m; ++i) v[i] -= proj * uc[i];
      }
      const double residual = norm2(v);
      if (residual > 1e-6) {
        for (auto& x : v) x /= residual;
        ut.set_row(j, v);
        placed = true;
      }
    }
    SAP_REQUIRE(placed, "svd: failed to complete null-space basis");
  }
  out.u = ut.transpose();
  return out;
}

}  // namespace sap::linalg
