// Dense double-precision matrix for libsap.
//
// Row-major, value-semantic, bounds-checked through SAP_REQUIRE. This is the
// numerical substrate for the whole library: geometric perturbations
// (G(X) = RX + Psi + Delta), the space-adaptor algebra, attack models and
// classifiers all operate on sap::linalg::Matrix.
//
// Layout conventions used across the library:
//   * ML-facing code (data::Dataset, classifiers) stores records as rows
//     (N x d).
//   * Perturbation / protocol code follows the paper's algebra and treats a
//     dataset as d x N — each *column* is one record — so that G(X) = RX + ...
//     type-checks with a d x d rotation R. Matrix::transpose converts.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace sap::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer list (row by row); all rows must have
  /// equal length. Intended for tests and examples.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// rows x cols with elements drawn by `gen()` (e.g. a lambda over Engine).
  template <typename Gen>
  static Matrix generate(std::size_t rows, std::size_t cols, Gen&& gen) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) v = gen();
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Element access, bounds-checked.
  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous row view.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Column copy (rows are contiguous; columns are strided).
  [[nodiscard]] Vector col(std::size_t c) const;

  void set_row(std::size_t r, std::span<const double> values);
  void set_col(std::size_t c, std::span<const double> values);

  /// Raw storage (row-major).
  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  [[nodiscard]] Matrix transpose() const;

  /// Submatrix copy: rows [r0, r0+nr) x cols [c0, c0+nc).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const;

  /// Horizontal concatenation [A | B]; row counts must match.
  [[nodiscard]] static Matrix hcat(const Matrix& a, const Matrix& b);

  /// Vertical concatenation; column counts must match.
  [[nodiscard]] static Matrix vcat(const Matrix& a, const Matrix& b);

  // Arithmetic (dimension-checked).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s) noexcept;
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product. Routed through the blocked gemm() kernel; bit-identical
  /// to matmul_naive (see gemm() for the exactness argument).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Matrix-vector product; x.size() must equal cols().
  [[nodiscard]] Vector matvec(std::span<const double> x) const;

  /// A^T * x without forming the transpose; x.size() must equal rows().
  [[nodiscard]] Vector matvec_transposed(std::span<const double> x) const;

  [[nodiscard]] double norm_fro() const noexcept;
  [[nodiscard]] double max_abs() const noexcept;

  /// Elementwise comparison within absolute tolerance.
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol) const noexcept;

  bool operator==(const Matrix& other) const noexcept = default;

  /// Human-readable rendering (tests / debugging).
  [[nodiscard]] std::string str(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Dense kernels -------------------------------------------------------
//
// The blocked GEMM is the library's one hot-loop kernel: perturbation
// application, space-adaptor algebra, Procrustes and ICA all reduce to it.
// Exactness contract: every output element is accumulated as a single
// left-to-right chain over ascending k, exactly like the naive ikj loop —
// cache blocking only interleaves loads/stores between panels, it never
// reassociates a chain — so gemm(1, A, B, 0, C) is bit-identical to
// matmul_naive(A, B). Tests enforce this on ragged shapes.

/// C = alpha * A * B + beta * C, blocked (register micro-kernel over
/// cache-sized k panels). C must be pre-shaped to A.rows() x B.cols() and
/// must not alias A or B (checked). When `row_bias` is non-empty (size
/// A.rows()), bias[i] is added to every element of row i in the epilogue of
/// the last k panel — the fusion hook for the perturbation translation
/// term. beta == 0 overwrites C (NaN-safe).
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c,
          std::span<const double> row_bias = {});

/// Reference product (the naive ikj triple loop). Kept as the exactness
/// baseline for gemm and for the pre-PR comparisons in bench/local_optimize.
[[nodiscard]] Matrix matmul_naive(const Matrix& a, const Matrix& b);

/// C = A * B^T without forming the transpose: C(i,j) = dot(A.row(i),
/// B.row(j)) with the same ascending single-chain accumulation as dot(),
/// so each element is bit-identical to the explicit dot product. A is
/// m x n, B is k x n, C is m x k (pre-shaped by the caller).
void matmul_abt_into(const Matrix& a, const Matrix& b, Matrix& c);
[[nodiscard]] Matrix matmul_abt(const Matrix& a, const Matrix& b);

/// Column gather: out(:, j) = x(:, idx[j]). One strided pass per row —
/// no per-column Vector temporaries (the subsampling hot path).
[[nodiscard]] Matrix gather_cols(const Matrix& x, std::span<const std::size_t> idx);

// ---- Free vector helpers (std::vector<double> based) ----

/// Dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> v) noexcept;

/// y += alpha * x; sizes must match.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Euclidean distance between two points.
double distance(std::span<const double> a, std::span<const double> b);

}  // namespace sap::linalg
