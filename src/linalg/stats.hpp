// Descriptive statistics over matrices.
//
// Both layouts used in the library are served:
//   * per-ROW stats for the paper's d x N "column = record" layout
//     (one statistic per dimension), and
//   * per-COLUMN stats for the ML-facing N x d layout.
#pragma once

#include "linalg/matrix.hpp"

namespace sap::linalg {

/// Mean of each row (d x N layout: per-dimension mean over records).
Vector row_means(const Matrix& a);

/// Sample standard deviation of each row (ddof = 1; 0 when N < 2).
Vector row_stddev(const Matrix& a);

/// Mean of each column (N x d layout).
Vector col_means(const Matrix& a);

/// Sample standard deviation of each column (ddof = 1).
Vector col_stddev(const Matrix& a);

/// d x d sample covariance of a d x N matrix whose columns are records.
Matrix covariance_cols(const Matrix& a);

/// Pearson correlation between two equally-sized sequences; returns 0 when
/// either sequence is constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Excess kurtosis of a sequence (0 for a Gaussian); returns 0 when the
/// sequence is constant. Used by the ICA attack's non-Gaussianity ranking.
double excess_kurtosis(std::span<const double> x);

}  // namespace sap::linalg
