// Matrix decompositions: Householder QR, partially-pivoted LU, Cholesky,
// cyclic-Jacobi symmetric eigendecomposition, one-sided-Jacobi SVD.
//
// These back the random-orthogonal sampler (QR), the adaptor algebra and
// attack models (LU solve / inverse), ICA whitening (symmetric eigen) and
// the Procrustes known-input attack (SVD).
#pragma once

#include "linalg/matrix.hpp"

namespace sap::linalg {

/// QR factorization A = Q R with Q m x m orthogonal, R m x n upper
/// triangular (Householder reflections).
struct Qr {
  Matrix q;  ///< m x m orthogonal
  Matrix r;  ///< m x n upper triangular
};

/// Householder QR of any m x n matrix.
Qr qr_decompose(const Matrix& a);

/// LU factorization with partial pivoting: P A = L U packed in one matrix.
struct Lu {
  Matrix lu;                     ///< L (unit diagonal, strictly lower) + U
  std::vector<std::size_t> piv;  ///< row permutation applied to A
  int sign = 1;                  ///< permutation parity (for determinant)
};

/// Partially pivoted LU; throws sap::Error on singular input.
Lu lu_decompose(const Matrix& a);

/// Solve A x = b given the LU factorization of A.
Vector lu_solve(const Lu& f, std::span<const double> b);

/// Solve A X = B column-by-column.
Matrix lu_solve(const Lu& f, const Matrix& b);

/// Inverse via LU; throws sap::Error on singular input.
Matrix inverse(const Matrix& a);

/// Determinant via LU (0.0 for singular matrices).
double determinant(const Matrix& a);

/// Cholesky factor L (lower) of a symmetric positive-definite matrix:
/// A = L L^T. Throws sap::Error if A is not positive definite.
Matrix cholesky(const Matrix& a);

/// Symmetric eigendecomposition A = V diag(values) V^T,
/// eigenvalues sorted descending. Input must be symmetric.
struct SymEigen {
  Vector values;   ///< descending
  Matrix vectors;  ///< columns are the corresponding eigenvectors
};

/// Cyclic Jacobi rotations; `tol` bounds the off-diagonal infinity norm.
SymEigen sym_eigen(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

/// Thin singular value decomposition A = U diag(s) V^T
/// (U: m x n, s: n, V: n x n for m >= n; computed for any shape).
struct Svd {
  Matrix u;
  Vector s;  ///< descending, non-negative
  Matrix v;
};

/// One-sided Jacobi (Hestenes) SVD.
Svd svd(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

}  // namespace sap::linalg
