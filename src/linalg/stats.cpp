#include "linalg/stats.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sap::linalg {

Vector row_means(const Matrix& a) {
  SAP_REQUIRE(!a.empty(), "row_means: empty matrix");
  Vector m(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (double v : a.row(r)) acc += v;
    m[r] = acc / static_cast<double>(a.cols());
  }
  return m;
}

Vector row_stddev(const Matrix& a) {
  SAP_REQUIRE(!a.empty(), "row_stddev: empty matrix");
  const Vector mean = row_means(a);
  Vector sd(a.rows(), 0.0);
  if (a.cols() < 2) return sd;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (double v : a.row(r)) {
      const double d = v - mean[r];
      acc += d * d;
    }
    sd[r] = std::sqrt(acc / static_cast<double>(a.cols() - 1));
  }
  return sd;
}

Vector col_means(const Matrix& a) {
  SAP_REQUIRE(!a.empty(), "col_means: empty matrix");
  Vector m(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) m[c] += row[c];
  }
  for (auto& v : m) v /= static_cast<double>(a.rows());
  return m;
}

Vector col_stddev(const Matrix& a) {
  SAP_REQUIRE(!a.empty(), "col_stddev: empty matrix");
  const Vector mean = col_means(a);
  Vector sd(a.cols(), 0.0);
  if (a.rows() < 2) return sd;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const double d = row[c] - mean[c];
      sd[c] += d * d;
    }
  }
  for (auto& v : sd) v = std::sqrt(v / static_cast<double>(a.rows() - 1));
  return sd;
}

Matrix covariance_cols(const Matrix& a) {
  SAP_REQUIRE(a.cols() >= 2, "covariance_cols: need at least two records");
  const std::size_t d = a.rows();
  const std::size_t n = a.cols();
  const Vector mean = row_means(a);
  Matrix cov(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        acc += (a(i, k) - mean[i]) * (a(j, k) - mean[j]);
      const double c = acc / static_cast<double>(n - 1);
      cov(i, j) = c;
      cov(j, i) = c;
    }
  }
  return cov;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  SAP_REQUIRE(x.size() == y.size() && x.size() >= 2, "pearson: need matched sequences, n >= 2");
  const auto n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double excess_kurtosis(std::span<const double> x) {
  SAP_REQUIRE(x.size() >= 4, "excess_kurtosis: need at least 4 samples");
  const auto n = static_cast<double>(x.size());
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= n;
  double m2 = 0.0, m4 = 0.0;
  for (double v : x) {
    const double d = v - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  if (m2 <= 1e-300) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

}  // namespace sap::linalg
