#include "linalg/orthogonal.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/decompose.hpp"

namespace sap::linalg {

Matrix random_orthogonal(std::size_t d, rng::Engine& eng) {
  SAP_REQUIRE(d > 0, "random_orthogonal: dimension must be positive");
  Matrix g = Matrix::generate(d, d, [&] { return eng.normal(); });
  Qr f = qr_decompose(g);
  // Stewart's sign correction: scale Q's columns by sign(diag(R)) so the
  // distribution is exactly Haar (QR alone biases toward positive diagonal).
  for (std::size_t j = 0; j < d; ++j) {
    const double sign = (f.r(j, j) >= 0.0) ? 1.0 : -1.0;
    for (std::size_t i = 0; i < d; ++i) f.q(i, j) *= sign;
  }
  return std::move(f.q);
}

Matrix random_rotation(std::size_t d, rng::Engine& eng) {
  Matrix q = random_orthogonal(d, eng);
  if (determinant(q) < 0.0) {
    // Flip one column: stays Haar on SO(d) by symmetry.
    for (std::size_t i = 0; i < d; ++i) q(i, 0) = -q(i, 0);
  }
  return q;
}

double orthogonality_defect(const Matrix& q) {
  SAP_REQUIRE(q.rows() == q.cols(), "orthogonality_defect: matrix must be square");
  const Matrix gram = q.transpose() * q;
  const Matrix eye = Matrix::identity(q.rows());
  double defect = 0.0;
  for (std::size_t i = 0; i < gram.rows(); ++i)
    for (std::size_t j = 0; j < gram.cols(); ++j)
      defect = std::max(defect, std::abs(gram(i, j) - eye(i, j)));
  return defect;
}

Matrix re_orthonormalize(const Matrix& q) {
  SAP_REQUIRE(q.rows() == q.cols() && q.rows() > 0,
              "re_orthonormalize: matrix must be square");
  Qr f = qr_decompose(q);
  // Sign correction keeps the result a perturbation of the input rather than
  // an arbitrary column-sign flip of it: for near-orthogonal q, R's diagonal
  // is close to ±1 and q ≈ Q diag(sign(diag(R))).
  for (std::size_t j = 0; j < q.cols(); ++j) {
    const double sign = (f.r(j, j) >= 0.0) ? 1.0 : -1.0;
    for (std::size_t i = 0; i < q.rows(); ++i) f.q(i, j) *= sign;
  }
  return std::move(f.q);
}

Matrix procrustes_rotation(const Matrix& src, const Matrix& dst) {
  SAP_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "procrustes_rotation: shape mismatch");
  SAP_REQUIRE(src.cols() >= 1, "procrustes_rotation: need at least one point");
  const std::size_t d = src.rows();
  const std::size_t m = src.cols();

  if (m >= d) {
    const Matrix cross = dst * src.transpose();
    const Svd f = svd(cross);
    return f.u * f.v.transpose();
  }

  // Fewer correspondence points than dimensions (the known-input attack's
  // common case): M = dst src^T has rank <= m, so running the d x d Jacobi
  // SVD wastes almost all of its sweeps on the null space. QR-reduce both
  // point sets instead — M = Qy (Ry Rx^T) Qx^T — and decompose only the
  // m x m core. Any orthonormal completion of the null space is an optimal
  // Procrustes solution (zero singular values contribute nothing to the
  // trace objective); the trailing columns of the two full Q factors are
  // exactly such a completion, so pair them up.
  const Qr qx = qr_decompose(src);
  const Qr qy = qr_decompose(dst);
  Matrix core(m, m);
  // core = Ry_top * Rx_top^T; both tops are m x m upper triangular.
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      const std::size_t k0 = std::max(i, j);  // triangular: terms below are zero
      for (std::size_t k = k0; k < m; ++k) acc += qy.r(i, k) * qx.r(j, k);
      core(i, j) = acc;
    }
  const Svd f = svd(core);

  // R = [Qy_thin Us | Qy_rest] * [Qx_thin Vs | Qx_rest]^T.
  const Matrix u_rot = qy.q.block(0, 0, d, m) * f.u;
  const Matrix v_rot = qx.q.block(0, 0, d, m) * f.v;
  Matrix r = matmul_abt(u_rot, v_rot);
  if (d > m) {
    const Matrix rest = matmul_abt(qy.q.block(0, m, d, d - m), qx.q.block(0, m, d, d - m));
    r += rest;
  }
  return r;
}

Matrix givens(std::size_t d, std::size_t p, std::size_t q, double angle) {
  SAP_REQUIRE(p < d && q < d && p != q, "givens: invalid plane");
  Matrix g = Matrix::identity(d);
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  g(p, p) = c;
  g(q, q) = c;
  g(p, q) = -s;
  g(q, p) = s;
  return g;
}

}  // namespace sap::linalg
