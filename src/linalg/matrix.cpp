#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace sap::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  SAP_REQUIRE((rows == 0) == (cols == 0), "Matrix: degenerate shape (one zero dimension)");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SAP_REQUIRE(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  SAP_REQUIRE(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  SAP_REQUIRE(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  SAP_REQUIRE(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  SAP_REQUIRE(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

Vector Matrix::col(std::size_t c) const {
  SAP_REQUIRE(c < cols_, "Matrix::col: index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  SAP_REQUIRE(r < rows_ && values.size() == cols_, "Matrix::set_row: shape mismatch");
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  SAP_REQUIRE(c < cols_ && values.size() == rows_, "Matrix::set_col: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.data_[c * rows_ + r] = data_[r * cols_ + c];
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
  SAP_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_, "Matrix::block: out of range");
  Matrix b(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) b(r, c) = data_[(r0 + r) * cols_ + (c0 + c)];
  return b;
}

Matrix Matrix::hcat(const Matrix& a, const Matrix& b) {
  SAP_REQUIRE(a.rows_ == b.rows_, "Matrix::hcat: row count mismatch");
  Matrix out(a.rows_, a.cols_ + b.cols_);
  for (std::size_t r = 0; r < a.rows_; ++r) {
    auto dst = out.row(r);
    auto ra = a.row(r);
    auto rb = b.row(r);
    std::copy(ra.begin(), ra.end(), dst.begin());
    std::copy(rb.begin(), rb.end(), dst.begin() + static_cast<std::ptrdiff_t>(a.cols_));
  }
  return out;
}

Matrix Matrix::vcat(const Matrix& a, const Matrix& b) {
  SAP_REQUIRE(a.cols_ == b.cols_, "Matrix::vcat: column count mismatch");
  Matrix out(a.rows_ + b.rows_, a.cols_);
  std::copy(a.data_.begin(), a.data_.end(), out.data_.begin());
  std::copy(b.data_.begin(), b.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(a.data_.size()));
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  SAP_REQUIRE(a.cols_ == b.rows_, "Matrix::*: inner dimension mismatch");
  Matrix c(a.rows_, b.cols_);
  gemm(1.0, a, b, 0.0, c);
  return c;
}

Matrix matmul_naive(const Matrix& a, const Matrix& b) {
  SAP_REQUIRE(a.cols() == b.rows(), "matmul_naive: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // ikj loop order: the inner loop streams rows of both b and c. No
  // zero-skip: inputs here are dense (rotations, data), so the branch almost
  // never fires and its misprediction costs more than the FMA row it would
  // save (micro_linalg confirms).
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.data().data() + i * c.cols();
    const double* arow = a.data().data() + i * a.cols();
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = arow[k];
      const double* brow = b.data().data() + k * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

namespace {

// Blocking parameters. The panel kernel jams kMr rows of C through one
// streamed pass over a KC-row panel of B, so B is re-read from cache m/kMr
// times instead of m times; KC keeps the panel L1/L2-resident. The inner j
// loop has exactly the naive loop's shape (independent streaming updates),
// which every vectorizer handles, and each C element still accumulates as a
// single left-to-right chain over ascending k — the blocked product is
// bit-identical to matmul_naive.
constexpr std::size_t kMr = 4;
constexpr std::size_t kKc = 256;

/// MR-row x full-width panel update: C[i0..i0+MR) += alpha * A_panel * B_panel,
/// with `bias` (when non-null) added once after the final k of the last panel.
template <std::size_t MR>
void panel_kernel(std::size_t n, std::size_t kc, double alpha, const double* a,
                  std::size_t lda, const double* b, double* c, const double* bias) {
  for (std::size_t k = 0; k < kc; ++k) {
    const double* brow = b + k * n;
    double av[MR];
    for (std::size_t ii = 0; ii < MR; ++ii) av[ii] = alpha * a[ii * lda + k];
    for (std::size_t j = 0; j < n; ++j) {
      const double bj = brow[j];
      for (std::size_t ii = 0; ii < MR; ++ii) c[ii * n + j] += av[ii] * bj;
    }
  }
  if (bias != nullptr)
    for (std::size_t ii = 0; ii < MR; ++ii)
      for (std::size_t j = 0; j < n; ++j) c[ii * n + j] += bias[ii];
}

}  // namespace

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c,
          std::span<const double> row_bias) {
  SAP_REQUIRE(a.cols() == b.rows(), "gemm: inner dimension mismatch");
  SAP_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm: C must be pre-shaped to A.rows() x B.cols()");
  SAP_REQUIRE(row_bias.empty() || row_bias.size() == a.rows(),
              "gemm: row_bias must have A.rows() entries");
  // C is zeroed/scaled before A and B are streamed, so aliasing would read
  // clobbered inputs silently.
  SAP_REQUIRE(&c != &a && &c != &b, "gemm: C must not alias A or B");
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();

  if (beta == 0.0) {
    std::fill(c.data().begin(), c.data().end(), 0.0);
  } else if (beta != 1.0) {
    for (auto& v : c.data()) v *= beta;
  }
  if (kk == 0 || m == 0 || n == 0) {
    if (!row_bias.empty())
      for (std::size_t i = 0; i < m; ++i)
        for (auto& v : c.row(i)) v += row_bias[i];
    return;
  }

  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();

  for (std::size_t k0 = 0; k0 < kk; k0 += kKc) {
    const std::size_t kc = std::min(kKc, kk - k0);
    const bool last_panel = (k0 + kc == kk);
    const double* bpanel = pb + k0 * n;
    for (std::size_t i0 = 0; i0 < m; i0 += kMr) {
      const std::size_t mr = std::min(kMr, m - i0);
      const double* atile = pa + i0 * kk + k0;
      double* ctile = pc + i0 * n;
      const double* bias =
          (last_panel && !row_bias.empty()) ? row_bias.data() + i0 : nullptr;
      switch (mr) {
        case 4: panel_kernel<4>(n, kc, alpha, atile, kk, bpanel, ctile, bias); break;
        case 3: panel_kernel<3>(n, kc, alpha, atile, kk, bpanel, ctile, bias); break;
        case 2: panel_kernel<2>(n, kc, alpha, atile, kk, bpanel, ctile, bias); break;
        default: panel_kernel<1>(n, kc, alpha, atile, kk, bpanel, ctile, bias); break;
      }
    }
  }
}

void matmul_abt_into(const Matrix& a, const Matrix& b, Matrix& c) {
  SAP_REQUIRE(a.cols() == b.cols(), "matmul_abt: inner dimension mismatch");
  SAP_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
              "matmul_abt: C must be pre-shaped to A.rows() x B.rows()");
  const std::size_t m = a.rows();
  const std::size_t k = b.rows();
  const std::size_t n = a.cols();
  // 4 x 4 row-pair tiling: 16 independent ascending accumulation chains give
  // the ILP a single latency-bound dot() chain cannot; each chain is still
  // the plain left-to-right dot product, so elements match dot() bit-wise.
  constexpr std::size_t kTile = 4;
  for (std::size_t i0 = 0; i0 < m; i0 += kTile) {
    const std::size_t mt = std::min(kTile, m - i0);
    for (std::size_t j0 = 0; j0 < k; j0 += kTile) {
      const std::size_t nt = std::min(kTile, k - j0);
      double acc[kTile][kTile] = {};
      for (std::size_t t = 0; t < n; ++t)
        for (std::size_t ii = 0; ii < mt; ++ii) {
          const double av = a.data()[(i0 + ii) * n + t];
          for (std::size_t jj = 0; jj < nt; ++jj)
            acc[ii][jj] += av * b.data()[(j0 + jj) * n + t];
        }
      for (std::size_t ii = 0; ii < mt; ++ii)
        for (std::size_t jj = 0; jj < nt; ++jj) c(i0 + ii, j0 + jj) = acc[ii][jj];
    }
  }
}

Matrix matmul_abt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_abt_into(a, b, c);
  return c;
}

Matrix gather_cols(const Matrix& x, std::span<const std::size_t> idx) {
  SAP_REQUIRE(!idx.empty(), "gather_cols: empty index set");
  for (const std::size_t j : idx)
    SAP_REQUIRE(j < x.cols(), "gather_cols: index out of range");
  Matrix out(x.rows(), idx.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t j = 0; j < idx.size(); ++j) dst[j] = src[idx[j]];
  }
  return out;
}

Vector Matrix::matvec(std::span<const double> x) const {
  SAP_REQUIRE(x.size() == cols_, "Matrix::matvec: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) y[r] = dot(row(r), x);
  return y;
}

Vector Matrix::matvec_transposed(std::span<const double> x) const {
  SAP_REQUIRE(x.size() == rows_, "Matrix::matvec_transposed: size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) axpy(x[r], row(r), y);
  return y;
}

double Matrix::norm_fro() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const noexcept {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

std::string Matrix::str(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << data_[r * cols_ + c];
    }
    os << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
  SAP_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SAP_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double distance(std::span<const double> a, std::span<const double> b) {
  SAP_REQUIRE(a.size() == b.size(), "distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace sap::linalg
