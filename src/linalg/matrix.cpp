#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace sap::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  SAP_REQUIRE((rows == 0) == (cols == 0), "Matrix: degenerate shape (one zero dimension)");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SAP_REQUIRE(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  SAP_REQUIRE(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  SAP_REQUIRE(r < rows_ && c < cols_, "Matrix: index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  SAP_REQUIRE(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  SAP_REQUIRE(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

Vector Matrix::col(std::size_t c) const {
  SAP_REQUIRE(c < cols_, "Matrix::col: index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  SAP_REQUIRE(r < rows_ && values.size() == cols_, "Matrix::set_row: shape mismatch");
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  SAP_REQUIRE(c < cols_ && values.size() == rows_, "Matrix::set_col: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.data_[c * rows_ + r] = data_[r * cols_ + c];
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
  SAP_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_, "Matrix::block: out of range");
  Matrix b(nr, nc);
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t c = 0; c < nc; ++c) b(r, c) = data_[(r0 + r) * cols_ + (c0 + c)];
  return b;
}

Matrix Matrix::hcat(const Matrix& a, const Matrix& b) {
  SAP_REQUIRE(a.rows_ == b.rows_, "Matrix::hcat: row count mismatch");
  Matrix out(a.rows_, a.cols_ + b.cols_);
  for (std::size_t r = 0; r < a.rows_; ++r) {
    auto dst = out.row(r);
    auto ra = a.row(r);
    auto rb = b.row(r);
    std::copy(ra.begin(), ra.end(), dst.begin());
    std::copy(rb.begin(), rb.end(), dst.begin() + static_cast<std::ptrdiff_t>(a.cols_));
  }
  return out;
}

Matrix Matrix::vcat(const Matrix& a, const Matrix& b) {
  SAP_REQUIRE(a.cols_ == b.cols_, "Matrix::vcat: column count mismatch");
  Matrix out(a.rows_ + b.rows_, a.cols_);
  std::copy(a.data_.begin(), a.data_.end(), out.data_.begin());
  std::copy(b.data_.begin(), b.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(a.data_.size()));
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  SAP_REQUIRE(a.cols_ == b.rows_, "Matrix::*: inner dimension mismatch");
  Matrix c(a.rows_, b.cols_);
  // ikj loop order: the inner loop streams rows of both b and c.
  for (std::size_t i = 0; i < a.rows_; ++i) {
    double* crow = c.data_.data() + i * c.cols_;
    for (std::size_t k = 0; k < a.cols_; ++k) {
      // No zero-skip: inputs here are dense (rotations, data), so the branch
      // almost never fires and its misprediction costs more than the FMA row
      // it would save (micro_linalg confirms).
      const double aik = a.data_[i * a.cols_ + k];
      const double* brow = b.data_.data() + k * b.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Vector Matrix::matvec(std::span<const double> x) const {
  SAP_REQUIRE(x.size() == cols_, "Matrix::matvec: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) y[r] = dot(row(r), x);
  return y;
}

Vector Matrix::matvec_transposed(std::span<const double> x) const {
  SAP_REQUIRE(x.size() == rows_, "Matrix::matvec_transposed: size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) axpy(x[r], row(r), y);
  return y;
}

double Matrix::norm_fro() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const noexcept {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

std::string Matrix::str(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << data_[r * cols_ + c];
    }
    os << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
  SAP_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SAP_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double distance(std::span<const double> a, std::span<const double> b) {
  SAP_REQUIRE(a.size() == b.size(), "distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace sap::linalg
