// Random orthogonal matrices and the orthogonal Procrustes solver.
//
// random_orthogonal implements Stewart's construction (QR of a Gaussian
// matrix with sign correction), which samples from the Haar measure on O(d)
// — the "random rotation" R of the paper's perturbation G(X) = RX + Psi + Delta.
// procrustes_rotation backs the known-input attack: given a few original
// points and their perturbed images, the attacker's best orthogonal estimate
// of R is the Procrustes solution.
#pragma once

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace sap::linalg {

/// Haar-distributed random orthogonal d x d matrix (det is +1 or -1).
Matrix random_orthogonal(std::size_t d, rng::Engine& eng);

/// Haar-distributed random rotation: orthogonal with det = +1.
Matrix random_rotation(std::size_t d, rng::Engine& eng);

/// Orthogonality defect ||Q^T Q - I||_max; 0 for exactly orthogonal Q.
double orthogonality_defect(const Matrix& q);

/// Snap a slightly-drifted orthogonal matrix back onto O(d): the Q factor of
/// a Householder QR with Stewart's column sign correction, which for a
/// near-orthogonal input is a small perturbation of the input itself
/// (R ≈ I up to signs). Long products of orthogonal matrices accumulate
/// floating-point defect linearly; SpaceAdaptor composition chains use this
/// to stay inside the constructor's orthogonality gate.
Matrix re_orthonormalize(const Matrix& q);

/// Orthogonal Procrustes: the orthogonal R minimizing ||R * src - dst||_F,
/// where src and dst are d x m matrices whose COLUMNS are corresponding
/// points. Solution: with M = dst * src^T = U S V^T, R = U V^T.
Matrix procrustes_rotation(const Matrix& src, const Matrix& dst);

/// Elementary Givens rotation in the (p, q) plane of dimension d — used by
/// the optimizer's local refinement step.
Matrix givens(std::size_t d, std::size_t p, std::size_t q, double angle);

}  // namespace sap::linalg
