// CSV import/export for Dataset.
//
// Format: one record per line, features as decimal numbers, integer label in
// the last column. An optional header line is written on save and skipped on
// load when it does not parse as numbers.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace sap::data {

/// Write `ds` to `path`; throws sap::Error on IO failure.
void save_csv(const Dataset& ds, const std::string& path);

/// Read a dataset written by save_csv (or any feature,label CSV).
/// Throws sap::Error on IO failure or malformed rows.
Dataset load_csv(const std::string& path, const std::string& name);

}  // namespace sap::data
