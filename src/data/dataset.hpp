// Labeled dataset container (ML-facing, row = record).
//
// The protocol side of the library views data as d x N matrices (column =
// record) to follow the paper's algebra; Dataset::features_T() bridges the
// two conventions.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace sap::data {

/// N x d feature matrix plus integer class labels.
class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of features (N x d) and labels (size N).
  Dataset(std::string name, linalg::Matrix features, std::vector<int> labels);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return features_.rows(); }
  [[nodiscard]] std::size_t dims() const noexcept { return features_.cols(); }

  [[nodiscard]] const linalg::Matrix& features() const noexcept { return features_; }
  [[nodiscard]] linalg::Matrix& features() noexcept { return features_; }
  [[nodiscard]] const std::vector<int>& labels() const noexcept { return labels_; }

  /// Record view / label of row i.
  [[nodiscard]] std::span<const double> record(std::size_t i) const { return features_.row(i); }
  [[nodiscard]] int label(std::size_t i) const;

  /// Features transposed to the paper's d x N layout (column = record).
  [[nodiscard]] linalg::Matrix features_T() const { return features_.transpose(); }

  /// Distinct labels, ascending.
  [[nodiscard]] std::vector<int> classes() const;

  /// Number of records with each label, aligned with classes().
  [[nodiscard]] std::vector<std::size_t> class_counts() const;

  /// Row subset (copies); indices must be in range.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Concatenate two datasets with identical dimensionality.
  [[nodiscard]] static Dataset concat(const Dataset& a, const Dataset& b);

  /// Append `more`'s records in place (identical dimensionality required;
  /// the name is kept). Record order is preserved: this dataset's records
  /// first, then `more`'s in their original order — the streaming-ingest
  /// path relies on appends being order-deterministic.
  void append(const Dataset& more);

  /// Row range [begin, end) as a new dataset (copies).
  [[nodiscard]] Dataset slice(std::size_t begin, std::size_t end) const;

  /// Randomly permute records in place.
  void shuffle(rng::Engine& eng);

 private:
  std::string name_;
  linalg::Matrix features_;
  std::vector<int> labels_;
};

/// Train/test split by fraction (0 < train_fraction < 1) after a shuffle.
struct Split {
  Dataset train;
  Dataset test;
};
Split train_test_split(const Dataset& ds, double train_fraction, rng::Engine& eng);

/// Stratified variant: class proportions preserved in both halves
/// (each class is split independently).
Split stratified_split(const Dataset& ds, double train_fraction, rng::Engine& eng);

}  // namespace sap::data
