// Column normalizers.
//
// The paper's perturbation operates on the *normalized* dataset ("X denotes
// the normalized original dataset") with translations drawn from [-1, 1], so
// min-max normalization to [0, 1] is the library default; z-score is provided
// for classifiers that prefer standardized inputs.
#pragma once

#include "linalg/matrix.hpp"

namespace sap::data {

/// Per-column min-max scaling to [0, 1]. Constant columns map to 0.5.
class MinMaxNormalizer {
 public:
  /// Learn column ranges from an N x d matrix.
  void fit(const linalg::Matrix& x);

  /// Scale (N x d) into [0,1] using the fitted ranges.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;

  /// Undo the scaling.
  [[nodiscard]] linalg::Matrix inverse(const linalg::Matrix& x) const;

  [[nodiscard]] bool fitted() const noexcept { return !lo_.empty(); }
  [[nodiscard]] const linalg::Vector& lows() const noexcept { return lo_; }
  [[nodiscard]] const linalg::Vector& highs() const noexcept { return hi_; }

 private:
  linalg::Vector lo_, hi_;
};

/// Per-column standardization to zero mean / unit variance.
/// Constant columns map to 0.
class ZScoreNormalizer {
 public:
  void fit(const linalg::Matrix& x);
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;
  [[nodiscard]] linalg::Matrix inverse(const linalg::Matrix& x) const;
  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }

 private:
  linalg::Vector mean_, sd_;
};

}  // namespace sap::data
