// Synthetic stand-ins for the paper's 12 UCI datasets.
//
// The PODC'07 experiments run on UCI ML datasets that are not shipped with
// this repository (no network access in the build environment). Each dataset
// is replaced by a generator matching its published shape: record count,
// dimensionality, number of classes, class priors, and a class-separability
// level calibrated so the clean-data classifier accuracies land near the
// commonly reported figures for that dataset. Geometric perturbation and SAP
// only interact with the data through (a) its column variance structure and
// (b) its class geometry, both of which the generators exercise.
// See DESIGN.md §2 (substitutions) and EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace sap::data {

/// Declarative description of one synthetic dataset.
struct SyntheticSpec {
  std::string name;
  std::size_t rows = 0;
  std::size_t dims = 0;
  std::size_t classes = 2;
  /// Class priors; empty → uniform. Must sum to ~1 when present.
  std::vector<double> priors;
  /// Distance between class mean vectors, in units of within-class spread.
  /// Higher → easier classification problem.
  double class_sep = 1.5;
  /// Fraction of features generated as binary indicators (Votes-style
  /// categorical data) instead of correlated Gaussians.
  double binary_fraction = 0.0;
  /// Rank of the shared low-rank correlation component (0 → independent
  /// features). Correlated features matter: they are what PCA/ICA attacks
  /// exploit.
  std::size_t corr_rank = 2;
};

/// Deterministically generate the dataset described by `spec`.
Dataset make_synthetic(const SyntheticSpec& spec, std::uint64_t seed);

/// Specs for the 12 datasets of the paper's Figures 5/6, in paper order:
/// Breast_w, Credit_a, Credit_g, Diabetes, Ecoli, Hepatitis, Heart,
/// Ionosphere, Iris, Shuttle, Votes, Wine.
/// Shuttle is scaled from 43.5k to 2k records to keep the SVM benches
/// tractable on one core (documented substitution; class structure kept).
const std::vector<SyntheticSpec>& uci_suite();

/// Generate one of the twelve by name (case-sensitive, as in uci_suite()).
/// Throws sap::Error for unknown names.
Dataset make_uci(const std::string& name, std::uint64_t seed);

/// The deterministic streaming-workload prep shared by sap_cli's
/// `contribute`/`party` subcommands and their tests: normalized UCI
/// dataset, shuffled under seed^0xC0B, the LAST batches*batch_records
/// records held back as the contribution stream (batch b =
/// stream.slice(b*m, (b+1)*m)), the rest partitioned into `parties`
/// shards. Every process that calls this with the same arguments derives
/// bit-identical shards and stream — the cross-process topology's
/// bit-identity guarantee depends on there being exactly ONE copy of this
/// sequence. Throws sap::Error when the dataset is too small for the
/// requested batches/parties.
struct StreamWorkload {
  std::vector<Dataset> shards;
  Dataset stream;
};
StreamWorkload make_stream_workload(const std::string& uci_name, std::size_t parties,
                                    std::size_t batches, std::size_t batch_records,
                                    std::uint64_t seed);

}  // namespace sap::data
