#include "data/normalize.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "linalg/stats.hpp"

namespace sap::data {

void MinMaxNormalizer::fit(const linalg::Matrix& x) {
  SAP_REQUIRE(!x.empty(), "MinMaxNormalizer::fit: empty matrix");
  const std::size_t d = x.cols();
  lo_.assign(d, std::numeric_limits<double>::infinity());
  hi_.assign(d, -std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      lo_[c] = std::min(lo_[c], row[c]);
      hi_[c] = std::max(hi_[c], row[c]);
    }
  }
}

linalg::Matrix MinMaxNormalizer::transform(const linalg::Matrix& x) const {
  SAP_REQUIRE(fitted(), "MinMaxNormalizer: transform before fit");
  SAP_REQUIRE(x.cols() == lo_.size(), "MinMaxNormalizer: dimension mismatch");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double range = hi_[c] - lo_[c];
      dst[c] = (range > 0.0) ? (src[c] - lo_[c]) / range : 0.5;
    }
  }
  return out;
}

linalg::Matrix MinMaxNormalizer::inverse(const linalg::Matrix& x) const {
  SAP_REQUIRE(fitted(), "MinMaxNormalizer: inverse before fit");
  SAP_REQUIRE(x.cols() == lo_.size(), "MinMaxNormalizer: dimension mismatch");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double range = hi_[c] - lo_[c];
      dst[c] = (range > 0.0) ? src[c] * range + lo_[c] : lo_[c];
    }
  }
  return out;
}

void ZScoreNormalizer::fit(const linalg::Matrix& x) {
  SAP_REQUIRE(x.rows() >= 2, "ZScoreNormalizer::fit: need at least two rows");
  mean_ = linalg::col_means(x);
  sd_ = linalg::col_stddev(x);
}

linalg::Matrix ZScoreNormalizer::transform(const linalg::Matrix& x) const {
  SAP_REQUIRE(fitted(), "ZScoreNormalizer: transform before fit");
  SAP_REQUIRE(x.cols() == mean_.size(), "ZScoreNormalizer: dimension mismatch");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c)
      dst[c] = (sd_[c] > 0.0) ? (src[c] - mean_[c]) / sd_[c] : 0.0;
  }
  return out;
}

linalg::Matrix ZScoreNormalizer::inverse(const linalg::Matrix& x) const {
  SAP_REQUIRE(fitted(), "ZScoreNormalizer: inverse before fit");
  SAP_REQUIRE(x.cols() == mean_.size(), "ZScoreNormalizer: dimension mismatch");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = src[c] * sd_[c] + mean_[c];
  }
  return out;
}

}  // namespace sap::data
