// Multiparty partitioners.
//
// The paper's experiments split each pooled dataset into k "randomly sized
// sub-datasets" per data provider, under two regimes:
//   * Uniform — each local dataset is (approximately) a uniform random
//     sample of the pooled data;
//   * Class (skewed) — local class proportions diverge from the pooled
//     ones, modeled with per-party Dirichlet class weights.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace sap::data {

enum class PartitionKind {
  kUniform,  ///< local datasets are uniform samples of the pool
  kClass,    ///< class-skewed local datasets (Dirichlet over classes)
};

struct PartitionOptions {
  PartitionKind kind = PartitionKind::kUniform;
  /// Dirichlet concentration for the random *sizes* of the k parts
  /// (larger → more equal sizes).
  double size_alpha = 8.0;
  /// Dirichlet concentration for per-party class weights in kClass mode
  /// (smaller → more skew).
  double class_alpha = 0.5;
  /// Every party receives at least this many records.
  std::size_t min_records = 8;
};

/// Split `pool` into k local datasets. Every record is assigned to exactly
/// one party. Throws sap::Error when the pool is too small to honor
/// min_records for all parties.
std::vector<Dataset> partition(const Dataset& pool, std::size_t k,
                               const PartitionOptions& opts, rng::Engine& eng);

/// Total-variation distance between a party's class distribution and the
/// pooled one — 0 for perfectly uniform sampling, → 1 for extreme skew.
/// Used by tests and the partition-effect experiments.
double class_skew(const Dataset& pool, const Dataset& part);

}  // namespace sap::data
