#include "data/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace sap::data {
namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) {
    // CRLF files leave a '\r' on the final cell of every line; strip it so
    // Windows-written CSVs parse identically to Unix ones.
    if (!cell.empty() && cell.back() == '\r') cell.pop_back();
    cells.push_back(cell);
  }
  return cells;
}

bool parse_double(const std::string& s, double& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  // Trailing blanks ("1.0 ", "1.0\t") are padding, not malformed numbers.
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  return ec == std::errc{} && ptr == end;
}

}  // namespace

void save_csv(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  SAP_REQUIRE(out.good(), "save_csv: cannot open '" + path + "' for writing");
  for (std::size_t c = 0; c < ds.dims(); ++c) out << 'f' << c << ',';
  out << "label\n";
  out.precision(17);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (double v : ds.record(i)) out << v << ',';
    out << ds.label(i) << '\n';
  }
  SAP_REQUIRE(out.good(), "save_csv: write failure on '" + path + "'");
}

Dataset load_csv(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  SAP_REQUIRE(in.good(), "load_csv: cannot open '" + path + "'");

  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  std::string line;
  std::size_t dims = 0;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF ending
    if (line.empty()) continue;
    const auto cells = split_line(line);
    SAP_REQUIRE(cells.size() >= 2, "load_csv: row needs at least one feature and a label");
    double probe;
    if (first && !parse_double(cells[0], probe)) {
      first = false;
      continue;  // header line
    }
    first = false;
    std::vector<double> rec(cells.size() - 1);
    for (std::size_t c = 0; c + 1 < cells.size(); ++c)
      SAP_REQUIRE(parse_double(cells[c], rec[c]), "load_csv: malformed number '" + cells[c] + "'");
    double label_value;
    SAP_REQUIRE(parse_double(cells.back(), label_value),
                "load_csv: malformed label '" + cells.back() + "'");
    if (dims == 0) dims = rec.size();
    SAP_REQUIRE(rec.size() == dims, "load_csv: ragged row");
    rows.push_back(std::move(rec));
    labels.push_back(static_cast<int>(label_value));
  }
  SAP_REQUIRE(!rows.empty(), "load_csv: no records in '" + path + "'");

  linalg::Matrix features(rows.size(), dims);
  for (std::size_t i = 0; i < rows.size(); ++i) features.set_row(i, rows[i]);
  return {name, std::move(features), std::move(labels)};
}

}  // namespace sap::data
