#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace sap::data {
namespace {

/// Turn Dirichlet weights into integer sizes that sum to n, each >= min_size.
std::vector<std::size_t> integer_sizes(std::span<const double> weights, std::size_t n,
                                       std::size_t min_size) {
  const std::size_t k = weights.size();
  SAP_REQUIRE(k * min_size <= n, "partition: pool too small for k parties at min_records");
  std::vector<std::size_t> sizes(k, min_size);
  std::size_t remaining = n - k * min_size;
  // Largest-remainder apportionment of the rest.
  std::vector<double> quota(k);
  double wsum = 0.0;
  for (double w : weights) wsum += w;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    quota[i] = static_cast<double>(remaining) * weights[i] / wsum;
    sizes[i] += static_cast<std::size_t>(quota[i]);
    assigned += static_cast<std::size_t>(quota[i]);
  }
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return quota[a] - std::floor(quota[a]) > quota[b] - std::floor(quota[b]);
  });
  for (std::size_t i = 0; assigned < remaining; ++i, ++assigned) ++sizes[order[i % k]];
  return sizes;
}

}  // namespace

std::vector<Dataset> partition(const Dataset& pool, std::size_t k,
                               const PartitionOptions& opts, rng::Engine& eng) {
  SAP_REQUIRE(k >= 2, "partition: need at least two parties");
  SAP_REQUIRE(pool.size() >= k * opts.min_records,
              "partition: pool too small for k parties at min_records");

  const auto sizes = integer_sizes(eng.dirichlet(k, opts.size_alpha), pool.size(),
                                   opts.min_records);

  std::vector<std::size_t> assignment;  // record index -> order of draw
  if (opts.kind == PartitionKind::kUniform) {
    assignment = eng.permutation(pool.size());
  } else {
    // Class-skewed: each party prefers classes according to its own
    // Dirichlet weight vector. We realize this by sorting each class's
    // records into a per-class pool and drawing for one party at a time with
    // probability proportional to its class weights.
    const auto classes = pool.classes();
    std::map<int, std::vector<std::size_t>> by_class;
    for (std::size_t i = 0; i < pool.size(); ++i) by_class[pool.label(i)].push_back(i);
    for (auto& [label, idx] : by_class) {
      for (std::size_t i = idx.size(); i > 1; --i)
        std::swap(idx[i - 1], idx[eng.uniform_index(i)]);
    }

    assignment.reserve(pool.size());
    for (std::size_t party = 0; party < k; ++party) {
      auto weights = eng.dirichlet(classes.size(), opts.class_alpha);
      for (std::size_t draw = 0; draw < sizes[party]; ++draw) {
        // Re-normalize over non-empty classes on every draw.
        double total = 0.0;
        for (std::size_t c = 0; c < classes.size(); ++c)
          if (!by_class[classes[c]].empty()) total += weights[c];
        SAP_REQUIRE(total > 0.0, "partition: exhausted class pools");
        double u = eng.uniform() * total;
        std::size_t chosen = classes.size();
        for (std::size_t c = 0; c < classes.size(); ++c) {
          auto& bucket = by_class[classes[c]];
          if (bucket.empty()) continue;
          u -= weights[c];
          if (u <= 0.0) {
            chosen = c;
            break;
          }
        }
        if (chosen == classes.size()) {  // numeric edge: take last non-empty
          for (std::size_t c = classes.size(); c-- > 0;)
            if (!by_class[classes[c]].empty()) {
              chosen = c;
              break;
            }
        }
        auto& bucket = by_class[classes[chosen]];
        assignment.push_back(bucket.back());
        bucket.pop_back();
      }
    }
  }

  std::vector<Dataset> parts;
  parts.reserve(k);
  std::size_t offset = 0;
  for (std::size_t party = 0; party < k; ++party) {
    const std::span<const std::size_t> idx(assignment.data() + offset, sizes[party]);
    Dataset part = pool.subset(idx);
    parts.push_back(std::move(part));
    offset += sizes[party];
  }
  SAP_REQUIRE(offset == pool.size(), "partition: records lost during assignment");
  return parts;
}

double class_skew(const Dataset& pool, const Dataset& part) {
  SAP_REQUIRE(part.size() > 0, "class_skew: empty part");
  const auto classes = pool.classes();
  double tv = 0.0;
  for (int c : classes) {
    double p_pool = 0.0, p_part = 0.0;
    for (std::size_t i = 0; i < pool.size(); ++i) p_pool += (pool.label(i) == c);
    for (std::size_t i = 0; i < part.size(); ++i) p_part += (part.label(i) == c);
    p_pool /= static_cast<double>(pool.size());
    p_part /= static_cast<double>(part.size());
    tv += std::abs(p_pool - p_part);
  }
  return 0.5 * tv;
}

}  // namespace sap::data
