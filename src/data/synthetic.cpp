#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "linalg/matrix.hpp"
#include "linalg/orthogonal.hpp"

namespace sap::data {
namespace {

/// Stable per-dataset seed mix so different datasets under the same user
/// seed do not share random streams.
std::uint64_t mix_seed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec, std::uint64_t seed) {
  SAP_REQUIRE(spec.rows >= spec.classes && spec.dims > 0 && spec.classes >= 2,
              "make_synthetic: degenerate spec");
  SAP_REQUIRE(spec.priors.empty() || spec.priors.size() == spec.classes,
              "make_synthetic: priors size must match classes");
  SAP_REQUIRE(spec.binary_fraction >= 0.0 && spec.binary_fraction <= 1.0,
              "make_synthetic: binary_fraction out of range");

  rng::Engine eng(mix_seed(seed, spec.name));
  const std::size_t d = spec.dims;
  const std::size_t n_binary = static_cast<std::size_t>(spec.binary_fraction * static_cast<double>(d));
  const std::size_t n_gauss = d - n_binary;

  // --- class priors -> per-class counts (largest remainder, >=1 each)
  std::vector<double> priors = spec.priors;
  if (priors.empty()) priors.assign(spec.classes, 1.0 / static_cast<double>(spec.classes));
  double psum = 0.0;
  for (double p : priors) {
    SAP_REQUIRE(p > 0.0, "make_synthetic: priors must be positive");
    psum += p;
  }
  std::vector<std::size_t> counts(spec.classes, 1);
  std::size_t assigned = spec.classes;
  for (std::size_t c = 0; c < spec.classes && assigned < spec.rows; ++c) {
    const auto extra = static_cast<std::size_t>(
        priors[c] / psum * static_cast<double>(spec.rows - spec.classes));
    counts[c] += extra;
    assigned += extra;
  }
  for (std::size_t c = 0; assigned < spec.rows; c = (c + 1) % spec.classes, ++assigned)
    ++counts[c];

  // --- class structure
  // Gaussian block: mean_c = class_sep * (orthogonal unit direction); the
  // directions are rows of a Haar-random orthogonal matrix so every pair of
  // class means is equidistant (sep * sqrt(2) before scaling) — independent
  // unit vectors can land nearly collinear for unlucky seeds and collapse
  // two classes onto each other. Shared low-rank correlation L keeps the
  // features dependent (that is what PCA/ICA-style attacks lever).
  // Mean separation scales with sqrt(d): within-class distances grow like
  // sqrt(d), so this keeps a spec's difficulty roughly dimension-independent.
  SAP_REQUIRE(n_gauss == 0 || spec.classes <= n_gauss,
              "make_synthetic: need classes <= Gaussian dims for orthogonal class means");
  const double sep_scale =
      spec.class_sep * 0.5 * std::sqrt(static_cast<double>(n_gauss ? n_gauss : 1));
  linalg::Matrix means(spec.classes, n_gauss ? n_gauss : 1);
  if (n_gauss) {
    const linalg::Matrix basis = linalg::random_orthogonal(n_gauss, eng);
    for (std::size_t c = 0; c < spec.classes; ++c) {
      linalg::Vector dir(n_gauss);
      for (std::size_t j = 0; j < n_gauss; ++j) dir[j] = basis(c, j) * sep_scale;
      means.set_row(c, dir);
    }
  }
  const std::size_t rank = std::min(spec.corr_rank, n_gauss);
  linalg::Matrix corr(n_gauss ? n_gauss : 1, rank ? rank : 1, 0.0);
  for (auto& v : corr.data()) v = eng.normal(0.0, 0.6);

  // Binary block: per class, each binary feature has its own Bernoulli rate;
  // separation pushes the rates of different classes apart.
  linalg::Matrix rates(spec.classes, n_binary ? n_binary : 1, 0.5);
  for (std::size_t j = 0; j < n_binary; ++j) {
    for (std::size_t c = 0; c < spec.classes; ++c) {
      const double tilt = std::tanh(spec.class_sep * 0.5) * 0.38;
      const double base = eng.uniform(0.35, 0.65);
      const double sign = (eng.bernoulli(0.5) ? 1.0 : -1.0) * ((c % 2 == 0) ? 1.0 : -1.0);
      rates(c, j) = std::clamp(base + sign * tilt, 0.04, 0.96);
    }
  }

  // --- sampling
  linalg::Matrix features(spec.rows, d);
  std::vector<int> labels(spec.rows);
  std::size_t row = 0;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (std::size_t i = 0; i < counts[c]; ++i, ++row) {
      labels[row] = static_cast<int>(c);
      auto rec = features.row(row);
      // Gaussian part: mean_c + L z + eps.
      if (n_gauss) {
        linalg::Vector z(rank ? rank : 1);
        for (auto& v : z) v = eng.normal();
        for (std::size_t j = 0; j < n_gauss; ++j) {
          double corr_part = 0.0;
          for (std::size_t r2 = 0; r2 < rank; ++r2) corr_part += corr(j, r2) * z[r2];
          rec[j] = means(c, j) + corr_part + eng.normal(0.0, 1.0);
        }
      }
      for (std::size_t j = 0; j < n_binary; ++j)
        rec[n_gauss + j] = eng.bernoulli(rates(c, j)) ? 1.0 : 0.0;
    }
  }

  Dataset ds(spec.name, std::move(features), std::move(labels));
  ds.shuffle(eng);
  return ds;
}

const std::vector<SyntheticSpec>& uci_suite() {
  // Shapes follow the UCI repository; separability calibrated so clean-data
  // accuracy of 5-NN / SVM(RBF) lands near the commonly reported numbers.
  static const std::vector<SyntheticSpec> kSuite = {
      {.name = "Breast_w", .rows = 699, .dims = 9, .classes = 2,
       .priors = {0.655, 0.345}, .class_sep = 2.6, .binary_fraction = 0.0, .corr_rank = 3},
      {.name = "Credit_a", .rows = 690, .dims = 14, .classes = 2,
       .priors = {0.555, 0.445}, .class_sep = 1.4, .binary_fraction = 0.3, .corr_rank = 3},
      {.name = "Credit_g", .rows = 1000, .dims = 24, .classes = 2,
       .priors = {0.7, 0.3}, .class_sep = 0.55, .binary_fraction = 0.4, .corr_rank = 4},
      {.name = "Diabetes", .rows = 768, .dims = 8, .classes = 2,
       .priors = {0.651, 0.349}, .class_sep = 0.7, .binary_fraction = 0.0, .corr_rank = 2},
      {.name = "Ecoli", .rows = 336, .dims = 7, .classes = 5,
       .priors = {0.426, 0.229, 0.155, 0.117, 0.073}, .class_sep = 2.3,
       .binary_fraction = 0.0, .corr_rank = 2},
      {.name = "Hepatitis", .rows = 155, .dims = 19, .classes = 2,
       .priors = {0.206, 0.794}, .class_sep = 1.0, .binary_fraction = 0.55, .corr_rank = 3},
      {.name = "Heart", .rows = 270, .dims = 13, .classes = 2,
       .priors = {0.556, 0.444}, .class_sep = 1.4, .binary_fraction = 0.3, .corr_rank = 3},
      {.name = "Ionosphere", .rows = 351, .dims = 34, .classes = 2,
       .priors = {0.641, 0.359}, .class_sep = 1.2, .binary_fraction = 0.0, .corr_rank = 5},
      {.name = "Iris", .rows = 150, .dims = 4, .classes = 3,
       .priors = {}, .class_sep = 4.5, .binary_fraction = 0.0, .corr_rank = 1},
      // Shuttle scaled 43.5k -> 2k records (documented substitution): keeps
      // the skewed class structure but fits the single-core SVM budget.
      {.name = "Shuttle", .rows = 2000, .dims = 9, .classes = 4,
       .priors = {0.786, 0.122, 0.061, 0.031}, .class_sep = 3.6,
       .binary_fraction = 0.0, .corr_rank = 2},
      {.name = "Votes", .rows = 435, .dims = 16, .classes = 2,
       .priors = {0.614, 0.386}, .class_sep = 2.0, .binary_fraction = 1.0, .corr_rank = 0},
      {.name = "Wine", .rows = 178, .dims = 13, .classes = 3,
       .priors = {0.331, 0.399, 0.270}, .class_sep = 2.7, .binary_fraction = 0.0,
       .corr_rank = 3},
  };
  return kSuite;
}

Dataset make_uci(const std::string& name, std::uint64_t seed) {
  for (const auto& spec : uci_suite())
    if (spec.name == name) return make_synthetic(spec, seed);
  SAP_FAIL("make_uci: unknown dataset '" + name + "'");
}

StreamWorkload make_stream_workload(const std::string& uci_name, std::size_t parties,
                                    std::size_t batches, std::size_t batch_records,
                                    std::uint64_t seed) {
  const Dataset raw = make_uci(uci_name, seed);
  MinMaxNormalizer norm;
  norm.fit(raw.features());
  Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  rng::Engine eng(seed ^ 0xC0B);
  pool.shuffle(eng);
  const std::size_t held = batches * batch_records;
  SAP_REQUIRE(pool.size() >= held + parties * 8,
              "make_stream_workload: dataset too small for " + std::to_string(batches) +
                  " batches of " + std::to_string(batch_records) + " records plus " +
                  std::to_string(parties) + " providers");
  StreamWorkload workload;
  // batches == 0 is a valid exchange-only workload: no held-back stream.
  if (held > 0) workload.stream = pool.slice(pool.size() - held, pool.size());
  PartitionOptions popts;
  workload.shards = partition(pool.slice(0, pool.size() - held), parties, popts, eng);
  return workload;
}

}  // namespace sap::data
