#include "data/dataset.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"

namespace sap::data {

Dataset::Dataset(std::string name, linalg::Matrix features, std::vector<int> labels)
    : name_(std::move(name)), features_(std::move(features)), labels_(std::move(labels)) {
  SAP_REQUIRE(features_.rows() == labels_.size(), "Dataset: feature/label count mismatch");
}

int Dataset::label(std::size_t i) const {
  SAP_REQUIRE(i < labels_.size(), "Dataset::label: index out of range");
  return labels_[i];
}

std::vector<int> Dataset::classes() const {
  std::set<int> s(labels_.begin(), labels_.end());
  return {s.begin(), s.end()};
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::map<int, std::size_t> counts;
  for (int l : labels_) ++counts[l];
  std::vector<std::size_t> out;
  out.reserve(counts.size());
  for (const auto& [label, count] : counts) out.push_back(count);
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  linalg::Matrix f(indices.size(), dims());
  std::vector<int> l(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    SAP_REQUIRE(indices[i] < size(), "Dataset::subset: index out of range");
    f.set_row(i, features_.row(indices[i]));
    l[i] = labels_[indices[i]];
  }
  return {name_, std::move(f), std::move(l)};
}

Dataset Dataset::concat(const Dataset& a, const Dataset& b) {
  SAP_REQUIRE(a.dims() == b.dims(), "Dataset::concat: dimensionality mismatch");
  linalg::Matrix f = linalg::Matrix::vcat(a.features_, b.features_);
  std::vector<int> l = a.labels_;
  l.insert(l.end(), b.labels_.begin(), b.labels_.end());
  return {a.name_, std::move(f), std::move(l)};
}

void Dataset::append(const Dataset& more) {
  SAP_REQUIRE(dims() == more.dims() || size() == 0, "Dataset::append: dimensionality mismatch");
  features_ = size() == 0 ? more.features_ : linalg::Matrix::vcat(features_, more.features_);
  labels_.insert(labels_.end(), more.labels_.begin(), more.labels_.end());
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  SAP_REQUIRE(begin <= end && end <= size(), "Dataset::slice: range out of bounds");
  linalg::Matrix f(end - begin, dims());
  std::vector<int> l(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    f.set_row(i - begin, features_.row(i));
    l[i - begin] = labels_[i];
  }
  return {name_, std::move(f), std::move(l)};
}

void Dataset::shuffle(rng::Engine& eng) {
  const auto perm = eng.permutation(size());
  linalg::Matrix f(size(), dims());
  std::vector<int> l(size());
  for (std::size_t i = 0; i < size(); ++i) {
    f.set_row(i, features_.row(perm[i]));
    l[i] = labels_[perm[i]];
  }
  features_ = std::move(f);
  labels_ = std::move(l);
}

Split train_test_split(const Dataset& ds, double train_fraction, rng::Engine& eng) {
  SAP_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
              "train_test_split: fraction must be in (0,1)");
  SAP_REQUIRE(ds.size() >= 2, "train_test_split: need at least two records");
  const auto perm = eng.permutation(ds.size());
  auto n_train = static_cast<std::size_t>(train_fraction * static_cast<double>(ds.size()));
  n_train = std::clamp<std::size_t>(n_train, 1, ds.size() - 1);
  const std::span<const std::size_t> all(perm);
  return {ds.subset(all.subspan(0, n_train)), ds.subset(all.subspan(n_train))};
}

Split stratified_split(const Dataset& ds, double train_fraction, rng::Engine& eng) {
  SAP_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
              "stratified_split: fraction must be in (0,1)");
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < ds.size(); ++i) by_class[ds.label(i)].push_back(i);

  std::vector<std::size_t> train_idx, test_idx;
  for (auto& [label, idx] : by_class) {
    // Shuffle within the class for an unbiased draw.
    for (std::size_t i = idx.size(); i > 1; --i)
      std::swap(idx[i - 1], idx[eng.uniform_index(i)]);
    auto n_train = static_cast<std::size_t>(train_fraction * static_cast<double>(idx.size()));
    if (idx.size() >= 2) n_train = std::clamp<std::size_t>(n_train, 1, idx.size() - 1);
    train_idx.insert(train_idx.end(), idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_train));
    test_idx.insert(test_idx.end(), idx.begin() + static_cast<std::ptrdiff_t>(n_train), idx.end());
  }
  SAP_REQUIRE(!train_idx.empty() && !test_idx.empty(),
              "stratified_split: degenerate split (dataset too small)");
  return {ds.subset(train_idx), ds.subset(test_idx)};
}

}  // namespace sap::data
