#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sap::obs {
namespace {

std::atomic<bool> g_enabled{true};

/// Per-thread counter slot: threads take round-robin slots, so up to kSlots
/// threads increment disjoint cache lines (beyond that, slots are shared
/// but still correct).
std::size_t this_thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kSlots;
  return slot;
}

void atomic_double_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_double_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

void Counter::add(std::uint64_t n) noexcept {
  if (!enabled()) return;
  slots_[this_thread_slot()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::set(double v) noexcept {
  if (!enabled()) return;
  v_.store(v, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  if (!enabled()) return;
  atomic_double_add(v_, delta);
}

// ---- histogram -----------------------------------------------------------

std::uint32_t Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // negative, zero, NaN
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  if (exp <= kMinExp) return 0;
  if (exp > kMaxExp) return kBucketCount - 1;
  // Octave [2^(exp-1), 2^exp) split into kSubBuckets equal slices.
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + static_cast<std::uint32_t>((exp - 1 - kMinExp) * kSubBuckets + sub);
}

double Histogram::bucket_upper(std::uint32_t index) noexcept {
  if (index == 0) return std::ldexp(1.0, kMinExp);
  if (index >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  const std::uint32_t linear = index - 1;
  const int octave = static_cast<int>(linear) / kSubBuckets;
  const int sub = static_cast<int>(linear) % kSubBuckets;
  const double lo = std::ldexp(1.0, kMinExp + octave);
  return lo * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

void Histogram::record(double v) noexcept {
  if (!enabled()) return;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(sum_, v);
  atomic_double_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) snap.buckets.emplace_back(i, n);
  }
  return snap;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b == other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a == buckets.size() || other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first, buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q >= 1.0) return max;
  if (q < 0.0) q = 0.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      const double upper = Histogram::bucket_upper(index);
      return std::isfinite(upper) ? std::min(upper, max > 0.0 ? max : upper) : max;
    }
  }
  return max;
}

// ---- snapshot ------------------------------------------------------------

namespace {

template <typename T>
void set_entry(std::vector<std::pair<std::string, T>>& entries, const std::string& name,
               T value) {
  for (auto& [n, v] : entries) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  entries.emplace_back(name, std::move(value));
}

}  // namespace

void Snapshot::set_counter(const std::string& name, std::uint64_t value) {
  set_entry(counters, name, value);
}

void Snapshot::set_gauge(const std::string& name, double value) {
  set_entry(gauges, name, value);
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) {
    bool found = false;
    for (auto& [n, v] : counters) {
      if (n == name) {
        v += value;
        found = true;
        break;
      }
    }
    if (!found) counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : other.gauges) {
    bool found = false;
    for (auto& [n, v] : gauges) {
      if (n == name) {
        v += value;
        found = true;
        break;
      }
    }
    if (!found) gauges.emplace_back(name, value);
  }
  for (const auto& [name, hist] : other.histograms) {
    bool found = false;
    for (auto& [n, h] : histograms) {
      if (n == name) {
        h.merge(hist);
        found = true;
        break;
      }
    }
    if (!found) histograms.emplace_back(name, hist);
  }
  normalize();
}

void Snapshot::normalize() {
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(), by_name);
}

std::string Snapshot::to_text() const {
  std::string out = "sap-stats v1\n";
  for (const auto& [name, value] : counters)
    out += "counter " + name + " " + std::to_string(value) + "\n";
  for (const auto& [name, value] : gauges)
    out += "gauge " + name + " " + fmt_double(value) + "\n";
  for (const auto& [name, hist] : histograms) {
    out += "hist " + name + " count=" + std::to_string(hist.count) +
           " mean=" + fmt_double(hist.mean()) + " p50=" + fmt_double(hist.quantile(0.50)) +
           " p95=" + fmt_double(hist.quantile(0.95)) +
           " p99=" + fmt_double(hist.quantile(0.99)) + " max=" + fmt_double(hist.max) + "\n";
  }
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"version\": 1, \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += std::string(first ? "" : ", ") + "\"" + name + "\": " + std::to_string(value);
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += std::string(first ? "" : ", ") + "\"" + name + "\": " + fmt_double(value);
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += std::string(first ? "" : ", ") + "\"" + name +
           "\": {\"count\": " + std::to_string(hist.count) +
           ", \"mean\": " + fmt_double(hist.mean()) +
           ", \"p50\": " + fmt_double(hist.quantile(0.50)) +
           ", \"p95\": " + fmt_double(hist.quantile(0.95)) +
           ", \"p99\": " + fmt_double(hist.quantile(0.99)) +
           ", \"max\": " + fmt_double(hist.max) + "}";
    first = false;
  }
  out += "}}";
  return out;
}

// ---- registry ------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  MutexLock lk(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lk(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  MutexLock lk(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::set_gauge(const std::string& name, double value) {
  gauge(name).set(value);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  MutexLock lk(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) snap.counters.emplace_back(name, counter->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) snap.gauges.emplace_back(name, gauge->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_)
    snap.histograms.emplace_back(name, hist->snapshot());
  return snap;  // std::map iteration is already name-sorted
}

}  // namespace sap::obs
