// sap::obs request tracing — per-request stage timings in a fixed ring.
//
// A trace id is minted at the serving door (RNG-FREE: a door salt plus a
// monotone sequence — observability never draws from sap::rng, rule R6),
// rides the frame header's trace field through router -> shard fan-outs
// (net/frame.hpp), and each daemon that touches the request records one
// TraceRecord into its bounded ring: the stage timings (decode, queue
// wait, fit/serve, merge, write) measured at stage BOUNDARIES only, never
// inside numeric kernels. kStatsResponse carries the recent records, so
// `sap_cli stats` can show where a served request spent its time on every
// hop that handled it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sap::obs {

/// Request stages, in pipeline order. Unvisited stages stay 0.0 ms (a
/// miner never runs kMerge; a router never runs kFit).
enum class Stage : std::uint8_t {
  kDecode = 0,  ///< envelope open + payload decode
  kQueue = 1,   ///< frame complete -> compute lane pickup
  kServe = 2,   ///< fit/serve (engine dispatch, incl. model fit time)
  kMerge = 3,   ///< router-side partial merge / gather reassembly
  kWrite = 4,   ///< response assembly (encrypt + frame encode)
};
constexpr std::size_t kStageCount = 5;

[[nodiscard]] const char* to_string(Stage stage) noexcept;

/// One handled request: who (trace id), what (payload kind or job name,
/// printable ASCII <= 128 chars), and the per-stage milliseconds.
struct TraceRecord {
  std::uint64_t id = 0;
  std::string op;
  std::array<double, kStageCount> stage_ms{};

  [[nodiscard]] double total_ms() const noexcept {
    double total = 0.0;
    for (const double ms : stage_ms) total += ms;
    return total;
  }
};

/// Fixed-capacity ring of the most recent trace records. push() overwrites
/// the oldest once full — per-daemon memory is bounded whatever the
/// request rate. Mutex-guarded: traces are recorded once per REQUEST (not
/// per byte or per increment), so a short critical section is cheap next
/// to the request it describes.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256);

  /// Record one completed request (dropped entirely when obs is disabled).
  void push(TraceRecord record) SAP_EXCLUDES(mutex_);

  /// The retained records, oldest first; `max` > 0 returns only the newest
  /// `max` of them.
  [[nodiscard]] std::vector<TraceRecord> recent(std::size_t max = 0) const
      SAP_EXCLUDES(mutex_);

  /// Total records ever pushed (>= retained count once the ring wrapped).
  [[nodiscard]] std::uint64_t total() const SAP_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<TraceRecord> ring_ SAP_GUARDED_BY(mutex_);
  std::size_t next_ SAP_GUARDED_BY(mutex_) = 0;
  std::uint64_t total_ SAP_GUARDED_BY(mutex_) = 0;
};

/// Deterministic trace-id mint: (16-bit door salt << 48) | sequence. No
/// randomness — ids only need to be unique per door and nonzero (0 on the
/// wire means "untraced"; the first door to see it mints).
class TraceMinter {
 public:
  explicit TraceMinter(std::uint64_t salt) noexcept : salt_((salt & 0xFFFF) << 48) {}

  [[nodiscard]] std::uint64_t mint() noexcept {
    return salt_ | ((seq_.fetch_add(1, std::memory_order_relaxed) + 1) & 0xFFFFFFFFFFFFull);
  }

 private:
  std::uint64_t salt_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace sap::obs
