// sap::obs — cluster-wide metrics: counters, gauges, and mergeable
// log-linear latency histograms (DESIGN.md §12).
//
// Design constraints, in order:
//
//   * PURE MEASUREMENT. Nothing in this header draws randomness, allocates
//     on the record path, or feeds back into computation — job reports,
//     pool digests, and party accounting are bit-identical with metrics on
//     or off (tests/obs_test.cpp pins this against the goldens, and
//     sap-lint rule R6 keeps obs:: calls out of the numeric kernels).
//   * CONTENTION-FREE HOT PATH. Counter increments land in per-thread
//     sharded cache-line-padded slots; histogram records are relaxed
//     fetch_adds on a fixed bucket array. No locks anywhere on the record
//     path; the registry mutex guards only name->metric registration and
//     snapshotting.
//   * EXACT MERGE. A histogram snapshot is its bucket counts; merging
//     snapshots is bucket-wise addition, so the router can aggregate shard
//     histograms into exactly the histogram a single daemon would have
//     recorded for the union of the samples (asserted bucket-for-bucket in
//     tests/obs_test.cpp). Quantiles are computed on snapshots, never on
//     live state.
//
// The global enable flag (set_enabled) gates every record/add/set with one
// relaxed atomic load — bench/obs_overhead.cpp measures both positions and
// enforces the <= 3% overhead bar by exit code.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace sap::obs {

/// Global metrics switch (default on). Off = every record/add/set returns
/// after one relaxed load; registries and snapshots still work, they just
/// observe frozen values.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic counter with per-thread sharded slots: each thread increments
/// its own cache line, so hot-path increments from many serving threads
/// never bounce a shared line. value() sums the slots (racy-exact: every
/// completed add is counted).
class Counter {
 public:
  static constexpr std::size_t kSlots = 16;

  void add(std::uint64_t n = 1) noexcept;
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kSlots> slots_{};
};

/// Point-in-time reading (queue depth, live connections, pool epoch).
/// Last-writer-wins set(); add() for +/- deltas.
class Gauge {
 public:
  void set(double v) noexcept;
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Mergeable snapshot of one histogram: total count/sum/max plus the sparse
/// non-zero buckets (index ascending). merge() is bucket-wise addition —
/// the exactness the router's shard aggregation rests on.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  void merge(const HistogramSnapshot& other);
  [[nodiscard]] double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Quantile estimate: the upper bound of the bucket where the cumulative
  /// count reaches q (q in [0,1]); exact max for q >= 1. Samples in the
  /// overflow bucket report the recorded max.
  [[nodiscard]] double quantile(double q) const;
};

/// Log-linear latency histogram: each power-of-two octave of the value
/// range splits into kSubBuckets equal-width buckets, so relative
/// resolution is bounded (~12.5%) from sub-millisecond to minutes while
/// the bucket count stays fixed and snapshots merge exactly. Values are
/// milliseconds by convention (metric names carry the unit, DESIGN.md §12).
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -7;  ///< values below 2^-7 ms land in bucket 0
  static constexpr int kMaxExp = 22;  ///< values >= 2^22 ms land in the overflow bucket
  static constexpr std::uint32_t kBucketCount =
      2 + static_cast<std::uint32_t>(kMaxExp - kMinExp) * kSubBuckets;

  /// Bucket index for a value (NaN/negative/tiny -> 0, huge -> overflow).
  [[nodiscard]] static std::uint32_t bucket_index(double v) noexcept;
  /// Upper bound of a bucket's value range (inclusive quantile estimate);
  /// the overflow bucket has no finite bound and reports the snapshot max.
  [[nodiscard]] static double bucket_upper(std::uint32_t index) noexcept;

  void record(double v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// One daemon's full metrics state at a point in time, name-sorted for a
/// deterministic exposition. Counters and histograms MERGE exactly across
/// daemons (addition); gauges are point-in-time readings and do not — the
/// router namespaces them per miner instead of pretending (DESIGN.md §12).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Add/overwrite one entry (collect-time injection of values that live
  /// outside a registry, e.g. Reactor's atomics). normalize() afterwards.
  void set_counter(const std::string& name, std::uint64_t value);
  void set_gauge(const std::string& name, double value);

  /// Sum counters, merge histograms bucket-wise, sum gauges on name
  /// collision (callers that aggregate across daemons prefix gauge names
  /// first — see ShardRouter::cluster_stats).
  void merge(const Snapshot& other);

  /// Sort every section by name (the exposition and codec contract).
  void normalize();

  /// Versioned text exposition ("sap-stats v1", one line per metric).
  [[nodiscard]] std::string to_text() const;
  /// The same content as a JSON object ({"version":1, "counters":{...},
  /// "gauges":{...}, "histograms":{name:{count,sum,max,p50,p95,p99}}}).
  [[nodiscard]] std::string to_json() const;
};

/// Named-metric registry. Registration (name lookup) takes a mutex and may
/// allocate — hot paths call it once at setup and keep the reference, which
/// stays valid for the registry's lifetime. The record path on the returned
/// metrics is lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name) SAP_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(const std::string& name) SAP_EXCLUDES(mutex_);
  [[nodiscard]] Histogram& histogram(const std::string& name) SAP_EXCLUDES(mutex_);

  /// Convenience for collect-time gauge writes (set_enabled-gated like
  /// every other mutation).
  void set_gauge(const std::string& name, double value) SAP_EXCLUDES(mutex_);

  [[nodiscard]] Snapshot snapshot() const SAP_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ SAP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SAP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ SAP_GUARDED_BY(mutex_);
};

}  // namespace sap::obs
