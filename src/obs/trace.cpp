#include "obs/trace.hpp"

#include "obs/metrics.hpp"

namespace sap::obs {

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kDecode: return "decode";
    case Stage::kQueue: return "queue";
    case Stage::kServe: return "serve";
    case Stage::kMerge: return "merge";
    case Stage::kWrite: return "write";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

void TraceRing::push(TraceRecord record) {
  if (!enabled()) return;
  MutexLock lk(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceRecord> TraceRing::recent(std::size_t max) const {
  MutexLock lk(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // Oldest-first: once wrapped, the oldest record sits at next_.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  if (max > 0 && out.size() > max)
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(max));
  return out;
}

std::uint64_t TraceRing::total() const {
  MutexLock lk(mutex_);
  return total_;
}

}  // namespace sap::obs
