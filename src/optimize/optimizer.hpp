// Randomized perturbation optimization (companion paper [2], PODC'07 §2).
//
// A data provider wants the perturbation with the highest minimum privacy
// guarantee rho for *their* data. Since rho(R, t) is non-convex over the
// orthogonal group, [2] optimizes by randomized search: sample candidate
// perturbations, keep the best under the attack suite, and locally refine
// the winner with small Givens rotations (hill climbing on SO(d) planes).
//
// This module also estimates the paper's empirical quantities:
//   b-hat  = max rho over n optimization runs  (upper bound estimate),
//   rho-bar = mean optimized rho over runs,
//   optimality rate O = rho-bar / b-hat        (Figure 3's y-axis).
//
// Determinism contract (DESIGN.md §8): candidate search is embarrassingly
// parallel, and the implementation keeps it bit-reproducible by deriving one
// child engine per candidate SERIALLY from the caller's engine before any
// parallel work starts (the same master->spawn() discipline
// proto::logic::derive_session_seeds uses for parties). Workers write into
// index-addressed result slots and the winner is reduced serially, so the
// result is a pure function of (data, options, engine) — identical for 0, 2
// or 8 optimizer threads, and therefore identical across every transport
// backend that runs LocalOptimize.
#pragma once

#include "common/thread_pool.hpp"
#include "linalg/matrix.hpp"
#include "perturb/geometric.hpp"
#include "privacy/evaluator.hpp"
#include "rng/rng.hpp"

namespace sap::opt {

struct OptimizerOptions {
  /// Random candidate perturbations sampled per optimization run.
  std::size_t candidates = 12;
  /// Givens-plane hill-climbing steps applied to the winning candidate
  /// (0 disables refinement). Each step probes the +theta/-theta pair.
  std::size_t refine_steps = 8;
  /// Magnitude of refinement rotations (radians, cooled on failure).
  double refine_angle = 0.35;
  /// Noise level sigma of the sampled perturbations.
  double noise_sigma = 0.1;
  /// Privacy evaluation subsamples at most this many records (the metric
  /// converges with a few hundred; keeps 100-round experiments tractable).
  std::size_t max_eval_records = 160;
  /// Worker threads scoring candidates and refinement probes (0 = inline
  /// serial execution). Results are bit-identical for any value.
  std::size_t threads = 0;
  /// Adversaries used to score candidates.
  privacy::AttackSuiteOptions attacks{.naive = true, .ica = true, .known_inputs = 4};
};

struct OptimizationResult {
  perturb::GeometricPerturbation best;
  double best_rho = 0.0;
  /// rho of every *random* candidate (before refinement) — the "random
  /// perturbations" distribution of Figure 2.
  linalg::Vector candidate_rhos;
  /// Evaluations spent (candidates + 2 refinement probes per step).
  std::size_t evaluations = 0;
};

/// One optimization run on a d x N dataset (paper layout, column = record).
/// Spins up a private ThreadPool sized by opts.threads.
OptimizationResult optimize_perturbation(const linalg::Matrix& x,
                                         const OptimizerOptions& opts, rng::Engine& eng);

/// Same, scoring on a caller-owned pool (reused across bound runs /
/// optimality-rate repeats; opts.threads is ignored in favor of the pool).
OptimizationResult optimize_perturbation(const linalg::Matrix& x,
                                         const OptimizerOptions& opts, rng::Engine& eng,
                                         ThreadPool& pool);

/// Score a specific perturbation on a dataset: applies it (fresh noise from
/// `eng`), evaluates the attack suite, returns rho. Exposed for benches and
/// for the protocol's satisfaction computation.
double evaluate_perturbation(const linalg::Matrix& x,
                             const perturb::GeometricPerturbation& g,
                             const privacy::AttackSuiteOptions& attacks,
                             std::size_t max_eval_records, rng::Engine& eng);

struct OptimalityEstimate {
  double mean_rho = 0.0;  ///< rho-bar over runs
  double bound = 0.0;     ///< b-hat = max over runs
  double rate = 0.0;      ///< rho-bar / b-hat
  linalg::Vector run_rhos;
};

/// Repeat `runs` independent optimization runs and estimate the optimality
/// rate (Figure 3; the paper uses 100 rounds).
OptimalityEstimate estimate_optimality_rate(const linalg::Matrix& x,
                                            const OptimizerOptions& opts,
                                            std::size_t runs, rng::Engine& eng);

}  // namespace sap::opt
