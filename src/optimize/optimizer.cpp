#include "optimize/optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/orthogonal.hpp"

namespace sap::opt {
namespace {

/// Column subsample for evaluation (keeps rho estimation O(max_records)).
linalg::Matrix subsample_records(const linalg::Matrix& x, std::size_t max_records,
                                 rng::Engine& eng) {
  if (x.cols() <= max_records) return x;
  const auto idx = eng.sample_without_replacement(x.cols(), max_records);
  linalg::Matrix out(x.rows(), max_records);
  for (std::size_t j = 0; j < max_records; ++j) {
    const linalg::Vector col = x.col(idx[j]);
    out.set_col(j, col);
  }
  return out;
}

double score(const linalg::Matrix& x_eval, const perturb::GeometricPerturbation& g,
             const privacy::AttackSuite& suite, rng::Engine& eng) {
  const linalg::Matrix y = g.apply(x_eval, eng);
  return suite.evaluate(x_eval, y, eng).rho;
}

}  // namespace

double evaluate_perturbation(const linalg::Matrix& x,
                             const perturb::GeometricPerturbation& g,
                             const privacy::AttackSuiteOptions& attacks,
                             std::size_t max_eval_records, rng::Engine& eng) {
  SAP_REQUIRE(x.rows() == g.dims(), "evaluate_perturbation: dimension mismatch");
  const privacy::AttackSuite suite(attacks);
  const linalg::Matrix x_eval = subsample_records(x, max_eval_records, eng);
  return score(x_eval, g, suite, eng);
}

OptimizationResult optimize_perturbation(const linalg::Matrix& x,
                                         const OptimizerOptions& opts, rng::Engine& eng) {
  SAP_REQUIRE(opts.candidates >= 1, "optimize_perturbation: need at least one candidate");
  SAP_REQUIRE(x.rows() >= 2 && x.cols() >= 8,
              "optimize_perturbation: dataset too small (need d >= 2, N >= 8)");

  const privacy::AttackSuite suite(opts.attacks);
  const linalg::Matrix x_eval = subsample_records(x, opts.max_eval_records, eng);
  const std::size_t d = x.rows();

  OptimizationResult result;
  result.candidate_rhos.reserve(opts.candidates);

  // --- random search phase
  for (std::size_t c = 0; c < opts.candidates; ++c) {
    auto g = perturb::GeometricPerturbation::random(d, opts.noise_sigma, eng);
    const double rho = score(x_eval, g, suite, eng);
    ++result.evaluations;
    result.candidate_rhos.push_back(rho);
    if (rho > result.best_rho || c == 0) {
      result.best_rho = rho;
      result.best = std::move(g);
    }
  }

  // --- Givens hill climbing on the winner
  double angle = opts.refine_angle;
  for (std::size_t step = 0; step < opts.refine_steps; ++step) {
    if (d < 2) break;
    const std::size_t p = eng.uniform_index(d);
    std::size_t q = eng.uniform_index(d - 1);
    if (q >= p) ++q;
    const double theta = (eng.bernoulli(0.5) ? 1.0 : -1.0) * angle;

    perturb::GeometricPerturbation trial = result.best;
    trial.precompose_rotation(linalg::givens(d, p, q, theta));
    const double rho = score(x_eval, trial, suite, eng);
    ++result.evaluations;
    if (rho > result.best_rho) {
      result.best_rho = rho;
      result.best = std::move(trial);
    } else {
      angle *= 0.7;  // cool down when the step fails
    }
  }
  return result;
}

OptimalityEstimate estimate_optimality_rate(const linalg::Matrix& x,
                                            const OptimizerOptions& opts,
                                            std::size_t runs, rng::Engine& eng) {
  SAP_REQUIRE(runs >= 2, "estimate_optimality_rate: need at least two runs");
  OptimalityEstimate est;
  est.run_rhos.reserve(runs);
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    const OptimizationResult res = optimize_perturbation(x, opts, eng);
    est.run_rhos.push_back(res.best_rho);
    total += res.best_rho;
    est.bound = std::max(est.bound, res.best_rho);
  }
  est.mean_rho = total / static_cast<double>(runs);
  SAP_REQUIRE(est.bound > 0.0, "estimate_optimality_rate: all runs scored zero privacy");
  est.rate = est.mean_rho / est.bound;
  return est;
}

}  // namespace sap::opt
