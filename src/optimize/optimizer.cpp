#include "optimize/optimizer.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "linalg/orthogonal.hpp"

namespace sap::opt {
namespace {

/// Column subsample for evaluation (keeps rho estimation O(max_records)).
linalg::Matrix subsample_records(const linalg::Matrix& x, std::size_t max_records,
                                 rng::Engine& eng) {
  if (x.cols() <= max_records) return x;
  const auto idx = eng.sample_without_replacement(x.cols(), max_records);
  return linalg::gather_cols(x, idx);
}

/// One candidate evaluation. Everything mutable (`scratch`, `y_buf`, `eng`)
/// is slot-private in the parallel phases, so the score depends only on the
/// slot's own engine stream.
double score(const linalg::Matrix& x_eval, const perturb::GeometricPerturbation& g,
             const privacy::AttackSuite& suite, privacy::AttackSuite::Scratch& scratch,
             linalg::Matrix& y_buf, rng::Engine& eng) {
  g.apply_into(x_eval, y_buf, eng);
  return suite.evaluate(x_eval, y_buf, eng, scratch).rho;
}

}  // namespace

double evaluate_perturbation(const linalg::Matrix& x,
                             const perturb::GeometricPerturbation& g,
                             const privacy::AttackSuiteOptions& attacks,
                             std::size_t max_eval_records, rng::Engine& eng) {
  SAP_REQUIRE(x.rows() == g.dims(), "evaluate_perturbation: dimension mismatch");
  const privacy::AttackSuite suite(attacks);
  const linalg::Matrix x_eval = subsample_records(x, max_eval_records, eng);
  auto scratch = suite.make_scratch(x_eval);
  linalg::Matrix y_buf;
  return score(x_eval, g, suite, scratch, y_buf, eng);
}

OptimizationResult optimize_perturbation(const linalg::Matrix& x,
                                         const OptimizerOptions& opts, rng::Engine& eng) {
  ThreadPool pool(opts.threads);
  return optimize_perturbation(x, opts, eng, pool);
}

OptimizationResult optimize_perturbation(const linalg::Matrix& x,
                                         const OptimizerOptions& opts, rng::Engine& eng,
                                         ThreadPool& pool) {
  SAP_REQUIRE(opts.candidates >= 1, "optimize_perturbation: need at least one candidate");
  SAP_REQUIRE(x.rows() >= 2 && x.cols() >= 8,
              "optimize_perturbation: dataset too small (need d >= 2, N >= 8)");

  const privacy::AttackSuite suite(opts.attacks);
  const linalg::Matrix x_eval = subsample_records(x, opts.max_eval_records, eng);
  const std::size_t d = x.rows();
  const std::size_t nc = opts.candidates;

  OptimizationResult result;

  // --- random search phase. RNG material is derived serially BEFORE the
  // parallel region: one spawned child engine per candidate, in candidate
  // order. A worker then samples AND scores candidate c exclusively from
  // slot engine c, so neither the thread count nor the scheduling order can
  // reach the numbers (see the determinism contract in the header).
  std::vector<rng::Engine> slot_eng;
  slot_eng.reserve(nc);
  for (std::size_t c = 0; c < nc; ++c) slot_eng.push_back(eng.spawn());

  const privacy::AttackSuite::Scratch proto_scratch = suite.make_scratch(x_eval);
  std::vector<privacy::AttackSuite::Scratch> scratch(nc, proto_scratch);
  std::vector<linalg::Matrix> y_buf(nc);
  std::vector<perturb::GeometricPerturbation> cand(nc);
  result.candidate_rhos.assign(nc, 0.0);
  pool.run_indexed(nc, [&](std::size_t c) {
    cand[c] = perturb::GeometricPerturbation::random(d, opts.noise_sigma, slot_eng[c]);
    result.candidate_rhos[c] =
        score(x_eval, cand[c], suite, scratch[c], y_buf[c], slot_eng[c]);
  });
  result.evaluations += nc;

  // Serial reduction; ties keep the earliest candidate.
  std::size_t best = 0;
  for (std::size_t c = 1; c < nc; ++c)
    if (result.candidate_rhos[c] > result.candidate_rhos[best]) best = c;
  result.best = std::move(cand[best]);
  result.best_rho = result.candidate_rhos[best];

  // --- Givens hill climbing on the winner: each step probes the +theta and
  // -theta rotations of one random plane as a parallel pair (engines again
  // spawned serially, + first). The better probe wins the step — on an exact
  // tie, +theta, keeping the accept decision scheduling-independent.
  double angle = opts.refine_angle;
  std::array<privacy::AttackSuite::Scratch, 2> probe_scratch{proto_scratch, proto_scratch};
  std::array<linalg::Matrix, 2> probe_y;
  std::array<perturb::GeometricPerturbation, 2> probe;
  std::array<rng::Engine, 2> probe_eng{rng::Engine{0}, rng::Engine{0}};
  std::array<double, 2> probe_rho{};
  for (std::size_t step = 0; step < opts.refine_steps; ++step) {
    if (d < 2) break;
    const std::size_t p = eng.uniform_index(d);
    std::size_t q = eng.uniform_index(d - 1);
    if (q >= p) ++q;
    probe_eng[0] = eng.spawn();
    probe_eng[1] = eng.spawn();

    pool.run_indexed(2, [&](std::size_t s) {
      const double theta = (s == 0 ? 1.0 : -1.0) * angle;
      probe[s] = result.best;
      probe[s].precompose_rotation(linalg::givens(d, p, q, theta));
      probe_rho[s] =
          score(x_eval, probe[s], suite, probe_scratch[s], probe_y[s], probe_eng[s]);
    });
    result.evaluations += 2;

    const std::size_t win = (probe_rho[0] >= probe_rho[1]) ? 0 : 1;
    if (probe_rho[win] > result.best_rho) {
      result.best_rho = probe_rho[win];
      result.best = std::move(probe[win]);
    } else {
      angle *= 0.7;  // cool down when the step fails
    }
  }
  return result;
}

OptimalityEstimate estimate_optimality_rate(const linalg::Matrix& x,
                                            const OptimizerOptions& opts,
                                            std::size_t runs, rng::Engine& eng) {
  SAP_REQUIRE(runs >= 2, "estimate_optimality_rate: need at least two runs");
  OptimalityEstimate est;
  est.run_rhos.reserve(runs);
  double total = 0.0;
  ThreadPool pool(opts.threads);  // one pool across all runs
  for (std::size_t r = 0; r < runs; ++r) {
    const OptimizationResult res = optimize_perturbation(x, opts, eng, pool);
    est.run_rhos.push_back(res.best_rho);
    total += res.best_rho;
    est.bound = std::max(est.bound, res.best_rho);
  }
  est.mean_rho = total / static_cast<double>(runs);
  SAP_REQUIRE(est.bound > 0.0, "estimate_optimality_rate: all runs scored zero privacy");
  est.rate = est.mean_rho / est.bound;
  return est;
}

}  // namespace sap::opt
