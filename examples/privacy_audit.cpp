// Privacy audit: the dial a deployment actually tunes.
//
// For a chosen dataset, sweeps the two operational knobs — the common noise
// level sigma and the assumed adversary strength (number of known records m)
// — and prints the resulting (privacy, utility) frontier, plus the minimum
// collaboration size from the paper's risk model. This is the table a data
// provider would consult before joining a SAP federation.
//
// Build & run:  ./build/examples/privacy_audit [dataset]
#include <cstdio>
#include <string>

#include "classify/knn.hpp"
#include "common/table.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "optimize/optimizer.hpp"
#include "protocol/risk.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  const std::string dataset = (argc > 1) ? argv[1] : "Heart";

  const data::Dataset raw = data::make_uci(dataset, 3);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset ds(raw.name(), norm.transform(raw.features()), raw.labels());
  const linalg::Matrix x = ds.features_T();

  std::printf("== Privacy audit for dataset %s (%zu records, %zu dims) ==\n\n",
              ds.name().c_str(), ds.size(), ds.dims());

  // ---- frontier: sigma x adversary strength -> rho, plus KNN utility.
  rng::Engine split_eng(5);
  const auto split = data::stratified_split(ds, 0.7, split_eng);

  Table frontier({"sigma", "rho (m=0)", "rho (m=4)", "rho (m=16)", "KNN acc %"});
  for (const double sigma : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    opt::OptimizerOptions opts;
    opts.candidates = 8;
    opts.refine_steps = 4;
    opts.noise_sigma = sigma;
    opts.attacks = {.naive = true, .ica = true, .known_inputs = 16};
    rng::Engine eng(900 + static_cast<std::uint64_t>(sigma * 100));
    const auto g = opt::optimize_perturbation(x, opts, eng).best;

    std::vector<std::string> row{Table::num(sigma, 2)};
    for (const std::size_t m : {std::size_t{0}, std::size_t{4}, std::size_t{16}}) {
      privacy::AttackSuiteOptions ao{.naive = true, .ica = true, .known_inputs = m};
      double rho = 0.0;
      const int reps = 3;
      for (int r = 0; r < reps; ++r)
        rho += opt::evaluate_perturbation(x, g, ao, 150, eng);
      row.push_back(Table::num(rho / reps));
    }

    rng::Engine noise(31);
    const data::Dataset train_p(ds.name(), g.apply(split.train.features_T(), noise).transpose(),
                                split.train.labels());
    const data::Dataset test_p(ds.name(), g.apply(split.test.features_T(), noise).transpose(),
                               split.test.labels());
    ml::Knn knn(5);
    knn.fit(train_p);
    row.push_back(Table::num(ml::accuracy(knn, test_p) * 100.0, 1));
    frontier.add_row(std::move(row));
  }
  std::fputs(frontier.str().c_str(), stdout);

  // ---- collaboration sizing: given the measured optimality rate, how many
  //      parties must join before SAP's residual risk is acceptable?
  opt::OptimizerOptions opts;
  opts.candidates = 8;
  opts.refine_steps = 4;
  opts.noise_sigma = 0.1;
  opts.attacks = {.naive = true, .ica = false, .known_inputs = 4};
  rng::Engine eng(77);
  const auto est = opt::estimate_optimality_rate(x, opts, 10, eng);
  std::printf("\nmeasured optimality rate: %.3f (rho-bar %.3f / b-hat %.3f)\n", est.rate,
              est.mean_rho, est.bound);

  Table sizing({"desired satisfaction s0", "min parties (residual-tolerance)"});
  for (const double s0 : {0.90, 0.95, 0.97, 0.99}) {
    const auto k =
        proto::min_parties(s0, est.rate, proto::MinPartiesCriterion::kResidualTolerance, 500);
    sizing.add_row({Table::num(s0, 2), k > 500 ? ">500" : std::to_string(k)});
  }
  std::fputs(sizing.str().c_str(), stdout);
  std::printf("\n-> pick the sigma row meeting your rho target, then join a federation\n"
              "   at least as large as the sizing table suggests.\n");
  return 0;
}
