// Multiparty collaborative mining with the Space Adaptation Protocol —
// the paper's headline scenario, end to end.
//
// Six hospitals ("data providers") each hold a shard of a diabetes-screening
// dataset. None will share raw records. They run SAP:
//   * each locally optimizes its own geometric perturbation,
//   * a coordinator (one of the providers) picks a random target space and a
//     random exchange permutation,
//   * perturbed shards are exchanged between peers and forwarded to the
//     mining service provider, which unifies them with space adaptors and
//     trains an SVM — never learning which shard came from whom.
//
// Build & run:  ./build/examples/multiparty_mining
#include <cstdio>

#include "classify/svm.hpp"
#include "common/table.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "protocol/session.hpp"

int main() {
  using namespace sap;
  const std::size_t kProviders = 6;

  // ---- the pooled data nobody actually holds: 6 shards, class-skewed
  //      (each hospital's patient mix differs from the population).
  const data::Dataset raw = data::make_uci("Diabetes", 11);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  rng::Engine eng(311);
  const auto split = data::stratified_split(pool, 0.7, eng);

  data::PartitionOptions popts;
  popts.kind = data::PartitionKind::kClass;
  popts.class_alpha = 0.8;
  auto shards = data::partition(split.train, kProviders, popts, eng);

  std::printf("== SAP multiparty mining: %zu providers, dataset %s ==\n\n", kProviders,
              raw.name().c_str());
  for (std::size_t i = 0; i < shards.size(); ++i)
    std::printf("  provider %zu holds %4zu records (class skew %.2f)\n", i,
                shards[i].size(), data::class_skew(split.train, shards[i]));

  // ---- run the protocol; the miner trains an SVM on the unified data.
  proto::SapOptions opts;
  opts.noise_sigma = 0.1;
  opts.optimizer.candidates = 8;
  opts.optimizer.refine_steps = 4;
  opts.optimizer.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  opts.bound_runs = 2;
  opts.seed = 424242;

  opts.transport = proto::TransportKind::kThreadedLocal;  // one worker per party

  proto::SapSession session(std::move(shards), opts);
  session.run_until(proto::SessionPhase::kMine);  // the exchange, phase by phase

  std::printf("\nprotocol phases (concurrent per-party execution):\n");
  for (const auto& stats : session.phase_log())
    std::printf("  %-20s %7.1f ms   %3zu msgs  %7.1f KiB\n",
                proto::to_string(stats.phase).c_str(), stats.millis, stats.messages,
                static_cast<double>(stats.total_bytes) / 1024.0);

  // One exchange serves many mining jobs: train the SVM, then re-mine the
  // pooled unified space with a second named job at zero exchange cost.
  double miner_train_acc = 0.0;
  const proto::SapResult result = session.mine([&](const data::Dataset& unified) {
    ml::Svm svm;
    svm.fit(unified);
    miner_train_acc = ml::accuracy(svm, unified);
    return std::vector<double>{miner_train_acc};
  });
  const proto::SapResult knn_result = session.mine_named("knn-train-accuracy");

  std::printf("\nminer unified %zu records in the target space (SVM train acc %.1f%%)\n",
              result.unified.size(), miner_train_acc * 100.0);
  std::printf("second job on the same pool: knn-train-accuracy (+%zu report msgs only)\n",
              knn_result.messages - result.messages);
  std::printf("network: %zu messages, %.1f KiB ciphertext total\n\n", result.messages,
              static_cast<double>(result.total_bytes) / 1024.0);

  // ---- per-party privacy accounting (paper notation).
  Table table({"provider", "rho_i", "b_i", "s_i", "pi_i", "risk eq(1)", "risk eq(2)"});
  for (const auto& p : result.parties) {
    table.add_row({std::to_string(p.id), Table::num(p.local_rho), Table::num(p.bound),
                   Table::num(p.satisfaction), Table::num(p.identifiability),
                   Table::num(p.risk_breach), Table::num(p.risk_sap)});
  }
  std::fputs(table.str().c_str(), stdout);

  // ---- utility check from the providers' side: they know G_t, so they can
  //      evaluate the miner's model on their own (target-space) test data.
  ml::Svm svm_unified;
  svm_unified.fit(result.unified);
  const data::Dataset test_t(pool.name(),
                             result.target_space.apply_noiseless(split.test.features_T())
                                 .transpose(),
                             split.test.labels());
  ml::Svm svm_baseline;
  svm_baseline.fit(split.train);
  std::printf("\ntest accuracy: baseline (raw pooled data) %.1f%%  vs  SAP unified %.1f%%\n",
              ml::accuracy(svm_baseline, split.test) * 100.0,
              ml::accuracy(svm_unified, test_t) * 100.0);
  std::printf("\n-> every provider's identifiability at the miner is 1/(k-1) = %.3f and\n"
              "   no party ever saw another's raw data or perturbation parameters.\n",
              result.parties.front().identifiability);
  return 0;
}
