// Quickstart: protect one dataset with an optimized geometric perturbation
// and verify that a distance-based classifier keeps its accuracy.
//
//   1. generate + normalize a dataset,
//   2. optimize a geometric perturbation G(X) = RX + Psi + Delta for it,
//   3. measure the minimum privacy guarantee rho under the attack suite,
//   4. train KNN on original vs perturbed data and compare accuracy.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "classify/knn.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "optimize/optimizer.hpp"

int main() {
  using namespace sap;

  // ---- 1. data: a synthetic stand-in for the UCI Diabetes dataset,
  //         min-max normalized to [0,1] (the perturbation's expected domain).
  const data::Dataset raw = data::make_uci("Diabetes", /*seed=*/1);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset ds(raw.name(), norm.transform(raw.features()), raw.labels());
  std::printf("dataset: %s  (%zu records, %zu dims, %zu classes)\n\n", ds.name().c_str(),
              ds.size(), ds.dims(), ds.classes().size());

  // ---- 2. optimize a perturbation for this data: random search + Givens
  //         refinement, scored by the attack suite (naive + ICA + known-input).
  opt::OptimizerOptions opts;
  opts.candidates = 12;
  opts.refine_steps = 6;
  opts.noise_sigma = 0.1;
  opts.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  rng::Engine eng(2024);

  const linalg::Matrix x = ds.features_T();  // paper layout: d x N
  const auto result = opt::optimize_perturbation(x, opts, eng);
  std::printf("optimized perturbation: rho = %.3f  (%zu attack-suite evaluations)\n",
              result.best_rho, result.evaluations);
  double mean_random = 0.0;
  for (double rho : result.candidate_rhos) mean_random += rho;
  mean_random /= static_cast<double>(result.candidate_rhos.size());
  std::printf("mean random candidate:  rho = %.3f  -> optimization gain %.3f\n\n",
              mean_random, result.best_rho - mean_random);

  // ---- 3. privacy: what does rho mean? It is the minimum over columns and
  //         attacks of how far (in column stddevs) the best adversarial
  //         reconstruction stays from the truth. ~sqrt(2) is "uninformed".
  std::printf("privacy guarantee rho = %.3f column-stddevs of reconstruction error\n\n",
              result.best_rho);

  // ---- 4. utility: train KNN on original vs perturbed data.
  rng::Engine split_eng(7);
  const auto split = data::stratified_split(ds, 0.7, split_eng);

  ml::Knn knn_orig(5);
  knn_orig.fit(split.train);
  const double acc_orig = ml::accuracy(knn_orig, split.test);

  // Perturb train and test with the SAME optimized perturbation (what a
  // data provider would publish), then train/evaluate in perturbed space.
  rng::Engine noise(99);
  const data::Dataset train_p(ds.name(),
                              result.best.apply(split.train.features_T(), noise).transpose(),
                              split.train.labels());
  const data::Dataset test_p(ds.name(),
                             result.best.apply(split.test.features_T(), noise).transpose(),
                             split.test.labels());
  ml::Knn knn_pert(5);
  knn_pert.fit(train_p);
  const double acc_pert = ml::accuracy(knn_pert, test_p);

  std::printf("KNN accuracy  original space: %.1f%%   perturbed space: %.1f%%   "
              "deviation: %+.1f points\n",
              acc_orig * 100.0, acc_pert * 100.0, (acc_pert - acc_orig) * 100.0);
  std::printf("\n-> rotation+translation preserve distances exactly; the noise term\n"
              "   costs a little accuracy and buys the privacy guarantee above.\n");
  return 0;
}
