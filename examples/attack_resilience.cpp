// Attack resilience: how each adversary breaks (or fails to break) the
// layers of a geometric perturbation.
//
// Walks one dataset through four protection levels and scores each against
// the three attack models:
//   A. no perturbation at all,
//   B. weak rotation (small-angle Givens — barely mixes columns),
//   C. random rotation + translation, no noise,
//   D. full optimized geometric perturbation (rotation + translation + noise).
//
// The table shows why each ingredient exists: rotation defeats the naive
// read-off, non-Gaussian structure lets ICA undo rotation alone, and only
// the noise term blunts the known-input (Procrustes) attack.
//
// Build & run:  ./build/examples/attack_resilience
#include <cstdio>
#include <limits>
#include <numbers>

#include "common/table.hpp"
#include "data/normalize.hpp"
#include "data/synthetic.hpp"
#include "linalg/orthogonal.hpp"
#include "optimize/optimizer.hpp"
#include "privacy/evaluator.hpp"

int main() {
  using namespace sap;

  const data::Dataset raw = data::make_uci("Votes", 5);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset ds(raw.name(), norm.transform(raw.features()), raw.labels());
  const linalg::Matrix x = ds.features_T();
  const std::size_t d = x.rows();
  rng::Engine eng(77);

  std::printf("== Attack resilience across protection levels (dataset %s) ==\n\n",
              raw.name().c_str());

  // The four protection levels.
  struct Level {
    const char* label;
    linalg::Matrix y;
  };
  std::vector<Level> levels;

  levels.push_back({"A. identity (no protection)", x});

  auto weak = linalg::givens(d, 0, 1, std::numbers::pi / 16.0);
  levels.push_back({"B. weak rotation", weak * x});

  const auto g_rot = perturb::GeometricPerturbation::random(d, 0.0, eng);
  levels.push_back({"C. random rotation+translation", g_rot.apply_noiseless(x)});

  opt::OptimizerOptions opts;
  opts.candidates = 10;
  opts.refine_steps = 5;
  opts.noise_sigma = 0.12;
  opts.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  const auto g_opt = opt::optimize_perturbation(x, opts, eng).best;
  levels.push_back({"D. optimized + noise (sigma=0.12)", g_opt.apply(x, eng)});

  // Score each level against each attack separately.
  Table table({"protection", "naive", "ica", "known-input(4)", "rho (min)"});
  for (const auto& level : levels) {
    std::vector<std::string> row{level.label};
    double rho = std::numeric_limits<double>::infinity();
    for (int which = 0; which < 3; ++which) {
      privacy::AttackSuiteOptions ao;
      ao.naive = (which == 0);
      ao.ica = (which == 1);
      ao.known_inputs = (which == 2) ? 4 : 0;
      const privacy::AttackSuite suite(ao);
      rng::Engine eval_eng(101 + which);
      const auto report = suite.evaluate(x, level.y, eval_eng);
      row.push_back(report.attacks.front().failed ? "failed" : Table::num(report.rho));
      if (!report.attacks.front().failed) rho = std::min(rho, report.rho);
    }
    row.push_back(Table::num(rho));
    table.add_row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\nreading the table (0 = fully disclosed, ~1.41 = uninformed guessing):\n"
      "  * naive collapses only when columns are unmixed (A, partially B);\n"
      "  * ICA recovers non-Gaussian columns through any pure rotation (C);\n"
      "  * known-input inverts rotation+translation exactly unless noise is\n"
      "    present — only D keeps all three attacks at bay, which is why the\n"
      "    paper's perturbation carries all three components.\n");
  return 0;
}
