// sap_cli — command-line driver for libsap.
//
// Subcommands:
//   datasets                                  list the built-in synthetic suite
//   jobs                                      list the named miner jobs
//   generate <name> <out.csv> [seed]          write a synthetic dataset as CSV
//   perturb <in.csv> <out.csv> [sigma] [seed] normalize + optimized perturbation
//   attack <orig.csv> <pert.csv> [known_m]    run the attack suite, print report
//   protocol <name> [parties] [sigma] [seed]  full SAP run + KNN utility check
//            [--job <name>] [--transport sim|threaded] [--phases]
//   minparties <s0> <opt_rate>                Figure-4 calculator
//
// Every numeric argument is validated; bad flags or malformed values exit
// with status 2 after printing usage to stderr. `--help` (or `-h`, or the
// `help` subcommand) prints usage to stdout and exits 0.
//
// Examples:
//   sap_cli generate Diabetes /tmp/diab.csv 7
//   sap_cli perturb /tmp/diab.csv /tmp/diab_pert.csv 0.1
//   sap_cli attack /tmp/diab_norm.csv /tmp/diab_pert.csv 4
//   sap_cli protocol Diabetes 6 0.1 1 --job svm-train-accuracy --transport threaded
//   sap_cli minparties 0.95 0.9
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sap.hpp"

namespace {

using namespace sap;

const char* kUsage =
    "usage:\n"
    "  sap_cli datasets\n"
    "  sap_cli jobs\n"
    "  sap_cli generate <name> <out.csv> [seed=1]\n"
    "  sap_cli perturb <in.csv> <out.csv> [sigma=0.1] [seed=1]\n"
    "  sap_cli attack <original.csv> <perturbed.csv> [known_m=4]\n"
    "  sap_cli protocol <dataset-name> [parties=5] [sigma=0.1] [seed=1]\n"
    "          [--job <name>] [--transport sim|threaded] [--phases]\n"
    "  sap_cli minparties <s0> <opt_rate>\n"
    "  sap_cli --help\n"
    "\n"
    "flags for `protocol`:\n"
    "  --job <name>        run a named miner job on the unified pool\n"
    "                      (see `sap_cli jobs`; repeatable)\n"
    "  --transport <kind>  messaging backend: `sim` (synchronous, default)\n"
    "                      or `threaded` (one worker per party)\n"
    "  --phases            print per-phase timing and wire cost\n";

int usage_error(const char* message = nullptr) {
  if (message) std::fprintf(stderr, "error: %s\n", message);
  std::fputs(kUsage, stderr);
  return 2;
}

int usage_ok() {
  std::fputs(kUsage, stdout);
  return 0;
}

/// Strict double parse; exits via return false on garbage ("1x", "", "nan").
bool parse_double(const char* text, double& out) {
  if (!text || !*text) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(text, &end);
  return errno == 0 && end && *end == '\0' && std::isfinite(out);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  if (!text || !*text || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end && *end == '\0';
}

int cmd_datasets() {
  Table table({"name", "records", "dims", "classes", "binary frac"});
  for (const auto& spec : data::uci_suite())
    table.add_row({spec.name, std::to_string(spec.rows), std::to_string(spec.dims),
                   std::to_string(spec.classes), Table::num(spec.binary_fraction, 2)});
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_jobs() {
  std::printf("named miner jobs (run with `sap_cli protocol ... --job <name>`):\n");
  for (const auto& [name, job] : proto::builtin_miner_jobs())
    std::printf("  %s\n", name.c_str());
  return 0;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4 || argc > 5) return usage_error("generate takes 2-3 arguments");
  std::uint64_t seed = 1;
  if (argc == 5 && !parse_u64(argv[4], seed)) return usage_error("bad seed");
  const auto ds = data::make_uci(argv[2], seed);
  data::save_csv(ds, argv[3]);
  std::printf("wrote %zu records x %zu dims to %s\n", ds.size(), ds.dims(), argv[3]);
  return 0;
}

int cmd_perturb(int argc, char** argv) {
  if (argc < 4 || argc > 6) return usage_error("perturb takes 2-4 arguments");
  double sigma = 0.1;
  std::uint64_t seed = 1;
  if (argc > 4 && !parse_double(argv[4], sigma)) return usage_error("bad sigma");
  if (argc > 5 && !parse_u64(argv[5], seed)) return usage_error("bad seed");
  if (sigma < 0.0) return usage_error("sigma must be non-negative");

  const data::Dataset raw = data::load_csv(argv[2], "input");
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset ds(raw.name(), norm.transform(raw.features()), raw.labels());

  opt::OptimizerOptions opts;
  opts.candidates = 12;
  opts.refine_steps = 6;
  opts.noise_sigma = sigma;
  opts.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  rng::Engine eng(seed);
  const auto result = opt::optimize_perturbation(ds.features_T(), opts, eng);

  const data::Dataset out(ds.name(), result.best.apply(ds.features_T(), eng).transpose(),
                          ds.labels());
  data::save_csv(out, argv[3]);
  std::printf("optimized perturbation: rho = %.3f (sigma = %.2f, %zu evaluations)\n",
              result.best_rho, sigma, result.evaluations);
  std::printf("wrote perturbed dataset to %s\n", argv[3]);
  return 0;
}

int cmd_attack(int argc, char** argv) {
  if (argc < 4 || argc > 5) return usage_error("attack takes 2-3 arguments");
  std::uint64_t known = 4;
  if (argc == 5 && !parse_u64(argv[4], known)) return usage_error("bad known_m");
  const data::Dataset original = data::load_csv(argv[2], "original");
  const data::Dataset perturbed = data::load_csv(argv[3], "perturbed");
  SAP_REQUIRE(original.size() == perturbed.size() && original.dims() == perturbed.dims(),
              "attack: datasets must have identical shape");

  privacy::AttackSuite suite({.naive = true, .ica = true, .spectral = true,
                              .known_inputs = static_cast<std::size_t>(known)});
  rng::Engine eng(99);
  const auto report = suite.evaluate(original.features_T(), perturbed.features_T(), eng);

  Table table({"attack", "rho", "status"});
  for (const auto& a : report.attacks)
    table.add_row({a.attack, a.failed ? "-" : Table::num(a.rho),
                   a.failed ? "failed" : "ok"});
  std::fputs(table.str().c_str(), stdout);
  std::printf("minimum privacy guarantee rho = %.3f\n", report.rho);
  return 0;
}

int cmd_protocol(int argc, char** argv) {
  // Positionals first, then flags (flags may also interleave).
  std::vector<const char*> positional;
  std::vector<std::string> job_names;
  proto::TransportKind transport = proto::TransportKind::kSimulated;
  bool show_phases = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--job") {
      if (++i >= argc) return usage_error("--job needs a value");
      job_names.emplace_back(argv[i]);
    } else if (arg == "--transport") {
      if (++i >= argc) return usage_error("--transport needs a value");
      const std::string kind = argv[i];
      if (kind == "sim" || kind == "simulated") {
        transport = proto::TransportKind::kSimulated;
      } else if (kind == "threaded" || kind == "threaded-local") {
        transport = proto::TransportKind::kThreadedLocal;
      } else {
        return usage_error("unknown transport (use `sim` or `threaded`)");
      }
    } else if (arg == "--phases") {
      show_phases = true;
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      return usage_error(("unknown flag " + arg).c_str());
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || positional.size() > 4)
    return usage_error("protocol takes 1-4 positional arguments");

  std::uint64_t parties = 5, seed = 1;
  double sigma = 0.1;
  if (positional.size() > 1 && !parse_u64(positional[1], parties))
    return usage_error("bad party count");
  if (positional.size() > 2 && !parse_double(positional[2], sigma))
    return usage_error("bad sigma");
  if (positional.size() > 3 && !parse_u64(positional[3], seed))
    return usage_error("bad seed");
  if (parties < 3) return usage_error("protocol needs at least 3 parties");
  if (sigma < 0.0) return usage_error("sigma must be non-negative");

  const data::Dataset raw = data::make_uci(positional[0], seed);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  rng::Engine eng(seed ^ 0xC11);
  const auto split = data::stratified_split(pool, 0.7, eng);
  data::PartitionOptions popts;
  auto shards = data::partition(split.train, parties, popts, eng);

  proto::SapOptions opts;
  opts.noise_sigma = sigma;
  opts.seed = seed;
  opts.transport = transport;
  opts.optimizer.candidates = 8;
  opts.optimizer.refine_steps = 4;
  opts.optimizer.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  proto::SapSession session(std::move(shards), opts);

  // Validate job names against the registry BEFORE paying for the exchange.
  for (const auto& name : job_names) {
    const auto known = session.job_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "error: unknown miner job '%s' (see `sap_cli jobs`)\n",
                   name.c_str());
      return 2;
    }
  }

  const auto result = session.run();

  Table table({"provider", "rho_i", "b_i", "s_i", "pi_i", "risk eq(1)", "risk eq(2)"});
  for (const auto& p : result.parties)
    table.add_row({std::to_string(p.id), Table::num(p.local_rho), Table::num(p.bound),
                   Table::num(p.satisfaction), Table::num(p.identifiability),
                   Table::num(p.risk_breach), Table::num(p.risk_sap)});
  std::fputs(table.str().c_str(), stdout);

  if (show_phases) {
    std::printf("\nphases (transport=%s):\n", proto::to_string(transport).c_str());
    for (const auto& stats : session.phase_log())
      std::printf("  %-20s %8.1f ms  %4zu msgs  %8.1f KiB\n",
                  proto::to_string(stats.phase).c_str(), stats.millis, stats.messages,
                  static_cast<double>(stats.total_bytes) / 1024.0);
  }

  // Named jobs re-mine the pooled unified space without redoing the exchange.
  for (const auto& name : job_names) {
    const auto job_result = session.mine_named(name);
    (void)job_result;
    std::printf("job %-22s report broadcast to %llu providers\n", name.c_str(),
                static_cast<unsigned long long>(parties));
  }

  ml::Knn knn(5);
  knn.fit(result.unified);
  const data::Dataset test_t(pool.name(),
                             result.target_space.apply_noiseless(split.test.features_T())
                                 .transpose(),
                             split.test.labels());
  ml::Knn baseline(5);
  baseline.fit(split.train);
  std::printf("\nmessages=%zu, ciphertext=%.1f KiB\n", result.messages,
              static_cast<double>(result.total_bytes) / 1024.0);
  std::printf("KNN accuracy: baseline %.1f%%, SAP-unified %.1f%%\n",
              ml::accuracy(baseline, split.test) * 100.0,
              ml::accuracy(knn, test_t) * 100.0);
  return 0;
}

int cmd_minparties(int argc, char** argv) {
  if (argc != 4) return usage_error("minparties takes exactly 2 arguments");
  double s0 = 0.0, rate = 0.0;
  if (!parse_double(argv[2], s0)) return usage_error("bad s0");
  if (!parse_double(argv[3], rate)) return usage_error("bad opt_rate");
  const auto primary =
      proto::min_parties(s0, rate, proto::MinPartiesCriterion::kResidualTolerance, 10000);
  const auto alt = proto::min_parties(s0, rate, proto::MinPartiesCriterion::kNoExtraRisk, 10000);
  std::printf("s0=%.3f opt_rate=%.3f -> min parties: %zu (residual tolerance), "
              "%zu (no extra risk)\n",
              s0, rate, primary, alt);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage_ok();
  try {
    if (cmd == "datasets") return cmd_datasets();
    if (cmd == "jobs") return cmd_jobs();
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "perturb") return cmd_perturb(argc, argv);
    if (cmd == "attack") return cmd_attack(argc, argv);
    if (cmd == "protocol") return cmd_protocol(argc, argv);
    if (cmd == "minparties") return cmd_minparties(argc, argv);
  } catch (const sap::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage_error(("unknown subcommand '" + cmd + "'").c_str());
}
