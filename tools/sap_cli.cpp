// sap_cli — command-line driver for libsap.
//
// Subcommands:
//   datasets                                  list the built-in synthetic suite
//   generate <name> <out.csv> [seed]          write a synthetic dataset as CSV
//   perturb <in.csv> <out.csv> [sigma] [seed] normalize + optimized perturbation
//   attack <orig.csv> <pert.csv> [known_m]    run the attack suite, print report
//   protocol <name> [parties] [sigma] [seed]  full SAP run + KNN utility check
//   minparties <s0> <opt_rate>                Figure-4 calculator
//
// Examples:
//   sap_cli generate Diabetes /tmp/diab.csv 7
//   sap_cli perturb /tmp/diab.csv /tmp/diab_pert.csv 0.1
//   sap_cli attack /tmp/diab_norm.csv /tmp/diab_pert.csv 4
//   sap_cli protocol Diabetes 6 0.1
//   sap_cli minparties 0.95 0.9
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sap.hpp"

namespace {

using namespace sap;

int usage() {
  std::fputs(
      "usage:\n"
      "  sap_cli datasets\n"
      "  sap_cli generate <name> <out.csv> [seed]\n"
      "  sap_cli perturb <in.csv> <out.csv> [sigma=0.1] [seed=1]\n"
      "  sap_cli attack <original.csv> <perturbed.csv> [known_m=4]\n"
      "  sap_cli protocol <dataset-name> [parties=5] [sigma=0.1] [seed=1]\n"
      "  sap_cli minparties <s0> <opt_rate>\n",
      stderr);
  return 2;
}

double arg_double(int argc, char** argv, int index, double fallback) {
  return (argc > index) ? std::atof(argv[index]) : fallback;
}

std::uint64_t arg_u64(int argc, char** argv, int index, std::uint64_t fallback) {
  return (argc > index) ? static_cast<std::uint64_t>(std::atoll(argv[index])) : fallback;
}

int cmd_datasets() {
  Table table({"name", "records", "dims", "classes", "binary frac"});
  for (const auto& spec : data::uci_suite())
    table.add_row({spec.name, std::to_string(spec.rows), std::to_string(spec.dims),
                   std::to_string(spec.classes), Table::num(spec.binary_fraction, 2)});
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto ds = data::make_uci(argv[2], arg_u64(argc, argv, 4, 1));
  data::save_csv(ds, argv[3]);
  std::printf("wrote %zu records x %zu dims to %s\n", ds.size(), ds.dims(), argv[3]);
  return 0;
}

int cmd_perturb(int argc, char** argv) {
  if (argc < 4) return usage();
  const double sigma = arg_double(argc, argv, 4, 0.1);
  const std::uint64_t seed = arg_u64(argc, argv, 5, 1);

  const data::Dataset raw = data::load_csv(argv[2], "input");
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset ds(raw.name(), norm.transform(raw.features()), raw.labels());

  opt::OptimizerOptions opts;
  opts.candidates = 12;
  opts.refine_steps = 6;
  opts.noise_sigma = sigma;
  opts.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  rng::Engine eng(seed);
  const auto result = opt::optimize_perturbation(ds.features_T(), opts, eng);

  const data::Dataset out(ds.name(), result.best.apply(ds.features_T(), eng).transpose(),
                          ds.labels());
  data::save_csv(out, argv[3]);
  std::printf("optimized perturbation: rho = %.3f (sigma = %.2f, %zu evaluations)\n",
              result.best_rho, sigma, result.evaluations);
  std::printf("wrote perturbed dataset to %s\n", argv[3]);
  return 0;
}

int cmd_attack(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto known = static_cast<std::size_t>(arg_u64(argc, argv, 4, 4));
  const data::Dataset original = data::load_csv(argv[2], "original");
  const data::Dataset perturbed = data::load_csv(argv[3], "perturbed");
  SAP_REQUIRE(original.size() == perturbed.size() && original.dims() == perturbed.dims(),
              "attack: datasets must have identical shape");

  privacy::AttackSuite suite({.naive = true, .ica = true, .spectral = true,
                              .known_inputs = known});
  rng::Engine eng(99);
  const auto report = suite.evaluate(original.features_T(), perturbed.features_T(), eng);

  Table table({"attack", "rho", "status"});
  for (const auto& a : report.attacks)
    table.add_row({a.attack, a.failed ? "-" : Table::num(a.rho),
                   a.failed ? "failed" : "ok"});
  std::fputs(table.str().c_str(), stdout);
  std::printf("minimum privacy guarantee rho = %.3f\n", report.rho);
  return 0;
}

int cmd_protocol(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto parties = static_cast<std::size_t>(arg_u64(argc, argv, 3, 5));
  const double sigma = arg_double(argc, argv, 4, 0.1);
  const std::uint64_t seed = arg_u64(argc, argv, 5, 1);

  const data::Dataset raw = data::make_uci(argv[2], seed);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  rng::Engine eng(seed ^ 0xC11);
  const auto split = data::stratified_split(pool, 0.7, eng);
  data::PartitionOptions popts;
  auto shards = data::partition(split.train, parties, popts, eng);

  proto::SapOptions opts;
  opts.noise_sigma = sigma;
  opts.seed = seed;
  opts.optimizer.candidates = 8;
  opts.optimizer.refine_steps = 4;
  opts.optimizer.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  proto::SapProtocol protocol(std::move(shards), opts);
  const auto result = protocol.run();

  Table table({"provider", "rho_i", "b_i", "s_i", "pi_i", "risk eq(1)", "risk eq(2)"});
  for (const auto& p : result.parties)
    table.add_row({std::to_string(p.id), Table::num(p.local_rho), Table::num(p.bound),
                   Table::num(p.satisfaction), Table::num(p.identifiability),
                   Table::num(p.risk_breach), Table::num(p.risk_sap)});
  std::fputs(table.str().c_str(), stdout);

  ml::Knn knn(5);
  knn.fit(result.unified);
  const data::Dataset test_t(pool.name(),
                             result.target_space.apply_noiseless(split.test.features_T())
                                 .transpose(),
                             split.test.labels());
  ml::Knn baseline(5);
  baseline.fit(split.train);
  std::printf("\nmessages=%zu, ciphertext=%.1f KiB\n", result.messages,
              static_cast<double>(result.total_bytes) / 1024.0);
  std::printf("KNN accuracy: baseline %.1f%%, SAP-unified %.1f%%\n",
              ml::accuracy(baseline, split.test) * 100.0,
              ml::accuracy(knn, test_t) * 100.0);
  return 0;
}

int cmd_minparties(int argc, char** argv) {
  if (argc < 4) return usage();
  const double s0 = std::atof(argv[2]);
  const double rate = std::atof(argv[3]);
  const auto primary =
      proto::min_parties(s0, rate, proto::MinPartiesCriterion::kResidualTolerance, 10000);
  const auto alt = proto::min_parties(s0, rate, proto::MinPartiesCriterion::kNoExtraRisk, 10000);
  std::printf("s0=%.3f opt_rate=%.3f -> min parties: %zu (residual tolerance), "
              "%zu (no extra risk)\n",
              s0, rate, primary, alt);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "datasets") return cmd_datasets();
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "perturb") return cmd_perturb(argc, argv);
    if (cmd == "attack") return cmd_attack(argc, argv);
    if (cmd == "protocol") return cmd_protocol(argc, argv);
    if (cmd == "minparties") return cmd_minparties(argc, argv);
  } catch (const sap::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
