// sap_cli — command-line driver for libsap.
//
// Subcommands:
//   datasets                                  list the built-in synthetic suite
//   jobs                                      list the named miner jobs
//   generate <name> <out.csv> [seed]          write a synthetic dataset as CSV
//   perturb <in.csv> <out.csv> [sigma] [seed] normalize + optimized perturbation
//   attack <orig.csv> <pert.csv> [known_m]    run the attack suite, print report
//   protocol <name> [parties] [sigma] [seed]  full SAP run + KNN utility check
//            [--job <name>] [--transport sim|threaded] [--phases]
//   serve <name> [parties] [sigma] [seed]     run the exchange, then serve a
//            [--requests N] [--threads K]     mining request load from the
//            [--job name[:k=v,...]]           session's MiningEngine and
//            [--no-cache] [--transport ...]   report req/s + p50/p99 latency
//            [--ingest-every N]               (optionally streaming new
//            [--ingest-records M]             batches into the live pool
//                                            between request chunks)
//   contribute <name> [parties] [sigma] [seed] run the exchange, then stream
//            [--batches N] [--batch-records M] held-back record batches into
//            [--job name[:k=v,...]]            the live pool via the
//            [--transport ...]                 Contribute phase, re-serving
//                                             the job after every append
//   minparties <s0> <opt_rate>                Figure-4 calculator
//
// Every numeric argument is validated; bad flags or malformed values exit
// with status 2 after printing usage to stderr. `--help` (or `-h`, or the
// `help` subcommand) prints usage to stdout and exits 0.
//
// Examples:
//   sap_cli generate Diabetes /tmp/diab.csv 7
//   sap_cli perturb /tmp/diab.csv /tmp/diab_pert.csv 0.1
//   sap_cli attack /tmp/diab_norm.csv /tmp/diab_pert.csv 4
//   sap_cli protocol Diabetes 6 0.1 1 --job svm-train-accuracy --transport threaded
//   sap_cli minparties 0.95 0.9
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "sap.hpp"

namespace {

using namespace sap;

const char* kUsage =
    "usage:\n"
    "  sap_cli datasets\n"
    "  sap_cli jobs [--json]\n"
    "  sap_cli generate <name> <out.csv> [seed=1]\n"
    "  sap_cli perturb <in.csv> <out.csv> [sigma=0.1] [seed=1]\n"
    "          [--optimize-threads K=0]\n"
    "  sap_cli attack <original.csv> <perturbed.csv> [known_m=4]\n"
    "  sap_cli protocol <dataset-name> [parties=5] [sigma=0.1] [seed=1]\n"
    "          [--job <name>] [--transport sim|threaded] [--phases]\n"
    "          [--optimize-threads K=0]\n"
    "  sap_cli serve <dataset-name> [parties=5] [sigma=0.1] [seed=1]\n"
    "          [--requests N=256] [--threads K=4] [--job name[:k=v,...]]\n"
    "          [--no-cache] [--transport sim|threaded]\n"
    "          [--ingest-every N=0] [--ingest-records M=32]\n"
    "          [--optimize-threads K=0]\n"
    "  sap_cli serve --listen HOST:PORT --parties K [--seed S=1]\n"
    "          [--threads K=0] [--no-cache] [--deadline-ms N=30000]\n"
    "          [--reactor-loops N=0] [--reactor-listen HOST:PORT]\n"
    "          [--shards N=1 --shard-index I] [--replicas R=1]\n"
    "          [--shard-layout mod|range] [--resync HOST:PORT,...]\n"
    "          [--fault SPEC]\n"
    "          (miner daemon: port 0 = ephemeral, the bound port is printed;\n"
    "           --reactor-loops > 0 opens the epoll serving front door on\n"
    "           --reactor-listen with N sharded event loops — C10k serving\n"
    "           for clients beyond the K exchange parties, DESIGN.md \xc2\xa7""10;\n"
    "           --shards N > 1 makes this daemon cluster member I of N: it\n"
    "           installs/serves only the nonce-hash shards it owns — shard I\n"
    "           as primary plus the R-1 preceding shards as replicas,\n"
    "           DESIGN.md \xc2\xa7""11;\n"
    "           --resync names peer serving doors: before serving, each owned\n"
    "           shard is resynced from the first peer ahead of this miner's\n"
    "           local epoch — how a restarted miner re-enters rotation,\n"
    "           DESIGN.md \xc2\xa7""13)\n"
    "  sap_cli router --miners HOST:PORT,HOST:PORT,... --parties K\n"
    "          [--seed S=1] [--listen HOST:PORT] [--shards N=miners]\n"
    "          [--replicas R=1] [--shard-layout mod|range]\n"
    "          [--serve-ms N=60000] [--fault SPEC]\n"
    "          (cluster front door: hash-routes contributions to owning\n"
    "           miners, scatter-gathers mining requests, merges exactly,\n"
    "           fails reads over to replicas — serves for --serve-ms then\n"
    "           exits with stats)\n"
    "  sap_cli stats HOST:PORT [--parties K=5] [--seed S=1] [--json]\n"
    "          [--health]\n"
    "          (fetch a serving endpoint's live metrics + recent request\n"
    "           traces over one kStatsRequest round trip. Works against a\n"
    "           miner's reactor door AND a router front door — the router\n"
    "           answers the cluster-wide aggregate: counters and latency\n"
    "           histograms merged exactly across miners, per-miner gauges\n"
    "           namespaced m<i>.*. --parties/--seed must match the cluster\n"
    "           session, like every other client. --health prints a one-line\n"
    "           liveness summary instead of the full dump. An unreachable\n"
    "           endpoint exits 2 with a one-line diagnostic)\n"
    "  sap_cli party <dataset-name> [parties=5] [sigma=0.1] [seed=1]\n"
    "          --connect HOST:PORT --index I [--batches N=4]\n"
    "          [--batch-records M=16] [--job name[:k=v,...]]\n"
    "          [--deadline-ms N=30000] [--optimize-threads K=0]\n"
    "  sap_cli contribute <dataset-name> [parties=5] [sigma=0.1] [seed=1]\n"
    "          [--batches N=4] [--batch-records M=16] [--job name[:k=v,...]]\n"
    "          [--transport sim|threaded] [--optimize-threads K=0]\n"
    "  sap_cli minparties <s0> <opt_rate>\n"
    "  sap_cli --help\n"
    "\n"
    "flags for `protocol`:\n"
    "  --job <name>        run a named miner job on the unified pool\n"
    "                      (see `sap_cli jobs`; repeatable)\n"
    "  --transport <kind>  messaging backend: `sim` (synchronous, default)\n"
    "                      or `threaded` (one worker per party)\n"
    "  --phases            print per-phase timing and wire cost\n"
    "\n"
    "shared flag (perturb / protocol / serve / party / contribute):\n"
    "  --optimize-threads <k>  worker threads for each party's LocalOptimize\n"
    "                      candidate search (0 = serial). Pure speed knob:\n"
    "                      results are bit-identical for any thread count.\n"
    "\n"
    "flags for `serve`:\n"
    "  --requests <n>      total mining requests to serve (round-robin over\n"
    "                      the --job list)\n"
    "  --threads <k>       MiningEngine worker threads (0 = serve inline)\n"
    "  --job <spec>        job name with optional params, e.g.\n"
    "                      knn-train-accuracy:k=3,eval-records=64 (repeatable;\n"
    "                      default: every built-in trainable job)\n"
    "  --no-cache          retrain per request instead of serving cached models\n"
    "  --ingest-every <n>  after every n requests, stream a held-back record\n"
    "                      batch into the live pool through the Contribute\n"
    "                      phase (0 = serve a frozen pool, the default)\n"
    "  --ingest-records <m> records per streamed batch (with --ingest-every)\n"
    "\n"
    "flags for `contribute`:\n"
    "  --batches <n>       number of held-back batches to stream\n"
    "  --batch-records <m> records per streamed batch\n"
    "  --job <spec>        job re-served after every append (default\n"
    "                      nb-train-accuracy, which refits incrementally)\n"
    "\n"
    "environment:\n"
    "  SAP_LOG_LEVEL       stderr verbosity: off|error|warn|info|debug (or\n"
    "                      0-4); default warn. Daemon log lines carry a\n"
    "                      role prefix ([sap INFO  miner 0/2] ...)\n"
    "  SAP_FAULT           seeded socket-level fault injection for THIS\n"
    "                      process (chaos testing, DESIGN.md \xc2\xa7""13), e.g.\n"
    "                      'seed=7,drop=0.02,corrupt=0.02,reset=0.02' or\n"
    "                      'seed=7,rate=0.06'. Same spec + same seed =>\n"
    "                      the identical fault schedule. The --fault flag\n"
    "                      (serve --listen / router) takes the same spec\n"
    "                      and wins over the environment.\n"
    "\n"
    "cross-process mode (see README for the two-terminal walkthrough):\n"
    "  `serve --listen` runs the miner daemon: it binds HOST:PORT, waits for\n"
    "  --parties party processes, pools the exchange, then serves streamed\n"
    "  contributions and mining requests until every party disconnects.\n"
    "  `party` runs one provider: every party process must use the SAME\n"
    "  dataset/parties/sigma/seed arguments (they define the logical\n"
    "  session; the seed also stands in for the out-of-band key exchange)\n"
    "  and a DISTINCT --index 0..K-1 (K-1 doubles as the coordinator).\n"
    "  Each party streams the held-back batches b with b mod K == --index\n"
    "  and re-serves --job (repeatable) over the wire after its last\n"
    "  batch. The exchange pool is bit-identical to `--transport sim`;\n"
    "  concurrently streamed batches land in scheduling-dependent order, so\n"
    "  compare the daemon's `multiset` digest (order-insensitive) — with a\n"
    "  single contributing party the ordered digest matches too.\n";

int usage_error(const char* message = nullptr) {
  if (message) std::fprintf(stderr, "error: %s\n", message);
  std::fputs(kUsage, stderr);
  return 2;
}

int usage_ok() {
  std::fputs(kUsage, stdout);
  return 0;
}

/// Strict double parse; exits via return false on garbage ("1x", "", "nan").
bool parse_double(const char* text, double& out) {
  if (!text || !*text) return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(text, &end);
  return errno == 0 && end && *end == '\0' && std::isfinite(out);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  if (!text || !*text || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end && *end == '\0';
}

/// Comma-separated HOST:PORT list ("a:1,b:2"); false when empty or any
/// element fails to parse.
bool parse_addr_list(const std::string& text, std::vector<net::SocketAddr>& out) {
  try {
    std::size_t at = 0;
    while (at <= text.size()) {
      const auto comma = text.find(',', at);
      const auto one = text.substr(
          at, comma == std::string::npos ? std::string::npos : comma - at);
      if (!one.empty()) out.push_back(net::SocketAddr::parse(one));
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  } catch (const sap::Error&) {
    return false;
  }
  return !out.empty();
}

/// Shared --fault SPEC handler: parse + install (flag wins over SAP_FAULT).
bool install_fault_spec(const char* text, std::string& error) {
  try {
    net::fault::install(net::fault::FaultPlan::parse(text ? text : ""));
  } catch (const sap::Error& e) {
    error = e.what();
    return false;
  }
  return true;
}

/// Shared --transport value parser; false on an unknown kind.
bool parse_transport(const char* text, proto::TransportKind& out) {
  const std::string kind = text ? text : "";
  if (kind == "sim" || kind == "simulated") {
    out = proto::TransportKind::kSimulated;
  } else if (kind == "threaded" || kind == "threaded-local") {
    out = proto::TransportKind::kThreadedLocal;
  } else {
    return false;
  }
  return true;
}

int cmd_datasets() {
  Table table({"name", "records", "dims", "classes", "binary frac"});
  for (const auto& spec : data::uci_suite())
    table.add_row({spec.name, std::to_string(spec.rows), std::to_string(spec.dims),
                   std::to_string(spec.classes), Table::num(spec.binary_fraction, 2)});
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_jobs(int argc, char** argv) {
  const auto registry = proto::JobRegistry::builtins();
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else {
      return usage_error(("unknown flag " + arg + " for jobs").c_str());
    }
  }
  if (json) {
    std::fputs(proto::schema_json(registry).c_str(), stdout);
    return 0;
  }
  Table table({"job", "kind", "params (name=default)", "summary"});
  for (const auto& name : registry.names()) {
    const auto& spec = registry.find(name);
    std::string params;
    for (const auto& p : spec.params) {
      if (!params.empty()) params += ", ";
      params += p.name + "=" + Table::num(p.def, 4);
    }
    table.add_row({name, spec.trainable() ? "trainable" : "structural", params,
                   spec.summary});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4 || argc > 5) return usage_error("generate takes 2-3 arguments");
  std::uint64_t seed = 1;
  if (argc == 5 && !parse_u64(argv[4], seed)) return usage_error("bad seed");
  const auto ds = data::make_uci(argv[2], seed);
  data::save_csv(ds, argv[3]);
  std::printf("wrote %zu records x %zu dims to %s\n", ds.size(), ds.dims(), argv[3]);
  return 0;
}

/// Shared `--optimize-threads K` handler: returns true when argv[i] was this
/// flag (advancing i past the value), false otherwise; `err` is set on a
/// malformed value.
bool take_optimize_threads(int argc, char** argv, int& i, std::uint64_t& out, bool& err) {
  if (std::string(argv[i]) != "--optimize-threads") return false;
  err = (++i >= argc || !parse_u64(argv[i], out) || out > 256);
  return true;
}

int cmd_perturb(int argc, char** argv) {
  std::vector<const char*> positional;
  std::uint64_t optimize_threads = 0;
  for (int i = 2; i < argc; ++i) {
    bool bad = false;
    if (take_optimize_threads(argc, argv, i, optimize_threads, bad)) {
      if (bad) return usage_error("--optimize-threads needs a count in [0, 256]");
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      return usage_error(("unknown flag " + std::string(argv[i])).c_str());
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 4)
    return usage_error("perturb takes 2-4 positional arguments");
  double sigma = 0.1;
  std::uint64_t seed = 1;
  if (positional.size() > 2 && !parse_double(positional[2], sigma))
    return usage_error("bad sigma");
  if (positional.size() > 3 && !parse_u64(positional[3], seed))
    return usage_error("bad seed");
  if (sigma < 0.0) return usage_error("sigma must be non-negative");
  const char* in_path = positional[0];
  const char* out_path = positional[1];

  const data::Dataset raw = data::load_csv(in_path, "input");
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset ds(raw.name(), norm.transform(raw.features()), raw.labels());

  opt::OptimizerOptions opts;
  opts.candidates = 12;
  opts.refine_steps = 6;
  opts.noise_sigma = sigma;
  opts.threads = optimize_threads;
  opts.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  rng::Engine eng(seed);
  const auto result = opt::optimize_perturbation(ds.features_T(), opts, eng);

  const data::Dataset out(ds.name(), result.best.apply(ds.features_T(), eng).transpose(),
                          ds.labels());
  data::save_csv(out, out_path);
  std::printf("optimized perturbation: rho = %.3f (sigma = %.2f, %zu evaluations)\n",
              result.best_rho, sigma, result.evaluations);
  std::printf("wrote perturbed dataset to %s\n", out_path);
  return 0;
}

int cmd_attack(int argc, char** argv) {
  if (argc < 4 || argc > 5) return usage_error("attack takes 2-3 arguments");
  std::uint64_t known = 4;
  if (argc == 5 && !parse_u64(argv[4], known)) return usage_error("bad known_m");
  const data::Dataset original = data::load_csv(argv[2], "original");
  const data::Dataset perturbed = data::load_csv(argv[3], "perturbed");
  SAP_REQUIRE(original.size() == perturbed.size() && original.dims() == perturbed.dims(),
              "attack: datasets must have identical shape");

  privacy::AttackSuite suite({.naive = true, .ica = true, .spectral = true,
                              .known_inputs = static_cast<std::size_t>(known)});
  rng::Engine eng(99);
  const auto report = suite.evaluate(original.features_T(), perturbed.features_T(), eng);

  Table table({"attack", "rho", "status"});
  for (const auto& a : report.attacks)
    table.add_row({a.attack, a.failed ? "-" : Table::num(a.rho),
                   a.failed ? "failed" : "ok"});
  std::fputs(table.str().c_str(), stdout);
  std::printf("minimum privacy guarantee rho = %.3f\n", report.rho);
  return 0;
}

int cmd_protocol(int argc, char** argv) {
  // Positionals first, then flags (flags may also interleave).
  std::vector<const char*> positional;
  std::vector<std::string> job_names;
  proto::TransportKind transport = proto::TransportKind::kSimulated;
  std::uint64_t optimize_threads = 0;
  bool show_phases = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    bool bad = false;
    if (take_optimize_threads(argc, argv, i, optimize_threads, bad)) {
      if (bad) return usage_error("--optimize-threads needs a count in [0, 256]");
    } else if (arg == "--job") {
      if (++i >= argc) return usage_error("--job needs a value");
      job_names.emplace_back(argv[i]);
    } else if (arg == "--transport") {
      if (++i >= argc) return usage_error("--transport needs a value");
      if (!parse_transport(argv[i], transport))
        return usage_error("unknown transport (use `sim` or `threaded`)");
    } else if (arg == "--phases") {
      show_phases = true;
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      return usage_error(("unknown flag " + arg).c_str());
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || positional.size() > 4)
    return usage_error("protocol takes 1-4 positional arguments");

  std::uint64_t parties = 5, seed = 1;
  double sigma = 0.1;
  if (positional.size() > 1 && !parse_u64(positional[1], parties))
    return usage_error("bad party count");
  if (positional.size() > 2 && !parse_double(positional[2], sigma))
    return usage_error("bad sigma");
  if (positional.size() > 3 && !parse_u64(positional[3], seed))
    return usage_error("bad seed");
  if (parties < 3) return usage_error("protocol needs at least 3 parties");
  if (sigma < 0.0) return usage_error("sigma must be non-negative");

  const data::Dataset raw = data::make_uci(positional[0], seed);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  const data::Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  rng::Engine eng(seed ^ 0xC11);
  const auto split = data::stratified_split(pool, 0.7, eng);
  data::PartitionOptions popts;
  auto shards = data::partition(split.train, parties, popts, eng);

  proto::SapOptions opts;
  opts.noise_sigma = sigma;
  opts.seed = seed;
  opts.transport = transport;
  opts.optimizer.candidates = 8;
  opts.optimizer.refine_steps = 4;
  opts.optimizer.threads = optimize_threads;
  opts.optimizer.attacks = {.naive = true, .ica = true, .known_inputs = 4};
  proto::SapSession session(std::move(shards), opts);

  // Validate job names against the registry BEFORE paying for the exchange.
  for (const auto& name : job_names) {
    const auto known = session.job_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "error: unknown miner job '%s' (see `sap_cli jobs`)\n",
                   name.c_str());
      return 2;
    }
  }

  const auto result = session.run();

  Table table({"provider", "rho_i", "b_i", "s_i", "pi_i", "risk eq(1)", "risk eq(2)"});
  for (const auto& p : result.parties)
    table.add_row({std::to_string(p.id), Table::num(p.local_rho), Table::num(p.bound),
                   Table::num(p.satisfaction), Table::num(p.identifiability),
                   Table::num(p.risk_breach), Table::num(p.risk_sap)});
  std::fputs(table.str().c_str(), stdout);

  if (show_phases) {
    std::printf("\nphases (transport=%s):\n", proto::to_string(transport).c_str());
    for (const auto& stats : session.phase_log())
      std::printf("  %-20s %8.1f ms  %4zu msgs  %8.1f KiB\n",
                  proto::to_string(stats.phase).c_str(), stats.millis, stats.messages,
                  static_cast<double>(stats.total_bytes) / 1024.0);
  }

  // Named jobs re-mine the pooled unified space without redoing the exchange.
  for (const auto& name : job_names) {
    const auto job_result = session.mine_named(name);
    (void)job_result;
    std::printf("job %-22s report broadcast to %llu providers\n", name.c_str(),
                static_cast<unsigned long long>(parties));
  }

  ml::Knn knn(5);
  knn.fit(result.unified);
  const data::Dataset test_t(pool.name(),
                             result.target_space.apply_noiseless(split.test.features_T())
                                 .transpose(),
                             split.test.labels());
  ml::Knn baseline(5);
  baseline.fit(split.train);
  std::printf("\nmessages=%zu, ciphertext=%.1f KiB\n", result.messages,
              static_cast<double>(result.total_bytes) / 1024.0);
  std::printf("KNN accuracy: baseline %.1f%%, SAP-unified %.1f%%\n",
              ml::accuracy(baseline, split.test) * 100.0,
              ml::accuracy(knn, test_t) * 100.0);
  return 0;
}

/// Parse "name[:k=v[,k=v...]]" into a MiningRequest; false on malformed text.
bool parse_job_spec(const std::string& text, proto::MiningRequest& out) {
  const auto colon = text.find(':');
  out.job = text.substr(0, colon);
  out.params.clear();
  if (out.job.empty()) return false;
  if (colon == std::string::npos) return true;
  std::string rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string pair = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    double value = 0.0;
    if (!parse_double(pair.substr(eq + 1).c_str(), value)) return false;
    out.params[pair.substr(0, eq)] = value;
  }
  return true;
}

/// Validate each request's job name AND params against the builtin registry
/// (what the engine and the miner daemon serve) BEFORE paying for any
/// exchange; prints the error and returns false on the first invalid one.
bool validate_job_requests(const std::vector<proto::MiningRequest>& requests) {
  const auto builtins = proto::JobRegistry::builtins();
  for (const auto& req : requests) {
    if (!builtins.contains(req.job)) {
      std::fprintf(stderr, "error: unknown miner job '%s' (see `sap_cli jobs`)\n",
                   req.job.c_str());
      return false;
    }
    try {
      (void)builtins.find(req.job).resolve_params(req.params);
    } catch (const sap::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return false;
    }
  }
  return true;
}

/// Miner daemon: bind, pool the exchange from remote parties, serve
/// contributions + mining requests until every party disconnects.
int cmd_serve_daemon(int argc, char** argv) {
  std::string listen_text;
  std::string reactor_listen_text = "127.0.0.1:0";
  std::uint64_t parties = 0, seed = 1, threads = 0, deadline_ms = 30000;
  std::uint64_t reactor_loops = 0;
  std::uint64_t shards = 1, shard_index = 0, replicas = 1;
  bool have_shard_index = false;
  proto::ShardLayout layout = proto::ShardLayout::kHashMod;
  bool cache = true;
  std::vector<net::SocketAddr> resync_peers;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen") {
      if (++i >= argc) return usage_error("--listen needs HOST:PORT");
      listen_text = argv[i];
    } else if (arg == "--resync") {
      if (++i >= argc || !parse_addr_list(argv[i], resync_peers))
        return usage_error("--resync needs HOST:PORT,HOST:PORT,...");
    } else if (arg == "--fault") {
      std::string fault_error;
      if (++i >= argc || !install_fault_spec(argv[i], fault_error))
        return usage_error(("--fault needs a valid spec: " + fault_error).c_str());
    } else if (arg == "--shards") {
      if (++i >= argc || !parse_u64(argv[i], shards) || shards == 0 || shards > 4096)
        return usage_error("--shards needs a count in [1, 4096]");
    } else if (arg == "--shard-index") {
      if (++i >= argc || !parse_u64(argv[i], shard_index))
        return usage_error("--shard-index needs an index");
      have_shard_index = true;
    } else if (arg == "--replicas") {
      if (++i >= argc || !parse_u64(argv[i], replicas) || replicas == 0)
        return usage_error("--replicas needs a count >= 1");
    } else if (arg == "--shard-layout") {
      if (++i >= argc) return usage_error("--shard-layout needs `mod` or `range`");
      const std::string value = argv[i];
      if (value == "mod") layout = proto::ShardLayout::kHashMod;
      else if (value == "range") layout = proto::ShardLayout::kHashRange;
      else return usage_error("unknown shard layout (use `mod` or `range`)");
    } else if (arg == "--reactor-loops") {
      if (++i >= argc || !parse_u64(argv[i], reactor_loops) || reactor_loops > 64)
        return usage_error("--reactor-loops needs a count in [0, 64]");
    } else if (arg == "--reactor-listen") {
      if (++i >= argc) return usage_error("--reactor-listen needs HOST:PORT");
      reactor_listen_text = argv[i];
    } else if (arg == "--parties") {
      if (++i >= argc || !parse_u64(argv[i], parties))
        return usage_error("--parties needs a count");
    } else if (arg == "--seed") {
      if (++i >= argc || !parse_u64(argv[i], seed)) return usage_error("bad seed");
    } else if (arg == "--threads") {
      if (++i >= argc || !parse_u64(argv[i], threads) || threads > 256)
        return usage_error("--threads needs a count in [0, 256]");
    } else if (arg == "--deadline-ms") {
      if (++i >= argc || !parse_u64(argv[i], deadline_ms) || deadline_ms == 0 ||
          deadline_ms > 3600000)
        return usage_error("--deadline-ms needs a timeout in (0, 3600000]");
    } else if (arg == "--no-cache") {
      cache = false;
    } else {
      return usage_error(("unknown argument " + arg + " in daemon mode").c_str());
    }
  }
  if (parties < 3) return usage_error("daemon mode needs --parties >= 3");
  if (shards > 1 && !have_shard_index)
    return usage_error("--shards > 1 needs --shard-index (this miner's slot)");
  if (shard_index >= shards) return usage_error("--shard-index must be < --shards");
  if (replicas > shards) return usage_error("--replicas must be <= --shards");

  net::MinerDaemonOptions opts;
  try {
    opts.listen = net::SocketAddr::parse(listen_text);
  } catch (const sap::Error&) {
    return usage_error("--listen needs HOST:PORT (IPv4 or localhost)");
  }
  opts.parties = parties;
  opts.seed = seed;
  opts.mining_threads = threads;
  opts.cache_models = cache;
  opts.tcp.receive_timeout_ms = static_cast<int>(deadline_ms);
  opts.shards = shards;
  opts.shard_layout = layout;
  if (shards > 1) {
    // Miner I owns shard I (primary) plus replica copies of the preceding
    // replicas-1 shards — matching ShardRouter's owner j of shard g being
    // miner (g + j) % N in the one-miner-per-shard cluster.
    std::set<std::size_t> owned;
    for (std::uint64_t j = 0; j < replicas; ++j)
      owned.insert(static_cast<std::size_t>((shard_index + shards - j) % shards));
    opts.owned_shards.assign(owned.begin(), owned.end());
  }
  opts.reactor_loops = reactor_loops;
  opts.resync_peers = std::move(resync_peers);
  try {
    opts.reactor_listen = net::SocketAddr::parse(reactor_listen_text);
  } catch (const sap::Error&) {
    return usage_error("--reactor-listen needs HOST:PORT (IPv4 or localhost)");
  }
  opts.log = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  };
  log::set_role(shards > 1 ? "miner " + std::to_string(shard_index) + "/" +
                                 std::to_string(shards)
                           : "miner");
  net::MinerDaemon daemon(opts);
  // Parties (and scripts driving them) parse this line for the bound port.
  std::printf("listening on %s (%llu parties, seed %llu)\n",
              daemon.local_addr().to_string().c_str(),
              static_cast<unsigned long long>(parties),
              static_cast<unsigned long long>(seed));
  if (shards > 1) {
    std::string owned;
    for (const auto g : opts.owned_shards) owned += " " + std::to_string(g);
    std::printf("cluster member: shard %llu of %llu (%s layout), owns{%s }\n",
                static_cast<unsigned long long>(shard_index),
                static_cast<unsigned long long>(shards),
                layout == proto::ShardLayout::kHashMod ? "mod" : "range",
                owned.c_str());
  }
  // Serving clients parse this one — it must come AFTER the hub line so
  // scripts reading only the first line keep working.
  if (reactor_loops > 0) {
    std::printf("reactor listening on %s (%llu loops)\n",
                daemon.reactor_addr().to_string().c_str(),
                static_cast<unsigned long long>(reactor_loops));
  }
  std::fflush(stdout);

  const auto summary = daemon.run();
  const auto stats = daemon.engine().cache_stats();
  // Sharded daemons have no single flat pool: their summary digest already
  // IS the commutative multiset combine over owned shards.
  std::uint64_t multiset = summary.pool_digest;
  if (shards <= 1)
    multiset = net::dataset_multiset_digest(*daemon.engine().pool_view().data);
  std::printf("served: %zu records at epoch %llu, digest %llu, multiset %llu\n",
              summary.pool_records, static_cast<unsigned long long>(summary.pool_epoch),
              static_cast<unsigned long long>(summary.pool_digest),
              static_cast<unsigned long long>(multiset));
  std::printf("contributions: %zu, requests: %zu, fits: %zu full, %zu incremental, "
              "%zu cache hits\n",
              summary.contributions, summary.requests_served, stats.fits, stats.incremental,
              stats.hits);
  if (const auto* reactor = daemon.reactor()) {
    const auto rs = reactor->stats();
    std::printf("reactor: %zu accepted, %zu requests, %zu responses, "
                "%zu evicted idle, %zu shed\n",
                rs.accepted, rs.requests, rs.responses, rs.evicted_idle, rs.shed);
  }
  return 0;
}

/// The cluster front door: a ShardRouter behind a reactor, hash-routing
/// contributions and scatter-gathering mining requests across miners.
int cmd_router(int argc, char** argv) {
  std::string miners_text, listen_text = "127.0.0.1:0";
  std::uint64_t parties = 0, seed = 1, shards = 0, replicas = 1, serve_ms = 60000;
  proto::ShardLayout layout = proto::ShardLayout::kHashMod;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--miners") {
      if (++i >= argc) return usage_error("--miners needs HOST:PORT,HOST:PORT,...");
      miners_text = argv[i];
    } else if (arg == "--listen") {
      if (++i >= argc) return usage_error("--listen needs HOST:PORT");
      listen_text = argv[i];
    } else if (arg == "--parties") {
      if (++i >= argc || !parse_u64(argv[i], parties))
        return usage_error("--parties needs a count");
    } else if (arg == "--seed") {
      if (++i >= argc || !parse_u64(argv[i], seed)) return usage_error("bad seed");
    } else if (arg == "--shards") {
      if (++i >= argc || !parse_u64(argv[i], shards) || shards > 4096)
        return usage_error("--shards needs a count in [0, 4096] (0 = one per miner)");
    } else if (arg == "--replicas") {
      if (++i >= argc || !parse_u64(argv[i], replicas) || replicas == 0)
        return usage_error("--replicas needs a count >= 1");
    } else if (arg == "--shard-layout") {
      if (++i >= argc) return usage_error("--shard-layout needs `mod` or `range`");
      const std::string value = argv[i];
      if (value == "mod") layout = proto::ShardLayout::kHashMod;
      else if (value == "range") layout = proto::ShardLayout::kHashRange;
      else return usage_error("unknown shard layout (use `mod` or `range`)");
    } else if (arg == "--serve-ms") {
      if (++i >= argc || !parse_u64(argv[i], serve_ms) || serve_ms == 0 ||
          serve_ms > 3600000)
        return usage_error("--serve-ms needs a duration in (0, 3600000]");
    } else if (arg == "--fault") {
      std::string fault_error;
      if (++i >= argc || !install_fault_spec(argv[i], fault_error))
        return usage_error(("--fault needs a valid spec: " + fault_error).c_str());
    } else {
      return usage_error(("unknown argument " + arg + " for router").c_str());
    }
  }
  if (parties < 3) return usage_error("router needs --parties >= 3");
  if (miners_text.empty()) return usage_error("router needs --miners");

  net::RouterDaemonOptions opts;
  if (!parse_addr_list(miners_text, opts.router.miners))
    return usage_error("--miners needs HOST:PORT,HOST:PORT,... (IPv4 or localhost)");
  if (replicas > opts.router.miners.size())
    return usage_error("--replicas must be <= miner count");
  opts.router.shards = shards;
  opts.router.replicas = replicas;
  opts.router.layout = layout;
  opts.router.seed = seed;
  opts.router.parties = parties;
  try {
    opts.reactor.listen = net::SocketAddr::parse(listen_text);
  } catch (const sap::Error&) {
    return usage_error("--listen needs HOST:PORT (IPv4 or localhost)");
  }

  log::set_role("router");
  net::RouterDaemon daemon(opts);
  // Clients parse this line for the bound port (same convention as serve).
  std::printf("router listening on %s (%zu miners, %zu shards, %llu replicas)\n",
              daemon.local_addr().to_string().c_str(), opts.router.miners.size(),
              daemon.router().shards(), static_cast<unsigned long long>(replicas));
  std::fflush(stdout);

  std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
  daemon.stop();
  std::printf("router served %zu requests, %zu failovers\n", daemon.requests_served(),
              daemon.router().failovers());
  return 0;
}

/// One provider process: exchange + streamed contributions + wire jobs.
int cmd_party(int argc, char** argv) {
  std::vector<const char*> positional;
  std::vector<proto::MiningRequest> job_requests;
  std::string connect_text;
  std::uint64_t index = 0, batches = 4, batch_records = 16, deadline_ms = 30000;
  std::uint64_t optimize_threads = 0;
  bool have_index = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    bool bad_ot = false;
    if (take_optimize_threads(argc, argv, i, optimize_threads, bad_ot)) {
      if (bad_ot) return usage_error("--optimize-threads needs a count in [0, 256]");
      continue;
    }
    if (arg == "--connect") {
      if (++i >= argc) return usage_error("--connect needs HOST:PORT");
      connect_text = argv[i];
    } else if (arg == "--index") {
      if (++i >= argc || !parse_u64(argv[i], index)) return usage_error("bad --index");
      have_index = true;
    } else if (arg == "--batches") {
      if (++i >= argc || !parse_u64(argv[i], batches))
        return usage_error("--batches needs a count");
    } else if (arg == "--batch-records") {
      if (++i >= argc || !parse_u64(argv[i], batch_records) || batch_records == 0)
        return usage_error("--batch-records needs a positive count");
    } else if (arg == "--deadline-ms") {
      if (++i >= argc || !parse_u64(argv[i], deadline_ms) || deadline_ms == 0 ||
          deadline_ms > 3600000)
        return usage_error("--deadline-ms needs a timeout in (0, 3600000]");
    } else if (arg == "--job") {
      if (++i >= argc) return usage_error("--job needs a value");
      proto::MiningRequest req;
      if (!parse_job_spec(argv[i], req))
        return usage_error("bad job spec (use name[:k=v,...])");
      job_requests.push_back(std::move(req));
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      return usage_error(("unknown flag " + arg).c_str());
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || positional.size() > 4)
    return usage_error("party takes 1-4 positional arguments");
  if (connect_text.empty()) return usage_error("party needs --connect HOST:PORT");
  if (!have_index) return usage_error("party needs --index");

  std::uint64_t parties = 5, seed = 1;
  double sigma = 0.1;
  if (positional.size() > 1 && !parse_u64(positional[1], parties))
    return usage_error("bad party count");
  if (positional.size() > 2 && !parse_double(positional[2], sigma))
    return usage_error("bad sigma");
  if (positional.size() > 3 && !parse_u64(positional[3], seed))
    return usage_error("bad seed");
  if (parties < 3) return usage_error("party needs at least 3 parties");
  if (index >= parties) return usage_error("--index must be < parties");
  if (sigma < 0.0) return usage_error("sigma must be non-negative");

  // A typo must exit 2 up front, not "refused" after the protocol work.
  if (!validate_job_requests(job_requests)) return 2;

  // Data prep replicated by EVERY party process (and by `contribute`, which
  // is the same logical session in one process): each derives the full
  // partition deterministically and keeps only its own shard.
  data::StreamWorkload workload;
  try {
    workload = data::make_stream_workload(positional[0], parties, batches, batch_records,
                                          seed);
  } catch (const sap::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const data::Dataset& stream = workload.stream;

  net::PartyClientOptions opts;
  try {
    opts.connect = net::SocketAddr::parse(connect_text);
  } catch (const sap::Error&) {
    return usage_error("--connect needs HOST:PORT (IPv4 or localhost)");
  }
  opts.index = index;
  opts.parties = parties;
  opts.sap = net::serving_session_options(sigma, seed, optimize_threads);
  opts.tcp.receive_timeout_ms = static_cast<int>(deadline_ms);

  log::set_role("party " + std::to_string(index));
  net::PartyClient party(workload.shards[index], opts);
  std::printf("party %llu: connected to %s\n", static_cast<unsigned long long>(index),
              opts.connect.to_string().c_str());
  std::fflush(stdout);
  const auto report = party.run_exchange();
  std::printf("party %llu: exchange done (rho_i=%.4f, b_i=%.4f, pi_i=%.4f)\n",
              static_cast<unsigned long long>(index), report.local_rho, report.bound,
              report.identifiability);
  std::fflush(stdout);

  // Stream this party's share of the held-back batches, in global order.
  for (std::uint64_t b = 0; b < batches; ++b) {
    if (b % parties != index) continue;
    const auto batch = stream.slice(b * batch_records, (b + 1) * batch_records);
    const auto receipt = party.contribute(batch);
    std::printf("party %llu: batch %llu accepted: pool %zu records at epoch %llu\n",
                static_cast<unsigned long long>(index), static_cast<unsigned long long>(b),
                receipt.pool_records, static_cast<unsigned long long>(receipt.pool_epoch));
    std::fflush(stdout);
  }

  bool any_refused = false;
  for (const auto& req : job_requests) {
    const auto response = party.mine_named(req.job, req.params);
    any_refused = any_refused || response.values.empty();
    std::string values;
    for (const double v : response.values) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%s%.6f", values.empty() ? "" : " ", v);
      values += buf;
    }
    std::printf("party %llu: job %s -> [%s] (epoch %llu%s)\n",
                static_cast<unsigned long long>(index), req.job.c_str(), values.c_str(),
                static_cast<unsigned long long>(response.pool_epoch),
                response.values.empty() ? ", refused" : "");
    std::fflush(stdout);
  }

  party.finish();
  std::printf("party %llu: done\n", static_cast<unsigned long long>(index));
  // A daemon-refused job is a failed request: exit nonzero so scripts
  // driving the two-terminal walkthrough cannot mistake it for success.
  return any_refused ? 1 : 0;
}

int cmd_serve(int argc, char** argv) {
  // `--listen` switches serve into the cross-process miner daemon.
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--listen") return cmd_serve_daemon(argc, argv);
  }
  std::vector<const char*> positional;
  std::vector<proto::MiningRequest> job_templates;
  proto::TransportKind transport = proto::TransportKind::kSimulated;
  std::uint64_t requests = 256, threads = 4;
  std::uint64_t ingest_every = 0, ingest_records = 32;
  std::uint64_t optimize_threads = 0;
  bool cache = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    bool bad_ot = false;
    if (take_optimize_threads(argc, argv, i, optimize_threads, bad_ot)) {
      if (bad_ot) return usage_error("--optimize-threads needs a count in [0, 256]");
      continue;
    }
    if (arg == "--job") {
      if (++i >= argc) return usage_error("--job needs a value");
      proto::MiningRequest req;
      if (!parse_job_spec(argv[i], req))
        return usage_error("bad job spec (use name[:k=v,...])");
      job_templates.push_back(std::move(req));
    } else if (arg == "--requests") {
      if (++i >= argc || !parse_u64(argv[i], requests) || requests == 0)
        return usage_error("--requests needs a positive count");
    } else if (arg == "--threads") {
      if (++i >= argc || !parse_u64(argv[i], threads) || threads > 256)
        return usage_error("--threads needs a count in [0, 256]");
    } else if (arg == "--ingest-every") {
      if (++i >= argc || !parse_u64(argv[i], ingest_every))
        return usage_error("--ingest-every needs a count");
    } else if (arg == "--ingest-records") {
      if (++i >= argc || !parse_u64(argv[i], ingest_records) || ingest_records == 0)
        return usage_error("--ingest-records needs a positive count");
    } else if (arg == "--no-cache") {
      cache = false;
    } else if (arg == "--transport") {
      if (++i >= argc) return usage_error("--transport needs a value");
      if (!parse_transport(argv[i], transport))
        return usage_error("unknown transport (use `sim` or `threaded`)");
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      return usage_error(("unknown flag " + arg).c_str());
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || positional.size() > 4)
    return usage_error("serve takes 1-4 positional arguments");

  std::uint64_t parties = 5, seed = 1;
  double sigma = 0.1;
  if (positional.size() > 1 && !parse_u64(positional[1], parties))
    return usage_error("bad party count");
  if (positional.size() > 2 && !parse_double(positional[2], sigma))
    return usage_error("bad sigma");
  if (positional.size() > 3 && !parse_u64(positional[3], seed))
    return usage_error("bad seed");
  if (parties < 3) return usage_error("serve needs at least 3 parties");
  if (sigma < 0.0) return usage_error("sigma must be non-negative");

  const data::Dataset raw = data::make_uci(positional[0], seed);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  data::Dataset pool(raw.name(), norm.transform(raw.features()), raw.labels());
  rng::Engine eng(seed ^ 0xC11);
  // With streaming ingest enabled, 30% of the records are held back and
  // arrive later through the Contribute phase instead of the exchange.
  data::Dataset stream;
  if (ingest_every > 0) {
    auto held = data::train_test_split(pool, 0.7, eng);
    pool = std::move(held.train);
    stream = std::move(held.test);
  }
  data::PartitionOptions popts;
  auto shards = data::partition(pool, parties, popts, eng);

  auto opts = net::serving_session_options(sigma, seed, optimize_threads);
  opts.transport = transport;
  opts.mining_threads = threads;
  opts.cache_models = cache;
  proto::SapSession session(std::move(shards), opts);

  if (job_templates.empty()) {
    // Default load: every built-in trainable job at its declared defaults.
    const auto builtins = proto::JobRegistry::builtins();
    for (const auto& name : builtins.names())
      if (builtins.find(name).trainable()) job_templates.push_back({name, {}});
  }
  // Bad names/values exit 2, like every other argument error.
  if (!validate_job_requests(job_templates)) return 2;

  Stopwatch exchange_sw;
  auto& engine = session.engine();  // runs the exchange
  const double exchange_ms = exchange_sw.millis();

  std::vector<proto::MiningRequest> load;
  load.reserve(requests);
  for (std::uint64_t i = 0; i < requests; ++i)
    load.push_back(job_templates[i % job_templates.size()]);

  Stopwatch serve_sw;
  std::vector<proto::MiningResponse> responses;
  std::size_t ingests = 0, stream_pos = 0;
  if (ingest_every == 0) {
    responses = engine.run_batch(load);
  } else {
    // Serve in chunks; between chunks, stream the next held-back batch into
    // the live pool (round-robin over providers). Requests in the following
    // chunk see the grown pool; cached models refit incrementally.
    for (std::size_t pos = 0; pos < load.size(); pos += ingest_every) {
      const auto count = std::min<std::size_t>(ingest_every, load.size() - pos);
      const std::vector<proto::MiningRequest> chunk(
          load.begin() + static_cast<std::ptrdiff_t>(pos),
          load.begin() + static_cast<std::ptrdiff_t>(pos + count));
      auto part = engine.run_batch(chunk);
      responses.insert(responses.end(), part.begin(), part.end());
      if (stream_pos < stream.size() && pos + count < load.size()) {
        const auto take =
            std::min<std::size_t>(ingest_records, stream.size() - stream_pos);
        session.contribute(ingests % parties, stream.slice(stream_pos, stream_pos + take));
        stream_pos += take;
        ++ingests;
      }
    }
  }
  const double serve_ms = serve_sw.millis();

  std::vector<double> latencies;
  latencies.reserve(responses.size());
  for (const auto& r : responses) latencies.push_back(r.millis);
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  const auto stats = engine.cache_stats();

  std::printf("exchange: %.1f ms (%s transport, %llu parties)\n", exchange_ms,
              proto::to_string(transport).c_str(),
              static_cast<unsigned long long>(parties));
  Table table({"requests", "threads", "cache", "wall ms", "req/s", "p50 ms", "p99 ms",
               "fits", "incr", "cache hits"});
  table.add_row({std::to_string(requests), std::to_string(threads),
                 cache ? "on" : "off", Table::num(serve_ms, 1),
                 Table::num(1000.0 * static_cast<double>(requests) / serve_ms, 1),
                 Table::num(pct(0.50), 3), Table::num(pct(0.99), 3),
                 std::to_string(stats.fits), std::to_string(stats.incremental),
                 std::to_string(stats.hits)});
  std::fputs(table.str().c_str(), stdout);
  if (ingest_every > 0)
    std::printf("ingest: %zu batches (%zu records) streamed; pool %zu records at epoch %llu\n",
                ingests, stream_pos, engine.pool_view().data->size(),
                static_cast<unsigned long long>(engine.pool_epoch()));
  return 0;
}

int cmd_contribute(int argc, char** argv) {
  std::vector<const char*> positional;
  proto::MiningRequest job{"nb-train-accuracy", {}};
  proto::TransportKind transport = proto::TransportKind::kSimulated;
  std::uint64_t batches = 4, batch_records = 16;
  std::uint64_t optimize_threads = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    bool bad_ot = false;
    if (take_optimize_threads(argc, argv, i, optimize_threads, bad_ot)) {
      if (bad_ot) return usage_error("--optimize-threads needs a count in [0, 256]");
      continue;
    }
    if (arg == "--job") {
      if (++i >= argc) return usage_error("--job needs a value");
      if (!parse_job_spec(argv[i], job))
        return usage_error("bad job spec (use name[:k=v,...])");
    } else if (arg == "--batches") {
      if (++i >= argc || !parse_u64(argv[i], batches) || batches == 0)
        return usage_error("--batches needs a positive count");
    } else if (arg == "--batch-records") {
      if (++i >= argc || !parse_u64(argv[i], batch_records) || batch_records == 0)
        return usage_error("--batch-records needs a positive count");
    } else if (arg == "--transport") {
      if (++i >= argc) return usage_error("--transport needs a value");
      if (!parse_transport(argv[i], transport))
        return usage_error("unknown transport (use `sim` or `threaded`)");
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      return usage_error(("unknown flag " + arg).c_str());
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || positional.size() > 4)
    return usage_error("contribute takes 1-4 positional arguments");

  std::uint64_t parties = 5, seed = 1;
  double sigma = 0.1;
  if (positional.size() > 1 && !parse_u64(positional[1], parties))
    return usage_error("bad party count");
  if (positional.size() > 2 && !parse_double(positional[2], sigma))
    return usage_error("bad sigma");
  if (positional.size() > 3 && !parse_u64(positional[3], seed))
    return usage_error("bad seed");
  if (parties < 3) return usage_error("contribute needs at least 3 parties");
  if (sigma < 0.0) return usage_error("sigma must be non-negative");

  if (!validate_job_requests({job})) return 2;

  // Same prep as `party`: bit-identity between the in-process and the
  // cross-process topology rests on this being the SAME code path.
  data::StreamWorkload workload;
  try {
    workload = data::make_stream_workload(positional[0], parties, batches, batch_records,
                                          seed);
  } catch (const sap::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const data::Dataset& stream = workload.stream;

  auto opts = net::serving_session_options(sigma, seed, optimize_threads);
  opts.transport = transport;
  proto::SapSession session(std::move(workload.shards), opts);

  Stopwatch exchange_sw;
  auto& engine = session.engine();  // runs the exchange
  std::printf("exchange: %.1f ms (%s transport, %llu parties); pool %zu records\n",
              exchange_sw.millis(), proto::to_string(transport).c_str(),
              static_cast<unsigned long long>(parties), engine.pool_view().data->size());

  Table table({"batch", "provider", "records", "pool", "epoch", "refit", "report",
               "serve ms"});
  const auto initial_response = engine.run(job);
  table.add_row({"-", "-", "-", std::to_string(engine.pool_view().data->size()),
                 std::to_string(initial_response.pool_epoch), "full",
                 Table::num(initial_response.values.empty() ? 0.0
                                                            : initial_response.values[0]),
                 Table::num(initial_response.millis, 3)});
  for (std::uint64_t b = 0; b < batches; ++b) {
    const std::size_t provider = b % parties;
    const auto batch =
        stream.slice(b * batch_records, (b + 1) * batch_records);
    const auto receipt = session.contribute(provider, batch);
    const auto response = engine.run(job);
    table.add_row({std::to_string(b), std::to_string(provider),
                   std::to_string(batch.size()), std::to_string(receipt.pool_records),
                   std::to_string(receipt.pool_epoch),
                   response.model_incremental ? "incremental"
                   : response.model_cached    ? "cached"
                                              : "full",
                   Table::num(response.values.empty() ? 0.0 : response.values[0]),
                   Table::num(response.millis, 3)});
  }
  std::fputs(table.str().c_str(), stdout);
  const auto stats = engine.cache_stats();
  std::printf("fits: %zu full, %zu incremental, %zu cache hits\n", stats.fits,
              stats.incremental, stats.hits);
  return 0;
}

/// Fetch and pretty-print a serving endpoint's live metrics + traces. One
/// kStatsRequest round trip through the same dispatch door as serving
/// traffic; a router endpoint answers the cluster-wide aggregate.
int cmd_stats(int argc, char** argv) {
  std::string addr_text;
  std::uint64_t parties = 5, seed = 1;
  bool json = false;
  bool health = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--health") {
      health = true;
    } else if (arg == "--parties") {
      if (++i >= argc || !parse_u64(argv[i], parties))
        return usage_error("--parties needs a count");
    } else if (arg == "--seed") {
      if (++i >= argc || !parse_u64(argv[i], seed)) return usage_error("bad seed");
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      return usage_error(("unknown flag " + arg + " for stats").c_str());
    } else if (addr_text.empty()) {
      addr_text = arg;
    } else {
      return usage_error("stats takes one HOST:PORT");
    }
  }
  if (addr_text.empty()) return usage_error("stats needs HOST:PORT");
  if (parties < 3) return usage_error("stats needs --parties >= 3");
  net::SocketAddr addr;
  try {
    addr = net::SocketAddr::parse(addr_text);
  } catch (const sap::Error&) {
    return usage_error("stats needs HOST:PORT (IPv4 or localhost)");
  }
  proto::DecodedStats decoded;
  try {
    net::ServeClient client(addr, seed, parties);
    decoded = client.stats();
    client.bye();
  } catch (const sap::Error& e) {
    // Exit 2 (not the generic 1): scripts probing liveness distinguish "the
    // endpoint is down" from "sap_cli itself misbehaved".
    std::fprintf(stderr, "stats: %s unreachable: %s\n", addr_text.c_str(), e.what());
    return 2;
  }
  if (health) {
    // One line an operator (or a watchdog) can grep: request counters plus
    // the cluster health surface — failovers, retries, and how many miner
    // breakers are not closed right now (router endpoints only; a plain
    // miner reports 0s for the router.* entries).
    std::uint64_t failovers = 0, retries = 0, opens = 0, unreachable = 0;
    for (const auto& [name, value] : decoded.snapshot.counters) {
      if (name == "router.failovers") failovers = value;
      if (name == "router.retries") retries = value;
      if (name == "router.breaker_opens") opens = value;
    }
    std::size_t breakers_not_closed = 0;
    for (const auto& [name, value] : decoded.snapshot.gauges) {
      if (name == "router.stats_unreachable")
        unreachable = static_cast<std::uint64_t>(value);
      if (name.size() > 8 && name.compare(name.size() - 8, 8, ".breaker") == 0 &&
          value != 0.0)
        ++breakers_not_closed;
    }
    std::printf("healthy %s: failovers=%llu retries=%llu breaker_opens=%llu "
                "breakers_not_closed=%zu stats_unreachable=%llu\n",
                addr_text.c_str(), static_cast<unsigned long long>(failovers),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(opens), breakers_not_closed,
                static_cast<unsigned long long>(unreachable));
    return 0;
  }
  if (json) {
    std::printf("%s\n", decoded.snapshot.to_json().c_str());
    return 0;
  }
  std::fputs(decoded.snapshot.to_text().c_str(), stdout);
  if (!decoded.traces.empty()) {
    std::printf("traces (%zu recent, oldest first):\n", decoded.traces.size());
    for (const auto& t : decoded.traces) {
      std::printf("  %016llx %-22s", static_cast<unsigned long long>(t.id),
                  t.op.c_str());
      for (std::size_t s = 0; s < obs::kStageCount; ++s)
        if (t.stage_ms[s] > 0.0)
          std::printf(" %s=%.3f", obs::to_string(static_cast<obs::Stage>(s)),
                      t.stage_ms[s]);
      std::printf(" total=%.3f ms\n", t.total_ms());
    }
  }
  return 0;
}

int cmd_minparties(int argc, char** argv) {
  if (argc != 4) return usage_error("minparties takes exactly 2 arguments");
  double s0 = 0.0, rate = 0.0;
  if (!parse_double(argv[2], s0)) return usage_error("bad s0");
  if (!parse_double(argv[3], rate)) return usage_error("bad opt_rate");
  const auto primary =
      proto::min_parties(s0, rate, proto::MinPartiesCriterion::kResidualTolerance, 10000);
  const auto alt = proto::min_parties(s0, rate, proto::MinPartiesCriterion::kNoExtraRisk, 10000);
  std::printf("s0=%.3f opt_rate=%.3f -> min parties: %zu (residual tolerance), "
              "%zu (no extra risk)\n",
              s0, rate, primary, alt);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error();
  if (const char* env = std::getenv("SAP_LOG_LEVEL")) {
    log::Level lvl;
    if (log::parse_level(env, lvl))
      log::set_level(lvl);
    else
      std::fprintf(stderr, "warning: ignoring bad SAP_LOG_LEVEL '%s' "
                           "(use off|error|warn|info|debug or 0-4)\n",
                   env);
  }
  try {
    if (net::fault::install_from_env())
      std::fprintf(stderr, "warning: SAP_FAULT active (%s) — this process "
                           "injects socket faults\n",
                   net::fault::plan().to_string().c_str());
  } catch (const sap::Error& e) {
    std::fprintf(stderr, "error: bad SAP_FAULT: %s\n", e.what());
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage_ok();
  try {
    if (cmd == "stats") return cmd_stats(argc, argv);
    if (cmd == "datasets") return cmd_datasets();
    if (cmd == "jobs") return cmd_jobs(argc, argv);
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "perturb") return cmd_perturb(argc, argv);
    if (cmd == "attack") return cmd_attack(argc, argv);
    if (cmd == "protocol") return cmd_protocol(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "router") return cmd_router(argc, argv);
    if (cmd == "party") return cmd_party(argc, argv);
    if (cmd == "contribute") return cmd_contribute(argc, argv);
    if (cmd == "minparties") return cmd_minparties(argc, argv);
  } catch (const sap::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage_error(("unknown subcommand '" + cmd + "'").c_str());
}
