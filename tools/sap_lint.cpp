// sap-lint — the project-invariant static analyzer (DESIGN.md §9).
//
// Clang's -Wthread-safety proves lock discipline; this tool enforces the
// invariants a general-purpose compiler cannot know about, because they are
// properties of THIS protocol: the RNG draw-order determinism contract
// (DESIGN.md §8), canonical ordering of everything that feeds pool digests
// or serialized output, and the frame-decode trust boundary (§7).
//
//   R1/rng-discipline   no std::rand/srand/random_device, no std:: engines,
//                       and no chrono/time-seeded engines outside src/rng/
//                       — every random draw must flow through sap::rng so
//                       draw order stays the determinism contract.
//   R2/determinism      no unordered associative containers in src/protocol/
//                       or src/net/ (iteration order would leak into reports
//                       and wire bytes); elsewhere, no range-for over a
//                       container declared unordered in the same file.
//   R3/codec-safety     memcpy/memmove/reinterpret_cast confined to the
//                       checked codec helpers (src/net/frame.*,
//                       src/net/socket.*) — everything else uses typed,
//                       bounds-checked accessors.
//   R4/raii-locking     no bare .lock()/.unlock() on a declared mutex (RAII
//                       guards only), and no raw std::mutex /
//                       std::condition_variable outside src/common/ — use
//                       sap::Mutex/sap::CondVar so the Clang thread-safety
//                       analysis sees every lock.
//   R5/bench-hygiene    bench/ translation units do not open output files
//                       themselves (ofstream/fopen/FILE) — every
//                       BENCH_*.json goes through bench_util's emitters so
//                       the schema and run metadata stay uniform.
//   R6/obs-purity       the RNG-disciplined numeric kernels (src/linalg,
//                       src/perturb, src/optimize, src/classify,
//                       src/privacy, src/rng) never touch sap::obs and
//                       never read timers (Stopwatch/steady_now_ns) —
//                       observability is pure measurement, recorded at
//                       serving-stage boundaries (DESIGN.md §12), so
//                       metrics on/off can never perturb a job report.
//   R7/bounded-retry    an unconditional loop (`for (;;)`, `while (true)`)
//                       that issues high-level requests (connect / transact /
//                       mine_* / contribute_wire / pool_slice /
//                       shard_snapshot / .stats) must carry an attempt
//                       budget or deadline — a peer that never answers must
//                       not hang the caller forever (DESIGN.md §13). Raw
//                       syscall EINTR loops and frame-drain loops are out of
//                       scope: the rule keys on the client-facing ops.
//
// Suppressions: a finding is waived by a comment on the same line (or a
// comment-only line directly above the offending statement):
//
//     // sap-lint: allow(R3) -- parsing the packed header the kernel gave us
//     // sap-lint: allow(codec-safety, rng-discipline) -- <reason>
//
// The reason after `--` is mandatory; an allow() without one is itself a
// diagnostic ("suppression"), so every waiver in the tree carries a written
// justification. Rules are named by id (R1..R7) or slug.
//
// Usage:  sap_lint [path]...
//   * a directory containing src/tools/bench scans those subtrees (the
//     repository root is the normal invocation, and what CTest registers);
//   * any other directory is scanned recursively as-is;
//   * a file argument is linted directly (what tests/lint_test.cpp does).
// Exit code: 0 clean, 1 violations found, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---- rules ---------------------------------------------------------------

struct RuleInfo {
  const char* id;    ///< R1..R7
  const char* slug;  ///< human-readable name, accepted in allow() too
};

constexpr RuleInfo kRules[] = {
    {"R1", "rng-discipline"}, {"R2", "determinism"},   {"R3", "codec-safety"},
    {"R4", "raii-locking"},   {"R5", "bench-hygiene"}, {"R6", "obs-purity"},
    {"R7", "bounded-retry"},
};

/// Canonical id for an allow() argument ("R3" or "codec-safety"); empty when
/// the name matches no rule.
std::string canonical_rule(const std::string& name) {
  for (const RuleInfo& r : kRules)
    if (name == r.id || name == r.slug) return r.id;
  return {};
}

const char* rule_slug(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return r.slug;
  return "?";
}

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;  ///< "R1".."R5" or "suppression"
  std::string message;
};

// ---- source scanning -----------------------------------------------------

/// One scanned file: per-line code text with comments and the CONTENTS of
/// string/char literals blanked out (line numbers preserved), plus per-line
/// comment text (where suppressions live).
struct ScannedFile {
  std::string path;
  std::vector<std::string> code;     ///< [0] unused; 1-based like diagnostics
  std::vector<std::string> comment;  ///< comment text per line
};

ScannedFile scan_source(const std::string& path, const std::string& text) {
  ScannedFile out;
  out.path = path;
  out.code.emplace_back();
  out.comment.emplace_back();

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  std::string code_line, comment_line;

  const auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comment.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
    if (state == State::kLineComment) state = State::kCode;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                               text[i - 1] != '_'))) {
          state = State::kRawString;
          raw_delim.clear();
          std::size_t j = i + 2;
          while (j < text.size() && text[j] != '(') raw_delim += text[j++];
          i = j;  // at '(' (or end)
          code_line += "\"\"";
        } else if (c == '"') {
          if (code_line.find("#include") != std::string::npos) {
            // Keep include paths verbatim — path-scoped rules (R6) need to
            // see WHICH header a kernel pulls in, and an include path is
            // structure, not user string data.
            code_line += c;
            while (i + 1 < text.size() && text[i + 1] != '"' && text[i + 1] != '\n')
              code_line += text[++i];
            if (i + 1 < text.size() && text[i + 1] == '"') code_line += text[++i];
          } else {
            state = State::kString;
            code_line += "\"\"";  // keep a token boundary, drop the contents
          }
        } else if (c == '\'' && (i == 0 || !std::isdigit(static_cast<unsigned char>(
                                               text[i - 1])))) {
          // skip char literals but not C++14 digit separators (1'000'000)
          state = State::kChar;
          code_line += "' '";
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += ' ';  // token separator where the comment was
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped char (a '\n' escape cannot appear raw)
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          i += close.size() - 1;
        }
        break;
      }
    }
  }
  flush_line();  // last (possibly newline-less) line
  return out;
}

// ---- token helpers -------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Position of `word` in `line` as a whole identifier, or npos.
std::size_t find_word(const std::string& line, const std::string& word,
                      std::size_t from = 0) {
  for (std::size_t pos = line.find(word, from); pos != std::string::npos;
       pos = line.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

bool has_word(const std::string& line, const std::string& word) {
  return find_word(line, word) != std::string::npos;
}

/// True when the identifier at `pos` is qualified as std:: (possibly ::std::).
bool std_qualified(const std::string& line, std::size_t pos) {
  std::size_t p = pos;
  while (p > 0 && std::isspace(static_cast<unsigned char>(line[p - 1]))) --p;
  return p >= 5 && line.compare(p - 5, 5, "std::") == 0;
}

/// Identifier ending immediately before `pos` (receiver of a member call).
std::string ident_before(const std::string& line, std::size_t pos) {
  std::size_t end = pos;
  std::size_t begin = end;
  while (begin > 0 && ident_char(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

/// First identifier at or after `pos` (skipping whitespace); empty if none.
std::string ident_after(const std::string& line, std::size_t pos) {
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  std::size_t end = pos;
  while (end < line.size() && ident_char(line[end])) ++end;
  if (end == pos || std::isdigit(static_cast<unsigned char>(line[pos]))) return {};
  return line.substr(pos, end - pos);
}

// ---- path scoping --------------------------------------------------------

std::string normalized(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

/// True when `path` lies under directory `dir` ("src/rng") at any depth —
/// fixture trees mirror the repo layout, so substring scoping covers both
/// the real scan and tests/lint_fixtures/*.
bool in_dir(const std::string& path, const std::string& dir) {
  const std::string p = normalized(path);
  return p.rfind(dir + "/", 0) == 0 || p.find("/" + dir + "/") != std::string::npos;
}

bool path_has_prefix(const std::string& path, const std::string& stem) {
  const std::string p = normalized(path);
  return p.rfind(stem, 0) == 0 || p.find("/" + stem) != std::string::npos;
}

// ---- suppressions --------------------------------------------------------

struct Suppression {
  std::set<std::string> rules;  ///< canonical ids
  bool valid = false;           ///< carries a nonempty `-- reason`
  std::string bad_name;         ///< first unknown rule name, if any
};

/// Parse a suppression directive (tag, rule list, `--` reason) out of a
/// comment. Returns false when the comment carries no directive.
bool parse_suppression(const std::string& comment, Suppression& out) {
  const std::size_t tag = comment.find("sap-lint:");
  if (tag == std::string::npos) return false;
  const std::size_t allow = comment.find("allow(", tag);
  if (allow == std::string::npos) return false;
  const std::size_t open = allow + 5;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return false;

  std::string names = comment.substr(open + 1, close - open - 1);
  std::stringstream ss(names);
  std::string name;
  while (std::getline(ss, name, ',')) {
    const auto b = name.find_first_not_of(" \t");
    const auto e = name.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    name = name.substr(b, e - b + 1);
    const std::string id = canonical_rule(name);
    if (id.empty() && out.bad_name.empty()) out.bad_name = name;
    if (!id.empty()) out.rules.insert(id);
  }
  const std::size_t dashes = comment.find("--", close);
  if (dashes != std::string::npos) {
    const std::string reason = comment.substr(dashes + 2);
    out.valid = reason.find_first_not_of(" \t") != std::string::npos;
  }
  return true;
}

bool blank(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

/// Per-line suppression sets: a comment-only allow() covers the next line
/// that has code; a trailing allow() covers its own line.
std::vector<std::set<std::string>> resolve_suppressions(const ScannedFile& f,
                                                        std::vector<Diagnostic>& diags) {
  std::vector<std::set<std::string>> active(f.code.size());
  for (std::size_t line = 1; line < f.code.size(); ++line) {
    Suppression s;
    if (!parse_suppression(f.comment[line], s)) continue;
    if (!s.bad_name.empty())
      diags.push_back({f.path, line, "suppression",
                       "allow() names unknown rule '" + s.bad_name + "'"});
    if (!s.valid) {
      diags.push_back({f.path, line, "suppression",
                       "allow() without a written reason — append `-- <why>`"});
      continue;  // an unjustified waiver waives nothing
    }
    std::size_t target = line;
    if (blank(f.code[line])) {  // comment-only line: cover the next code line
      target = line + 1;
      while (target < f.code.size() && blank(f.code[target])) ++target;
    }
    if (target < active.size())
      active[target].insert(s.rules.begin(), s.rules.end());
  }
  return active;
}

// ---- the rules -----------------------------------------------------------

class Linter {
 public:
  explicit Linter(std::vector<Diagnostic>& diags) : diags_(diags) {}

  void lint(const ScannedFile& f) {
    suppressed_ = resolve_suppressions(f, diags_);
    collect_declared_names(f);
    for (std::size_t line = 1; line < f.code.size(); ++line) {
      const std::string& code = f.code[line];
      if (blank(code)) continue;
      rule_rng(f, line, code);
      rule_determinism(f, line, code);
      rule_codec(f, line, code);
      rule_raii(f, line, code);
      rule_bench(f, line, code);
      rule_obs(f, line, code);
    }
    rule_retry(f);  // loop-shaped, so it scans the whole file itself
  }

 private:
  void report(const ScannedFile& f, std::size_t line, const char* rule,
              const std::string& message) {
    if (line < suppressed_.size() && suppressed_[line].count(rule)) return;
    diags_.push_back({f.path, line, rule, message});
  }

  /// Declared mutex variable names (R4) and unordered-container variable
  /// names (R2) in this file.
  void collect_declared_names(const ScannedFile& f) {
    mutexes_.clear();
    unordered_vars_.clear();
    // Shard-merge adjacency (R2, cluster extension): any file whose CODE
    // references merge_partials or ShardRouter (substring on purpose —
    // ShardRouterOptions counts) handles per-shard results whose merge must
    // be bit-identical across shard counts, so the strict unordered ban
    // applies wherever the file lives (bench drivers and tools included).
    merge_adjacent_ = false;
    for (std::size_t line = 1; line < f.code.size(); ++line)
      if (f.code[line].find("merge_partials") != std::string::npos ||
          f.code[line].find("ShardRouter") != std::string::npos)
        merge_adjacent_ = true;
    static const std::vector<std::string> kMutexTypes = {
        "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
        "shared_mutex", "Mutex"};
    for (std::size_t line = 1; line < f.code.size(); ++line) {
      const std::string& code = f.code[line];
      for (const std::string& type : kMutexTypes) {
        for (std::size_t pos = find_word(code, type); pos != std::string::npos;
             pos = find_word(code, type, pos + 1)) {
          // A declaration only when the type token is followed by an
          // identifier ("Mutex m_;"), not by '<', '>', '(', ')', '&', ...
          const std::string name = ident_after(code, pos + type.size());
          if (!name.empty() && name != "const" && name != "mutable")
            mutexes_.insert(name);
        }
      }
      const std::size_t u = code.find("unordered_");
      if (u != std::string::npos) {
        // Take the identifier after the closing '>' of the template args.
        std::size_t p = code.find('<', u);
        int depth = 0;
        while (p != std::string::npos && p < code.size()) {
          if (code[p] == '<') ++depth;
          if (code[p] == '>' && --depth == 0) break;
          ++p;
        }
        if (p != std::string::npos && p < code.size()) {
          const std::string name = ident_after(code, p + 1);
          if (!name.empty()) unordered_vars_.insert(name);
        }
      }
    }
  }

  // R1 — every random draw flows through sap::rng (DESIGN.md §8).
  void rule_rng(const ScannedFile& f, std::size_t line, const std::string& code) {
    if (in_dir(f.path, "src/rng")) {
      // The rng subsystem itself may wrap whatever source it chooses — but
      // never a wall clock: a chrono-derived seed breaks run-to-run
      // reproducibility everywhere at once.
      check_chrono_seed(f, line, code);
      return;
    }
    check_chrono_seed(f, line, code);
    if (has_word(code, "random_device"))
      report(f, line, "R1",
             "std::random_device is nondeterministic — derive seeds from protocol "
             "nonces via sap::rng");
    if (has_word(code, "srand") || has_word(code, "rand_r"))
      report(f, line, "R1", "C rand()/srand() is banned — use sap::rng::Engine");
    const std::size_t rp = find_word(code, "rand");
    if (rp != std::string::npos && std_qualified(code, rp))
      report(f, line, "R1", "std::rand is banned — use sap::rng::Engine");
    static const std::vector<std::string> kEngines = {
        "mt19937",      "mt19937_64",   "minstd_rand", "minstd_rand0",
        "ranlux24",     "ranlux48",     "knuth_b",     "default_random_engine"};
    for (const std::string& engine : kEngines)
      if (has_word(code, engine))
        report(f, line, "R1",
               "std::" + engine + " outside src/rng/ — draw-order determinism "
               "requires every engine to be a sap::rng::Engine derived from the "
               "session seed");
  }

  void check_chrono_seed(const ScannedFile& f, std::size_t line,
                         const std::string& code) {
    const bool seeds = code.find(".seed(") != std::string::npos ||
                       code.find("seed =") != std::string::npos ||
                       code.find("seed(") != std::string::npos;
    const bool clocky = code.find("::now") != std::string::npos ||
                        (find_word(code, "time") != std::string::npos &&
                         code.find("time(") != std::string::npos);
    if (seeds && clocky)
      report(f, line, "R1",
             "clock-derived seed — seeds must be deterministic functions of the "
             "session seed / protocol nonces");
  }

  // R2 — iteration order must never leak into reports or wire bytes.
  void rule_determinism(const ScannedFile& f, std::size_t line,
                        const std::string& code) {
    static const std::vector<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    const bool wire_adjacent =
        in_dir(f.path, "src/protocol") || in_dir(f.path, "src/net");
    if (wire_adjacent || merge_adjacent_) {
      for (const std::string& type : kUnordered)
        if (has_word(code, type))
          report(f, line, "R2",
                 "std::" + type +
                     (wire_adjacent
                          ? " in a digest/wire-adjacent subsystem — use an "
                            "ordered container (or a sorted snapshot) so output "
                            "never depends on hash order"
                          : " in a file on the shard-merge path (it mentions "
                            "merge_partials / ShardRouter) — merged reports must "
                            "be bit-identical across shard counts, so use an "
                            "ordered container (or a sorted snapshot)"));
      return;
    }
    // Elsewhere: flag range-for over a variable this file declared unordered.
    const std::size_t fo = find_word(code, "for");
    if (fo == std::string::npos) return;
    const std::size_t colon = code.find(':', fo);
    if (colon == std::string::npos) return;
    const std::string range = ident_after(code, colon + 1);
    if (!range.empty() && unordered_vars_.count(range))
      report(f, line, "R2",
             "iterating unordered container '" + range + "' — order is "
             "hash-seed-dependent; sort a snapshot first");
  }

  // R3 — byte reinterpretation stays inside the checked codec helpers.
  void rule_codec(const ScannedFile& f, std::size_t line, const std::string& code) {
    if (path_has_prefix(f.path, "src/net/frame.") ||
        path_has_prefix(f.path, "src/net/socket."))
      return;
    for (const char* fn : {"memcpy", "memmove"})
      if (has_word(code, fn))
        report(f, line, "R3",
               std::string(fn) + " outside the codec boundary — route byte access "
               "through net/frame or net/socket helpers");
    if (has_word(code, "reinterpret_cast"))
      report(f, line, "R3",
             "reinterpret_cast outside the codec boundary — adversarial bytes may "
             "only be reinterpreted inside net/frame / net/socket");
  }

  // R4 — locks are RAII-held and visible to the thread-safety analysis.
  void rule_raii(const ScannedFile& f, std::size_t line, const std::string& code) {
    for (const char* call : {".lock()", "->lock()", ".unlock()", "->unlock()"}) {
      for (std::size_t pos = code.find(call); pos != std::string::npos;
           pos = code.find(call, pos + 1)) {
        const std::string receiver = ident_before(code, pos);
        if (mutexes_.count(receiver))
          report(f, line, "R4",
                 "bare " + std::string(call + (call[0] == '.' ? 1 : 2)) + " on mutex '" +
                     receiver + "' — hold locks via sap::MutexLock (RAII)");
      }
    }
    if (in_dir(f.path, "src/common")) return;  // where the wrappers live
    const std::size_t mp = find_word(code, "mutex");
    if (mp != std::string::npos && std_qualified(code, mp))
      report(f, line, "R4",
             "raw std::mutex — use sap::Mutex (common/mutex.hpp) so Clang's "
             "-Wthread-safety sees the capability");
    const std::size_t cp = find_word(code, "condition_variable");
    const std::size_t cpa = find_word(code, "condition_variable_any");
    if ((cp != std::string::npos && std_qualified(code, cp)) ||
        (cpa != std::string::npos && std_qualified(code, cpa)))
      report(f, line, "R4",
             "raw std::condition_variable — use sap::CondVar (common/mutex.hpp)");
  }

  // R5 — one JSON emitter, one schema.
  void rule_bench(const ScannedFile& f, std::size_t line, const std::string& code) {
    if (!in_dir(f.path, "bench")) return;
    if (path_has_prefix(f.path, "bench/bench_util.")) return;
    for (const char* api : {"ofstream", "fstream", "fopen", "freopen"})
      if (has_word(code, api))
        report(f, line, "R5",
               std::string(api) + " in a bench — emit results through "
               "bench_util (emit_table/write_json) so every BENCH_*.json "
               "shares schema and run metadata");
  }

  // R6 — observability never reaches into the numeric kernels: no sap::obs
  // use, no obs header includes, and no timers — a kernel that times or
  // counts itself couples its output (via branches on elapsed time, or the
  // temptation to) to the metrics switch, and the bit-identity contract
  // (metrics on/off, DESIGN.md §12) forbids exactly that. Timing happens at
  // serving-stage boundaries in src/net and src/protocol.
  void rule_obs(const ScannedFile& f, std::size_t line, const std::string& code) {
    static const std::vector<std::string> kKernelDirs = {
        "src/linalg", "src/perturb", "src/optimize",
        "src/classify", "src/privacy", "src/rng"};
    bool kernel = false;
    for (const std::string& dir : kKernelDirs)
      if (in_dir(f.path, dir)) kernel = true;
    if (!kernel) return;
    for (std::size_t pos = code.find("obs::"); pos != std::string::npos;
         pos = code.find("obs::", pos + 1)) {
      if (pos == 0 || !ident_char(code[pos - 1])) {
        report(f, line, "R6",
               "sap::obs use inside a numeric kernel — observability is pure "
               "measurement; record metrics at serving-stage boundaries "
               "(src/net, src/protocol), never in the math");
        break;
      }
    }
    if (code.find("#include") != std::string::npos &&
        code.find("obs/") != std::string::npos)
      report(f, line, "R6",
             "obs header included by a numeric kernel — the kernels must stay "
             "measurement-free so metrics on/off cannot perturb a job report");
    if (has_word(code, "Stopwatch") || has_word(code, "steady_now_ns"))
      report(f, line, "R6",
             "timer inside a numeric kernel — time requests at stage boundaries "
             "(decode/queue/serve/merge/write), not inside the computation");
  }

  // ---- R7 helpers --------------------------------------------------------

  /// True when the line opens an unconditional loop: `for (;;)` or
  /// `while (true)` / `while (1)`, whitespace-insensitive.
  static bool infinite_loop_header(const std::string& code) {
    const auto at_after_ws = [&](std::size_t p) {
      while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
      return p;
    };
    std::size_t fo = find_word(code, "for");
    if (fo != std::string::npos) {
      std::size_t p = at_after_ws(fo + 3);
      if (p < code.size() && code[p] == '(') {
        p = at_after_ws(p + 1);
        if (p < code.size() && code[p] == ';') {
          p = at_after_ws(p + 1);
          if (p < code.size() && code[p] == ';') {
            p = at_after_ws(p + 1);
            if (p < code.size() && code[p] == ')') return true;
          }
        }
      }
    }
    std::size_t wh = find_word(code, "while");
    if (wh != std::string::npos) {
      std::size_t p = at_after_ws(wh + 5);
      if (p < code.size() && code[p] == '(') {
        p = at_after_ws(p + 1);
        if (code.compare(p, 4, "true") == 0 || code.compare(p, 1, "1") == 0) {
          p = at_after_ws(p + (code[p] == 't' ? 4 : 1));
          if (p < code.size() && code[p] == ')') return true;
        }
      }
    }
    return false;
  }

  /// True when the line issues a high-level request: a client connect or
  /// one of the serving-door ops. `::connect(` alone (the raw syscall, whose
  /// EINTR handling legitimately loops) does not count — only `.connect(`
  /// and `TcpSocket::connect(`.
  static bool request_op(const std::string& code) {
    if (code.find(".connect(") != std::string::npos ||
        code.find("TcpSocket::connect(") != std::string::npos ||
        code.find(".stats(") != std::string::npos)
      return true;
    static const std::vector<std::string> kOps = {
        "transact",        "transact_idempotent", "mine_named", "mine_partial",
        "contribute_wire", "pool_slice",          "shard_snapshot"};
    for (const std::string& op : kOps) {
      const std::size_t pos = find_word(code, op);
      if (pos == std::string::npos) continue;
      std::size_t p = pos + op.size();
      while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
      if (p < code.size() && code[p] == '(') return true;
    }
    return false;
  }

  /// True when the line mentions a bound: an attempt budget, a deadline, or
  /// a remaining-token check (substring on purpose — `retry_deadline_ms`
  /// and `attempts_left` both count).
  static bool retry_bound_token(const std::string& code) {
    for (const char* token :
         {"attempt", "budget", "deadline", "remaining", "retries", "tries"})
      if (code.find(token) != std::string::npos) return true;
    return false;
  }

  // R7 — a retry loop without a budget or deadline spins forever against a
  // dead peer; every unconditional loop that issues requests must carry one.
  void rule_retry(const ScannedFile& f) {
    struct OpenLoop {
      std::size_t header_line;
      int depth_at_entry;
      bool entered = false;
      bool has_op = false;
      bool has_bound = false;
    };
    std::vector<OpenLoop> loops;
    int depth = 0;
    for (std::size_t line = 1; line < f.code.size(); ++line) {
      const std::string& code = f.code[line];
      if (infinite_loop_header(code)) loops.push_back({line, depth});
      if (!loops.empty()) {
        if (retry_bound_token(code))
          for (OpenLoop& l : loops) l.has_bound = true;
        if (request_op(code))
          for (OpenLoop& l : loops) l.has_op = true;
      }
      for (const char c : code) {
        if (c == '{') {
          ++depth;
          for (OpenLoop& l : loops)
            if (!l.entered && depth == l.depth_at_entry + 1) l.entered = true;
        } else if (c == '}') {
          --depth;
          for (std::size_t k = loops.size(); k-- > 0;) {
            if (!loops[k].entered || depth != loops[k].depth_at_entry) continue;
            if (loops[k].has_op && !loops[k].has_bound)
              report(f, loops[k].header_line, "R7",
                     "unbounded retry loop issuing requests — bound it with an "
                     "attempt budget or deadline (a dead peer must exhaust the "
                     "caller's patience, not its lifetime)");
            loops.erase(loops.begin() + k);
          }
        }
      }
    }
  }

  std::vector<Diagnostic>& diags_;
  std::vector<std::set<std::string>> suppressed_;
  std::set<std::string> mutexes_;
  std::set<std::string> unordered_vars_;
  bool merge_adjacent_ = false;
};

// ---- driver --------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

void collect_dir(const fs::path& dir, std::vector<fs::path>& files) {
  for (const auto& entry : fs::recursive_directory_iterator(dir))
    if (entry.is_regular_file() && lintable(entry.path())) files.push_back(entry.path());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots.emplace_back(".");

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else if (fs::is_directory(root, ec)) {
      bool repo_shape = false;
      for (const char* sub : {"src", "tools", "bench"}) {
        const fs::path subdir = root / sub;
        if (fs::is_directory(subdir, ec)) {
          repo_shape = true;
          collect_dir(subdir, files);
        }
      }
      if (!repo_shape) collect_dir(root, files);
    } else {
      std::cerr << "sap_lint: no such file or directory: " << root.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> diags;
  Linter linter(diags);
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "sap_lint: cannot read " << file.string() << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    linter.lint(scan_source(file.generic_string(), text.str()));
  }

  std::stable_sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  });
  for (const Diagnostic& d : diags) {
    const std::string tag =
        d.rule == "suppression" ? d.rule : d.rule + "/" + rule_slug(d.rule);
    std::cout << d.file << ":" << d.line << ": error: [" << tag << "] " << d.message
              << "\n";
  }
  std::cerr << "sap_lint: " << files.size() << " file(s), " << diags.size()
            << " violation(s)\n";
  return diags.empty() ? 0 : 1;
}
