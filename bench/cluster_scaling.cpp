// Cluster scaling bench — the PR 8 acceptance gate (DESIGN.md §11).
//
// Spawns 1 -> 4 miner daemon PROCESSES (this binary re-execs itself with
// --miner, socket_throughput style) and drives them through a ShardRouter:
//
//   * exact-merge identity (always enforced): the merged reports at M = 2
//     and M = 4 miners are BIT-IDENTICAL to the single-miner reference —
//     before and after a routed ingest burst (record-count, class-histogram,
//     nb and knn train accuracy);
//   * near-linear scaling (enforced on >= 8 hardware threads): routed
//     ingest and request throughput at 4 miners >= 2.5x the single miner;
//   * failover (always enforced): with 4 miners x 2 replicas, SIGKILL one
//     miner mid-request-stream — every client request still succeeds (the
//     router retries the surviving replica under the epoch floor), zero
//     failures, and at least one failover actually happened.
//
// All floors are enforced by EXIT CODE so CI can gate on this binary.
//
//   cluster_scaling [--quick]        driver (the default)
//   cluster_scaling --miner S I R    internal: miner process, S shards,
//                                    owning index I with R replicas
//
// Determinism: every miner process runs the SAME 8-party exchange (same
// seed => bit-identical unified segments) and installs only its owned
// shards. kSeed is tuned so the 8 contribution nonces spread 2/2/2/2 over
// 4 hash-mod shards (and 4/4 over 2) — re-tune it if the optimizer or the
// partitioner changes the nonce stream (the driver checks and says so).
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "net/cluster.hpp"
#include "net/remote.hpp"
#include "protocol/party_logic.hpp"

namespace {

using sap::data::Dataset;
using sap::rng::Engine;
namespace net = sap::net;
namespace proto = sap::proto;

constexpr std::uint64_t kSeed = 90058;  // tuned: 8 nonces -> 2/2/2/2 over 4 shards
constexpr std::size_t kParties = 8;
constexpr std::size_t kBatchRows = 16;
const char* const kMergeJobs[] = {"record-count", "class-histogram",
                                  "nb-train-accuracy", "knn-train-accuracy"};

/// The shared session setup — every miner process and the driver derive the
/// identical normalized pool and party partition from kSeed alone.
struct Session {
  Dataset pool;
  std::vector<Dataset> shards;
  proto::SapOptions sap;
};

Session make_session() {
  Session s;
  const Dataset raw = sap::data::make_uci("Diabetes", kSeed);
  sap::data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  s.pool = Dataset(raw.name(), norm.transform(raw.features()), raw.labels());
  Engine shard_eng(kSeed ^ 0xBEEF);
  sap::data::PartitionOptions popts;
  s.shards = sap::data::partition(s.pool, kParties, popts, shard_eng);
  s.sap = proto::SapOptions::fast();
  s.sap.seed = kSeed;
  s.sap.compute_satisfaction = false;
  return s;
}

// ---- miner process -------------------------------------------------------

/// Child mode: one cluster member. Runs the daemon plus all 8 parties
/// in-process (the exchange is deterministic, so every member unifies the
/// same segments), prints "DOOR <port>" then "READY", and serves until the
/// driver SIGKILLs it.
int miner_main(std::size_t shards, std::size_t index, std::size_t replicas) {
  const Session s = make_session();

  net::MinerDaemonOptions opts;
  opts.listen = {"127.0.0.1", 0};
  opts.parties = kParties;
  opts.seed = kSeed;
  opts.reactor_loops = 2;
  opts.reactor_compute_threads = 2;
  opts.shards = shards;
  opts.shard_layout = proto::ShardLayout::kHashMod;
  if (shards > 1) {
    std::set<std::size_t> owned;
    for (std::size_t j = 0; j < replicas; ++j)
      owned.insert((index + shards - j) % shards);
    opts.owned_shards.assign(owned.begin(), owned.end());
  }
  net::MinerDaemon daemon(opts);
  std::printf("DOOR %u\n", static_cast<unsigned>(daemon.reactor_addr().port));
  std::fflush(stdout);

  auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });
  std::promise<void> exchanged;
  std::vector<std::thread> parties;
  for (std::size_t i = 0; i < kParties; ++i) {
    parties.emplace_back([&, i] {
      net::PartyClientOptions popts;
      popts.connect = daemon.local_addr();
      popts.index = i;
      popts.parties = kParties;
      popts.sap = s.sap;
      net::PartyClient party(s.shards[i], popts);
      (void)party.run_exchange();
      if (i != 0) {
        party.finish();
        return;
      }
      // Party 0 holds its hub connection open forever so the daemon keeps
      // serving; the driver ends this process with SIGKILL.
      exchanged.set_value();
      for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
    });
  }
  exchanged.get_future().wait();
  // Party 0's exchange return races the daemon-side pool install by a hair;
  // probe our own door until it serves before announcing READY. Bounded
  // (lint R7): if our own door cannot serve within the budget the process
  // is wedged, and dying beats hanging the driver forever.
  bool door_up = false;
  for (int attempt = 0; attempt < 2000 && !door_up; ++attempt) {
    try {
      net::ServeClient probe(daemon.reactor_addr(), kSeed, kParties);
      (void)probe.mine_named("record-count");
      probe.bye();
      door_up = true;
    } catch (const sap::Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  if (!door_up) {
    std::fprintf(stderr, "miner: own serving door never came up\n");
    return 1;
  }
  std::printf("READY\n");
  std::fflush(stdout);
  for (auto& t : parties) t.join();  // never returns
  return 0;
}

// ---- driver: process management ------------------------------------------

struct Miner {
  pid_t pid = -1;
  FILE* out = nullptr;
  net::SocketAddr door;
};

Miner spawn_miner(const char* self, std::size_t shards, std::size_t index,
                  std::size_t replicas) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(2);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    ::dup2(fds[1], 1);
    ::close(fds[0]);
    ::close(fds[1]);
    char s_arg[16], i_arg[16], r_arg[16];
    std::snprintf(s_arg, sizeof s_arg, "%zu", shards);
    std::snprintf(i_arg, sizeof i_arg, "%zu", index);
    std::snprintf(r_arg, sizeof r_arg, "%zu", replicas);
    ::execl(self, self, "--miner", s_arg, i_arg, r_arg, (char*)nullptr);
    std::perror("execl");
    ::_exit(127);
  }
  ::close(fds[1]);
  Miner m;
  m.pid = pid;
  m.out = ::fdopen(fds[0], "r");
  unsigned port = 0;
  if (!m.out || std::fscanf(m.out, "DOOR %u\n", &port) != 1 || port == 0) {
    std::fprintf(stderr, "FAIL: miner %zu/%zu did not report a door\n", index, shards);
    std::exit(1);
  }
  m.door = {"127.0.0.1", static_cast<std::uint16_t>(port)};
  return m;
}

void await_ready(Miner& m) {
  char line[64];
  if (std::fscanf(m.out, "%15s", line) != 1 || std::strcmp(line, "READY") != 0) {
    std::fprintf(stderr, "FAIL: miner on port %u never became READY\n",
                 static_cast<unsigned>(m.door.port));
    std::exit(1);
  }
}

void kill_miner(Miner& m) {
  if (m.pid > 0) {
    ::kill(m.pid, SIGKILL);
    int status = 0;
    ::waitpid(m.pid, &status, 0);
    m.pid = -1;
  }
  if (m.out) {
    std::fclose(m.out);
    m.out = nullptr;
  }
}

net::ShardRouterOptions router_options(const std::vector<Miner>& miners,
                                       std::size_t replicas) {
  net::ShardRouterOptions ropts;
  for (const auto& m : miners) ropts.miners.push_back(m.door);
  ropts.replicas = replicas;
  ropts.layout = proto::ShardLayout::kHashMod;
  ropts.seed = kSeed;
  ropts.parties = kParties;
  return ropts;
}

// ---- driver: workload ----------------------------------------------------

/// One pre-encoded kContribution wire per party, perturbed with that
/// party's negotiated space (the same math the party process ran, so the
/// installed adaptor accepts it). Reused for every series so the canonical
/// pool after ingest is identical whatever the miner count.
std::vector<std::vector<double>> make_contribution_wires(const Session& s) {
  const auto seeds = proto::logic::derive_session_seeds(kSeed, kParties);
  std::vector<std::vector<double>> wires;
  std::vector<std::size_t> count4(4, 0);
  for (std::size_t i = 0; i < kParties; ++i) {
    Engine eng = seeds.provider_eng[i];
    const auto local = proto::logic::optimize_local(s.shards[i].features_T(),
                                                    s.shards[i].dims(), s.sap, eng);
    const Dataset batch = s.pool.slice(i * kBatchRows, (i + 1) * kBatchRows);
    const auto y = local.g.apply(batch.features_T(), eng);
    wires.push_back(proto::encode_contribution(local.nonce, y, batch.labels()));
    ++count4[proto::shard_of_nonce(local.nonce, 4, proto::ShardLayout::kHashMod)];
  }
  for (std::size_t g = 0; g < 4; ++g) {
    if (count4[g] != 2) {
      std::fprintf(stderr,
                   "FAIL: kSeed no longer balances the nonce hash (shard %zu got "
                   "%zu of %zu) — re-tune kSeed\n",
                   g, count4[g], kParties);
      std::exit(1);
    }
  }
  return wires;
}

/// Merged reports for every exact-merge job, in declaration order.
std::vector<std::vector<double>> merged_reports(net::ShardRouter& router) {
  std::vector<std::vector<double>> out;
  for (const char* job : kMergeJobs) {
    proto::JobParams params;
    if (std::strstr(job, "train-accuracy") != nullptr) params["eval-records"] = 64.0;
    out.push_back(router.mine_named(job, params).values);
  }
  return out;
}

void require_identical(const std::vector<std::vector<double>>& reference,
                       const std::vector<std::vector<double>>& got,
                       std::size_t miners, const char* when) {
  for (std::size_t j = 0; j < std::size(kMergeJobs); ++j) {
    if (got[j] != reference[j]) {
      std::fprintf(stderr,
                   "FAIL: %s report for %s at %zu miners is not bit-identical "
                   "to the single-miner reference\n",
                   when, kMergeJobs[j], miners);
      std::exit(1);
    }
  }
}

struct SeriesResult {
  double ingest_per_s = 0.0;
  double requests_per_s = 0.0;
  std::vector<std::vector<double>> pre_reports;
  std::vector<std::vector<double>> post_reports;
};

/// One scaling series: M miners, replicas = 1. Reports, timed requests,
/// timed routed ingest, reports again.
SeriesResult run_series(const char* self, const Session& s,
                        const std::vector<std::vector<double>>& wires,
                        std::size_t miners, std::size_t requests_per_thread,
                        std::size_t batches_per_party) {
  std::vector<Miner> fleet;
  for (std::size_t i = 0; i < miners; ++i)
    fleet.push_back(spawn_miner(self, miners, i, 1));
  for (auto& m : fleet) await_ready(m);
  const auto ropts = router_options(fleet, 1);

  SeriesResult result;
  net::ShardRouter router(ropts);
  result.pre_reports = merged_reports(router);

  // Request throughput: 4 driver threads, each with its OWN router (the
  // router is not internally synchronized), all issuing knn partials.
  constexpr std::size_t kThreads = 4;
  {
    std::vector<std::thread> threads;
    sap::Stopwatch timer;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        net::ShardRouter mine(ropts);
        proto::JobParams params;
        params["eval-records"] = 64.0;
        for (std::size_t i = 0; i < requests_per_thread; ++i)
          (void)mine.mine_named("knn-train-accuracy", params);
      });
    }
    for (auto& t : threads) t.join();
    result.requests_per_s =
        static_cast<double>(kThreads * requests_per_thread) / timer.seconds();
  }

  // Ingest throughput: one thread per party nonce (so per-nonce append
  // order — and with it the canonical pool — is deterministic whatever the
  // thread interleaving), each routing the same wire `batches_per_party`
  // times.
  {
    std::vector<std::thread> threads;
    sap::Stopwatch timer;
    for (std::size_t i = 0; i < kParties; ++i) {
      threads.emplace_back([&, i] {
        net::ShardRouter ingest(ropts);
        for (std::size_t b = 0; b < batches_per_party; ++b)
          (void)ingest.contribute_wire(wires[i]);
      });
    }
    for (auto& t : threads) t.join();
    result.ingest_per_s =
        static_cast<double>(kParties * batches_per_party) / timer.seconds();
  }

  result.post_reports = merged_reports(router);
  const std::size_t expected =
      s.pool.size() + kParties * batches_per_party * kBatchRows;
  if (result.post_reports[0].empty() ||
      result.post_reports[0][0] != static_cast<double>(expected)) {
    std::fprintf(stderr, "FAIL: %zu-miner pool lost contributions (%f != %zu)\n",
                 miners, result.post_reports[0].empty() ? -1.0 : result.post_reports[0][0],
                 expected);
    std::exit(1);
  }

  for (auto& m : fleet) kill_miner(m);
  return result;
}

/// Failover series: 4 miners x 2 replicas; SIGKILL miner 0 halfway through
/// a request stream. Returns {failed requests, router failovers}.
std::pair<std::size_t, std::size_t> run_failover(const char* self, std::size_t requests) {
  constexpr std::size_t kMiners = 4;
  std::vector<Miner> fleet;
  for (std::size_t i = 0; i < kMiners; ++i)
    fleet.push_back(spawn_miner(self, kMiners, i, 2));
  for (auto& m : fleet) await_ready(m);

  net::ShardRouter router(router_options(fleet, 2));
  std::size_t failed = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (i == requests / 2) kill_miner(fleet[0]);  // mid-bench SIGKILL
    try {
      proto::JobParams params;
      params["eval-records"] = 64.0;
      const auto resp = router.mine_named("knn-train-accuracy", params);
      if (resp.values.empty()) ++failed;
    } catch (const sap::Error& e) {
      std::fprintf(stderr, "failover request %zu failed: %s\n", i, e.what());
      ++failed;
    }
  }
  const std::size_t failovers = router.failovers();
  for (auto& m : fleet) kill_miner(m);
  return {failed, failovers};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "--miner") == 0)
    return miner_main(static_cast<std::size_t>(std::atoi(argv[2])),
                      static_cast<std::size_t>(std::atoi(argv[3])),
                      static_cast<std::size_t>(std::atoi(argv[4])));
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: cluster_scaling [--quick]\n");
      return 2;
    }
  }
  ::signal(SIGPIPE, SIG_IGN);

  const std::size_t requests_per_thread = quick ? 8 : 40;
  const std::size_t batches_per_party = quick ? 12 : 60;
  const std::size_t failover_requests = quick ? 16 : 48;

  const Session session = make_session();
  const auto wires = make_contribution_wires(session);

  sap::Table table({"miners", "shards", "replicas", "ingest_batches_s",
                    "requests_s", "req_speedup", "identical", "failed",
                    "failovers"});
  const std::size_t fleet_sizes[] = {1, 2, 4};
  std::vector<SeriesResult> results;
  for (const std::size_t m : fleet_sizes) {
    std::printf("-- scaling series: %zu miner%s\n", m, m == 1 ? "" : "s");
    results.push_back(run_series(argv[0], session, wires, m, requests_per_thread,
                                 batches_per_party));
    // Exact-merge identity: reports at M miners == the M = 1 reference,
    // bit for bit, before and after the ingest burst.
    require_identical(results[0].pre_reports, results.back().pre_reports, m, "pre-ingest");
    require_identical(results[0].post_reports, results.back().post_reports, m,
                      "post-ingest");
    table.add_row({sap::Table::num(static_cast<double>(m), 0),
                   sap::Table::num(static_cast<double>(m), 0), sap::Table::num(1, 0),
                   sap::Table::num(results.back().ingest_per_s, 1),
                   sap::Table::num(results.back().requests_per_s, 1),
                   sap::Table::num(results.back().requests_per_s /
                                         results[0].requests_per_s, 2),
                   "yes", sap::Table::num(0, 0), sap::Table::num(0, 0)});
  }

  std::printf("-- failover series: 4 miners x 2 replicas, SIGKILL mid-stream\n");
  const auto [failed, failovers] = run_failover(argv[0], failover_requests);
  table.add_row({sap::Table::num(4, 0), sap::Table::num(4, 0), sap::Table::num(2, 0),
                 "-", "-", "-", "-", sap::Table::num(static_cast<double>(failed), 0),
                 sap::Table::num(static_cast<double>(failovers), 0)});

  sap::bench::BenchMeta meta;
  meta.transport = "cluster-tcp";
  meta.shards = 4;
  meta.replicas = 2;
  sap::bench::emit_table("cluster_scaling", table, meta);

  // ---- enforced floors ---------------------------------------------------
  bool ok = true;
  if (failed != 0) {
    std::fprintf(stderr, "FAIL: %zu requests failed during replica failover\n", failed);
    ok = false;
  }
  if (failovers == 0) {
    std::fprintf(stderr, "FAIL: the failover series never hit a replica\n");
    ok = false;
  }
  const double req_speedup = results[2].requests_per_s / results[0].requests_per_s;
  const double ingest_speedup = results[2].ingest_per_s / results[0].ingest_per_s;
  std::printf("4-miner speedup: requests %.2fx, ingest %.2fx\n", req_speedup,
              ingest_speedup);
  // The scaling floor needs hardware to scale ON: 4 miner processes x
  // (2 loops + 2 compute lanes). On smaller machines (this includes most
  // CI runners) the identity + failover floors above still gate.
  const std::size_t cores = std::thread::hardware_concurrency();
  if (cores >= 8) {
    if (req_speedup < 2.5) {
      std::fprintf(stderr, "FAIL: request speedup %.2fx < 2.5x at 4 miners\n",
                   req_speedup);
      ok = false;
    }
    if (ingest_speedup < 2.5) {
      std::fprintf(stderr, "FAIL: ingest speedup %.2fx < 2.5x at 4 miners\n",
                   ingest_speedup);
      ok = false;
    }
  } else {
    std::printf("note: scaling floor skipped (%zu hardware threads < 8)\n", cores);
  }
  if (ok) std::printf("cluster_scaling: all enforced floors passed\n");
  return ok ? 0 : 1;
}
