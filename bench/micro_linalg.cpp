// Micro-benchmarks for the linear-algebra substrate (google-benchmark).
//
// These size the cost of the primitives everything else is built from:
// matmul (perturbation application), QR (random-orthogonal sampling),
// symmetric eigen (ICA whitening), SVD (Procrustes attack), LU (adaptor
// algebra checks).
#include <benchmark/benchmark.h>

#include "linalg/decompose.hpp"
#include "linalg/matrix.hpp"
#include "linalg/orthogonal.hpp"
#include "rng/rng.hpp"

namespace {

using sap::linalg::Matrix;
using sap::rng::Engine;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Engine eng(seed);
  return Matrix::generate(r, c, [&] { return eng.normal(); });
}

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    Matrix c = a * b;
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatMul)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity(benchmark::oNCubed);

void BM_MatMulRectangularPerturbShape(benchmark::State& state) {
  // d x d rotation times d x N data — the exact shape of G(X).
  const auto d = static_cast<std::size_t>(state.range(0));
  const Matrix r = random_matrix(d, d, 3);
  const Matrix x = random_matrix(d, 1000, 4);
  for (auto _ : state) {
    Matrix y = r * x;
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_MatMulRectangularPerturbShape)->Arg(8)->Arg(16)->Arg(34);

// Blocked gemm() vs the naive reference at the tracked shapes (64x64,
// 128x128, the d=34 perturb shape): the per-PR record of the kernel's edge.
void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 11);
  const Matrix b = random_matrix(n, n, 12);
  Matrix c(n, n);
  for (auto _ : state) {
    sap::linalg::gemm(1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128);

void BM_GemmNaiveReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 11);
  const Matrix b = random_matrix(n, n, 12);
  for (auto _ : state) {
    Matrix c = sap::linalg::matmul_naive(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_GemmNaiveReference)->Arg(64)->Arg(128);

void BM_GemmBlockedPerturbShape(benchmark::State& state) {
  // Fused apply shape: d x d rotation, d x N data, epilogue translation,
  // output buffer reused across iterations (the optimizer's hot loop).
  const auto d = static_cast<std::size_t>(state.range(0));
  const Matrix r = random_matrix(d, d, 13);
  const Matrix x = random_matrix(d, 1000, 14);
  sap::linalg::Vector t(d, 0.25);
  Matrix y(d, 1000);
  for (auto _ : state) {
    sap::linalg::gemm(1.0, r, x, 0.0, y, t);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_GemmBlockedPerturbShape)->Arg(8)->Arg(16)->Arg(34);

void BM_MatMulAbt(benchmark::State& state) {
  // A * B^T without the transpose — the candidate-pool correlation kernel.
  const auto d = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(d, 160, 15);
  const Matrix b = random_matrix(d, 160, 16);
  Matrix c(d, d);
  for (auto _ : state) {
    sap::linalg::matmul_abt_into(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MatMulAbt)->Arg(8)->Arg(16)->Arg(34);

void BM_QrDecompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 5);
  for (auto _ : state) {
    auto f = sap::linalg::qr_decompose(a);
    benchmark::DoNotOptimize(f.q.data().data());
  }
}
BENCHMARK(BM_QrDecompose)->Arg(8)->Arg(16)->Arg(34);

void BM_RandomOrthogonal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine eng(6);
  for (auto _ : state) {
    Matrix q = sap::linalg::random_orthogonal(n, eng);
    benchmark::DoNotOptimize(q.data().data());
  }
}
BENCHMARK(BM_RandomOrthogonal)->Arg(8)->Arg(16)->Arg(34);

void BM_SymEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix g = random_matrix(n, n, 7);
  const Matrix a = 0.5 * (g + g.transpose());
  for (auto _ : state) {
    auto e = sap::linalg::sym_eigen(a);
    benchmark::DoNotOptimize(e.values.data());
  }
}
BENCHMARK(BM_SymEigen)->Arg(8)->Arg(16)->Arg(34);

void BM_Svd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 8);
  for (auto _ : state) {
    auto f = sap::linalg::svd(a);
    benchmark::DoNotOptimize(f.s.data());
  }
}
BENCHMARK(BM_Svd)->Arg(8)->Arg(16)->Arg(34);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = random_matrix(n, n, 9);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  sap::linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    const auto f = sap::linalg::lu_decompose(a);
    auto x = sap::linalg::lu_solve(f, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(16)->Arg(34);

void BM_Procrustes(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Engine eng(10);
  const Matrix r = sap::linalg::random_orthogonal(d, eng);
  const Matrix src = random_matrix(d, 32, 11);
  const Matrix dst = r * src;
  for (auto _ : state) {
    Matrix r_hat = sap::linalg::procrustes_rotation(src, dst);
    benchmark::DoNotOptimize(r_hat.data().data());
  }
}
BENCHMARK(BM_Procrustes)->Arg(8)->Arg(16)->Arg(34);

}  // namespace

BENCHMARK_MAIN();
