// Figure 3 reproduction: optimality rate rho-bar/b-hat for the three
// "typical" datasets (Diabetes, Shuttle, Votes) under Class-skewed and
// Uniform partitioning, as the number of parties k grows from 5 to 10.
//
// Per party: the local sub-dataset is optimized `kRuns` times; b-hat is the
// max rho across runs, rho-bar the mean; the reported rate is the average of
// rho-bar/b-hat over the k parties. Paper shape: rates live in the 0.8-1.0
// band and drift slightly as k grows (smaller local datasets).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "optimize/optimizer.hpp"

int main() {
  using namespace sap;
  const std::vector<std::string> datasets{"Diabetes", "Shuttle", "Votes"};
  const std::vector<data::PartitionKind> kinds{data::PartitionKind::kClass,
                                               data::PartitionKind::kUniform};
  const std::size_t kRuns = 12;  // optimization runs per party (paper: 100)

  opt::OptimizerOptions opts;
  opts.candidates = 6;
  opts.refine_steps = 3;
  opts.noise_sigma = 0.1;
  opts.max_eval_records = 120;
  opts.attacks = {.naive = true, .ica = false, .known_inputs = 4};

  std::printf("== Figure 3: optimality rate rho-bar/b-hat vs number of parties ==\n");
  std::printf("(%zu optimization runs per party; paper uses 100 rounds)\n\n", kRuns);

  Stopwatch sw;
  Table table({"dataset", "partition", "k=5", "k=6", "k=7", "k=8", "k=9", "k=10"});
  for (const auto& dataset : datasets) {
    for (const auto kind : kinds) {
      std::vector<std::string> row{
          dataset, kind == data::PartitionKind::kClass ? "Class" : "Uniform"};
      for (std::size_t k = 5; k <= 10; ++k) {
        const data::Dataset pool = bench::normalized_uci(dataset, 3);
        rng::Engine eng(1234 + k);
        data::PartitionOptions popts;
        popts.kind = kind;
        const auto parts = data::partition(pool, k, popts, eng);

        double rate_sum = 0.0;
        for (const auto& part : parts) {
          const linalg::Matrix x = part.features_T();
          const auto est = opt::estimate_optimality_rate(x, opts, kRuns, eng);
          rate_sum += est.rate;
        }
        row.push_back(Table::num(rate_sum / static_cast<double>(k)));
      }
      table.add_row(std::move(row));
    }
  }
  bench::emit_table("fig3_optimality_rate", table);
  std::printf("\npaper-shape check: all rates in [0.75, 1.0] band "
              "(paper: 0.8-1.0).  elapsed=%.1fs\n", sw.seconds());
  return 0;
}
