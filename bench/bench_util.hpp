// Shared helpers for the figure-reproduction benches.
//
// Each fig*_ binary prints the series of one paper figure as an aligned
// text table (sap::Table); EXPERIMENTS.md quotes these outputs verbatim.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "classify/classifier.hpp"
#include "data/dataset.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "perturb/geometric.hpp"
#include "protocol/sap.hpp"

namespace sap::bench {

/// Normalized copy of a synthetic UCI dataset (min-max to [0,1], as the
/// paper's pipeline requires before perturbation).
inline data::Dataset normalized_uci(const std::string& name, std::uint64_t seed) {
  const data::Dataset raw = data::make_uci(name, seed);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  return {raw.name(), norm.transform(raw.features()), raw.labels()};
}

/// Transform a normalized N x d dataset into a SAP target space (the
/// provider-side step that lets parties use the miner's model).
inline data::Dataset to_target_space(const data::Dataset& ds,
                                     const perturb::GeometricPerturbation& g_t) {
  return {ds.name(), g_t.apply_noiseless(ds.features_T()).transpose(), ds.labels()};
}

/// Figure 5/6 measurement: accuracy deviation (percentage points) of a
/// classifier trained on the SAP-unified data versus the original data.
/// Returns {baseline accuracy, deviation in points}.
template <typename ClassifierT>
std::pair<double, double> accuracy_deviation(const std::string& dataset,
                                             data::PartitionKind kind, std::size_t parties,
                                             std::uint64_t seed,
                                             const proto::SapOptions& sap_opts) {
  const data::Dataset pool = normalized_uci(dataset, seed);
  rng::Engine eng(seed * 1000003 + 17);
  const auto split = data::stratified_split(pool, 0.7, eng);

  data::PartitionOptions popts;
  popts.kind = kind;
  auto parts = data::partition(split.train, parties, popts, eng);

  auto opts = sap_opts;
  opts.seed = seed ^ 0xF16;
  proto::SapProtocol protocol(std::move(parts), opts);
  const auto result = protocol.run();

  ClassifierT baseline;
  baseline.fit(split.train);
  const double acc_base = ml::accuracy(baseline, split.test);

  ClassifierT unified;
  unified.fit(result.unified);
  const data::Dataset test_t = to_target_space(split.test, result.target_space);
  const double acc_sap = ml::accuracy(unified, test_t);

  return {acc_base, (acc_sap - acc_base) * 100.0};
}

/// SAP options tuned for the figure benches: local optimization on, modest
/// optimizer budget, satisfaction accounting off (figures 5/6 measure
/// accuracy only).
inline proto::SapOptions bench_sap_options() {
  proto::SapOptions o;
  o.optimizer.candidates = 6;
  o.optimizer.refine_steps = 3;
  o.optimizer.max_eval_records = 120;
  o.optimizer.attacks.naive = true;
  o.optimizer.attacks.ica = false;  // rho accounting is not measured here
  o.optimizer.attacks.known_inputs = 4;
  o.bound_runs = 1;
  o.compute_satisfaction = false;
  return o;
}

}  // namespace sap::bench
