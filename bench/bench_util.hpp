// Shared helpers for the figure-reproduction benches.
//
// Each fig*_ binary prints the series of one paper figure as an aligned
// text table (sap::Table); EXPERIMENTS.md quotes these outputs verbatim.
// emit_table() additionally writes the same series as BENCH_<name>.json so
// the perf/accuracy trajectory can be tracked across PRs by machines.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "classify/classifier.hpp"
#include "common/table.hpp"
#include "data/dataset.hpp"
#include "data/normalize.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "perturb/geometric.hpp"
#include "protocol/session.hpp"

namespace sap::bench {

// ---- latency summaries ---------------------------------------------------

/// Percentile summary of a latency sample set, computed through the SAME
/// log-linear sap::obs::Histogram the serving daemons export over the stats
/// door — so p50/p95/p99 in BENCH_*.json and in `sap_cli stats` output are
/// bucket-compatible and directly comparable (DESIGN.md §12). Units follow
/// the samples (the benches record milliseconds or microseconds and say so
/// in their column headers).
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarize raw samples. Histogram::record is gated on obs::enabled(), so
/// the histogram is fed only after forcing metrics on — a bench measuring
/// the metrics-off position (obs_overhead) can still summarize its samples.
inline LatencySummary summarize_latency(const std::vector<double>& samples) {
  LatencySummary out;
  if (samples.empty()) return out;
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::Histogram h;
  for (const double s : samples) h.record(s);
  obs::set_enabled(was_enabled);
  const obs::HistogramSnapshot snap = h.snapshot();
  out.count = snap.count;
  out.mean = snap.mean();
  out.p50 = snap.quantile(0.50);
  out.p95 = snap.quantile(0.95);
  out.p99 = snap.quantile(0.99);
  out.max = snap.max;
  return out;
}

/// Exact sample median (NOT histogram-quantized) for series where a ~12.5%
/// bucket width would blur the comparison being made (e.g. speedup ratios
/// near 1.0). Latency percentiles go through summarize_latency instead.
inline double exact_median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Normalized copy of a synthetic UCI dataset (min-max to [0,1], as the
/// paper's pipeline requires before perturbation).
inline data::Dataset normalized_uci(const std::string& name, std::uint64_t seed) {
  const data::Dataset raw = data::make_uci(name, seed);
  data::MinMaxNormalizer norm;
  norm.fit(raw.features());
  return {raw.name(), norm.transform(raw.features()), raw.labels()};
}

/// Transform a normalized N x d dataset into a SAP target space (the
/// provider-side step that lets parties use the miner's model).
inline data::Dataset to_target_space(const data::Dataset& ds,
                                     const perturb::GeometricPerturbation& g_t) {
  return {ds.name(), g_t.apply_noiseless(ds.features_T()).transpose(), ds.labels()};
}

/// Figure 5/6 measurement: accuracy deviation (percentage points) of a
/// classifier trained on the SAP-unified data versus the original data.
/// Returns {baseline accuracy, deviation in points}.
template <typename ClassifierT>
std::pair<double, double> accuracy_deviation(const std::string& dataset,
                                             data::PartitionKind kind, std::size_t parties,
                                             std::uint64_t seed,
                                             const proto::SapOptions& sap_opts) {
  const data::Dataset pool = normalized_uci(dataset, seed);
  rng::Engine eng(seed * 1000003 + 17);
  const auto split = data::stratified_split(pool, 0.7, eng);

  data::PartitionOptions popts;
  popts.kind = kind;
  auto parts = data::partition(split.train, parties, popts, eng);

  auto opts = sap_opts;
  opts.seed = seed ^ 0xF16;
  proto::SapSession session(std::move(parts), opts);
  const auto result = session.run();

  ClassifierT baseline;
  baseline.fit(split.train);
  const double acc_base = ml::accuracy(baseline, split.test);

  ClassifierT unified;
  unified.fit(result.unified);
  const data::Dataset test_t = to_target_space(split.test, result.target_space);
  const double acc_sap = ml::accuracy(unified, test_t);

  return {acc_base, (acc_sap - acc_base) * 100.0};
}

/// SAP options tuned for the figure benches: local optimization on, modest
/// optimizer budget, satisfaction accounting off (figures 5/6 measure
/// accuracy only).
inline proto::SapOptions bench_sap_options() {
  proto::SapOptions o;
  o.optimizer.candidates = 6;
  o.optimizer.refine_steps = 3;
  o.optimizer.max_eval_records = 120;
  o.optimizer.attacks.naive = true;
  o.optimizer.attacks.ica = false;  // rho accounting is not measured here
  o.optimizer.attacks.known_inputs = 4;
  o.bound_runs = 1;
  o.compute_satisfaction = false;
  return o;
}

// ---- machine-readable output ---------------------------------------------

/// True when the cell prints unchanged as a JSON number (the Table cells are
/// produced by std::to_string / Table::num, so plain decimal syntax covers
/// every numeric cell the benches emit).
inline bool is_json_number(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-') ? 1 : 0;
  if (i == cell.size()) return false;
  bool digits = false, dot = false;
  for (; i < cell.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(cell[i]))) {
      digits = true;
    } else if (cell[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits && cell.back() != '.';
}

/// Minimal JSON string escaping (the cells are ASCII table text).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Run metadata stamped into every BENCH_*.json so the perf trajectory is
/// comparable across PRs: when was it measured, with how many workers, over
/// which transport. Benches that exercise a specific backend set
/// `transport` explicitly; the default marks plain in-process execution.
struct BenchMeta {
  std::string transport = "in-process";
  std::size_t threads = std::thread::hardware_concurrency();
  /// Cluster topology (PR 8): pool shard count and owners per shard. The
  /// defaults mark a single unsharded miner — only the cluster benches set
  /// them, but every BENCH_*.json carries the fields so the perf
  /// trajectory stays comparable across topologies.
  std::size_t shards = 1;
  std::size_t replicas = 1;
};

/// ISO-8601 UTC timestamp ("2026-07-26T12:34:56Z").
inline std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Write `table` as BENCH_<name>.json in the working directory:
///   {"bench": <name>, "meta": {...}, "columns": [...],
///    "rows": [{column: value, ...}, ...]}
/// Numeric cells become JSON numbers, everything else strings.
inline void write_bench_json(const std::string& name, const Table& table,
                             const BenchMeta& meta = {}) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"" << json_escape(name) << "\",\n  \"meta\": {\"utc\": \""
      << json_escape(utc_timestamp()) << "\", \"threads\": " << meta.threads
      << ", \"transport\": \"" << json_escape(meta.transport)
      << "\", \"shards\": " << meta.shards << ", \"replicas\": " << meta.replicas
      << "},\n  \"columns\": [";
  const auto& header = table.header();
  for (std::size_t c = 0; c < header.size(); ++c)
    out << (c ? ", " : "") << '"' << json_escape(header[c]) << '"';
  out << "],\n  \"rows\": [\n";
  const auto& rows = table.row_data();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << "    {";
    for (std::size_t c = 0; c < header.size(); ++c) {
      const std::string& cell = rows[r][c];
      out << (c ? ", " : "") << '"' << json_escape(header[c]) << "\": ";
      if (is_json_number(cell)) {
        out << cell;
      } else {
        out << '"' << json_escape(cell) << '"';
      }
    }
    out << '}' << (r + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

/// Print the table to stdout AND write BENCH_<name>.json beside it.
inline void emit_table(const std::string& name, const Table& table,
                       const BenchMeta& meta = {}) {
  std::fputs(table.str().c_str(), stdout);
  write_bench_json(name, table, meta);
}

}  // namespace sap::bench
