// socket_throughput — what does crossing a real process boundary cost?
//
// Runs the same serving workloads two ways and emits
// BENCH_socket_throughput.json:
//
//   * in-process: SapSession over the simulated transport; mining requests
//     go straight into the MiningEngine, contributions through
//     session.contribute();
//   * loopback-tcp: a MinerDaemon (hub + miner) with k PartyClient drivers
//     over 127.0.0.1 — every request and contribution is a full wire round
//     trip (frame encode, TCP, route, decode, serve, respond).
//
// Measured: cached mining-request throughput (req/s, one requester) and
// contribution-ingest rate (records/s, one contributor). The determinism
// bar is enforced by exit code: the TCP-served job reports must be
// BIT-IDENTICAL to in-process serving at the same pool epoch — if sockets
// change results, the bench fails, not just slows.
//
//   socket_throughput [--quick] [--requests N] [--batches B]
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "net/remote.hpp"

namespace {

using sap::Stopwatch;
using sap::Table;
using sap::data::Dataset;
namespace net = sap::net;
namespace proto = sap::proto;

struct Workload {
  std::vector<Dataset> shards;
  std::vector<Dataset> batches;
};

Workload make_workload(std::size_t parties, std::size_t batch_count,
                       std::size_t batch_records, std::uint64_t seed) {
  const Dataset base = sap::bench::normalized_uci("Diabetes", seed);
  sap::rng::Engine eng(seed ^ 0x50C4);
  Workload w;
  const std::size_t held = batch_count * batch_records;
  sap::data::PartitionOptions popts;
  w.shards = sap::data::partition(base.slice(0, base.size() - held), parties, popts, eng);
  for (std::size_t b = 0; b < batch_count; ++b)
    w.batches.push_back(base.slice(base.size() - held + b * batch_records,
                                   base.size() - held + (b + 1) * batch_records));
  return w;
}

proto::SapOptions bench_opts(std::uint64_t seed) {
  auto opts = sap::bench::bench_sap_options();
  opts.seed = seed;
  return opts;
}

struct Rates {
  double req_per_sec = 0.0;
  double ingest_records_per_sec = 0.0;
  std::vector<std::vector<double>> reports;  // request report per pool epoch step
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 512, batch_count = 16, batch_records = 16;
  const std::size_t parties = 4;
  const std::uint64_t seed = 20260726;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      requests = 128;
      batch_count = 8;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batch_count = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: socket_throughput [--quick] [--requests N] [--batches B]\n");
      return 2;
    }
  }
  if (requests == 0 || batch_count == 0) {
    std::fprintf(stderr, "error: need positive --requests/--batches\n");
    return 2;
  }
  const proto::MiningRequest request{"nb-train-accuracy", {}};

  // ---- in-process reference --------------------------------------------
  Rates local;
  {
    const auto w = make_workload(parties, batch_count, batch_records, seed);
    proto::SapSession session(w.shards, bench_opts(seed));
    auto& engine = session.engine();
    (void)engine.run(request);  // warm the model cache

    Stopwatch serve_sw;
    for (std::size_t r = 0; r < requests; ++r) (void)engine.run(request);
    local.req_per_sec = static_cast<double>(requests) / serve_sw.seconds();

    // One contributor (party 0) streams every batch, re-serving the job
    // after each append — the exact loop the TCP side runs, so the reports
    // must be bit-identical epoch for epoch.
    Stopwatch ingest_sw;
    for (std::size_t b = 0; b < w.batches.size(); ++b) {
      (void)session.contribute(0, w.batches[b]);
      local.reports.push_back(engine.run(request).values);
    }
    const double ingest_s = ingest_sw.seconds();
    local.ingest_records_per_sec =
        static_cast<double>(batch_count * batch_records) / ingest_s;
  }

  // ---- loopback TCP (daemon + party drivers, real sockets) -------------
  Rates tcp;
  {
    const auto w = make_workload(parties, batch_count, batch_records, seed);
    net::MinerDaemonOptions daemon_opts;
    daemon_opts.listen = {"127.0.0.1", 0};
    daemon_opts.parties = parties;
    daemon_opts.seed = seed;
    net::MinerDaemon daemon(daemon_opts);
    const auto addr = daemon.local_addr();
    auto daemon_future = std::async(std::launch::async, [&] { return daemon.run(); });

    std::vector<std::unique_ptr<net::PartyClient>> clients(parties);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < parties; ++i) {
      threads.emplace_back([&, i] {
        net::PartyClientOptions popts;
        popts.connect = addr;
        popts.index = i;
        popts.parties = parties;
        popts.sap = bench_opts(seed);
        clients[i] = std::make_unique<net::PartyClient>(w.shards[i], popts);
        (void)clients[i]->run_exchange();
      });
    }
    for (auto& t : threads) t.join();

    auto& requester = *clients[0];
    (void)requester.mine_named(request.job);  // warm the daemon's cache

    Stopwatch serve_sw;
    for (std::size_t r = 0; r < requests; ++r) (void)requester.mine_named(request.job);
    tcp.req_per_sec = static_cast<double>(requests) / serve_sw.seconds();

    // One contributor streams every batch (receipt-acknowledged round
    // trips), re-serving the job after each append — mirrors the local loop
    // and pins each report to a known pool epoch for the determinism check.
    Stopwatch ingest_sw;
    for (std::size_t b = 0; b < w.batches.size(); ++b) {
      (void)requester.contribute(w.batches[b]);
      tcp.reports.push_back(requester.mine_named(request.job).values);
    }
    const double ingest_s = ingest_sw.seconds();
    tcp.ingest_records_per_sec =
        static_cast<double>(batch_count * batch_records) / ingest_s;

    for (auto& c : clients) c->finish();
    (void)daemon_future.get();
  }

  Table table({"transport", "requests", "req/s", "batches", "records", "ingest rec/s"});
  const auto add = [&](const char* transport, const Rates& r) {
    table.add_row({transport, std::to_string(requests), Table::num(r.req_per_sec, 1),
                   std::to_string(batch_count),
                   std::to_string(batch_count * batch_records),
                   Table::num(r.ingest_records_per_sec, 1)});
  };
  add("in-process", local);
  add("loopback-tcp", tcp);
  sap::bench::emit_table("socket_throughput", table,
                         {.transport = "simulated vs loopback-tcp", .threads = parties});
  std::printf("\nloopback-tcp costs %.1fx on requests, %.1fx on ingest\n",
              local.req_per_sec / tcp.req_per_sec,
              local.ingest_records_per_sec / tcp.ingest_records_per_sec);

  // Determinism bar: both ingest loops append the same batches through the
  // same party, so the pools agree epoch for epoch — the TCP-served reports
  // must match in-process serving bit for bit.
  bool identical = local.reports.size() == tcp.reports.size();
  for (std::size_t b = 0; identical && b < local.reports.size(); ++b) {
    if (local.reports[b] != tcp.reports[b]) {
      identical = false;
      std::fprintf(stderr, "FAIL: TCP report differs from in-process at batch %zu\n", b);
    }
  }
  if (!identical) return 1;
  std::printf("TCP-served reports bit-identical to in-process serving: yes\n");
  return 0;
}
